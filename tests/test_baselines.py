"""Tests for the Condor-style and BOINC-style baselines."""

import random

import pytest

from repro.apps.spec import ApplicationSpec
from repro.baselines.boinc import BoincProject, UnsupportedApplication
from repro.baselines.condor import CondorPool
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import ALWAYS_IDLE, OFFICE_WORKER
from repro.sim.workstation import Workstation


def make_ws(loop, name, profile=ALWAYS_IDLE, seed=1, mips=1000.0):
    return Workstation(
        loop, name, spec=MachineSpec(mips=mips, ram_mb=256),
        profile=profile, rng=random.Random(seed),
    )


class TestCondorSequential:
    def test_job_matched_and_completed(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        pool.add_machine(make_ws(loop, "m0"))
        job_id = pool.submit(ApplicationSpec(name="t", work_mips=1e6))
        loop.run_until(SECONDS_PER_HOUR)
        job = pool.job(job_id)
        assert job.done
        assert pool.matches == 1
        assert pool.completions == 1

    def test_multiple_tasks_spread(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        for i in range(3):
            pool.add_machine(make_ws(loop, f"m{i}"))
        job_id = pool.submit(ApplicationSpec(name="t", tasks=3, work_mips=1e6))
        loop.run_until(SECONDS_PER_HOUR)
        assert pool.job(job_id).done
        assert pool.matches == 3

    def test_owner_return_evicts(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        pool.add_machine(make_ws(loop, "m0", profile=OFFICE_WORKER, seed=4))
        loop.run_until(7 * SECONDS_PER_HOUR)   # Monday pre-work
        job_id = pool.submit(ApplicationSpec(name="t", work_mips=1e12))
        loop.run_until(14 * SECONDS_PER_HOUR)
        job = pool.job(job_id)
        assert job.evictions > 0
        assert pool.evictions == job.evictions

    def test_checkpointing_limits_waste(self):
        def run(checkpointed):
            loop = EventLoop()
            pool = CondorPool(loop, checkpoint_interval_s=900.0)
            pool.add_machine(
                make_ws(loop, "m0", profile=OFFICE_WORKER, seed=4)
            )
            loop.run_until(7 * SECONDS_PER_HOUR)
            job_id = pool.submit(
                ApplicationSpec(name="t", work_mips=5e7),
                checkpointed=checkpointed,
            )
            loop.run_until(3 * SECONDS_PER_DAY)
            return pool.job(job_id)

        with_ckpt = run(True)
        without = run(False)
        assert with_ckpt.evictions > 0
        assert with_ckpt.wasted_mips < without.wasted_mips

    def test_rank_expression_orders_matches(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        pool.add_machine(make_ws(loop, "slow", mips=400.0))
        pool.add_machine(make_ws(loop, "fast", mips=2000.0))
        job_id = pool.submit(
            ApplicationSpec(name="t", work_mips=1e9), rank="mips"
        )
        loop.run_until(120.0)
        claimed = [
            name for name, slot in pool._machines.items()
            if slot.claimed_by is not None
        ]
        assert claimed == ["fast"]

    def test_bad_rank_fails_fast(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        with pytest.raises(Exception):
            pool.submit(ApplicationSpec(name="t"), rank="mips >=")

    def test_requirements_respected(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        pool.add_machine(make_ws(loop, "slow", mips=200.0))
        from repro.apps.spec import ResourceRequirements
        job_id = pool.submit(ApplicationSpec(
            name="fastonly",
            requirements=ResourceRequirements(min_mips=500.0),
        ))
        loop.run_until(SECONDS_PER_HOUR)
        assert not pool.job(job_id).done
        assert pool.matches == 0


class TestCondorParallel:
    def test_parallel_needs_dedicated_nodes(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        for i in range(4):
            pool.add_machine(make_ws(loop, f"desktop{i}"))   # not dedicated
        job_id = pool.submit(ApplicationSpec(
            name="par", kind="bsp", tasks=4, program="p", work_mips=1e6,
        ))
        loop.run_until(SECONDS_PER_HOUR)
        assert not pool.job(job_id).done, \
            "2003-era Condor cannot run parallel jobs on pure desktops"
        assert pool.matches == 0

    def test_parallel_runs_on_dedicated_nodes(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        for i in range(4):
            pool.add_machine(make_ws(loop, f"ded{i}"), dedicated=True)
        job_id = pool.submit(ApplicationSpec(
            name="par", kind="bsp", tasks=4, program="p", work_mips=1e6,
        ))
        loop.run_until(SECONDS_PER_HOUR)
        assert pool.job(job_id).done

    def test_gang_eviction_aborts_whole_gang(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        # Dedicated in Condor's eyes, but with a real owner: the
        # partially-reserved configuration the paper criticises.
        pool.add_machine(
            make_ws(loop, "flaky", profile=OFFICE_WORKER, seed=4),
            dedicated=True,
        )
        for i in range(3):
            pool.add_machine(make_ws(loop, f"ded{i}"), dedicated=True)
        loop.run_until(7 * SECONDS_PER_HOUR)
        job_id = pool.submit(ApplicationSpec(
            name="par", kind="bsp", tasks=4, program="p", work_mips=1e12,
        ))
        loop.run_until(14 * SECONDS_PER_HOUR)
        job = pool.job(job_id)
        assert job.evictions > 0
        assert job.wasted_mips > 0
        assert len(job.tasks_remaining) in (0, 4), \
            "gang jobs run all-or-nothing"

    def test_duplicate_machine_rejected(self):
        loop = EventLoop()
        pool = CondorPool(loop)
        ws = make_ws(loop, "m0")
        pool.add_machine(ws)
        with pytest.raises(ValueError):
            pool.add_machine(ws)


class TestBoinc:
    def test_work_units_pulled_and_validated(self):
        loop = EventLoop()
        project = BoincProject(loop)
        for i in range(4):
            project.add_client(make_ws(loop, f"c{i}"))
        job_id = project.submit(
            ApplicationSpec(name="seti", tasks=2, work_mips=1e6), quorum=2
        )
        loop.run_until(SECONDS_PER_DAY)
        job = project.job(job_id)
        assert job.done
        # 2 units x quorum 2 = 4 results needed.
        assert project.results_received >= 4
        assert project.progress(job_id) == 1.0

    def test_parallel_applications_rejected(self):
        loop = EventLoop()
        project = BoincProject(loop)
        with pytest.raises(UnsupportedApplication):
            project.submit(ApplicationSpec(
                name="bsp", kind="bsp", tasks=2, program="p",
            ))

    def test_quorum_requires_distinct_hosts(self):
        loop = EventLoop()
        project = BoincProject(loop)
        project.add_client(make_ws(loop, "only"))
        job_id = project.submit(
            ApplicationSpec(name="x", tasks=1, work_mips=1e5), quorum=2
        )
        loop.run_until(SECONDS_PER_DAY)
        assert not project.job(job_id).done, \
            "one host cannot satisfy a quorum of two"

    def test_pause_on_owner_preserves_progress(self):
        loop = EventLoop()
        project = BoincProject(loop)
        project.add_client(
            make_ws(loop, "c0", profile=OFFICE_WORKER, seed=4)
        )
        job_id = project.submit(
            ApplicationSpec(name="x", tasks=1, work_mips=4e7), quorum=1
        )
        loop.run_until(5 * SECONDS_PER_DAY)
        # ~11 CPU-hours of work on an office machine: pauses happen, but
        # no progress is ever lost, so it finishes within a few days.
        assert project.job(job_id).done

    def test_expired_unit_reissued(self):
        loop = EventLoop()
        project = BoincProject(loop, deadline=SECONDS_PER_HOUR)
        stuck = make_ws(loop, "busy", profile=OFFICE_WORKER, seed=4)
        project.add_client(stuck)
        project.add_client(make_ws(loop, "idle1"))
        project.add_client(make_ws(loop, "idle2"))
        job_id = project.submit(
            ApplicationSpec(name="x", tasks=1, work_mips=1e6), quorum=2
        )
        loop.run_until(2 * SECONDS_PER_DAY)
        assert project.job(job_id).done

    def test_invalid_quorum(self):
        loop = EventLoop()
        project = BoincProject(loop)
        with pytest.raises(ValueError):
            project.submit(ApplicationSpec(name="x"), quorum=0)

    def test_duplicate_client_rejected(self):
        loop = EventLoop()
        project = BoincProject(loop)
        ws = make_ws(loop, "c0")
        project.add_client(ws)
        with pytest.raises(ValueError):
            project.add_client(ws)


class TestOptimisticGrmAblation:
    def test_optimistic_grm_places_on_fresh_info(self):
        from repro.baselines.simple import OptimisticGrm
        from repro.core.grid import Grid

        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        handle = grid.add_cluster("c0")
        # Swap in the ablation GRM behaviour by monkey-wiring the class.
        handle.grm.__class__ = OptimisticGrm
        grid.add_node("c0", "d0", dedicated=True)
        grid.run_for(120)
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=1e6))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
