"""Unit tests for the Local Resource Manager."""

import random

import pytest

from repro.core.lrm import Lrm
from repro.core.ncc import (
    DEFAULT_POLICY,
    BlackoutWindow,
    NodeControlCenter,
    SharingPolicy,
    VACATE_POLICY,
)
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import ALWAYS_IDLE, OFFICE_WORKER
from repro.sim.workstation import Workstation


class FakeGrm:
    """Records the LRM's oneway notifications."""

    def __init__(self):
        self.registrations = []
        self.updates = []
        self.completed = []
        self.evicted = []
        self.limits = []

    def register_node(self, status, lrm_ior):
        self.registrations.append((status, lrm_ior))

    def send_update(self, status):
        self.updates.append(status)

    def send_delta(self, node, delta):
        self.deltas = getattr(self, "deltas", [])
        self.deltas.append((node, delta))

    def task_completed(self, node, task_id, result=None):
        self.completed.append((node, task_id))
        self.results = getattr(self, "results", {})
        self.results[task_id] = result

    def task_evicted(self, node, task_id, progress, resume):
        self.evicted.append((node, task_id, progress, resume))

    def task_reached_limit(self, node, task_id):
        self.limits.append((node, task_id))


def make_lrm(policy=DEFAULT_POLICY, profile=ALWAYS_IDLE, seed=1,
             mips=1000.0, attach=True, **kwargs):
    loop = EventLoop()
    ws = Workstation(
        loop, "n0", spec=MachineSpec(mips=mips, ram_mb=256),
        profile=profile, rng=random.Random(seed),
    )
    ncc = NodeControlCenter(loop.clock, policy)
    lrm = Lrm(loop, ws, ncc, **kwargs)
    grm = FakeGrm()
    if attach:
        lrm.attach_grm(grm, "IOR:fake")
    return loop, ws, lrm, grm


def reserve(lrm, task_id="t1", cpu=0.5, mem=32.0):
    return lrm.request_reservation({
        "task_id": task_id, "cpu_fraction": cpu, "mem_mb": mem,
        "disk_mb": 0.0, "lease_seconds": 300.0,
    })


def launch(lrm, task_id="t1", job_id="j1", work=1e6, initial=0.0, ckpt=0.0):
    return lrm.start_task({
        "task_id": task_id, "job_id": job_id, "work_mips": work,
        "initial_progress_mips": initial, "checkpoint_interval_s": ckpt,
    })


class TestInformationProtocol:
    def test_registration_on_attach(self):
        loop, ws, lrm, grm = make_lrm()
        assert len(grm.registrations) == 1
        status, ior = grm.registrations[0]
        assert status["node"] == "n0"
        assert ior == "IOR:fake"

    def test_periodic_updates(self):
        loop, ws, lrm, grm = make_lrm(update_interval=60.0)
        loop.run_until(300.0)
        assert len(grm.updates) == 5
        assert lrm.updates_sent == 5

    def test_status_reflects_capacity(self):
        loop, ws, lrm, grm = make_lrm()
        status = lrm.get_status()
        assert status["mips"] == 1000.0
        assert status["cpu_free"] == pytest.approx(1.0)
        assert status["sharing"] is True
        assert status["grid_tasks"] == 0

    def test_status_zeroed_when_not_sharing(self):
        loop, ws, lrm, grm = make_lrm(
            policy=SharingPolicy(enabled=False)
        )
        status = lrm.get_status()
        assert status["sharing"] is False
        assert status["cpu_free"] == 0.0
        assert status["mem_free_mb"] == 0.0

    def test_ping(self):
        _, _, lrm, _ = make_lrm()
        assert lrm.ping() is True


class TestReservationProtocol:
    def test_accept(self):
        loop, ws, lrm, grm = make_lrm()
        reply = reserve(lrm)
        assert reply["accepted"] is True
        assert lrm.accepted_reservations == 1

    def test_refuse_over_cap(self):
        loop, ws, lrm, grm = make_lrm(
            policy=SharingPolicy(cpu_cap_idle=0.3)
        )
        reply = reserve(lrm, cpu=0.5)
        assert reply["accepted"] is False
        assert "cap" in reply["reason"]
        assert lrm.refused_reservations == 1

    def test_refuse_when_memory_tight(self):
        loop, ws, lrm, grm = make_lrm()
        reply = reserve(lrm, mem=1000.0)
        assert reply["accepted"] is False
        assert "memory" in reply["reason"]

    def test_refuse_second_oversubscribing_reservation(self):
        loop, ws, lrm, grm = make_lrm()
        assert reserve(lrm, "t1", cpu=0.7)["accepted"]
        assert not reserve(lrm, "t2", cpu=0.7)["accepted"]

    def test_cancel_reservation(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, "t1")
        lrm.cancel_reservation("t1")
        assert reserve(lrm, "t1")["accepted"]

    def test_cancel_unknown_is_noop(self):
        _, _, lrm, _ = make_lrm()
        lrm.cancel_reservation("ghost")


class TestExecution:
    def test_start_requires_reservation(self):
        _, _, lrm, _ = make_lrm()
        assert launch(lrm) is False

    def test_task_runs_to_completion(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        assert launch(lrm, work=1000.0 * 600)   # 10 idle minutes of work
        loop.run_until(700.0)
        assert grm.completed == [("n0", "t1")]
        assert lrm.completed_count == 1
        assert lrm.running_tasks == []
        assert ws.machine.grid_cpu == 0.0

    def test_progress_rate_scales_with_cpu_fraction(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=0.5)
        launch(lrm, work=1e9)
        loop.run_until(600.0)
        # 1000 MIPS * 0.5 share * ~600 s
        assert lrm.get_progress("t1") == pytest.approx(0.5 * 1000 * 600, rel=0.1)

    def test_initial_progress_honoured(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e6, initial=999_000.0)
        loop.run_until(60.0)
        assert grm.completed, "nearly-done task should finish fast"

    def test_stop_task_returns_progress(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e9)
        loop.run_until(300.0)
        progress = lrm.stop_task("t1")
        assert progress > 0
        assert grm.evicted == []     # silent stop: no eviction notice
        assert ws.machine.grid_cpu == 0.0

    def test_stop_unknown_task(self):
        _, _, lrm, _ = make_lrm()
        assert lrm.stop_task("ghost") == -1.0


class TestPacing:
    def test_work_limit_stalls_task(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e9)
        lrm.set_work_limit("t1", 100_000.0)
        loop.run_until(SECONDS_PER_HOUR)
        assert lrm.get_progress("t1") == pytest.approx(100_000.0)
        assert grm.limits == [("n0", "t1")]   # notified exactly once

    def test_raising_limit_resumes(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e9)
        lrm.set_work_limit("t1", 100_000.0)
        loop.run_until(600.0)
        lrm.set_work_limit("t1", 200_000.0)
        loop.run_until(1200.0)
        assert lrm.get_progress("t1") == pytest.approx(200_000.0)
        assert len(grm.limits) == 2

    def test_rollback_task(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e9)
        loop.run_until(600.0)
        lrm.rollback_task("t1", 1000.0)
        assert lrm.get_progress("t1") == pytest.approx(1000.0)

    def test_pacing_unknown_task(self):
        _, _, lrm, _ = make_lrm()
        with pytest.raises(KeyError):
            lrm.set_work_limit("ghost", 1.0)
        with pytest.raises(KeyError):
            lrm.get_progress("ghost")


class TestCheckpointing:
    def test_periodic_checkpoints(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e9, ckpt=120.0)
        loop.run_until(600.0)
        assert lrm.checkpoints_taken >= 4
        record = lrm.store.load_latest("t1")
        assert record is not None
        assert record.state()["progress_mips"] > 0

    def test_no_checkpoints_when_disabled(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e9, ckpt=0.0)
        loop.run_until(600.0)
        assert lrm.checkpoints_taken == 0

    def test_checkpoints_discarded_on_completion(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=60_000.0, ckpt=30.0)
        loop.run_until(300.0)
        assert lrm.store.load_latest("t1") is None


class TestEviction:
    def test_vacate_on_owner_return(self):
        loop, ws, lrm, grm = make_lrm(
            policy=VACATE_POLICY, profile=OFFICE_WORKER, seed=4,
        )
        loop.run_until(7 * SECONDS_PER_HOUR)   # early Monday: owner away
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12, ckpt=300.0)
        loop.run_until(14 * SECONDS_PER_HOUR)  # owner arrives and works
        assert grm.evicted, "owner arrival must evict under VACATE_POLICY"
        node, task_id, progress, resume = grm.evicted[0]
        assert progress > 0
        assert 0 <= resume <= progress
        assert lrm.evicted_count >= 1

    def test_eviction_without_checkpoint_resumes_from_zero(self):
        loop, ws, lrm, grm = make_lrm(
            policy=VACATE_POLICY, profile=OFFICE_WORKER, seed=4,
        )
        loop.run_until(7 * SECONDS_PER_HOUR)
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12, ckpt=0.0)
        loop.run_until(14 * SECONDS_PER_HOUR)
        assert grm.evicted
        _, _, progress, resume = grm.evicted[0]
        assert resume == 0.0

    def test_blackout_evicts(self):
        policy = SharingPolicy(blackouts=(BlackoutWindow(1.0, 2.0),))
        loop, ws, lrm, grm = make_lrm(policy=policy)
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12)
        loop.run_until(90 * 60)   # into the 01:00-02:00 blackout
        assert grm.evicted
        assert lrm.running_tasks == []

    def test_no_progress_while_not_sharing(self):
        policy = SharingPolicy(blackouts=(BlackoutWindow(0.0, 24.0),))
        loop, ws, lrm, grm = make_lrm(policy=policy)
        reply = reserve(lrm)
        assert reply["accepted"] is False

    def test_owner_throttles_but_does_not_evict_by_default(self):
        loop, ws, lrm, grm = make_lrm(
            policy=SharingPolicy(cpu_cap_idle=1.0, cpu_cap_active=0.2),
            profile=OFFICE_WORKER, seed=4,
        )
        loop.run_until(7 * SECONDS_PER_HOUR)
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12)
        loop.run_until(14 * SECONDS_PER_HOUR)
        assert grm.evicted == []
        assert "t1" in lrm.running_tasks

    def test_vacate_grace_survives_short_owner_visit(self):
        # The owner pops in for under the grace window: tasks suspend,
        # then resume; nothing is evicted.
        policy = SharingPolicy(
            cpu_cap_active=0.0, vacate_on_owner_return=True,
            vacate_grace_s=1800.0,
        )
        loop, ws, lrm, grm = make_lrm(policy=policy)
        ws.stop()   # scripted owner: disable the Markov driver
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12)
        # Scripted short visit (10 min < 30 min grace).
        ws.machine.set_owner_load(0.5, 10.0, True)
        ws._present = True
        for listener in ws._listeners:
            listener(True)
        loop.run_until(loop.now + 600.0)
        ws.machine.set_owner_load(0.0, 0.0, False)
        ws._present = False
        for listener in ws._listeners:
            listener(False)
        loop.run_until(loop.now + 2400.0)
        assert grm.evicted == []
        assert "t1" in lrm.running_tasks

    def test_vacate_grace_evicts_when_owner_stays(self):
        policy = SharingPolicy(
            cpu_cap_active=0.0, vacate_on_owner_return=True,
            vacate_grace_s=600.0,
        )
        loop, ws, lrm, grm = make_lrm(policy=policy)
        ws.stop()   # scripted owner: disable the Markov driver
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12)
        ws.machine.set_owner_load(0.5, 10.0, True)
        ws._present = True
        for listener in ws._listeners:
            listener(True)
        loop.run_until(loop.now + 700.0)   # owner still there past grace
        assert grm.evicted
        assert lrm.running_tasks == []

    def test_suspension_stalls_progress_during_grace(self):
        policy = SharingPolicy(
            cpu_cap_active=0.0, vacate_on_owner_return=True,
            vacate_grace_s=3600.0,
        )
        loop, ws, lrm, grm = make_lrm(policy=policy)
        ws.stop()   # scripted owner: disable the Markov driver
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12)
        loop.run_until(300.0)
        ws.machine.set_owner_load(0.5, 10.0, True)
        ws._present = True
        for listener in ws._listeners:
            listener(True)
        progress_at_arrival = lrm.get_progress("t1")
        loop.run_until(loop.now + 900.0)
        assert lrm.get_progress("t1") == pytest.approx(progress_at_arrival)

    def test_detach_evicts_everything(self):
        loop, ws, lrm, grm = make_lrm()
        reserve(lrm, cpu=1.0)
        launch(lrm, work=1e12)
        lrm.detach()
        assert grm.evicted
        assert lrm.running_tasks == []


class TestDeltaUpdates:
    """LRM-side behaviour of the delta-compressed update protocol."""

    def test_defaults_keep_the_seed_protocol(self):
        loop, ws, lrm, grm = make_lrm(update_interval=60.0)
        loop.run_until(180.0)
        assert len(grm.updates) == 3
        assert not getattr(grm, "deltas", [])
        assert lrm.updates_delta == 0 and lrm.updates_suppressed == 0

    def test_idle_node_sends_heartbeats_not_snapshots(self):
        loop, ws, lrm, grm = make_lrm(
            update_interval=60.0, delta_updates=True, full_refresh_every=50,
        )
        loop.run_until(300.0)
        assert grm.updates == []           # registration aside, no fulls
        assert len(grm.deltas) == 5
        for _node, payload in grm.deltas:
            assert set(payload) == {"time"}   # heartbeat carries time only
        assert lrm.updates_suppressed == 5
        assert lrm.updates_sent == 5
        assert lrm.updates_bytes_saved > 0

    def test_change_travels_as_a_delta(self):
        loop, ws, lrm, grm = make_lrm(
            update_interval=60.0, delta_updates=True, full_refresh_every=50,
        )
        loop.run_until(60.0)
        reserve(lrm, cpu=0.5)
        launch(lrm)
        loop.run_until(120.0)
        node, payload = grm.deltas[-1]
        assert node == "n0"
        assert "time" in payload
        assert "cpu_free" in payload or "grid_tasks" in payload
        assert len(payload) < 10           # far from a full 15-field status
        assert lrm.updates_delta >= 1

    def test_throttle_stretches_idle_cadence(self):
        base, capped = 60.0, 480.0
        loop, ws, lrm, grm = make_lrm(
            update_interval=base, delta_updates=True, full_refresh_every=500,
            max_update_interval=capped,
        )
        loop.run_until(3600.0)
        # Fixed cadence would be 60 sends; stretched 60,120,240,480,...
        # converges on one send per 480s.
        assert lrm.updates_sent < 3600.0 / base / 3
        assert lrm.updates_sent >= 3600.0 / capped

    def test_periodic_full_refresh(self):
        loop, ws, lrm, grm = make_lrm(
            update_interval=60.0, delta_updates=True, full_refresh_every=4,
        )
        loop.run_until(60.0 * 12)
        assert len(grm.updates) == 3       # every 4th send is a snapshot
        assert lrm.updates_full == 3
        for status in grm.updates:
            assert set(status) == set(lrm.status())

    def test_receiver_state_matches_status_after_each_send(self):
        from repro.core.update_protocol import apply_delta

        loop, ws, lrm, grm = make_lrm(
            update_interval=60.0, delta_updates=True, full_refresh_every=5,
            profile=OFFICE_WORKER, seed=7,
        )
        state = grm.registrations[0][0]
        sent = {"count": 0}

        original_update, original_delta = grm.send_update, grm.send_delta

        def on_update(status):
            original_update(status)
            sent["state"] = dict(status)

        def on_delta(node, delta):
            original_delta(node, delta)
            sent["state"] = apply_delta(sent.get("state", state), delta)

        grm.send_update, grm.send_delta = on_update, on_delta
        for _ in range(20):
            loop.run_until(loop.now + 60.0)
            if "state" in sent:
                expected = lrm.status()
                got = dict(sent["state"])
                # The sender's clock advanced since the send fired; every
                # other field must reconstruct exactly.
                got.pop("time"), expected.pop("time")
                assert got == expected

    def test_detach_stops_delta_updates(self):
        loop, ws, lrm, grm = make_lrm(
            update_interval=60.0, delta_updates=True,
        )
        loop.run_until(120.0)
        sent = lrm.updates_sent
        lrm.detach()
        loop.run_until(600.0)
        assert lrm.updates_sent == sent
