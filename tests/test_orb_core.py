"""Unit and integration tests for the ORB core, IOR, and transports."""

import pytest

from repro.orb.cdr import Double, Long, Sequence, String, Void
from repro.orb.core import Orb
from repro.orb.exceptions import (
    BadOperation,
    CommunicationError,
    ObjectNotFound,
    RemoteInvocationError,
)
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.ior import ObjectRef
from repro.orb.transport import InProcDomain

CALC_INTERFACE = InterfaceDef(
    "test/Calculator",
    [
        Operation("add", (Parameter("a", Double), Parameter("b", Double)), Double),
        Operation("concat", (Parameter("parts", Sequence(String)),), String),
        Operation("boom", (), Void),
        Operation("notify", (Parameter("message", String),), Void, oneway=True),
    ],
)


class Calculator:
    def __init__(self):
        self.notifications = []

    def add(self, a, b):
        return a + b

    def concat(self, parts):
        return "".join(parts)

    def boom(self):
        raise RuntimeError("kaboom")

    def notify(self, message):
        self.notifications.append(message)


@pytest.fixture
def domain():
    return InProcDomain()


@pytest.fixture
def pair(domain):
    server = Orb("server", domain=domain)
    client = Orb("client", domain=domain)
    yield server, client
    server.shutdown()
    client.shutdown()


class TestInProcInvocation:
    def test_basic_call(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        assert stub.add(2.0, 3.0) == 5.0

    def test_sequence_argument(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        assert stub.concat(["a", "b", "c"]) == "abc"

    def test_remote_exception_propagates(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        with pytest.raises(RemoteInvocationError) as excinfo:
            stub.boom()
        assert excinfo.value.remote_type == "RuntimeError"
        assert "kaboom" in excinfo.value.remote_message

    def test_oneway_returns_none_and_delivers(self, pair):
        server, client = pair
        servant = Calculator()
        ref = server.activate(servant, CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        assert stub.notify("ping") is None
        assert servant.notifications == ["ping"]

    def test_wrong_arity(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        with pytest.raises(TypeError):
            stub.add(1.0)

    def test_unknown_operation(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        with pytest.raises(BadOperation):
            stub.multiply

    def test_deactivated_servant(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        server.deactivate(ref.key)
        with pytest.raises(RemoteInvocationError) as excinfo:
            stub.add(1.0, 2.0)
        assert excinfo.value.remote_type == "ObjectNotFound"

    def test_self_invocation(self, domain):
        orb = Orb("solo", domain=domain)
        ref = orb.activate(Calculator(), CALC_INTERFACE)
        assert orb.stub(ref, CALC_INTERFACE).add(1.0, 1.0) == 2.0
        orb.shutdown()

    def test_stats_count_messages_and_bytes(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref, CALC_INTERFACE)
        stub.add(1.0, 2.0)
        stats = client.stats()
        assert stats["requests_sent"] == 1
        assert stats["replies_received"] == 1
        assert stats["bytes_sent"] > 0
        assert stats["bytes_received"] > 0
        assert server.stats()["requests_handled"] == 1


class TestServantValidation:
    def test_incomplete_servant_rejected(self, domain):
        orb = Orb(domain=domain)

        class Partial:
            def add(self, a, b):
                return a + b

        with pytest.raises(BadOperation):
            orb.activate(Partial(), CALC_INTERFACE)
        orb.shutdown()

    def test_duplicate_key_rejected(self, domain):
        orb = Orb(domain=domain)
        orb.activate(Calculator(), CALC_INTERFACE, key="calc")
        with pytest.raises(ValueError):
            orb.activate(Calculator(), CALC_INTERFACE, key="calc")
        orb.shutdown()

    def test_deactivate_unknown_key(self, domain):
        orb = Orb(domain=domain)
        with pytest.raises(ObjectNotFound):
            orb.deactivate("ghost")
        orb.shutdown()


class TestIor:
    def test_roundtrip(self):
        ref = ObjectRef("test/Calc", "calc/1", (("inproc", "server"),))
        text = ref.to_string()
        assert text.startswith("IOR:")
        assert ObjectRef.from_string(text) == ref

    def test_multi_endpoint_roundtrip(self):
        ref = ObjectRef(
            "x", "k", (("inproc", "a"), ("tcp", "127.0.0.1:9999"))
        )
        parsed = ObjectRef.from_string(ref.to_string())
        assert parsed.endpoint_of_kind("tcp") == ("tcp", "127.0.0.1:9999")

    def test_bad_ior_string(self):
        from repro.orb.exceptions import MarshalError
        with pytest.raises(MarshalError):
            ObjectRef.from_string("not-an-ior")
        with pytest.raises(MarshalError):
            ObjectRef.from_string("IOR:zzzz")

    def test_needs_endpoint(self):
        with pytest.raises(ValueError):
            ObjectRef("x", "k", ())

    def test_stub_from_ior_string(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref.to_string(), CALC_INTERFACE)
        assert stub.add(4.0, 5.0) == 9.0

    def test_registered_interface_lookup(self, pair):
        server, client = pair
        client.register_interface(CALC_INTERFACE)
        ref = server.activate(Calculator(), CALC_INTERFACE)
        stub = client.stub(ref.to_string())
        assert stub.add(1.0, 1.0) == 2.0

    def test_unregistered_interface_rejected(self, pair):
        server, client = pair
        ref = server.activate(Calculator(), CALC_INTERFACE)
        with pytest.raises(BadOperation):
            client.stub(ref.to_string())

    def test_interface_mismatch(self, pair):
        server, client = pair
        other = InterfaceDef("test/Other", [Operation("noop", (), Void)])
        ref = server.activate(Calculator(), CALC_INTERFACE)
        with pytest.raises(BadOperation):
            client.stub(ref, other)


class TestRouting:
    def test_unreachable_endpoint(self, domain):
        client = Orb("client", domain=domain)
        ref = ObjectRef("test/Calculator", "k", (("inproc", "ghost-orb"),))
        stub = client.stub(ref, CALC_INTERFACE)
        with pytest.raises(CommunicationError):
            stub.add(1.0, 2.0)
        client.shutdown()

    def test_tcp_endpoint_without_tcp_transport(self, domain):
        client = Orb("client", domain=domain)
        ref = ObjectRef("test/Calculator", "k", (("tcp", "127.0.0.1:1"),))
        stub = client.stub(ref, CALC_INTERFACE)
        with pytest.raises(CommunicationError):
            stub.add(1.0, 2.0)
        client.shutdown()


class TestTcpTransport:
    def test_call_over_real_sockets(self):
        server_domain = InProcDomain()
        client_domain = InProcDomain()   # disjoint: forces the TCP path
        server = Orb("server", domain=server_domain, tcp=True)
        client = Orb("client", domain=client_domain, tcp=True)
        try:
            servant = Calculator()
            ref = server.activate(servant, CALC_INTERFACE)
            stub = client.stub(ref, CALC_INTERFACE)
            assert stub.add(10.0, 32.0) == 42.0
            assert stub.concat(["x", "y"]) == "xy"
            with pytest.raises(RemoteInvocationError):
                stub.boom()
        finally:
            server.shutdown()
            client.shutdown()

    def test_oneway_over_tcp(self):
        server = Orb("s2", domain=InProcDomain(), tcp=True)
        client = Orb("c2", domain=InProcDomain(), tcp=True)
        try:
            servant = Calculator()
            ref = server.activate(servant, CALC_INTERFACE)
            stub = client.stub(ref, CALC_INTERFACE)
            stub.notify("over tcp")
            stub.add(0.0, 0.0)   # synchronous call flushes the oneway
            assert servant.notifications == ["over tcp"]
        finally:
            server.shutdown()
            client.shutdown()

    def test_connection_refused(self):
        client = Orb("c3", domain=InProcDomain(), tcp=True)
        try:
            ref = ObjectRef(
                "test/Calculator", "k", (("tcp", "127.0.0.1:1"),)
            )
            stub = client.stub(ref, CALC_INTERFACE)
            with pytest.raises(CommunicationError):
                stub.add(1.0, 2.0)
        finally:
            client.shutdown()

    def test_many_sequential_calls_reuse_connection(self):
        server = Orb("s4", domain=InProcDomain(), tcp=True)
        client = Orb("c4", domain=InProcDomain(), tcp=True)
        try:
            ref = server.activate(Calculator(), CALC_INTERFACE)
            stub = client.stub(ref, CALC_INTERFACE)
            for i in range(50):
                assert stub.add(float(i), 1.0) == i + 1.0
        finally:
            server.shutdown()
            client.shutdown()


class TestDomainIsolation:
    def test_same_name_in_different_domains(self):
        d1, d2 = InProcDomain(), InProcDomain()
        orb1 = Orb("grm", domain=d1)
        orb2 = Orb("grm", domain=d2)
        orb1.shutdown()
        orb2.shutdown()

    def test_duplicate_name_in_one_domain_rejected(self, domain):
        orb1 = Orb("grm", domain=domain)
        with pytest.raises(ValueError):
            Orb("grm", domain=domain)
        orb1.shutdown()
