"""Unit tests for the machine hardware model."""

import pytest

from repro.sim.machine import (
    InsufficientResources,
    Machine,
    MachineSpec,
    ResourceSample,
)


def make_machine(**kwargs):
    defaults = dict(mips=1000.0, ram_mb=256.0, disk_mb=1000.0)
    defaults.update(kwargs)
    return Machine("node0", MachineSpec(**defaults))


class TestMachineSpec:
    def test_defaults(self):
        spec = MachineSpec()
        assert spec.mips > 0
        assert spec.os == "linux"

    @pytest.mark.parametrize("field,value", [
        ("mips", 0), ("mips", -1), ("ram_mb", 0), ("disk_mb", -1),
    ])
    def test_invalid_spec_rejected(self, field, value):
        with pytest.raises(ValueError):
            MachineSpec(**{field: value})


class TestOwnerLoad:
    def test_set_owner_load(self):
        m = make_machine()
        m.set_owner_load(0.5, 100.0, True)
        assert m.owner_cpu == 0.5
        assert m.owner_mem_mb == 100.0
        assert m.keyboard_active

    def test_owner_cpu_out_of_range(self):
        m = make_machine()
        with pytest.raises(ValueError):
            m.set_owner_load(1.5, 0.0, False)

    def test_owner_mem_exceeding_ram_rejected(self):
        m = make_machine(ram_mb=128.0)
        with pytest.raises(ValueError):
            m.set_owner_load(0.1, 200.0, False)


class TestGridAllocation:
    def test_allocate_and_release(self):
        m = make_machine()
        m.allocate("t1", 0.5, 64.0)
        assert m.grid_cpu == 0.5
        assert m.grid_mem_mb == 64.0
        m.release("t1")
        assert m.grid_cpu == 0.0
        assert m.grid_mem_mb == 0.0

    def test_duplicate_task_rejected(self):
        m = make_machine()
        m.allocate("t1", 0.2, 10.0)
        with pytest.raises(ValueError):
            m.allocate("t1", 0.2, 10.0)

    def test_release_unknown_task(self):
        with pytest.raises(KeyError):
            make_machine().release("nope")

    def test_cpu_oversubscription_rejected(self):
        m = make_machine()
        m.set_owner_load(0.8, 0.0, True)
        with pytest.raises(InsufficientResources):
            m.allocate("t1", 0.5, 10.0)

    def test_memory_oversubscription_rejected(self):
        m = make_machine(ram_mb=128.0)
        m.set_owner_load(0.0, 100.0, False)
        with pytest.raises(InsufficientResources):
            m.allocate("t1", 0.1, 64.0)

    def test_disk_oversubscription_rejected(self):
        m = make_machine(disk_mb=100.0)
        with pytest.raises(InsufficientResources):
            m.allocate("t1", 0.1, 1.0, disk_mb=200.0)

    def test_disk_returned_on_release(self):
        m = make_machine(disk_mb=100.0)
        m.allocate("t1", 0.1, 1.0, disk_mb=80.0)
        m.release("t1")
        m.allocate("t2", 0.1, 1.0, disk_mb=80.0)

    def test_zero_cpu_allocation_rejected(self):
        with pytest.raises(ValueError):
            make_machine().allocate("t1", 0.0, 10.0)


class TestAvailability:
    def test_cap_limits_grid_share(self):
        m = make_machine()
        assert m.cpu_available_for_grid(cap=0.3) == pytest.approx(0.3)

    def test_owner_load_limits_grid_share(self):
        m = make_machine()
        m.set_owner_load(0.9, 0.0, True)
        assert m.cpu_available_for_grid(cap=1.0) == pytest.approx(0.1)

    def test_existing_allocations_consume_cap(self):
        m = make_machine()
        m.allocate("t1", 0.2, 1.0)
        assert m.cpu_available_for_grid(cap=0.3) == pytest.approx(0.1)

    def test_mem_cap(self):
        m = make_machine(ram_mb=256.0)
        assert m.mem_available_for_grid(cap_mb=100.0) == pytest.approx(100.0)
        m.allocate("t1", 0.1, 60.0)
        assert m.mem_available_for_grid(cap_mb=100.0) == pytest.approx(40.0)


class TestTaskRate:
    def test_full_speed_when_idle(self):
        m = make_machine(mips=1000.0)
        m.allocate("t1", 0.5, 1.0)
        assert m.grid_task_rate_mips("t1") == pytest.approx(500.0)

    def test_owner_throttles_grid(self):
        # Owner takes 80%; a 50% grid allocation only gets the remaining 20%.
        m = make_machine(mips=1000.0)
        m.allocate("t1", 0.5, 1.0)
        m.set_owner_load(0.8, 0.0, True)
        assert m.grid_task_rate_mips("t1") == pytest.approx(1000.0 * 0.2)

    def test_throttle_shared_proportionally(self):
        m = make_machine(mips=1000.0)
        m.allocate("t1", 0.6, 1.0)
        m.allocate("t2", 0.3, 1.0)
        m.set_owner_load(0.7, 0.0, True)
        # 0.3 CPU left for 0.9 of allocations: scale = 1/3.
        assert m.grid_task_rate_mips("t1") == pytest.approx(200.0)
        assert m.grid_task_rate_mips("t2") == pytest.approx(100.0)

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            make_machine().grid_task_rate_mips("ghost")


class TestSchedulingModes:
    def test_owner_first_owner_untouched(self):
        m = make_machine(mips=1000.0)
        m.allocate("t1", 0.8, 1.0)
        m.set_owner_load(0.6, 0.0, True)
        assert m.owner_received_cpu() == pytest.approx(0.6)
        assert m.grid_task_rate_mips("t1") == pytest.approx(400.0)

    def test_fair_share_owner_perceives_grid(self):
        m = Machine("n0", MachineSpec(mips=1000.0), scheduling="fair_share")
        m.allocate("t1", 0.8, 1.0)
        m.set_owner_load(0.6, 0.0, True)
        # Demand 1.4 on 1 CPU: both shrink by 1/1.4.
        assert m.owner_received_cpu() == pytest.approx(0.6 / 1.4)
        assert m.grid_task_rate_mips("t1") == pytest.approx(1000.0 * 0.8 / 1.4)

    def test_fair_share_no_contention_no_effect(self):
        m = Machine("n0", MachineSpec(mips=1000.0), scheduling="fair_share")
        m.allocate("t1", 0.3, 1.0)
        m.set_owner_load(0.4, 0.0, True)
        assert m.owner_received_cpu() == pytest.approx(0.4)
        assert m.grid_task_rate_mips("t1") == pytest.approx(300.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Machine("n0", scheduling="strict_priority")


class TestSample:
    def test_sample_reflects_loads(self):
        m = make_machine(ram_mb=256.0)
        m.set_owner_load(0.4, 100.0, True)
        m.allocate("t1", 0.3, 50.0)
        s = m.sample(now=12.0)
        assert isinstance(s, ResourceSample)
        assert s.time == 12.0
        assert s.cpu_owner == pytest.approx(0.4)
        assert s.cpu_grid == pytest.approx(0.3)
        assert s.cpu_total == pytest.approx(0.7)
        assert s.mem_used_mb == pytest.approx(150.0)
        assert s.keyboard_active

    def test_cpu_total_saturates_at_one(self):
        m = make_machine()
        m.allocate("t1", 0.9, 1.0)
        m.set_owner_load(0.8, 0.0, True)
        s = m.sample(now=0.0)
        assert s.cpu_total == pytest.approx(1.0)
        assert s.cpu_free == pytest.approx(0.0)

    def test_cpu_free(self):
        m = make_machine()
        m.set_owner_load(0.25, 0.0, False)
        assert m.sample(0.0).cpu_free == pytest.approx(0.75)
