"""Equivalence suite: indexed Trader query vs the linear reference oracle.

:meth:`TradingService.query` answers through per-type pools, lazily built
equality-bucket indexes, compiled constraint matchers, and a heap-based
top-k.  :meth:`TradingService.query_linear` is the seed implementation —
interpreted evaluator, full scan, stable sort.  The two must return
*identical offers in identical rank order* for every constraint,
preference, and ``max_offers``; hypothesis drives randomized offer
populations (including missing, oddly-typed, and unhashable property
values) and randomized expression trees through both paths, interleaved
with modify/withdraw churn so index maintenance is exercised too.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.orb.trading import TradingService

# Finite value pools force hash-bucket collisions and the True/1/1.0
# equality unification the index must mirror.  ``tags`` is sometimes
# unhashable (a list) — such offers can never satisfy ``attr == literal``
# and must be skipped by the index, not crash it.
ATTR_VALUES = {
    "mips": [250, 500.0, 750.0, 1000.0, True],
    "os": ["linux", "solaris", "irix", 5],
    "sharing": [True, False, 0, 1],
    "cpu_free": [0.0, 0.25, 0.5, 1.0],
    "tags": [[1, 2], "x", 1],
}

ATOMS = [
    "mips == 500",
    "mips == true",
    "mips >= 500",
    "mips < 750",
    "500 <= mips",
    'os == "linux"',
    'os != "linux"',
    "sharing == true",
    "sharing == 1",
    "sharing",
    "cpu_free > 0.2",
    "cpu_free == 0.25",
    "tags == 1",
    "missing == 1",
    "missing >= 2",
]

PREFERENCES = [
    "",
    "mips",
    "cpu_free * mips",
    "mips / cpu_free",       # division by zero -> UNDEFINED -> ranked last
    "os",                    # string score -> ranked last
    "missing",               # UNDEFINED score -> ranked last
    "mips - cpu_free",
    "cpu_free > 0.2",        # boolean score
]

properties = st.fixed_dictionaries(
    {}, optional={k: st.sampled_from(v) for k, v in ATTR_VALUES.items()}
)

constraints = st.one_of(
    st.just(""),
    st.recursive(
        st.sampled_from(ATOMS),
        lambda c: st.one_of(
            st.tuples(c, c).map(lambda t: f"({t[0]}) && ({t[1]})"),
            st.tuples(c, c).map(lambda t: f"({t[0]}) || ({t[1]})"),
            c.map(lambda s: f"!({s})"),
        ),
        max_leaves=4,
    ),
)


@settings(max_examples=150, deadline=None, derandomize=True)
@given(
    offers=st.lists(properties, max_size=12),
    constraint=constraints,
    preference=st.sampled_from(PREFERENCES),
    max_offers=st.sampled_from([-1, 0, 1, 3, 10]),
    churn=st.lists(st.tuples(st.integers(0, 11), properties), max_size=4),
)
def test_query_matches_linear_oracle(
    offers, constraint, preference, max_offers, churn
):
    svc = TradingService()
    ids = [svc.export("node", f"ior:{i}", props)
           for i, props in enumerate(offers)]

    def check():
        args = ("node", constraint, preference, max_offers)
        try:
            expected = svc.query_linear(*args)
        except TypeError:
            # Unorderable operands (list >= float) raise in the
            # interpreter; the compiled path must raise identically.
            with pytest.raises(TypeError):
                svc.query(*args)
            return
        assert svc.query(*args) == expected

    check()   # first query builds any equality-bucket indexes lazily
    for slot, props in churn:
        if not ids:
            break
        offer_id = ids[slot % len(ids)]
        if slot % 3 == 0:
            svc.withdraw(offer_id)
            ids.remove(offer_id)
        else:
            svc.modify(offer_id, props)
    check()   # second query exercises index maintenance after churn


def test_max_offers_zero_is_explicit_empty():
    """``max_offers == 0`` is a contract: always [], never a scan."""
    svc = TradingService()
    svc.export("node", "ior:a", {"mips": 1000.0})
    assert svc.query("node", max_offers=0) == []
    assert svc.query("node", "mips >= 0", "mips", max_offers=0) == []
    assert svc.query("nothing-registered", max_offers=0) == []


def test_rank_order_ties_keep_export_order():
    svc = TradingService()
    for i in range(6):
        svc.export("node", f"ior:{i}", {"mips": 100.0, "n": i})
    result = svc.query("node", "mips == 100", "mips", max_offers=4)
    assert [o["properties"]["n"] for o in result] == [0, 1, 2, 3]
    assert result == svc.query_linear("node", "mips == 100", "mips", 4)


def test_index_survives_unhashable_and_missing_values():
    svc = TradingService()
    a = svc.export("node", "ior:a", {"tags": [1, 2], "mips": 500.0})
    b = svc.export("node", "ior:b", {"mips": 500.0})
    c = svc.export("node", "ior:c", {"tags": 1, "mips": 250.0})
    assert [o["offer_id"] for o in svc.query("node", "tags == 1")] == [c]
    svc.modify(c, {"tags": [3], "mips": 250.0})
    assert svc.query("node", "tags == 1") == []
    svc.withdraw(a)
    assert [o["offer_id"] for o in svc.query("node", "mips == 500")] == [b]
