"""Unit tests for the grid-task sandbox."""

import pytest

from repro.security.sandbox import Sandbox, SandboxPolicy, SandboxViolation


class TestBasicExecution:
    def test_computes_result(self):
        result = Sandbox().run("result = sum(range(10))")
        assert result == 45

    def test_inputs_exposed(self):
        result = Sandbox().run("result = x * y", inputs={"x": 6, "y": 7})
        assert result == 42

    def test_missing_result_rejected(self):
        with pytest.raises(SandboxViolation):
            Sandbox().run("x = 1")

    def test_syntax_error(self):
        with pytest.raises(SandboxViolation):
            Sandbox().run("result = ((")

    def test_allowed_import(self):
        result = Sandbox().run("import math\nresult = math.sqrt(16)")
        assert result == 4.0


class TestCapabilityDenials:
    def test_open_denied(self):
        sandbox = Sandbox()
        with pytest.raises(SandboxViolation):
            sandbox.run("result = open('/etc/passwd').read()")
        assert any("open" in entry for entry in sandbox.audit_log)

    def test_disallowed_import_denied(self):
        sandbox = Sandbox()
        with pytest.raises(SandboxViolation):
            sandbox.run("import os\nresult = os.getcwd()")
        assert any("import os" in entry for entry in sandbox.audit_log)

    def test_exec_and_eval_denied(self):
        with pytest.raises(SandboxViolation):
            Sandbox().run("result = eval('1+1')")
        with pytest.raises(SandboxViolation):
            Sandbox().run("exec('x = 1')\nresult = 1")

    def test_print_denied_by_default(self):
        with pytest.raises(SandboxViolation):
            Sandbox().run("print('hi')\nresult = 1")

    def test_print_allowed_by_policy(self, capsys):
        sandbox = Sandbox(SandboxPolicy(allow_print=True))
        assert sandbox.run("print('hi')\nresult = 1") == 1
        assert capsys.readouterr().out == "hi\n"

    def test_custom_import_whitelist(self):
        sandbox = Sandbox(SandboxPolicy(allowed_imports=("json",)))
        result = sandbox.run("import json\nresult = json.dumps([1])")
        assert result == "[1]"
        with pytest.raises(SandboxViolation):
            sandbox.run("import math\nresult = 1")

    def test_dunder_builtins_open_is_the_denier(self):
        # Even via __builtins__, 'open' resolves to the denier function.
        with pytest.raises(SandboxViolation):
            Sandbox().run("result = __builtins__['open']('/etc/passwd')")


class TestResourceBudget:
    def test_step_budget_enforced(self):
        sandbox = Sandbox(SandboxPolicy(max_steps=100))
        with pytest.raises(SandboxViolation) as excinfo:
            sandbox.run("result = 0\nwhile True:\n    result += 1")
        assert "budget" in str(excinfo.value)

    def test_budget_allows_normal_work(self):
        sandbox = Sandbox(SandboxPolicy(max_steps=100_000))
        assert sandbox.run(
            "result = 0\nfor i in range(1000):\n    result += i"
        ) == sum(range(1000))

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SandboxPolicy(max_steps=0)

    def test_trace_restored_after_run(self):
        import sys
        before = sys.gettrace()
        Sandbox().run("result = 1")
        assert sys.gettrace() is before


class TestAuditLog:
    def test_allowed_imports_logged(self):
        sandbox = Sandbox()
        sandbox.run("import math\nresult = 1")
        assert any("allowed: import math" in e for e in sandbox.audit_log)

    def test_denials_logged(self):
        sandbox = Sandbox()
        with pytest.raises(SandboxViolation):
            sandbox.run("result = open('x')")
        assert sandbox.audit_log == ["denied: open"]
