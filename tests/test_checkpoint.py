"""Unit tests for portable checkpointing and rollback recovery."""

import os

import pytest

from repro.checkpoint.recovery import RecoveryManager
from repro.checkpoint.serializer import (
    CheckpointCorrupted,
    deserialize,
    serialize,
)
from repro.checkpoint.store import FileCheckpointStore, MemoryCheckpointStore


class TestSerializer:
    @pytest.mark.parametrize("state", [
        {},
        {"progress_mips": 1234.5},
        {"superstep": 7, "registers": {"x": [1, 2, 3]}, "blob": b"\x00\xff"},
        {"nested": {"deep": [{"a": None}, True, 2.5]}},
    ])
    def test_roundtrip(self, state):
        assert deserialize(serialize(state)) == state

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            serialize([1, 2, 3])

    def test_unserializable_state_rejected(self):
        with pytest.raises(TypeError):
            serialize({"fn": lambda: None})

    def test_truncated_data(self):
        data = serialize({"x": 1})
        with pytest.raises(CheckpointCorrupted):
            deserialize(data[:10])

    def test_bit_flip_detected(self):
        data = bytearray(serialize({"x": 1}))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(CheckpointCorrupted):
            deserialize(bytes(data))

    def test_bad_magic(self):
        data = bytearray(serialize({"x": 1}))
        data[0:4] = b"NOPE"
        with pytest.raises(CheckpointCorrupted):
            deserialize(bytes(data))

    def test_format_is_deterministic(self):
        # Byte-identical output enables cross-node content comparison.
        assert serialize({"a": 1, "b": 2.0}) == serialize({"a": 1, "b": 2.0})

    # -- corruption matrix: every way the envelope can lie ------------------

    def test_truncated_header(self):
        data = serialize({"x": 1})
        for cut in range(12):   # shorter than magic+version+length
            with pytest.raises(CheckpointCorrupted):
                deserialize(data[:cut])

    def test_truncated_payload(self):
        data = serialize({"x": 1, "y": [1, 2, 3]})
        with pytest.raises(CheckpointCorrupted):
            deserialize(data[:-6])   # loses CRC tail and payload bytes

    def test_declared_length_mismatch(self):
        import struct
        import zlib
        data = bytearray(serialize({"x": 1}))
        # Rewrite the length field to claim one byte fewer, then re-seal
        # the CRC so only the length lie can trip validation.
        magic, version, length = struct.unpack_from("<4sHxxI", data)
        struct.pack_into("<I", data, 8, length - 1)
        body = bytes(data[:-4])
        data[-4:] = struct.pack("<I", zlib.crc32(body))
        with pytest.raises(CheckpointCorrupted) as excinfo:
            deserialize(bytes(data))
        assert "declared" in str(excinfo.value)

    def test_appended_bytes_after_crc(self):
        data = serialize({"x": 1})
        with pytest.raises(CheckpointCorrupted):
            deserialize(data + b"\x00")
        with pytest.raises(CheckpointCorrupted):
            deserialize(data + b"trailing garbage")

    def test_appended_bytes_with_resealed_crc(self):
        # An attacker recomputing the CRC over body+garbage still fails:
        # the declared length no longer matches the actual payload span.
        import struct
        import zlib
        data = serialize({"x": 1})
        body = data[:-4] + b"\xde\xad"
        forged = body + struct.pack("<I", zlib.crc32(body))
        with pytest.raises(CheckpointCorrupted):
            deserialize(forged)

    def test_payload_with_undecoded_tail_rejected(self):
        # Grow the declared payload to cover extra in-payload bytes and
        # re-seal the CRC: the VARIANT decode must consume every byte.
        import struct
        import zlib
        data = serialize({"x": 1})
        payload = data[12:-4] + b"\x00\x00\x00\x00"
        header = struct.pack("<4sHxxI", b"IGCP", 1, len(payload))
        body = header + payload
        forged = body + struct.pack("<I", zlib.crc32(body))
        with pytest.raises(CheckpointCorrupted) as excinfo:
            deserialize(forged)
        assert "undecoded" in str(excinfo.value)


class TestMemoryStore:
    def test_save_and_load(self):
        store = MemoryCheckpointStore()
        store.save("t1", {"progress_mips": 10.0}, now=5.0)
        record = store.load_latest("t1")
        assert record.sequence == 1
        assert record.time == 5.0
        assert record.state()["progress_mips"] == 10.0

    def test_latest_wins(self):
        store = MemoryCheckpointStore()
        store.save("t1", {"p": 1}, 1.0)
        store.save("t1", {"p": 2}, 2.0)
        assert store.load_latest("t1").state()["p"] == 2
        assert store.load_latest("t1").sequence == 2

    def test_history_limit(self):
        store = MemoryCheckpointStore(keep_history=2)
        for i in range(5):
            store.save("t1", {"p": i}, float(i))
        assert len(store._records["t1"]) == 2

    def test_missing_task(self):
        assert MemoryCheckpointStore().load_latest("ghost") is None

    def test_discard(self):
        store = MemoryCheckpointStore()
        store.save("t1", {"p": 1}, 1.0)
        store.discard("t1")
        assert store.load_latest("t1") is None
        store.discard("t1")   # idempotent

    def test_accounting(self):
        store = MemoryCheckpointStore()
        store.save("t1", {"p": 1}, 1.0)
        store.save("t2", {"p": 2}, 1.0)
        assert store.saves == 2
        assert store.bytes_written > 0
        assert store.task_ids == ["t1", "t2"]


class TestFileStore:
    def test_save_and_load(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        store.save("job0.1", {"progress_mips": 42.0}, now=7.0)
        record = store.load_latest("job0.1")
        assert record.task_id == "job0.1"
        assert record.time == 7.0
        assert record.state()["progress_mips"] == 42.0

    def test_survives_new_store_instance(self, tmp_path):
        FileCheckpointStore(str(tmp_path)).save("t1", {"p": 9}, 1.0)
        fresh = FileCheckpointStore(str(tmp_path))
        assert fresh.load_latest("t1").state()["p"] == 9

    def test_discard_removes_file(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        store.save("t1", {"p": 1}, 1.0)
        store.discard("t1")
        assert store.load_latest("t1") is None
        assert store.task_ids == []

    def test_task_ids(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        store.save("a", {}, 0.0)
        store.save("b", {}, 0.0)
        assert store.task_ids == ["a", "b"]

    def test_corrupted_file_detected(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        store.save("t1", {"p": 1}, 1.0)
        path = store._path("t1")
        with open(path, "r+b") as f:
            f.seek(12)
            f.write(b"\xff\xff\xff")
        with pytest.raises(CheckpointCorrupted):
            store.load_latest("t1")

    def test_unsafe_task_ids_sanitised(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        store.save("../evil/path", {"p": 1}, 1.0)
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert files[0].parent == tmp_path

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        for i in range(3):
            store.save("t1", {"p": i}, float(i))
        assert not [p for p in tmp_path.iterdir()
                    if p.name.endswith(".tmp")]

    def test_skip_unchanged_write(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path))
        first = store.save("t1", {"p": 1}, 1.0)
        mtime = os.path.getmtime(store._path("t1"))
        again = store.save("t1", {"p": 1}, 2.0)
        # Identical state digest: no new file write, previous record back.
        assert store.skipped_saves == 1
        assert store.saves == 1
        assert again.sequence == first.sequence
        assert os.path.getmtime(store._path("t1")) == mtime
        changed = store.save("t1", {"p": 2}, 3.0)
        assert changed.sequence == first.sequence + 1
        assert store.load_latest("t1").state()["p"] == 2

    def test_skip_unchanged_can_be_disabled(self, tmp_path):
        store = FileCheckpointStore(str(tmp_path), skip_unchanged=False)
        store.save("t1", {"p": 1}, 1.0)
        repeat = store.save("t1", {"p": 1}, 2.0)
        assert store.skipped_saves == 0
        assert repeat.sequence == 2

    def test_skip_digest_cache_is_per_instance(self, tmp_path):
        # A fresh store has no digest cache: its first save of the same
        # state must still be written, not spuriously "skipped".
        FileCheckpointStore(str(tmp_path)).save("t1", {"p": 1}, 1.0)
        fresh = FileCheckpointStore(str(tmp_path))
        record = fresh.save("t1", {"p": 1}, 2.0)
        assert fresh.skipped_saves == 0
        assert record.time == 2.0
        assert fresh.load_latest("t1").state()["p"] == 1


class TestRecoveryManager:
    def test_no_checkpoints_means_scratch(self):
        recovery = RecoveryManager("j", ["a", "b"])
        assert recovery.consistent_superstep() is None
        assert recovery.rollback_point() == 0

    def test_consistent_cut(self):
        recovery = RecoveryManager("j", ["a", "b"])
        recovery.record_checkpoint("a", 2)
        recovery.record_checkpoint("b", 2)
        recovery.record_checkpoint("a", 4)
        # b never saved superstep 4: the cut stays at 2.
        assert recovery.consistent_superstep() == 2
        assert recovery.rollback_point() == 2

    def test_cut_advances_when_all_catch_up(self):
        recovery = RecoveryManager("j", ["a", "b"])
        for superstep in (2, 4):
            recovery.record_checkpoint("a", superstep)
            recovery.record_checkpoint("b", superstep)
        assert recovery.consistent_superstep() == 4

    def test_one_empty_member_blocks(self):
        recovery = RecoveryManager("j", ["a", "b"])
        recovery.record_checkpoint("a", 2)
        assert recovery.consistent_superstep() is None

    def test_unknown_member(self):
        recovery = RecoveryManager("j", ["a"])
        with pytest.raises(KeyError):
            recovery.record_checkpoint("ghost", 1)

    def test_superstep_must_increase(self):
        recovery = RecoveryManager("j", ["a"])
        recovery.record_checkpoint("a", 3)
        with pytest.raises(ValueError):
            recovery.record_checkpoint("a", 3)

    def test_prune(self):
        recovery = RecoveryManager("j", ["a", "b"])
        for superstep in (2, 4, 6):
            recovery.record_checkpoint("a", superstep)
            recovery.record_checkpoint("b", superstep)
        recovery.prune_before(4)
        assert recovery.consistent_superstep() == 6

    def test_needs_members(self):
        with pytest.raises(ValueError):
            RecoveryManager("j", [])

    def test_duplicate_record_rejected_without_corrupting_state(self):
        recovery = RecoveryManager("j", ["a", "b"])
        recovery.record_checkpoint("a", 2)
        recovery.record_checkpoint("b", 2)
        # A duplicate (re-delivered notification) is rejected...
        with pytest.raises(ValueError):
            recovery.record_checkpoint("a", 2)
        # ...and the consistent cut is unaffected by the attempt.
        assert recovery.consistent_superstep() == 2
        recovery.record_checkpoint("a", 4)
        recovery.record_checkpoint("b", 4)
        assert recovery.consistent_superstep() == 4

    def test_regressing_superstep_rejected(self):
        recovery = RecoveryManager("j", ["a"])
        recovery.record_checkpoint("a", 4)
        with pytest.raises(ValueError):
            recovery.record_checkpoint("a", 2)

    def test_stragglers(self):
        recovery = RecoveryManager("j", ["a", "b", "c"])
        # Nobody has checkpointed: nobody is behind anybody.
        assert recovery.stragglers() == []
        recovery.record_checkpoint("a", 2)
        recovery.record_checkpoint("b", 2)
        # c never saved anything; it (alone) holds the cut back.
        assert recovery.stragglers() == ["c"]
        recovery.record_checkpoint("a", 4)
        assert recovery.stragglers() == ["b", "c"]
        recovery.record_checkpoint("b", 4)
        recovery.record_checkpoint("c", 4)
        assert recovery.stragglers() == []
        assert recovery.consistent_superstep() == 4

    def test_prune_around_consistent_cut(self):
        recovery = RecoveryManager("j", ["a", "b"])
        for superstep in (2, 4, 6):
            recovery.record_checkpoint("a", superstep)
        for superstep in (2, 4):
            recovery.record_checkpoint("b", superstep)
        cut = recovery.consistent_superstep()
        assert cut == 4
        # Pruning strictly below the cut must not move it...
        recovery.prune_before(cut)
        assert recovery.consistent_superstep() == 4
        assert recovery.rollback_point() == 4
        # ...while pruning past it drops the only common superstep: the
        # job can then only restart from scratch.
        recovery.prune_before(cut + 1)
        assert recovery.consistent_superstep() is None
        assert recovery.rollback_point() == 0

    def test_rollback_point_counts_rollbacks(self):
        recovery = RecoveryManager("j", ["a"])
        recovery.record_checkpoint("a", 2)
        assert recovery.rollback_point() == 2
        assert recovery.rollback_point() == 2
        assert recovery.rollbacks == 2
