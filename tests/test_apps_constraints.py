"""Unit tests for the constraint/preference expression language."""

import pytest

from repro.apps.constraints import (
    Constraint,
    ConstraintError,
    Preference,
    UNDEFINED,
    evaluate,
)


class TestBasics:
    def test_numeric_comparison(self):
        assert evaluate("mips >= 500", {"mips": 800})
        assert not evaluate("mips >= 500", {"mips": 200})

    @pytest.mark.parametrize("expr,expected", [
        ("1 < 2", True),
        ("2 < 1", False),
        ("2 <= 2", True),
        ("3 > 2", True),
        ("2 >= 3", False),
        ("2 == 2", True),
        ("2 != 2", False),
    ])
    def test_all_comparison_operators(self, expr, expected):
        assert evaluate(expr, {}) is expected

    def test_string_equality(self):
        assert evaluate("os == 'linux'", {"os": "linux"})
        assert not evaluate('os == "windows"', {"os": "linux"})

    def test_boolean_literals(self):
        assert evaluate("true", {})
        assert not evaluate("false", {})

    def test_empty_expression_matches_everything(self):
        assert evaluate("", {"anything": 1})
        assert evaluate("   ", {})


class TestLogical:
    def test_and(self):
        props = {"mips": 800, "ram_mb": 32}
        assert evaluate("mips >= 500 && ram_mb >= 16", props)
        assert not evaluate("mips >= 500 && ram_mb >= 64", props)

    def test_or(self):
        assert evaluate("a == 1 || b == 2", {"a": 0, "b": 2})

    def test_not(self):
        assert evaluate("!(a == 1)", {"a": 2})
        assert not evaluate("not (a == 1)", {"a": 1})

    def test_keyword_aliases(self):
        assert evaluate("a == 1 and b == 2", {"a": 1, "b": 2})
        assert evaluate("a == 1 or b == 9", {"a": 1, "b": 2})

    def test_precedence_and_over_or(self):
        # a || b && c must parse as a || (b && c)
        assert evaluate("true || false && false", {})


class TestArithmetic:
    def test_addition_in_comparison(self):
        assert evaluate("free_mb + reserved_mb >= 100", {
            "free_mb": 60, "reserved_mb": 50,
        })

    def test_multiplication_precedence(self):
        assert evaluate("2 + 3 * 4 == 14", {})

    def test_parentheses(self):
        assert evaluate("(2 + 3) * 4 == 20", {})

    def test_unary_minus(self):
        assert evaluate("-x < 0", {"x": 5})

    def test_division_by_zero_is_undefined(self):
        assert not evaluate("1 / 0 > 0", {})
        assert not evaluate("1 / 0 < 1", {})


class TestUndefinedSemantics:
    def test_missing_property_comparison_is_false(self):
        assert not evaluate("mips >= 500", {})
        assert not evaluate("mips < 500", {})

    def test_missing_property_inequality_is_false_too(self):
        # ClassAd semantics: UNDEFINED != x is also false.
        assert not evaluate("os != 'linux'", {})

    def test_undefined_propagates_through_arithmetic(self):
        assert not evaluate("mips * 2 >= 100", {})

    def test_or_can_rescue_undefined(self):
        assert evaluate("mips >= 500 || ram_mb >= 16", {"ram_mb": 32})

    def test_undefined_is_falsy(self):
        assert not UNDEFINED
        assert not evaluate("ghost", {})

    def test_mixed_type_comparison_not_equal(self):
        assert evaluate("os != 5", {"os": "linux"})
        assert not evaluate("os == 5", {"os": "linux"})


class TestErrors:
    @pytest.mark.parametrize("expr", [
        "mips >=", "&& a", "(a == 1", "a == 1)", "a @ b", "1 2",
    ])
    def test_syntax_errors(self, expr):
        with pytest.raises(ConstraintError):
            Constraint(expr)


class TestPreference:
    def test_numeric_score(self):
        assert Preference("mips").score({"mips": 1200}) == 1200.0

    def test_expression_score(self):
        pref = Preference("mips / 100 + ram_mb")
        assert pref.score({"mips": 500, "ram_mb": 64}) == pytest.approx(69.0)

    def test_undefined_ranks_below_everything(self):
        pref = Preference("mips")
        assert pref.score({}) == float("-inf")
        assert pref.score({"mips": 1}) > pref.score({})

    def test_boolean_preference(self):
        pref = Preference("os == 'linux'")
        assert pref.score({"os": "linux"}) == 1.0
        assert pref.score({"os": "windows"}) == 0.0

    def test_empty_preference_is_constant(self):
        pref = Preference("")
        assert pref.score({"mips": 1}) == pref.score({"mips": 1000})


class TestReuse:
    def test_constraint_reusable_across_property_sets(self):
        constraint = Constraint("mips >= 500")
        assert constraint.matches({"mips": 600})
        assert not constraint.matches({"mips": 400})

    def test_dotted_identifiers(self):
        assert evaluate("node.mips >= 500", {"node.mips": 900})
