"""Golden determinism test for the hot-path optimizations.

The event core, indexed trader, compiled constraints, and vectorized
usage grids are all required to preserve *bit-identical* deterministic
behaviour.  This test replays a mixed-profile scenario (three office
workers, a student lab, two night owls; three checkpointed jobs) and
compares a sha256 over every clock advance, plus job outcomes and GRM
protocol counters, against ``tests/data/golden_determinism.json`` —
captured from the unoptimized seed code.  Any reordering, extra event,
or dropped tick changes the digest.
"""

import hashlib
import json
import os

from repro import ApplicationSpec, Grid
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_determinism.json"
)


def run_golden_scenario():
    grid = Grid(seed=1234, policy="pattern_aware", lupa_enabled=True,
                lupa_min_history_days=2, update_interval=120.0,
                tick_interval=60.0)
    times = []
    real_advance = grid.loop.clock.advance_to

    def recording_advance(when):
        times.append(when)
        real_advance(when)

    grid.loop.clock.advance_to = recording_advance
    grid.add_cluster("c0")
    profiles = [OFFICE_WORKER] * 3 + [STUDENT_LAB, NIGHT_OWL, NIGHT_OWL]
    for i, profile in enumerate(profiles):
        grid.add_node("c0", f"n{i:02}", profile=profile, sharing=VACATE_POLICY)
    grid.run_for(3 * SECONDS_PER_DAY)
    job_ids = [
        grid.submit(ApplicationSpec(
            name=f"job{j}", work_mips=1.8e6,
            metadata={"checkpoint_interval_s": 900.0},
        ))
        for j in range(3)
    ]
    grid.run_for(12 * SECONDS_PER_HOUR)
    digest = hashlib.sha256(
        ",".join(f"{t:.9g}" for t in times).encode()
    ).hexdigest()
    grm = grid.clusters["c0"].grm
    return {
        "sequence_sha256": digest,
        "advance_calls": len(times),
        "events_fired": grid.loop.events_fired,
        "final_now": grid.loop.now,
        "jobs": [
            {
                "job_id": j,
                "state": grid.job(j).state.value,
                "completed_at": grid.job(j).completed_at,
                "progress": grid.job(j).progress_fraction(),
            }
            for j in job_ids
        ],
        "stats": {
            "updates_received": grm.stats.updates_received,
            "negotiation_rounds": grm.stats.negotiation_rounds,
            "placements": grm.stats.placements,
            "evictions_handled": grm.stats.evictions_handled,
            "completions": grm.stats.completions,
        },
    }


def test_golden_determinism():
    with open(GOLDEN_PATH) as f:
        golden = json.load(f)
    assert run_golden_scenario() == golden
