"""Equivalence suite: vectorized GUPA/policy paths vs the scalar oracles.

The vectorized prediction pipeline claims *bit-identical* results — the
optimized `idle_probability`, the batch `idle_probabilities`, and the
argsort-based policy orderings must reproduce the seed implementations
exactly (kept callable as ``*_scalar`` oracles).  These tests drive
randomized patterns, spans (sub-bin, bin-aligned, multi-day, negative),
and node churn through both paths and assert exact ``==`` equality.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.spec import ApplicationSpec
from repro.core.gupa import Gupa, UNKNOWN
from repro.core.scheduler import (
    FastestFirstPolicy,
    PatternAwarePolicy,
    ScheduleContext,
)
from repro.sim.clock import SECONDS_PER_DAY

#: Bin widths worth exercising: 1 bin/day up to 5-minute bins, all
#: dividing the 86400-second day evenly.
BIN_COUNTS = [1, 2, 3, 24, 48, 96, 288]

# Timestamps at millisecond resolution: denormal-magnitude negative
# starts make ``start % SECONDS_PER_DAY`` round to exactly 86400.0 and
# index out of range — identically in the seed scalar code and the
# vectorized path, so they carry no equivalence signal.
starts = st.one_of(
    st.floats(min_value=-2.0 * SECONDS_PER_DAY, max_value=9.0 * SECONDS_PER_DAY,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=7 * SECONDS_PER_DAY).map(float),
).map(lambda s: round(s, 3))

durations = st.one_of(
    st.floats(min_value=-3600.0, max_value=0.0,
              allow_nan=False, allow_infinity=False),      # nonpositive
    st.floats(min_value=1e-3, max_value=600.0,
              allow_nan=False, allow_infinity=False),      # sub-bin
    st.integers(min_value=1, max_value=96).map(
        lambda n: n * 900.0),                              # bin-aligned
    st.floats(min_value=SECONDS_PER_DAY, max_value=3.0 * SECONDS_PER_DAY,
              allow_nan=False, allow_infinity=False),      # multi-day
)


@st.composite
def patterns(draw):
    # Element-wise float draws are prohibitively slow for 7 x 288 grids;
    # draw a numpy seed instead and synthesize the weekly profile, with
    # a slice snapped to exact 0.0/1.0 to exercise saturated bins.
    bins_per_day = draw(st.sampled_from(BIN_COUNTS))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    weekly = rng.random((7, bins_per_day))
    if draw(st.booleans()):
        weekly[weekly < 0.2] = 0.0
        weekly[weekly > 0.8] = 1.0
    return {"bins_per_day": bins_per_day, "weekly": weekly.tolist()}


@st.composite
def gupas(draw, min_nodes=1, max_nodes=6):
    gupa = Gupa()
    count = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    for i in range(count):
        gupa.upload_pattern(f"n{i}", draw(patterns()))
    return gupa


class TestScalarEquivalence:
    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(pattern=patterns(), when=starts)
    def test_busy_probability_matches_oracle(self, pattern, when):
        gupa = Gupa()
        gupa.upload_pattern("n0", pattern)
        assert gupa.busy_probability("n0", when) \
            == gupa.busy_probability_scalar("n0", when)

    @settings(max_examples=300, deadline=None, derandomize=True)
    @given(pattern=patterns(), start=starts, duration=durations)
    def test_idle_probability_matches_oracle(self, pattern, start, duration):
        gupa = Gupa()
        gupa.upload_pattern("n0", pattern)
        fast = gupa.idle_probability("n0", start, duration)
        oracle = gupa.idle_probability_scalar("n0", start, duration)
        assert fast == oracle   # exact: same factors, same order


class TestBatchEquivalence:
    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(gupa=gupas(), start=starts, duration=durations)
    def test_scalar_duration_batch(self, gupa, start, duration):
        nodes = gupa.known_nodes + ["ghost"]
        batch = gupa.idle_probabilities(nodes, start, duration)
        for node, value in zip(nodes, batch):
            assert value == gupa.idle_probability_scalar(node, start, duration)

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(
        gupa=gupas(),
        start=starts,
        data=st.data(),
    )
    def test_per_node_duration_batch(self, gupa, start, data):
        nodes = gupa.known_nodes
        per_node = np.array(
            [data.draw(durations, label=f"duration[{i}]")
             for i in range(len(nodes))]
        )
        batch = gupa.idle_probabilities(nodes, start, per_node)
        for node, duration, value in zip(nodes, per_node, batch):
            assert value == gupa.idle_probability_scalar(
                node, start, float(duration)
            )

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        gupa=gupas(min_nodes=3),
        replacement=patterns(),
        start=starts,
        duration=durations,
    )
    def test_churn_keeps_equivalence(self, gupa, replacement, start, duration):
        # Forget one node, re-upload another with a fresh pattern: the
        # lazily rebuilt stacks must still match the oracle per node.
        nodes = gupa.known_nodes
        gupa.forget(nodes[0])
        gupa.upload_pattern(nodes[1], replacement)
        queried = nodes   # includes the forgotten node -> UNKNOWN
        batch = gupa.idle_probabilities(queried, start, duration)
        assert batch[0] == UNKNOWN
        for node, value in zip(queried, batch):
            assert value == gupa.idle_probability_scalar(node, start, duration)

    def test_duration_shape_rejected(self):
        gupa = Gupa()
        gupa.upload_pattern(
            "n0", {"bins_per_day": 24, "weekly": [[0.5] * 24] * 7}
        )
        try:
            gupa.idle_probabilities(["n0"], 0.0, np.zeros(3))
        except ValueError:
            pass
        else:
            raise AssertionError("mismatched duration shape must raise")

    def test_empty_nodes(self):
        gupa = Gupa()
        assert gupa.idle_probabilities([], 0.0, 100.0).shape == (0,)


def make_offer(node, mips, cpu_free):
    return {
        "node": node, "mips": mips, "cpu_free": cpu_free,
        "mem_free_mb": 512.0, "sharing": True,
    }


@st.composite
def offer_lists(draw, max_offers=12):
    count = draw(st.integers(min_value=0, max_value=max_offers))
    offers = []
    for i in range(count):
        mips = draw(st.sampled_from([0.0, 500.0, 1000.0, 2000.0]))
        cpu_free = draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
        offers.append(make_offer(f"n{i}", mips, cpu_free))
    return offers


class TestPolicyOrderEquivalence:
    def make_ctx(self, gupa, work=1e6, now=0.0):
        return ScheduleContext(
            spec=ApplicationSpec(name="x", work_mips=work),
            remaining_mips=work,
            now=now,
            gupa=gupa,
        )

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(offers=offer_lists(), data=st.data())
    def test_pattern_aware_identical_order(self, offers, data):
        # Give a pattern to some offers only, so UNKNOWN fallbacks and
        # ties (equal speeds) are exercised alongside scored nodes.
        gupa = Gupa()
        for offer in offers:
            if data.draw(st.booleans(), label=f"pattern for {offer['node']}"):
                gupa.upload_pattern(
                    offer["node"], data.draw(patterns(), label="pattern")
                )
        now = data.draw(starts, label="now")
        policy = PatternAwarePolicy()
        ctx = self.make_ctx(gupa, now=now)
        vectorized = [o["node"] for o in policy.order(offers, ctx)]
        oracle = [o["node"] for o in policy.order_scalar(offers, ctx)]
        assert vectorized == oracle

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(offers=offer_lists())
    def test_fastest_first_identical_order(self, offers):
        policy = FastestFirstPolicy()
        ctx = self.make_ctx(gupa=None)
        vectorized = [o["node"] for o in policy.order(offers, ctx)]
        oracle = [o["node"] for o in policy.order_scalar(offers, ctx)]
        assert vectorized == oracle

    def test_no_gupa_matches_oracle(self):
        offers = [make_offer(f"n{i}", 1000.0, 1.0) for i in range(5)]
        policy = PatternAwarePolicy()
        ctx = self.make_ctx(gupa=None)
        assert [o["node"] for o in policy.order(offers, ctx)] \
            == [o["node"] for o in policy.order_scalar(offers, ctx)]
