"""Soak test: a week of mixed operation with global invariants checked.

Runs one busy, heterogeneous cluster for a simulated week — volatile
owners, evictions, BSP gangs, payload tasks, a mid-week node departure
and arrival — asserting system-wide invariants at every probe point.
This is the "nothing leaks, nothing goes negative, accounting adds up"
test the unit suites cannot express.
"""

import pytest

from repro import ApplicationSpec, Grid, JobState, TaskState
from repro.apps.workloads import mixed_campaign, steady_stream
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB

PROBE_EVERY = 6 * SECONDS_PER_HOUR
DAYS = 7


def check_invariants(grid):
    handle = grid.clusters["c0"]
    grm = handle.grm
    # 1. Trader offers correspond exactly to alive registered nodes.
    offer_nodes = {
        o["properties"]["node"] for o in grm.trader.query("node")
    }
    alive_nodes = {n for n, r in grm._nodes.items() if r.alive}
    assert offer_nodes == alive_nodes
    # 2. Machine accounting: every node's grid allocations within caps.
    for name, node in handle.nodes.items():
        machine = node.workstation.machine
        assert 0.0 <= machine.grid_cpu <= 1.0 + 1e-9
        assert machine.grid_mem_mb >= 0.0
        assert machine.grid_mem_mb <= machine.spec.ram_mb + 1e-6
        # LRM ledger and machine agree on who holds resources.
        assert set(machine.grid_task_ids) == {
            r.task_id for r in node.lrm.ledger.active
        }
    # 3. Job/task bookkeeping is consistent.
    for job in grm.jobs:
        for task in job.tasks:
            assert 0.0 <= task.progress_mips <= task.work_mips + 1e-6
            assert task.wasted_mips >= 0.0
            assert task.evictions <= task.attempts
            if task.state is TaskState.RUNNING:
                assert task.node is not None
            if task.state is TaskState.COMPLETED:
                assert task.remaining_mips <= 1e-6
        if job.done:
            assert job.completed_at is not None
    # 4. A RUNNING task's node is registered and hosts it.
    for job in grm.jobs:
        for task in job.tasks:
            if task.state is not TaskState.RUNNING:
                continue
            node = handle.nodes.get(task.node)
            if node is not None:   # may have just been removed
                assert task.task_id in node.lrm.running_tasks or \
                    task.task_id in {
                        r.task_id for r in node.lrm.ledger.active
                    }


@pytest.mark.slow
def test_week_long_soak():
    grid = Grid(seed=99, policy="pattern_aware", lupa_enabled=True,
                update_interval=300.0, tick_interval=120.0,
                schedule_interval=120.0)
    grid.add_cluster("c0")
    profiles = (
        [OFFICE_WORKER] * 5 + [STUDENT_LAB] * 3 + [NIGHT_OWL] * 2
    )
    for i, profile in enumerate(profiles):
        grid.add_node("c0", f"ws{i:02}", profile=profile,
                      sharing=VACATE_POLICY)
    for i in range(2):
        grid.add_node("c0", f"ded{i}", dedicated=True)
    grid.run_for(600)

    # Workload: a steady stream plus one mixed campaign on day 2.
    stream = steady_stream(jobs_per_day=10, duration_days=DAYS - 1,
                           work_mips=4e6, seed=5, start=grid.loop.now)
    stream_ids = stream.drive(grid.submit, grid.loop)
    campaign = mixed_campaign(
        sequential_jobs=4, bsp_jobs=1, bsp_tasks=4, work_mips=2e6,
        submit_at=grid.loop.now + 2 * SECONDS_PER_DAY,
    )
    campaign_ids = campaign.drive(grid.submit, grid.loop)
    # A payload job too.
    grid.loop.schedule_at(
        grid.loop.now + SECONDS_PER_DAY,
        lambda: grid.submit(ApplicationSpec(
            name="payload", work_mips=1e6,
            metadata={"payload": "result = sum(range(100))"},
        )),
    )

    removed = False
    added = False
    end = grid.loop.now + DAYS * SECONDS_PER_DAY
    while grid.loop.now < end:
        grid.run_for(PROBE_EVERY)
        check_invariants(grid)
        if not removed and grid.loop.now > 3 * SECONDS_PER_DAY:
            grid.remove_node("c0", "ws00")
            removed = True
        if removed and not added and grid.loop.now > 4 * SECONDS_PER_DAY:
            grid.add_node("c0", "late-joiner", dedicated=True)
            added = True

    # Let the tail drain, then final accounting.
    grid.run_for(SECONDS_PER_DAY)
    check_invariants(grid)
    grm = grid.clusters["c0"].grm
    all_jobs = grm.jobs
    finished = [j for j in all_jobs if j.state is JobState.COMPLETED]
    # The pool comfortably out-supplies this workload: essentially
    # everything submitted during the week must have completed.
    assert len(finished) >= 0.9 * len(all_jobs)
    # The system did real opportunistic work: evictions happened and
    # were recovered from.
    assert grm.stats.evictions_handled > 0
    assert grm.stats.completions >= len(finished)
    # The payload job delivered its result.
    payload_jobs = [j for j in all_jobs if j.spec.name == "payload"]
    assert payload_jobs and payload_jobs[0].tasks[0].result == 4950
