"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInformationCommands:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("office_worker", "night_owl", "erratic"):
            assert name in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("first_fit", "pattern_aware", "random"):
            assert name in out


class TestDemo:
    def test_demo_runs_to_completion(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Job state: completed" in out
        assert "ORB traffic" in out


class TestSimulate:
    def test_small_simulation(self, capsys):
        code = main([
            "simulate", "--nodes", "3", "--jobs", "2",
            "--train-days", "0", "--work-hours", "0.5",
            "--policy", "first_fit", "--horizon-days", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs completed" in out
        assert "2/2" in out

    def test_dedicated_nodes_flag(self, capsys):
        code = main([
            "simulate", "--nodes", "0", "--dedicated", "2", "--jobs", "1",
            "--train-days", "0", "--work-hours", "0.2",
            "--policy", "first_fit", "--horizon-days", "1",
        ])
        assert code == 0
        assert "1/1" in capsys.readouterr().out

    def test_report_prints_saved_tables(self, capsys, tmp_path):
        (tmp_path / "e1.txt").write_text("E1 table\nrow\n")
        (tmp_path / "e2.txt").write_text("E2 table\nrow\n")
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E1 table" in out and "E2 table" in out
        assert "2 experiment tables" in out

    def test_report_missing_dir(self, capsys, tmp_path):
        assert main(
            ["report", "--results-dir", str(tmp_path / "nope")]
        ) == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "clairvoyant"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
