"""Tests for the cluster monitor and owner-trace record/replay."""

import random

import pytest

from repro import ApplicationSpec, Grid
from repro.core.lrm import Lrm
from repro.core.monitor import ClusterMonitor
from repro.core.ncc import NodeControlCenter
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.trace import (
    TraceEvent,
    TraceRecorder,
    TraceWorkstation,
    dump_trace,
    parse_trace,
)
from repro.sim.usage import OFFICE_WORKER
from repro.sim.workstation import Workstation


class TestClusterMonitor:
    def make_monitored_grid(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(3):
            grid.add_node("c0", f"d{i}", dedicated=True)
        monitor = ClusterMonitor(
            grid.loop, grid.clusters["c0"].grm, period=300.0
        )
        grid.run_for(600)
        return grid, monitor

    def test_snapshots_accumulate(self):
        grid, monitor = self.make_monitored_grid()
        grid.run_for(SECONDS_PER_HOUR)
        assert len(monitor.snapshots) >= 12
        latest = monitor.latest()
        assert latest.nodes == 3
        assert latest.sharing_nodes == 3

    def test_grid_tasks_visible(self):
        grid, monitor = self.make_monitored_grid()
        grid.submit(ApplicationSpec(name="t", tasks=2, work_mips=1e8))
        grid.run_for(SECONDS_PER_HOUR)
        assert monitor.latest().grid_tasks == 2
        assert monitor.latest().grid_utilisation > 0

    def test_pending_tasks_visible(self):
        grid, monitor = self.make_monitored_grid()
        from repro.apps.spec import ResourceRequirements
        grid.submit(ApplicationSpec(
            name="stuck",
            requirements=ResourceRequirements(min_mips=1e9),
        ))
        grid.run_for(SECONDS_PER_HOUR)
        assert monitor.latest().pending_tasks == 1

    def test_series_and_mean(self):
        grid, monitor = self.make_monitored_grid()
        grid.run_for(SECONDS_PER_HOUR)
        series = monitor.series("nodes")
        assert all(v == 3 for _, v in series)
        assert monitor.mean("nodes") == 3.0

    def test_sparkline(self):
        grid, monitor = self.make_monitored_grid()
        grid.run_for(SECONDS_PER_HOUR)
        line = monitor.sparkline("sharing_nodes", width=20)
        assert 0 < len(line) <= 20

    def test_stop(self):
        grid, monitor = self.make_monitored_grid()
        monitor.stop()
        count = len(monitor.snapshots)
        grid.run_for(SECONDS_PER_HOUR)
        assert len(monitor.snapshots) == count

    def test_bounded_history(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        monitor = ClusterMonitor(
            grid.loop, grid.clusters["c0"].grm, period=60.0, keep=10
        )
        grid.run_for(SECONDS_PER_HOUR)
        assert len(monitor.snapshots) == 10

    def test_validation(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        with pytest.raises(ValueError):
            ClusterMonitor(grid.loop, grid.clusters["c0"].grm, period=0)
        with pytest.raises(ValueError):
            ClusterMonitor(grid.loop, grid.clusters["c0"].grm, keep=0)


class TestTraceFormat:
    def test_roundtrip(self):
        events = [
            TraceEvent(0.0, False, 0.0, 0.0),
            TraceEvent(100.0, True, 0.5, 64.0),
            TraceEvent(200.0, False, 0.0, 0.0),
        ]
        assert parse_trace(dump_trace(events)) == events

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0.0 0 0.0 0.0\n# mid\n10.0 1 0.3 32.0\n"
        assert len(parse_trace(text)) == 2

    def test_bad_field_count(self):
        with pytest.raises(ValueError):
            parse_trace("0.0 1 0.5\n")

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            parse_trace("10.0 0 0.0 0.0\n5.0 1 0.5 8.0\n")

    @pytest.mark.parametrize("line", [
        "-1.0 0 0.0 0.0", "0.0 0 1.5 0.0", "0.0 0 0.0 -4.0",
    ])
    def test_invalid_values(self, line):
        with pytest.raises(ValueError):
            parse_trace(line + "\n")


class TestTraceRecorder:
    def test_records_markov_workstation(self):
        loop = EventLoop()
        workstation = Workstation(
            loop, "ws", spec=MachineSpec(), profile=OFFICE_WORKER,
            rng=random.Random(5),
        )
        recorder = TraceRecorder(workstation, sample_interval=300.0)
        loop.run_until(2 * SECONDS_PER_DAY)
        assert recorder.events, "an office worker must show up in 2 days"
        # Events are deduplicated: consecutive states always differ.
        for a, b in zip(recorder.events, recorder.events[1:]):
            assert (a.present, a.cpu_fraction, a.mem_mb) != \
                (b.present, b.cpu_fraction, b.mem_mb)
        text = recorder.dump()
        assert parse_trace(text) == recorder.events


class TestTraceWorkstation:
    def simple_trace(self):
        return [
            TraceEvent(0.0, False, 0.0, 0.0),
            TraceEvent(1000.0, True, 0.6, 64.0),
            TraceEvent(2000.0, False, 0.0, 0.0),
        ]

    def test_replay_drives_machine(self):
        loop = EventLoop()
        ws = TraceWorkstation(loop, "replayed", self.simple_trace())
        assert not ws.owner_present
        loop.run_until(1500.0)
        assert ws.owner_present
        assert ws.machine.owner_cpu == pytest.approx(0.6)
        loop.run_until(2500.0)
        assert not ws.owner_present

    def test_transitions_fire_listeners(self):
        loop = EventLoop()
        ws = TraceWorkstation(loop, "replayed", self.simple_trace())
        transitions = []
        ws.on_owner_change(transitions.append)
        loop.run_until(3000.0)
        assert transitions == [True, False]

    def test_looping_trace_repeats(self):
        loop = EventLoop()
        ws = TraceWorkstation(
            loop, "replayed", self.simple_trace(), loop_trace=True
        )
        seen = []
        ws.on_owner_change(seen.append)
        loop.run_until(3 * 2001.0)
        assert seen.count(True) >= 3

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkstation(EventLoop(), "x", [])

    def test_lrm_runs_on_replayed_trace(self):
        # Recorded traces drive the real middleware identically.
        loop = EventLoop()
        ws = TraceWorkstation(loop, "replayed", self.simple_trace())
        from repro.core.ncc import VACATE_POLICY
        ncc = NodeControlCenter(loop.clock, VACATE_POLICY)
        lrm = Lrm(loop, ws, ncc)
        reply = lrm.request_reservation({
            "task_id": "t1", "cpu_fraction": 1.0, "mem_mb": 16.0,
            "disk_mb": 0.0, "lease_seconds": 600.0,
        })
        assert reply["accepted"]
        lrm.start_task({
            "task_id": "t1", "job_id": "j", "work_mips": 1e9,
            "initial_progress_mips": 0.0, "checkpoint_interval_s": 0.0,
            "payload": "",
        })
        loop.run_until(1500.0)   # the trace's owner arrives at t=1000
        assert lrm.evicted_count == 1


class TestMonitorBeforeFirstSample:
    """Every query must return a benign empty before sample() ever runs."""

    def fresh_monitor(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        # Long period: no periodic sample can sneak in during the test.
        monitor = ClusterMonitor(
            grid.loop, grid.clusters["c0"].grm, period=1e9
        )
        return grid, monitor

    def test_queries_return_benign_empties(self):
        _grid, monitor = self.fresh_monitor()
        assert monitor.snapshots == []
        assert monitor.latest() is None
        assert monitor.series("grid_tasks") == []
        assert monitor.mean("grid_tasks") == 0.0
        assert monitor.sparkline("grid_tasks") == ""
        assert monitor.sparkline("grid_tasks", width=5) == ""

    def test_metrics_views_read_zero_before_first_sample(self):
        from repro.obs.metrics import MetricsRegistry

        _grid, monitor = self.fresh_monitor()
        registry = MetricsRegistry()
        monitor.to_metrics(registry)
        metrics = registry.snapshot()["metrics"]
        assert metrics["monitor.c0.samples"] == 0
        assert metrics["monitor.c0.nodes"] == 0
        assert metrics["monitor.c0.grid_utilisation"] == 0
        # status_age_mean reads the GRM directly, not the snapshots.
        assert metrics["monitor.c0.status_age_mean_s"] >= 0.0

    def test_first_sample_flips_queries_to_real_data(self):
        grid, monitor = self.fresh_monitor()
        grid.run_for(120)
        snapshot = monitor.sample()
        assert monitor.latest() is snapshot
        assert snapshot.nodes == 1
        assert monitor.series("nodes") == [(snapshot.time, 1)]
        assert monitor.mean("nodes") == 1.0
        assert len(monitor.sparkline("nodes")) == 1
