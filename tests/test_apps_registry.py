"""Tests for the program registry and functional BSP grid execution."""

import pytest

from repro import ApplicationSpec, Grid
from repro.apps.registry import (
    DEFAULT_REGISTRY,
    ProgramRegistry,
    UnknownProgram,
    register_program,
)
from repro.sim.clock import SECONDS_PER_DAY


def psum(bsp, n):
    lo = bsp.pid * n // bsp.nprocs
    hi = (bsp.pid + 1) * n // bsp.nprocs
    bsp.send(0, sum(range(lo, hi)))
    bsp.sync()
    if bsp.pid == 0:
        return sum(bsp.messages())
    return None


class TestProgramRegistry:
    def test_register_and_get(self):
        registry = ProgramRegistry()
        registry.register("psum", psum, 100)
        fn, args = registry.get("psum")
        assert fn is psum
        assert args == (100,)
        assert "psum" in registry
        assert registry.names == ["psum"]

    def test_unknown_program(self):
        with pytest.raises(UnknownProgram):
            ProgramRegistry().get("ghost")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            ProgramRegistry().register("x", 42)

    def test_reregistration_overwrites(self):
        registry = ProgramRegistry()
        registry.register("p", psum, 1)
        registry.register("p", psum, 2)
        assert registry.get("p")[1] == (2,)

    def test_unregister_is_idempotent(self):
        registry = ProgramRegistry()
        registry.register("p", psum)
        registry.unregister("p")
        registry.unregister("p")
        assert "p" not in registry

    def test_default_registry_helper(self):
        register_program("test_psum_helper", psum, 10)
        try:
            assert "test_psum_helper" in DEFAULT_REGISTRY
        finally:
            DEFAULT_REGISTRY.unregister("test_psum_helper")


class TestFunctionalBspExecution:
    def make_grid(self, registry):
        grid = Grid(seed=3, policy="first_fit", lupa_enabled=False,
                    programs=registry)
        grid.add_cluster("c0")
        for i in range(4):
            grid.add_node("c0", f"d{i}", dedicated=True)
        grid.run_for(120)
        return grid

    def bsp_spec(self, **metadata_extra):
        metadata = {"supersteps": 4}
        metadata.update(metadata_extra)
        return ApplicationSpec(
            name="sum", kind="bsp", tasks=4, program="psum",
            work_mips=2e5, metadata=metadata,
        )

    def test_registered_program_produces_real_results(self):
        registry = ProgramRegistry()
        registry.register("psum", psum, 1000)
        grid = self.make_grid(registry)
        job_id = grid.submit(self.bsp_spec())
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        job = grid.job(job_id)
        assert job.tasks[0].result == sum(range(1000))
        assert grid.coordinator(job_id).executed_results[0] == sum(range(1000))

    def test_program_args_metadata_overrides_defaults(self):
        registry = ProgramRegistry()
        registry.register("psum", psum, 1000)
        grid = self.make_grid(registry)
        job_id = grid.submit(self.bsp_spec(program_args=[10]))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        assert grid.job(job_id).tasks[0].result == sum(range(10))

    def test_unregistered_program_is_cost_model_only(self):
        grid = self.make_grid(ProgramRegistry())
        job_id = grid.submit(self.bsp_spec())
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        job = grid.job(job_id)
        assert job.done
        assert all(t.result is None for t in job.tasks)

    def test_crashing_program_reports_error(self):
        def boom(bsp):
            raise RuntimeError("bad math")

        registry = ProgramRegistry()
        registry.register("psum", boom)
        grid = self.make_grid(registry)
        job_id = grid.submit(self.bsp_spec())
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        job = grid.job(job_id)
        assert all("__error__" in t.result for t in job.tasks)
