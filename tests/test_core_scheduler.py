"""Unit tests for scheduling policies and virtual-topology planning."""

import random

import pytest

from repro.apps.spec import (
    ApplicationSpec,
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.core.gupa import Gupa
from repro.core.scheduler import (
    FastestFirstPolicy,
    FirstFitPolicy,
    PatternAwarePolicy,
    POLICIES,
    RandomPolicy,
    ScheduleContext,
    plan_virtual_topology,
)
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.network import NetworkTopology, two_groups


def offer(node, mips=1000.0, cpu_free=1.0, **extra):
    props = {
        "node": node, "mips": mips, "ram_mb": 256.0, "disk_mb": 10_000.0,
        "os": "linux", "arch": "x86", "cpu_free": cpu_free,
        "mem_free_mb": 200.0, "disk_free_mb": 10_000.0,
        "owner_active": False, "sharing": True, "grid_tasks": 0,
    }
    props.update(extra)
    return props


def make_ctx(work=1e6, gupa=None, now=0.0):
    return ScheduleContext(
        spec=ApplicationSpec(name="x", work_mips=work),
        remaining_mips=work,
        now=now,
        gupa=gupa,
    )


class TestBasicPolicies:
    def test_first_fit_preserves_order(self):
        offers = [offer("a"), offer("b"), offer("c")]
        assert [o["node"] for o in FirstFitPolicy().order(offers, make_ctx())] \
            == ["a", "b", "c"]

    def test_random_is_deterministic_per_seed(self):
        offers = [offer(f"n{i}") for i in range(10)]
        p1 = RandomPolicy(random.Random(5))
        p2 = RandomPolicy(random.Random(5))
        assert [o["node"] for o in p1.order(offers, make_ctx())] == \
               [o["node"] for o in p2.order(offers, make_ctx())]

    def test_fastest_first(self):
        offers = [
            offer("slow", mips=300), offer("fast", mips=2000),
            offer("busy", mips=3000, cpu_free=0.1),
        ]
        ordered = FastestFirstPolicy().order(offers, make_ctx())
        assert ordered[0]["node"] == "fast"   # 2000 beats 3000*0.1

    def test_registry(self):
        assert set(POLICIES) == {
            "first_fit", "random", "fastest_first", "pattern_aware",
        }


class TestPatternAwarePolicy:
    def pattern(self, busy):
        return {
            "bins_per_day": 24,
            "weekly": [[busy] * 24 for _ in range(7)],
        }

    def test_prefers_idle_predicted_nodes(self):
        gupa = Gupa()
        gupa.upload_pattern("stable", self.pattern(0.0))
        gupa.upload_pattern("volatile", self.pattern(0.9))
        ctx = make_ctx(work=3.6e6, gupa=gupa)   # ~1h on 1000 MIPS
        ordered = PatternAwarePolicy().order(
            [offer("volatile"), offer("stable")], ctx
        )
        assert ordered[0]["node"] == "stable"

    def test_unknown_nodes_get_neutral_probability(self):
        gupa = Gupa()
        gupa.upload_pattern("bad", self.pattern(0.95))
        ctx = make_ctx(work=3.6e6, gupa=gupa)
        ordered = PatternAwarePolicy().order(
            [offer("bad"), offer("unknown")], ctx
        )
        assert ordered[0]["node"] == "unknown"   # 0.5 neutral beats 0.05

    def test_speed_still_matters(self):
        gupa = Gupa()
        gupa.upload_pattern("a", self.pattern(0.0))
        gupa.upload_pattern("b", self.pattern(0.0))
        ctx = make_ctx(gupa=gupa)
        ordered = PatternAwarePolicy().order(
            [offer("a", mips=500), offer("b", mips=2000)], ctx
        )
        assert ordered[0]["node"] == "b"

    def test_degrades_without_gupa(self):
        ordered = PatternAwarePolicy().order(
            [offer("a", mips=500), offer("b", mips=2000)], make_ctx()
        )
        assert ordered[0]["node"] == "b"


class TestScheduleContext:
    def test_estimated_duration(self):
        ctx = make_ctx(work=3.6e6)
        assert ctx.estimated_duration(offer("a", mips=1000.0)) \
            == pytest.approx(3600.0)

    def test_estimated_duration_zero_capacity(self):
        ctx = make_ctx()
        assert ctx.estimated_duration(offer("a", cpu_free=0.0)) == float("inf")


class TestTopologyPlanning:
    def paper_request(self, per_group=3):
        reqs = ResourceRequirements(min_mips=500, min_ram_mb=16)
        return VirtualTopologyRequest(
            groups=(
                NodeGroupRequest(per_group, 100.0, reqs),
                NodeGroupRequest(per_group, 100.0, reqs),
            ),
            inter_bandwidth_mbps=10.0,
        )

    def test_paper_example_satisfiable(self):
        group_a = [f"a{i}" for i in range(4)]
        group_b = [f"b{i}" for i in range(4)]
        network = two_groups(group_a, group_b, intra_mbps=100.0, inter_mbps=10.0)
        offers = [offer(n) for n in group_a + group_b]
        plan = plan_virtual_topology(offers, self.paper_request(3), network)
        assert plan is not None
        assert len(plan) == 2
        segments = {
            network.segment_of(o["node"]) for group in plan for o in group
        }
        assert len(segments) == 2
        for group in plan:
            group_segments = {network.segment_of(o["node"]) for o in group}
            assert len(group_segments) == 1   # each group on one segment

    def test_insufficient_nodes(self):
        network = two_groups(["a0", "a1"], ["b0", "b1"])
        offers = [offer(n) for n in ("a0", "a1", "b0", "b1")]
        assert plan_virtual_topology(offers, self.paper_request(3), network) is None

    def test_intra_bandwidth_filter(self):
        network = two_groups(
            [f"a{i}" for i in range(3)], [f"b{i}" for i in range(3)],
            intra_mbps=50.0,   # below the requested 100 Mbps
        )
        offers = [offer(f"a{i}") for i in range(3)]
        offers += [offer(f"b{i}") for i in range(3)]
        assert plan_virtual_topology(offers, self.paper_request(3), network) is None

    def test_inter_bandwidth_filter(self):
        network = two_groups(
            [f"a{i}" for i in range(3)], [f"b{i}" for i in range(3)],
            inter_mbps=1.0,   # below the requested 10 Mbps
        )
        offers = [offer(f"a{i}") for i in range(3)]
        offers += [offer(f"b{i}") for i in range(3)]
        assert plan_virtual_topology(offers, self.paper_request(3), network) is None

    def test_requirements_filter_within_group(self):
        network = two_groups(
            [f"a{i}" for i in range(3)], [f"b{i}" for i in range(3)],
        )
        offers = [offer(f"a{i}", mips=200.0) for i in range(3)]   # too slow
        offers += [offer(f"b{i}") for i in range(3)]
        assert plan_virtual_topology(offers, self.paper_request(3), network) is None

    def test_single_group(self):
        network = two_groups(["a0", "a1"], ["b0"])
        request = VirtualTopologyRequest(
            groups=(NodeGroupRequest(2, 100.0),), inter_bandwidth_mbps=1.0,
        )
        plan = plan_virtual_topology(
            [offer("a0"), offer("a1"), offer("b0")], request, network
        )
        assert plan is not None
        assert {o["node"] for o in plan[0]} == {"a0", "a1"}

    def test_unplaced_offers_skipped(self):
        network = two_groups(["a0"], ["b0"])
        request = VirtualTopologyRequest(
            groups=(NodeGroupRequest(1, 100.0),), inter_bandwidth_mbps=1.0,
        )
        offers = [offer("ghost"), offer("a0")]
        plan = plan_virtual_topology(offers, request, network)
        assert plan is not None
        assert plan[0][0]["node"] == "a0"
