"""Tests for the inter-cluster hierarchy (wide-area protocols)."""

import pytest

from repro import ApplicationSpec, Grid, JobState
from repro.apps.spec import ResourceRequirements
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.machine import MachineSpec


def two_cluster_grid(seed=1, nodes_a=2, nodes_b=4, mips_b=1000.0):
    grid = Grid(seed=seed, policy="first_fit", lupa_enabled=False)
    grid.add_cluster("alpha")
    grid.add_cluster("beta")
    for i in range(nodes_a):
        grid.add_node("alpha", f"a{i}", dedicated=True)
    for i in range(nodes_b):
        grid.add_node("beta", f"b{i}",
                      spec=MachineSpec(mips=mips_b), dedicated=True)
    parent, uplinks = grid.connect_clusters_to_parent()
    grid.run_for(120)
    return grid, parent, uplinks


class TestRegistrationAndSummaries:
    def test_clusters_register(self):
        grid, parent, _ = two_cluster_grid()
        assert parent.clusters == ["alpha", "beta"]

    def test_summaries_flow_periodically(self):
        grid, parent, uplinks = two_cluster_grid()
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert parent.summaries_received >= 2 * len(uplinks)
        summary = parent.summary_of("beta")
        assert summary["nodes"] == 4
        assert summary["sharing_nodes"] == 4
        assert summary["max_node_mips"] == 1000.0

    def test_summary_aggregates_not_per_node(self):
        # The hierarchy's point: the parent sees O(clusters) data.
        grid, parent, _ = two_cluster_grid(nodes_b=8)
        grid.run_for(SECONDS_PER_HOUR)
        summary = parent.summary_of("beta")
        assert set(summary) == {
            "cluster", "time", "nodes", "sharing_nodes", "free_cpu_total",
            "free_mem_total_mb", "max_node_mips", "pending_tasks",
        }


class TestWideAreaPlacement:
    def test_overflow_job_forwarded(self):
        # alpha has 2 nodes; an 4-task gang cannot fit there.
        grid, parent, _ = two_cluster_grid(nodes_a=2, nodes_b=6)
        spec = ApplicationSpec(
            name="wide", kind="bsp", tasks=4, program="p", work_mips=1e6,
            metadata={"supersteps": 2},
        )
        job_id = grid.submit(spec, cluster="alpha")
        grid.run_for(2 * SECONDS_PER_HOUR)
        local_job = grid.job(job_id)
        assert local_job.forwarded_to, "job should have been forwarded"
        assert local_job.state is JobState.CANCELLED
        remote_job = grid.clusters["beta"].grm.job(local_job.forwarded_to)
        assert remote_job.state is JobState.COMPLETED
        assert parent.remote_submissions == 1

    def test_placeable_jobs_stay_local(self):
        grid, parent, _ = two_cluster_grid()
        job_id = grid.submit(
            ApplicationSpec(name="local", work_mips=1e6), cluster="alpha"
        )
        grid.run_for(SECONDS_PER_HOUR)
        job = grid.job(job_id)
        assert job.state is JobState.COMPLETED
        assert job.forwarded_to is None
        assert parent.remote_submissions == 0

    def test_unplaceable_everywhere_stays_pending(self):
        grid, parent, _ = two_cluster_grid()
        spec = ApplicationSpec(
            name="impossible",
            requirements=ResourceRequirements(min_mips=100_000.0),
        )
        job_id = grid.submit(spec, cluster="alpha")
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING
        assert parent.remote_rejections > 0

    def test_forwarded_job_not_bounced_back(self):
        # beta is also full: the job is rejected, not ping-ponged.
        grid, parent, _ = two_cluster_grid(nodes_a=1, nodes_b=1)
        spec = ApplicationSpec(
            name="big", kind="bsp", tasks=3, program="p", work_mips=1e6,
            metadata={"supersteps": 2},
        )
        job_id = grid.submit(spec, cluster="alpha")
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING
        assert parent.remote_submissions == 0

    def test_requirements_respected_in_cluster_choice(self):
        # Only beta (fast nodes) can satisfy min_mips=2000.
        grid, parent, _ = two_cluster_grid(nodes_a=2, nodes_b=2, mips_b=2500.0)
        spec = ApplicationSpec(
            name="fast", kind="bsp", tasks=2, program="p", work_mips=1e6,
            requirements=ResourceRequirements(min_mips=2000.0),
            metadata={"supersteps": 2},
        )
        # Submitted at alpha whose nodes are too slow AND too few... use
        # 2 tasks so count fits but speed does not.
        job_id = grid.submit(spec, cluster="alpha")
        grid.run_for(2 * SECONDS_PER_HOUR)
        local_job = grid.job(job_id)
        assert local_job.forwarded_to
        remote_job = grid.clusters["beta"].grm.job(local_job.forwarded_to)
        assert remote_job.state is JobState.COMPLETED


class TestSummaryContents:
    def test_pending_tasks_reported(self):
        grid, parent, uplinks = two_cluster_grid()
        spec = ApplicationSpec(
            name="stuck",
            requirements=ResourceRequirements(min_mips=100_000.0),
        )
        grid.submit(spec, cluster="beta")
        grid.run_for(SECONDS_PER_HOUR)
        summary = parent.summary_of("beta")
        assert summary["pending_tasks"] >= 1
