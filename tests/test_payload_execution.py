"""Integration tests: sandboxed task payloads with result collection.

Grid tasks can carry real Python source; when the simulated compute
completes, the LRM executes it inside the provider's sandbox and the
result rides back on the ``task_completed`` notification — Section 3's
sandboxing requirement wired into the execution path.
"""

import pytest

from repro import ApplicationSpec, Grid, JobState, TaskState
from repro.sim.clock import SECONDS_PER_HOUR

PI_LEIBNIZ = """
terms = 100000
result = sum(
    (1.0 if k % 2 == 0 else -1.0) * 4.0 / (2 * k + 1)
    for k in range(task_index * terms, (task_index + 1) * terms)
)
"""


def make_grid(nodes=3):
    grid = Grid(seed=9, policy="first_fit", lupa_enabled=False)
    grid.add_cluster("c0")
    for i in range(nodes):
        grid.add_node("c0", f"d{i}", dedicated=True)
    grid.run_for(120)
    return grid


class TestPayloadResults:
    def test_single_task_result_collected(self):
        grid = make_grid(1)
        job_id = grid.submit(ApplicationSpec(
            name="answer", work_mips=1e5,
            metadata={"payload": "result = 6 * 7"},
        ))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
        job = grid.job(job_id)
        assert job.state is JobState.COMPLETED
        assert job.tasks[0].result == 42

    def test_task_index_exposed_to_payload(self):
        grid = make_grid(3)
        job_id = grid.submit(ApplicationSpec(
            name="indexed", tasks=3, work_mips=1e5,
            metadata={"payload": "result = task_index * task_index"},
        ))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
        job = grid.job(job_id)
        assert sorted(t.result for t in job.tasks) == [0, 1, 4]

    def test_distributed_pi(self):
        grid = make_grid(3)
        job_id = grid.submit(ApplicationSpec(
            name="pi", tasks=3, work_mips=1e5,
            metadata={"payload": PI_LEIBNIZ},
        ))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
        job = grid.job(job_id)
        pi = sum(t.result for t in job.tasks)
        assert pi == pytest.approx(3.14159, abs=1e-4)

    def test_result_in_asct_status(self):
        grid = make_grid(1)
        asct = grid.make_asct("c0")
        job_id = asct.submit(ApplicationSpec(
            name="answer", work_mips=1e5,
            metadata={"payload": "result = 'hello from the grid'"},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        status = asct.status(job_id)
        assert status["tasks"][0]["result"] == "hello from the grid"

    def test_payloadless_task_has_none_result(self):
        grid = make_grid(1)
        job_id = grid.submit(ApplicationSpec(name="plain", work_mips=1e5))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
        assert grid.job(job_id).tasks[0].result is None


class TestSandboxEnforcement:
    def test_malicious_payload_fails_the_task(self):
        grid = make_grid(1)
        job_id = grid.submit(ApplicationSpec(
            name="evil", work_mips=1e5,
            metadata={"payload": "result = open('/etc/passwd').read()"},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        job = grid.job(job_id)
        task = job.tasks[0]
        assert task.state is TaskState.FAILED
        assert job.state is JobState.FAILED
        assert "__error__" in task.result
        lrm = grid.clusters["c0"].nodes["d0"].lrm
        assert lrm.sandbox_violations == 1

    def test_runaway_payload_fails_the_task(self):
        from repro.core.lrm import Lrm  # noqa: F401 (documentation import)
        grid = make_grid(1)
        # Tighten the node's sandbox budget so the loop trips quickly.
        from repro.security.sandbox import SandboxPolicy
        grid.clusters["c0"].nodes["d0"].lrm.sandbox_policy = SandboxPolicy(
            max_steps=1000
        )
        job_id = grid.submit(ApplicationSpec(
            name="spin", work_mips=1e5,
            metadata={"payload": "x = 0\nwhile True:\n    x += 1\nresult = x"},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        task = grid.job(job_id).tasks[0]
        assert task.state is TaskState.FAILED
        assert "budget" in task.result["__error__"]

    def test_allowed_import_works_in_payload(self):
        grid = make_grid(1)
        job_id = grid.submit(ApplicationSpec(
            name="math", work_mips=1e5,
            metadata={"payload": "import math\nresult = math.factorial(10)"},
        ))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
        assert grid.job(job_id).tasks[0].result == 3628800

    def test_sandbox_failure_does_not_leak_resources(self):
        grid = make_grid(1)
        job_id = grid.submit(ApplicationSpec(
            name="evil", work_mips=1e5,
            metadata={"payload": "import os\nresult = 1"},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        machine = grid.clusters["c0"].nodes["d0"].workstation.machine
        assert machine.grid_cpu == 0.0
        assert machine.grid_mem_mb == 0.0
