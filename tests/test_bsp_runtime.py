"""Unit tests for the executable BSP runtime (real computation)."""

import pytest

from repro.bsp.drma import Registers, UnregisteredVariable
from repro.bsp.messages import MessageBuffers
from repro.bsp.runtime import BspError, run_bsp


class TestMessageBuffers:
    def test_messages_visible_after_exchange(self):
        buffers = MessageBuffers(2)
        buffers.send(0, 1, "hello")
        assert buffers.inbox(1) == []
        buffers.exchange()
        assert buffers.inbox(1) == ["hello"]

    def test_double_buffering(self):
        buffers = MessageBuffers(2)
        buffers.send(0, 1, "first")
        buffers.exchange()
        buffers.send(0, 1, "second")
        assert buffers.inbox(1) == ["first"]
        buffers.exchange()
        assert buffers.inbox(1) == ["second"]

    def test_delivery_sorted_by_sender(self):
        buffers = MessageBuffers(3)
        buffers.send(2, 0, "from2")
        buffers.send(1, 0, "from1")
        buffers.exchange()
        assert buffers.inbox(0) == ["from1", "from2"]

    def test_bad_destination(self):
        with pytest.raises(ValueError):
            MessageBuffers(2).send(0, 5, "x")

    def test_byte_accounting(self):
        buffers = MessageBuffers(2)
        buffers.send(0, 1, b"x" * 100)
        buffers.send(0, 1, 3.14)
        assert buffers.bytes_estimate == 108
        assert buffers.messages_sent == 2


class TestRegisters:
    def test_put_applies_at_sync(self):
        regs = Registers(2)
        regs.register(0, "x", 0)
        regs.put(1, 0, "x", 42)
        assert regs.local_read(0, "x") == 0
        regs.synchronize()
        assert regs.local_read(0, "x") == 42

    def test_get_reads_snapshot(self):
        regs = Registers(2)
        regs.register(0, "x", 1)
        regs.synchronize()
        regs.local_write(0, "x", 2)
        assert regs.get(0, "x") == 1     # snapshot, not live value
        regs.synchronize()
        assert regs.get(0, "x") == 2

    def test_get_returns_copy(self):
        regs = Registers(1)
        regs.register(0, "xs", [1, 2])
        regs.synchronize()
        regs.get(0, "xs").append(99)
        assert regs.get(0, "xs") == [1, 2]

    def test_unregistered_access(self):
        regs = Registers(1)
        with pytest.raises(UnregisteredVariable):
            regs.local_read(0, "ghost")
        with pytest.raises(UnregisteredVariable):
            regs.get(0, "ghost")

    def test_put_to_unregistered_fails_at_sync(self):
        regs = Registers(2)
        regs.put(0, 1, "ghost", 1)
        with pytest.raises(UnregisteredVariable):
            regs.synchronize()

    def test_puts_applied_in_writer_order(self):
        regs = Registers(3)
        regs.register(0, "x", 0)
        regs.put(2, 0, "x", 222)
        regs.put(1, 0, "x", 111)
        regs.synchronize()
        assert regs.local_read(0, "x") == 222   # writer 2 applies last


class TestRunBsp:
    def test_parallel_sum(self):
        def program(bsp, n):
            lo = bsp.pid * n // bsp.nprocs
            hi = (bsp.pid + 1) * n // bsp.nprocs
            bsp.send(0, sum(range(lo, hi)))
            bsp.sync()
            if bsp.pid == 0:
                return sum(bsp.messages())
            return None

        run = run_bsp(4, program, 1000)
        assert run.results[0] == sum(range(1000))
        assert run.supersteps >= 1
        assert run.messages_sent == 4

    def test_single_process(self):
        run = run_bsp(1, lambda bsp: bsp.pid)
        assert run.results == [0]

    def test_all_pids_distinct(self):
        run = run_bsp(8, lambda bsp: (bsp.pid, bsp.nprocs))
        assert run.results == [(i, 8) for i in range(8)]

    def test_drma_broadcast(self):
        def program(bsp):
            bsp.register("value", None)
            if bsp.pid == 0:
                for other in range(bsp.nprocs):
                    bsp.put(other, "value", 42)
            bsp.sync()
            return bsp.read("value")

        run = run_bsp(4, program)
        assert run.results == [42] * 4
        assert run.puts_applied == 4

    def test_multi_superstep_ring(self):
        # Pass a token around a ring; after nprocs supersteps it is home.
        def program(bsp):
            token = bsp.pid
            for _ in range(bsp.nprocs):
                bsp.send((bsp.pid + 1) % bsp.nprocs, token)
                bsp.sync()
                (token,) = bsp.messages()
            return token

        run = run_bsp(4, program)
        assert run.results == [0, 1, 2, 3]
        assert run.supersteps >= 4

    def test_uneven_sync_counts_are_handled(self):
        # pid 0 needs one extra superstep; the engine drains the others.
        def program(bsp):
            bsp.send(0, bsp.pid)
            bsp.sync()
            if bsp.pid == 0:
                total = sum(bsp.messages())
                bsp.sync()
                return total
            return None

        run = run_bsp(4, program)
        assert run.results[0] == 0 + 1 + 2 + 3

    def test_process_exception_aborts_run(self):
        def program(bsp):
            if bsp.pid == 1:
                raise ValueError("boom")
            bsp.sync()
            return bsp.pid

        with pytest.raises(BspError) as excinfo:
            run_bsp(3, program)
        assert "pid 1" in str(excinfo.value)
        assert "boom" in str(excinfo.value)

    def test_deterministic_message_order(self):
        def program(bsp):
            if bsp.pid != 0:
                bsp.send(0, bsp.pid)
            bsp.sync()
            if bsp.pid == 0:
                return bsp.messages()
            return None

        for _ in range(5):
            run = run_bsp(6, program)
            assert run.results[0] == [1, 2, 3, 4, 5]

    def test_matrix_vector_product(self):
        import random
        n = 8
        rng = random.Random(1)
        matrix = [[rng.randint(0, 9) for _ in range(n)] for _ in range(n)]
        vector = [rng.randint(0, 9) for _ in range(n)]
        expected = [
            sum(matrix[i][j] * vector[j] for j in range(n)) for i in range(n)
        ]

        def program(bsp, matrix, vector):
            rows = range(
                bsp.pid * n // bsp.nprocs, (bsp.pid + 1) * n // bsp.nprocs
            )
            partial = {
                i: sum(matrix[i][j] * vector[j] for j in range(n))
                for i in rows
            }
            bsp.send(0, partial)
            bsp.sync()
            if bsp.pid == 0:
                merged = {}
                for part in bsp.messages():
                    merged.update(part)
                return [merged[i] for i in range(n)]
            return None

        run = run_bsp(4, program, matrix, vector)
        assert run.results[0] == expected

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            run_bsp(0, lambda bsp: None)


class TestCombining:
    """Batched superstep comms: same results, O(peers) ORB calls."""

    @staticmethod
    def _program(bsp):
        peers = [(bsp.pid + k + 1) % bsp.nprocs for k in range(2)]
        bsp.register("acc", 0.0)
        total = 0.0
        for step in range(3):
            for peer in peers:
                bsp.send(peer, [float(bsp.pid), float(step)])
                bsp.send(peer, [float(bsp.pid), float(step + 10)])
                bsp.put(peer, "acc", float(bsp.pid + step))
            bsp.sync()
            total += sum(m[0] for m in bsp.messages())
            total += sum(bsp.get(p, "acc") for p in peers)
        return total

    def test_results_identical_to_seed_mode(self):
        seed = run_bsp(6, self._program)
        combined = run_bsp(6, self._program, combining=True)
        assert combined.results == seed.results
        assert combined.messages_sent == seed.messages_sent
        assert combined.puts_applied == seed.puts_applied
        assert combined.supersteps == seed.supersteps

    def test_seed_mode_counts_one_call_per_message(self):
        run = run_bsp(6, self._program)
        # 6 pids x 2 peers x 2 msgs x 3 steps
        assert run.orb_calls == 6 * 2 * 2 * 3
        # puts: 6 x 2 x 3; gets: 6 x 2 x 3
        assert run.drma_calls == 6 * 2 * 3 + 6 * 2 * 3
        assert run.wire_bytes > 0

    def test_combining_counts_one_call_per_pair(self):
        run = run_bsp(6, self._program, combining=True)
        # One BSMP flush per (sender, dest) pair per superstep: the two
        # messages per peer coalesce.
        assert run.orb_calls == 6 * 2 * 3
        # One DRMA call per (writer, owner) pair and per (reader, owner)
        # pair per superstep.
        assert run.drma_calls == 6 * 2 * 3 + 6 * 2 * 3
        seed = run_bsp(6, self._program)
        assert run.orb_calls < seed.orb_calls
        assert run.wire_bytes < seed.wire_bytes

    def test_multiple_puts_per_pair_batch_into_one_call(self):
        def program(bsp):
            bsp.register("x", 0.0)
            peer = (bsp.pid + 1) % bsp.nprocs
            for i in range(5):
                bsp.put(peer, "x", float(i))
            bsp.sync()
            return bsp.read("x")

        seed = run_bsp(4, program)
        combined = run_bsp(4, program, combining=True)
        assert combined.results == seed.results      # last writer wins
        assert seed.drma_calls == 4 * 5
        assert combined.drma_calls == 4              # one pair per writer

    def test_unencodable_payload_still_combines(self):
        class Opaque:
            pass

        def program(bsp):
            if bsp.pid == 0:
                bsp.send(1, Opaque())
                bsp.send(1, Opaque())
            bsp.sync()
            if bsp.pid == 1:
                return len(bsp.messages())
            return 0

        run = run_bsp(2, program, combining=True)
        # Falls back to the heuristic size estimate, delivery unchanged.
        assert run.results[1] == 2
        assert run.orb_calls == 1
        assert run.wire_bytes > 0
