"""Tests for transport-level oneway batching (Orb(batch_oneway=True)).

Batching is opt-in and must be invisible except in frame counts: the
same calls arrive at the same servants in the same order, queues drain
at flush()/shutdown(), and a two-way call to a peer acts as an ordering
barrier for that peer's queued oneways.
"""

import pytest

from repro.orb.core import Orb
from repro.orb.cdr import Double, String, ULong, Void
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import InProcDomain

SINK_INTERFACE = InterfaceDef("test/Sink", [
    Operation("report", (
        Parameter("node", String),
        Parameter("seq", ULong),
        Parameter("load", Double),
    ), Void, oneway=True),
    Operation("poll", (), ULong),
])


class Sink:
    def __init__(self):
        self.reports = []

    def report(self, node, seq, load):
        self.reports.append((node, seq, load))

    def poll(self):
        return len(self.reports)


def make_pair(batch_server=True, batch_client=True, **server_kwargs):
    domain = InProcDomain()
    server = Orb("server", domain=domain, batch_oneway=batch_server,
                 **server_kwargs)
    client = Orb("client", domain=domain, batch_oneway=batch_client)
    sink = Sink()
    ref = server.activate(sink, SINK_INTERFACE, key="test/sink")
    stub = client.stub(ref, SINK_INTERFACE)
    return server, client, sink, stub


class TestDefaultOff:
    def test_oneways_send_immediately_without_the_flag(self):
        server, client, sink, stub = make_pair(batch_server=False,
                                               batch_client=False)
        try:
            stub.report("n0", 0, 0.5)
            stub.report("n1", 1, 0.6)
            # Delivered synchronously, one frame per call, nothing queued.
            assert len(sink.reports) == 2
            assert server.inproc_stats().requests_received == 2
            assert client.batch_calls == 0
            assert client.batch_frames == 0
            client.flush()   # no-op
            assert server.inproc_stats().requests_received == 2
        finally:
            server.shutdown()
            client.shutdown()

    def test_default_orb_does_not_advertise_batch(self):
        orb = Orb("plain", domain=InProcDomain())
        try:
            assert orb.accepts_batch is False
        finally:
            orb.shutdown()


class TestBatchedDelivery:
    def test_oneways_queue_until_flush(self):
        server, client, sink, stub = make_pair()
        try:
            for i in range(10):
                stub.report(f"n{i}", i, 0.1 * i)
            assert sink.reports == []   # still queued
            client.flush()
            assert [r[1] for r in sink.reports] == list(range(10))
            # Ten calls rode one frame.
            assert server.inproc_stats().requests_received == 1
            assert client.batch_calls == 10
            assert client.batch_frames == 1
            assert client.batch_bytes_saved > 0
        finally:
            server.shutdown()
            client.shutdown()

    def test_single_queued_call_sends_a_plain_frame(self):
        # A lone request needs no envelope: the wire must carry exactly
        # the bytes the per-call path would have sent.
        server, client, sink, stub = make_pair()
        plain_server, plain_client, _, plain_stub = make_pair(
            batch_server=False, batch_client=False)
        try:
            stub.report("n0", 0, 0.5)
            client.flush()
            plain_stub.report("n0", 0, 0.5)
            assert sink.reports == [("n0", 0, 0.5)]
            assert (server.inproc_stats().bytes_received
                    == plain_server.inproc_stats().bytes_received)
        finally:
            for orb in (server, client, plain_server, plain_client):
                orb.shutdown()

    def test_two_way_call_is_an_ordering_barrier(self):
        server, client, sink, stub = make_pair()
        try:
            stub.report("n0", 0, 0.5)
            stub.report("n1", 1, 0.6)
            # The two-way poll() must observe both queued oneways: the
            # ORB flushes the peer's queue before the request goes out.
            assert stub.poll() == 2
        finally:
            server.shutdown()
            client.shutdown()

    def test_shutdown_flushes_queued_oneways(self):
        server, client, sink, stub = make_pair()
        stub.report("n0", 0, 0.5)
        client.shutdown()
        try:
            assert sink.reports == [("n0", 0, 0.5)]
        finally:
            server.shutdown()

    def test_notifier_fires_on_every_enqueue(self):
        # The grid registers a notifier to schedule end-of-event flushes;
        # it must see the queue go non-empty (and repeat notifications
        # for later enqueues are fine — scheduling is idempotent there).
        server, client, sink, stub = make_pair()
        try:
            notified = []
            client.set_batch_notifier(notified.append)
            stub.report("n0", 0, 0.5)
            assert notified == [client]
            stub.report("n1", 1, 0.6)
            assert len(notified) == 2
            client.flush()
            assert len(sink.reports) == 2
        finally:
            server.shutdown()
            client.shutdown()


class TestCapabilityGating:
    def test_non_batching_server_gets_per_call_frames(self):
        # Client opts in, server does not: every oneway must go out as
        # its own frame because the peer never advertises the capability.
        server, client, sink, stub = make_pair(batch_server=False)
        try:
            stub.report("n0", 0, 0.5)
            assert sink.reports == [("n0", 0, 0.5)]
            assert client.batch_calls == 0
        finally:
            server.shutdown()
            client.shutdown()

    def test_auth_requiring_server_never_advertises_batch(self):
        from repro.security.auth import KeyRing

        keyring = KeyRing()
        keyring.add("svc", b"secret")
        orb = Orb("auth-server", domain=InProcDomain(), batch_oneway=True,
                  keyring=keyring, require_auth=True)
        try:
            assert orb.accepts_batch is False
        finally:
            orb.shutdown()


class TestEquivalence:
    def test_batched_delivery_matches_per_call_order_and_content(self):
        import hashlib

        def run(batch):
            server, client, sink, stub = make_pair(
                batch_server=batch, batch_client=batch)
            digest = hashlib.sha256()
            server.add_server_interceptor(
                lambda key, op, args: digest.update(
                    f"{key}|{op.name}|{args!r}".encode())
            )
            try:
                for r in range(3):
                    for i in range(50):
                        stub.report(f"n{i:03}", r * 50 + i, 0.01 * i)
                    if batch:
                        client.flush()
                return digest.hexdigest(), list(sink.reports)
            finally:
                server.shutdown()
                client.shutdown()

        seed_digest, seed_reports = run(batch=False)
        batch_digest, batch_reports = run(batch=True)
        assert batch_digest == seed_digest
        assert batch_reports == seed_reports


class TestTcpNegotiatedBatching:
    def test_batches_ride_a_pipelined_connection(self):
        server = Orb("tcp-server", domain=InProcDomain(), tcp=True,
                     tcp_pipelined=True, batch_oneway=True)
        client = Orb("tcp-client", domain=InProcDomain(), tcp=True,
                     tcp_pipelined=True, batch_oneway=True)
        sink = Sink()
        ref = server.activate(sink, SINK_INTERFACE, key="test/sink")
        stub = client.stub(ref, SINK_INTERFACE)
        try:
            for i in range(100):
                stub.report(f"n{i:03}", i, 0.5)
            client.flush()
            # Drain via the two-way poll (itself an ordering barrier).
            assert stub.poll() == 100
            assert [r[1] for r in sink.reports] == list(range(100))
            # 100 oneways + 1 poll, but at most a couple of data frames.
            assert server._tcp.stats.requests_received <= 3
        finally:
            client.shutdown()
            server.shutdown()

    def test_legacy_tcp_peer_is_never_sent_batches(self):
        server = Orb("tcp-server", domain=InProcDomain(), tcp=True)
        client = Orb("tcp-client", domain=InProcDomain(), tcp=True,
                     tcp_pipelined=True, batch_oneway=True)
        sink = Sink()
        ref = server.activate(sink, SINK_INTERFACE, key="test/sink")
        stub = client.stub(ref, SINK_INTERFACE)
        try:
            stub.report("n0", 0, 0.5)
            client.flush()
            assert stub.poll() == 1
            assert client.batch_calls == 0   # fell back to per-call
        finally:
            client.shutdown()
            server.shutdown()
