"""Tests for span tracing: tracer mechanics, ORB propagation, end-to-end."""

import json

import pytest

from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.sim.clock import SimClock


# -- tracer mechanics ---------------------------------------------------------


def test_spans_nest_through_the_current_stack():
    clock = SimClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer") as outer:
        clock.advance_to(1.0)
        with tracer.span("inner") as inner:
            clock.advance_to(2.0)
        clock.advance_to(3.0)
    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert (outer.start, outer.end) == (0.0, 3.0)
    assert (inner.start, inner.end) == (1.0, 2.0)
    # Child interval nested inside the parent's.
    assert outer.start <= inner.start and inner.end <= outer.end


def test_explicit_parent_links_deferred_work():
    tracer = Tracer()
    with tracer.span("submit"):
        context = tracer.context()
    assert context is not None
    with tracer.span("deferred", parent=context) as span:
        pass
    submit = tracer.finished[0]
    assert span.trace_id == submit.trace_id
    assert span.parent_id == submit.span_id


def test_disabled_tracer_returns_shared_null_context():
    tracer = Tracer()
    tracer.disable()
    context = tracer.span("ignored")
    assert context is NULL_SPAN
    with context as span:
        assert span is None
    assert len(tracer) == 0
    assert tracer.context() is None


def test_span_records_exception_attrs():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    span = tracer.finished[0]
    assert span.attrs["error"] == "RuntimeError"
    assert span.attrs["error_message"] == "boom"


def test_tracer_drops_spans_past_the_cap():
    tracer = Tracer(max_spans=2)
    for i in range(4):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer) == 2
    assert tracer.dropped == 2


# -- ORB propagation ----------------------------------------------------------


def _echo_pair():
    from repro.orb.cdr import Double
    from repro.orb.core import Orb
    from repro.orb.idl import InterfaceDef, Operation, Parameter
    from repro.orb.transport import InProcDomain

    interface = InterfaceDef(
        "test/Echo", [Operation("echo", (Parameter("x", Double),), Double)]
    )

    class Servant:
        def echo(self, x):
            return x * 2

    domain = InProcDomain()
    server = Orb("server", domain=domain)
    client = Orb("client", domain=domain)
    ref = server.activate(Servant(), interface)
    stub = client.stub(ref, interface)
    return server, client, stub, ref


def test_trace_context_crosses_the_orb():
    server, client, stub, ref = _echo_pair()
    tracer = Tracer()
    client.set_tracer(tracer)
    server.set_tracer(tracer)
    with tracer.span("root") as root:
        assert stub.echo(21.0) == 42.0
    client_span = next(
        s for s in tracer.finished if s.attrs.get("kind") == "client"
    )
    server_span = next(
        s for s in tracer.finished if s.attrs.get("kind") == "server"
    )
    assert client_span.trace_id == root.trace_id
    assert client_span.parent_id == root.span_id
    assert server_span.trace_id == root.trace_id
    assert server_span.parent_id == client_span.span_id
    server.shutdown()
    client.shutdown()


def test_traced_client_talks_to_untraced_server():
    # The trace header is an optional extension: a server without a
    # tracer parses and skips it, and the call still works.
    server, client, stub, ref = _echo_pair()
    tracer = Tracer()
    client.set_tracer(tracer)   # server gets none
    with tracer.span("root"):
        assert stub.echo(5.0) == 10.0
    kinds = [s.attrs.get("kind") for s in tracer.finished
             if "kind" in s.attrs]
    assert kinds == ["client"]   # no server span was recorded
    server.shutdown()
    client.shutdown()


def test_wire_bytes_identical_when_tracing_off():
    from repro.orb.core import Orb

    captured = []
    original = Orb.handle_request_bytes

    def capture(self, data):
        captured.append(bytes(data))
        return original(self, data)

    server, client, stub, ref = _echo_pair()
    tracer = Tracer()
    tracer.disable()
    client.set_tracer(tracer)
    server.set_tracer(tracer)
    try:
        Orb.handle_request_bytes = capture
        stub.echo(1.0)
        with_disabled_tracer = captured[-1]
        client.set_tracer(None)
        server.set_tracer(None)
        stub.echo(1.0)
        without_tracer = captured[-1]
    finally:
        Orb.handle_request_bytes = original
    assert with_disabled_tracer == without_tracer
    server.shutdown()
    client.shutdown()


# -- end-to-end: the acceptance trace ----------------------------------------


def _span_index(spans):
    return {span.span_id: span for span in spans}


def _ancestors(span, by_id):
    chain = []
    while span.parent_id is not None:
        span = by_id[span.parent_id]
        chain.append(span)
    return chain


def test_single_submission_yields_one_connected_trace(tmp_path):
    """One ASCT submission on a 4-node grid produces a single causally
    linked span tree crossing GRM submit, schedule, Trader query, LRM
    reservation, and task start — exported to JSONL and Chrome formats.
    """
    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid
    from repro.obs.exporters import (
        export_chrome_trace,
        export_jsonl,
        validate_chrome_trace_file,
    )

    grid = Grid(seed=7, lupa_enabled=False)
    grid.add_cluster("c0")
    for i in range(4):
        grid.add_node("c0", f"n{i}")
    tracer = grid.enable_tracing()

    asct = grid.make_asct("c0")
    with tracer.span("asct.submit", component="asct") as root:
        job_id = asct.submit(ApplicationSpec(name="e2e", tasks=2))
    assert grid.wait_for_job(job_id, max_seconds=4 * 3600.0)

    spans = tracer.trace(root.trace_id)
    by_id = _span_index(spans)

    # Every span of the trace reaches the root: one connected tree.
    for span in spans:
        if span.parent_id is None:
            assert span is root or span.span_id == root.span_id
        else:
            chain = _ancestors(span, by_id)
            assert chain[-1].span_id == root.span_id

    # The tree crosses every layer of the placement protocol.
    names = {span.name for span in spans}
    assert "integrade/Grm.submit" in names        # ASCT -> GRM (client hop)
    assert "grm.schedule_job" in names            # deferred schedule pass
    assert "trader.query" in names                # GRM -> Trader
    assert any(n.endswith("Lrm.request_reservation") for n in names)
    assert any(n.endswith("Lrm.start_task") for n in names)

    # Parent/child sim-time intervals nest.
    for span in spans:
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert span.end <= parent.end

    # The schedule pass (deferred via the event loop) still joins the
    # submission's trace through the stored job context.
    schedule = next(s for s in spans if s.name == "grm.schedule_job")
    assert schedule.attrs["job_id"] == job_id

    # Both exporters accept the trace; the Chrome file validates.
    jsonl_path = tmp_path / "trace.jsonl"
    chrome_path = tmp_path / "trace.json"
    assert export_jsonl(spans, str(jsonl_path)) == len(spans)
    lines = [json.loads(line)
             for line in jsonl_path.read_text().splitlines()]
    assert {line["span_id"] for line in lines} == set(by_id)
    export_chrome_trace(spans, str(chrome_path))
    assert validate_chrome_trace_file(str(chrome_path)) == len(spans)


def test_tracing_off_by_default_and_removable():
    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid

    grid = Grid(seed=2, lupa_enabled=False)
    grid.add_cluster("c0")
    grid.add_node("c0", "n0")
    assert grid.tracer is None   # off unless explicitly enabled
    tracer = grid.enable_tracing()
    job_id = grid.submit(ApplicationSpec(name="t", tasks=1))
    grid.wait_for_job(job_id, max_seconds=2 * 3600.0)
    recorded = len(tracer)
    assert recorded > 0
    tracer.disable()
    job2 = grid.submit(ApplicationSpec(name="t2", tasks=1))
    grid.wait_for_job(job2, max_seconds=2 * 3600.0)
    assert len(tracer) == recorded   # nothing new while disabled


def test_tracing_does_not_perturb_determinism():
    import hashlib

    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid
    from repro.sim.usage import PROFILES

    def run(enable):
        grid = Grid(seed=13, lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(3):
            grid.add_node("c0", f"n{i}",
                          profile=PROFILES["office_worker"])
        if enable:
            grid.enable_tracing()
        grid.submit(ApplicationSpec(name="d", tasks=2))
        digest = hashlib.sha256()
        for _ in range(48):
            grid.run_for(1800.0)
            digest.update(repr(grid.loop.now).encode())
            digest.update(repr(grid.loop.events_fired).encode())
        return digest.hexdigest()

    assert run(False) == run(True)


def test_chrome_exporter_groups_by_trace_and_component():
    from repro.obs.exporters import chrome_trace_events, validate_chrome_trace

    clock = SimClock()
    tracer = Tracer(clock=clock)
    with tracer.span("grm.schedule", component="c0"):
        clock.advance_to(2.0)
        with tracer.span("trader.query", component="c0"):
            clock.advance_to(3.0)
    with tracer.span("lrm.tick", component="n1"):
        clock.advance_to(5.0)
    events = chrome_trace_events(tracer.finished)
    assert validate_chrome_trace(events) == 3
    by_name = {e["name"]: e for e in events}
    # Same trace -> same pid; distinct traces -> distinct pids.
    assert (by_name["grm.schedule"]["pid"]
            == by_name["trader.query"]["pid"])
    assert by_name["lrm.tick"]["pid"] != by_name["grm.schedule"]["pid"]
    # Timestamps are sim-seconds scaled to microseconds.
    assert by_name["trader.query"]["ts"] == pytest.approx(2e6)
    assert by_name["trader.query"]["dur"] == pytest.approx(1e6)


def test_validate_chrome_trace_rejects_malformed_events():
    from repro.obs.exporters import TraceFormatError, validate_chrome_trace

    with pytest.raises(TraceFormatError):
        validate_chrome_trace("not a trace")
    with pytest.raises(TraceFormatError):
        validate_chrome_trace({"notTraceEvents": []})
    with pytest.raises(TraceFormatError):
        validate_chrome_trace([{"ph": "X", "ts": 0, "pid": 1, "tid": 1}])
    with pytest.raises(TraceFormatError):
        validate_chrome_trace(
            [{"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]
        )   # complete event without dur
    assert validate_chrome_trace(
        [{"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]
    ) == 1


class TestDroppedSpanAccounting:
    def test_spans_past_cap_are_counted_not_kept(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_dropped_spans_exposed_as_registry_view(self):
        from repro.obs.metrics import MetricsRegistry

        tracer = Tracer(max_spans=1)
        registry = MetricsRegistry()
        tracer.to_metrics(registry)
        with tracer.span("kept"):
            pass
        with tracer.span("dropped"):
            pass
        metrics = registry.snapshot()["metrics"]
        assert metrics["obs.trace.dropped_spans"] == 1
        assert metrics["obs.trace.finished_spans"] == 1

    def test_grid_wires_tracer_views_in_either_enable_order(self):
        from repro.core.grid import Grid

        # metrics first, then tracing
        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        grid.enable_metrics()
        grid.enable_tracing()
        metrics = grid.metrics_snapshot()["metrics"]
        assert metrics["obs.trace.dropped_spans"] == 0
        # tracing first, then metrics
        grid2 = Grid(seed=1, lupa_enabled=False)
        grid2.add_cluster("c0")
        grid2.enable_tracing()
        metrics2 = grid2.metrics_snapshot()["metrics"]
        assert metrics2["obs.trace.dropped_spans"] == 0

    def test_clear_resets_drop_count(self):
        tracer = Tracer(max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.dropped == 0
        assert len(tracer) == 0


class TestAdversarialTraceExport:
    """The exporter and validator must survive malformed span shapes."""

    def _export(self, spans):
        from repro.obs.exporters import chrome_trace_events, validate_chrome_trace

        events = chrome_trace_events(spans)
        assert validate_chrome_trace(events) == len(spans)
        return events

    def test_span_with_missing_parent_id_round_trips(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("orphan"):
            clock.advance_to(1.0)
        span = tracer.finished[0]
        span.parent_id = 9999   # points at a span that was never exported
        (event,) = self._export([span])
        assert event["args"]["parent_id"] == 9999

    def test_unfinished_span_exports_with_zero_duration(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        context = tracer.span("open")
        span = context.span
        assert span.end is None   # never closed
        (event,) = self._export([span])
        assert event["dur"] == 0.0
        assert event["args"]["sim_end_s"] == event["args"]["sim_start_s"]

    def test_zero_duration_span_is_valid(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("instant"):
            pass   # no clock advance
        (event,) = self._export(tracer.finished)
        assert event["dur"] == 0.0

    def test_out_of_order_start_times_still_validate(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        clock.advance_to(10.0)
        with tracer.span("late-first"):
            clock.advance_to(11.0)
        later = tracer.finished[0]
        earlier = Span("t9", 99, None, "early-second", 2.0, {})
        earlier.end = 3.0
        events = self._export([later, earlier])
        assert [e["ts"] for e in events] == [10.0 * 1e6, 2.0 * 1e6]

    def test_adversarial_spans_survive_file_round_trip(self, tmp_path):
        from repro.obs.exporters import (
            export_chrome_trace,
            validate_chrome_trace_file,
        )

        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("parent", component="c0"):
            clock.advance_to(5.0)
        orphan = Span("tX", 7, 424242, "orphan", 9.0, {})   # missing parent
        orphan.end = 9.0                                     # zero duration
        stuck = Span("tY", 8, None, "stuck", 4.0, {})        # never finished
        spans = [orphan, stuck] + tracer.finished            # out of order
        path = str(tmp_path / "trace.json")
        export_chrome_trace(spans, path)
        assert validate_chrome_trace_file(path) == 3
