"""Integration tests: full clusters assembled by the Grid facade.

These exercise the two intra-cluster protocols end to end over the ORB,
with every component on its own ORB endpoint, exactly as Figure 1 wires
them.
"""

import pytest

from repro import ApplicationSpec, Grid, JobState, MachineSpec, TaskState
from repro.apps.spec import (
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.core.ncc import SharingPolicy, VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.network import two_groups
from repro.sim.usage import OFFICE_WORKER


def dedicated_grid(nodes=4, seed=1, **kwargs):
    kwargs.setdefault("policy", "first_fit")
    kwargs.setdefault("lupa_enabled", False)
    grid = Grid(seed=seed, **kwargs)
    grid.add_cluster("c0")
    for i in range(nodes):
        grid.add_node("c0", f"d{i}", dedicated=True)
    grid.run_for(120)
    return grid


class TestSequentialExecution:
    def test_single_job_completes(self):
        grid = dedicated_grid()
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=3.6e6))
        assert grid.wait_for_job(job_id, max_seconds=3 * SECONDS_PER_HOUR)
        job = grid.job(job_id)
        assert job.state is JobState.COMPLETED
        # 3.6e6 MI at 1000 MIPS is one hour; allow tick quantisation.
        assert job.makespan == pytest.approx(3600.0, abs=120.0)

    def test_multi_task_job_runs_in_parallel(self):
        grid = dedicated_grid(nodes=4)
        job_id = grid.submit(
            ApplicationSpec(name="t", tasks=4, work_mips=3.6e6)
        )
        assert grid.wait_for_job(job_id, max_seconds=3 * SECONDS_PER_HOUR)
        job = grid.job(job_id)
        nodes = {t.node for t in job.tasks}
        assert len(nodes) == 4, "tasks should spread over distinct nodes"
        assert job.makespan < 2 * 3600.0

    def test_more_tasks_than_nodes_queue(self):
        grid = dedicated_grid(nodes=2)
        job_id = grid.submit(
            ApplicationSpec(name="t", tasks=4, work_mips=3.6e6,
                            requirements=ResourceRequirements(cpu_fraction=1.0))
        )
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        job = grid.job(job_id)
        assert job.state is JobState.COMPLETED
        # Two waves of two tasks: at least ~2 hours.
        assert job.makespan > 1.9 * 3600.0

    def test_requirements_unmet_keeps_job_pending(self):
        grid = dedicated_grid()
        spec = ApplicationSpec(
            name="huge",
            requirements=ResourceRequirements(min_mips=10_000.0),
        )
        job_id = grid.submit(spec)
        grid.run_for(2 * SECONDS_PER_HOUR)
        job = grid.job(job_id)
        assert job.state is JobState.PENDING
        assert all(t.state is TaskState.PENDING for t in job.tasks)

    def test_preference_prefers_faster_cpu(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "slow", spec=MachineSpec(mips=500), dedicated=True)
        grid.add_node("c0", "fast", spec=MachineSpec(mips=2000), dedicated=True)
        grid.run_for(120)
        # fastest_first policy at grid level would also work; here we use
        # the per-application preference path through the policy context.
        grid2 = Grid(seed=1, policy="fastest_first", lupa_enabled=False)
        grid2.add_cluster("c0")
        grid2.add_node("c0", "slow", spec=MachineSpec(mips=500), dedicated=True)
        grid2.add_node("c0", "fast", spec=MachineSpec(mips=2000), dedicated=True)
        grid2.run_for(120)
        job_id = grid2.submit(ApplicationSpec(name="t", work_mips=1e6))
        grid2.run_for(600)
        assert grid2.job(job_id).tasks[0].node == "fast"

    def test_network_capacity_requirement(self):
        # The paper's information service covers "network usage" too:
        # a node behind a thin link must not get bandwidth-hungry work.
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "dialup",
                      spec=MachineSpec(net_mbps=1.0), dedicated=True)
        grid.add_node("c0", "wired",
                      spec=MachineSpec(net_mbps=100.0), dedicated=True)
        grid.run_for(120)
        spec = ApplicationSpec(
            name="bulkdata",
            requirements=ResourceRequirements(min_net_mbps=10.0),
        )
        job_id = grid.submit(spec)
        grid.run_for(600)
        assert grid.job(job_id).tasks[0].node == "wired"

    def test_mixed_os_requirements(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "linuxbox",
                      spec=MachineSpec(os="linux"), dedicated=True)
        grid.add_node("c0", "winbox",
                      spec=MachineSpec(os="windows"), dedicated=True)
        grid.run_for(120)
        spec = ApplicationSpec(
            name="winonly",
            requirements=ResourceRequirements(os="windows"),
        )
        job_id = grid.submit(spec)
        grid.run_for(600)
        assert grid.job(job_id).tasks[0].node == "winbox"


class TestAsct:
    def test_submission_and_monitoring(self):
        grid = dedicated_grid()
        asct = grid.make_asct("c0")
        job_id = asct.submit(ApplicationSpec(name="t", work_mips=1e6))
        grid.run_for(30 * 60)
        assert asct.is_done(job_id)
        assert asct.progress(job_id) == pytest.approx(1.0)
        events = [e.event for e in asct.events_for(job_id)]
        assert "completed" in events

    def test_cancellation(self):
        grid = dedicated_grid()
        asct = grid.make_asct("c0")
        job_id = asct.submit(ApplicationSpec(name="t", work_mips=1e12))
        grid.run_for(300)
        asct.cancel(job_id)
        status = asct.status(job_id)
        assert status["state"] == "cancelled"
        # Node resources must have been freed.
        grid.run_for(300)
        node = grid.clusters["c0"].nodes["d0"]
        assert node.workstation.machine.grid_cpu == 0.0

    def test_status_shape(self):
        grid = dedicated_grid()
        asct = grid.make_asct("c0")
        job_id = asct.submit(ApplicationSpec(name="t", tasks=2, work_mips=1e6))
        grid.run_for(120)
        status = asct.status(job_id)
        assert status["job_id"] == job_id
        assert len(status["tasks"]) == 2
        for task in status["tasks"]:
            assert {"task_id", "state", "node", "progress_mips"} <= set(task)


class TestEvictionAndRecovery:
    def test_checkpointed_job_survives_owner_interruptions(self):
        grid = Grid(seed=5, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(2):
            grid.add_node("c0", f"ws{i}", profile=OFFICE_WORKER,
                          sharing=VACATE_POLICY)
        grid.run_for(8 * SECONDS_PER_HOUR)   # Monday 08:00: owners arriving
        job_id = grid.submit(ApplicationSpec(
            name="long", work_mips=2e7,
            metadata={"checkpoint_interval_s": 1800.0},
        ))
        assert grid.wait_for_job(job_id, max_seconds=7 * SECONDS_PER_DAY)
        job = grid.job(job_id)
        task = job.tasks[0]
        assert job.state is JobState.COMPLETED
        assert task.evictions > 0, "owners must have interrupted the task"
        assert task.attempts == task.evictions + 1

    def test_checkpointing_reduces_wasted_work(self):
        def run(checkpoint_interval):
            grid = Grid(seed=5, policy="first_fit", lupa_enabled=False)
            grid.add_cluster("c0")
            for i in range(2):
                grid.add_node("c0", f"ws{i}", profile=OFFICE_WORKER,
                              sharing=VACATE_POLICY)
            grid.run_for(8 * SECONDS_PER_HOUR)
            job_id = grid.submit(ApplicationSpec(
                name="long", work_mips=2e7,
                metadata={"checkpoint_interval_s": checkpoint_interval},
            ))
            grid.wait_for_job(job_id, max_seconds=7 * SECONDS_PER_DAY)
            return grid.job(job_id).tasks[0].wasted_mips

        wasted_with = run(900.0)
        wasted_without = run(0.0)
        assert wasted_with < wasted_without

    def test_node_crash_detected_and_task_requeued(self):
        grid = dedicated_grid(nodes=2)
        job_id = grid.submit(ApplicationSpec(
            name="t", work_mips=1e8,
            metadata={"checkpoint_interval_s": 300.0},
        ))
        grid.run_for(1200)
        job = grid.job(job_id)
        crashed_node = job.tasks[0].node
        assert crashed_node is not None
        # Crash: the node's LRM stops reporting (and computing) entirely.
        handle = grid.clusters["c0"].nodes[crashed_node]
        handle.lrm._tick_task.stop()
        handle.lrm._update_task.stop()
        handle.workstation.stop()
        grid.run_for(2 * SECONDS_PER_HOUR)
        job = grid.job(job_id)
        grm = grid.clusters["c0"].grm
        assert grm.stats.nodes_declared_dead == 1
        task = job.tasks[0]
        assert task.node != crashed_node, "task must have moved off the dead node"

    def test_blackout_window_policy(self):
        policy = SharingPolicy(
            blackouts=(  # no sharing during business hours Mon-Fri
                __import__("repro.core.ncc", fromlist=["BlackoutWindow"])
                .BlackoutWindow(9.0, 17.0, days=(0, 1, 2, 3, 4)),
            )
        )
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "ws0", sharing=policy)
        grid.run_for(10 * SECONDS_PER_HOUR)   # Monday 10:00, inside blackout
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=1e6))
        grid.run_for(SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING
        # After 17:00 the node opens up and the job completes.
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)


class TestBspOnGrid:
    def bsp_spec(self, tasks=4, supersteps=8, checkpoint_every=2, work=1e6):
        return ApplicationSpec(
            name="bsp", kind="bsp", tasks=tasks, program="psum",
            work_mips=work, checkpoint_every_supersteps=checkpoint_every,
            metadata={"supersteps": supersteps, "superstep_comm_bytes": 50_000},
        )

    def test_bsp_job_completes_with_pacing(self):
        grid = dedicated_grid(nodes=4, seed=2)
        job_id = grid.submit(self.bsp_spec())
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        coordinator = grid.coordinator(job_id)
        status = coordinator.status()
        assert status["members_completed"] == 4
        assert coordinator.checkpoints_saved == 3   # after supersteps 2, 4, 6
        assert coordinator.comm_seconds_total > 0

    def test_bsp_gang_requires_enough_nodes(self):
        grid = dedicated_grid(nodes=2, seed=2)
        job_id = grid.submit(self.bsp_spec(tasks=4))
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING
        assert grid.clusters["c0"].grm.stats.gang_failures > 0

    def test_bsp_paced_slower_than_unpaced_sequential(self):
        # Same per-task work, separate grids: superstep barriers and
        # communication make the BSP version strictly slower.
        bsp_grid = dedicated_grid(nodes=4, seed=2)
        bsp_id = bsp_grid.submit(self.bsp_spec())
        bsp_grid.wait_for_job(bsp_id, max_seconds=SECONDS_PER_DAY)
        seq_grid = dedicated_grid(nodes=4, seed=2)
        seq_id = seq_grid.submit(ApplicationSpec(name="seq", work_mips=1e6))
        seq_grid.wait_for_job(seq_id, max_seconds=SECONDS_PER_DAY)
        assert bsp_grid.job(bsp_id).makespan >= seq_grid.job(seq_id).makespan

    def test_bsp_survives_member_eviction(self):
        grid = Grid(seed=11, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(4):
            grid.add_node("c0", f"d{i}", dedicated=True)
        # One volatile member host joins too.
        grid.add_node("c0", "ws0", profile=OFFICE_WORKER, sharing=VACATE_POLICY)
        grid.run_for(6 * SECONDS_PER_HOUR)
        job_id = grid.submit(self.bsp_spec(tasks=5, supersteps=16, work=2e7))
        assert grid.wait_for_job(job_id, max_seconds=14 * SECONDS_PER_DAY)
        coordinator = grid.coordinator(job_id)
        job = grid.job(job_id)
        assert job.state is JobState.COMPLETED
        total_evictions = sum(t.evictions for t in job.tasks)
        assert total_evictions > 0, "the office machine must have evicted"
        assert coordinator.rollbacks == total_evictions


class TestVirtualTopology:
    def test_paper_topology_request_placed(self):
        group_a = [f"a{i}" for i in range(4)]
        group_b = [f"b{i}" for i in range(4)]
        network = two_groups(group_a, group_b, intra_mbps=100.0, inter_mbps=10.0)
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0", network=network)
        for node in group_a:
            grid.add_node("c0", node, dedicated=True, segment="group_a")
        for node in group_b:
            grid.add_node("c0", node, dedicated=True, segment="group_b")
        grid.run_for(120)
        reqs = ResourceRequirements(min_mips=500, min_ram_mb=16)
        spec = ApplicationSpec(
            name="topo", kind="bsp", tasks=6, program="p", work_mips=1e6,
            requirements=reqs,
            topology=VirtualTopologyRequest(
                groups=(NodeGroupRequest(3, 100.0, reqs),
                        NodeGroupRequest(3, 100.0, reqs)),
                inter_bandwidth_mbps=10.0,
            ),
            metadata={"supersteps": 4},
        )
        job_id = grid.submit(spec)
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        job = grid.job(job_id)
        segments = {network.segment_of(t.node) for t in job.tasks}
        assert segments == {"group_a", "group_b"}


class TestProtocolAccounting:
    def test_orb_traffic_is_counted(self):
        grid = dedicated_grid(nodes=3)
        grid.run_for(SECONDS_PER_HOUR)
        stats = grid.protocol_stats()
        # 3 LRMs sending updates every 60 s for ~1 h, plus registrations.
        assert stats["requests_handled"] > 150
        assert stats["bytes_sent"] > 10_000

    def test_update_interval_scales_traffic(self):
        def traffic(interval):
            grid = dedicated_grid(nodes=3, update_interval=interval)
            before = grid.protocol_stats()["requests_handled"]
            grid.run_for(SECONDS_PER_HOUR)
            return grid.protocol_stats()["requests_handled"] - before

        assert traffic(30.0) > 1.5 * traffic(120.0)


class TestScaledInformationPlane:
    """The scaling flags (deltas, throttling, batching, fast path) are
    opt-in and must leave a working grid behind when enabled together."""

    def scaled_grid(self, nodes=3, **kwargs):
        return dedicated_grid(
            nodes=nodes, delta_updates=True, full_refresh_every=5,
            max_update_interval=480.0, batched_ingest=True,
            fast_local=True, **kwargs,
        )

    def test_jobs_complete_with_everything_enabled(self):
        grid = self.scaled_grid()
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=1e6))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_HOUR)
        assert grid.job(job_id).state == JobState.COMPLETED

    def test_grm_view_tracks_node_status(self):
        grid = self.scaled_grid()
        grid.run_for(SECONDS_PER_HOUR)
        grm = grid.clusters["c0"].grm
        for node, handle in grid.clusters["c0"].nodes.items():
            stored = dict(grm._nodes[node].last_status)
            expected = handle.lrm.status()
            # The LRM clock moved on since the last (possibly throttled)
            # send; every non-volatile field must match exactly.
            stored.pop("time"), expected.pop("time")
            assert stored == expected

    def test_information_plane_counters_exposed(self):
        grid = self.scaled_grid()
        registry = grid.enable_metrics()
        grid.run_for(SECONDS_PER_HOUR)
        metrics = registry.snapshot()["metrics"]
        assert metrics["lrm.updates.suppressed"] > 0
        assert metrics["lrm.updates.bytes_saved"] > 0
        assert metrics["lrm.updates.delta"] >= 0
        ingest = metrics["grm.c0.ingest_latency_s"]
        assert ingest["count"] > 0

    def test_fast_path_carries_the_update_traffic(self):
        grid = self.scaled_grid()
        before = grid.clusters["c0"].orb.fast_local_calls
        grid.run_for(SECONDS_PER_HOUR)
        assert grid.clusters["c0"].orb.fast_local_calls > before
        # Updates bypass the wire entirely; only non-co-located traffic
        # (none in a single-process cluster) would add bytes.
        assert grid.protocol_stats()["requests_handled"] > 0
