"""Unit tests for the network topology model."""

import pytest

from repro.sim.network import Link, NetworkTopology, flat_lan, two_groups


class TestLink:
    def test_transfer_time(self):
        link = Link(bandwidth_mbps=100.0, latency_ms=1.0)
        # 1 MB at 100 Mbps = 8e6 bits / 1e8 bps = 0.08 s, plus 1 ms latency.
        assert link.transfer_seconds(1_000_000) == pytest.approx(0.081)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link(bandwidth_mbps=0.0)

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            Link(bandwidth_mbps=10.0, latency_ms=-1.0)


class TestTopologyConstruction:
    def test_duplicate_segment_rejected(self):
        topo = NetworkTopology()
        topo.add_segment("lan")
        with pytest.raises(ValueError):
            topo.add_segment("lan")

    def test_connect_unknown_segment(self):
        topo = NetworkTopology()
        topo.add_segment("a")
        with pytest.raises(KeyError):
            topo.connect("a", "ghost", 10.0)

    def test_self_connection_rejected(self):
        topo = NetworkTopology()
        topo.add_segment("a")
        with pytest.raises(ValueError):
            topo.connect("a", "a", 10.0)

    def test_place_on_unknown_segment(self):
        with pytest.raises(KeyError):
            NetworkTopology().place("n1", "ghost")

    def test_segment_of_unplaced_node(self):
        topo = NetworkTopology()
        topo.add_segment("lan")
        with pytest.raises(KeyError):
            topo.segment_of("ghost")


class TestQueries:
    def test_same_segment_link(self):
        topo = flat_lan(["a", "b"], bandwidth_mbps=100.0, latency_ms=2.0)
        link = topo.link_between("a", "b")
        assert link.bandwidth_mbps == 100.0
        assert link.latency_ms == 2.0

    def test_cross_segment_bottleneck(self):
        topo = two_groups(["a1"], ["b1"], intra_mbps=100.0, inter_mbps=10.0)
        link = topo.link_between("a1", "b1")
        assert link.bandwidth_mbps == 10.0
        assert link.latency_ms > 0

    def test_nodes_in_segment(self):
        topo = two_groups(["a1", "a2"], ["b1"])
        assert sorted(topo.nodes_in("group_a")) == ["a1", "a2"]
        assert topo.nodes_in("group_b") == ["b1"]

    def test_disconnected_segments(self):
        topo = NetworkTopology()
        topo.add_segment("x")
        topo.add_segment("y")
        topo.place("n1", "x")
        topo.place("n2", "y")
        assert topo.link_between("n1", "n2") is None
        assert topo.transfer_seconds("n1", "n2", 1000) == float("inf")

    def test_transfer_to_self_is_free(self):
        topo = flat_lan(["a"])
        assert topo.transfer_seconds("a", "a", 10**9) == 0.0

    def test_multi_hop_path(self):
        topo = NetworkTopology()
        for name in ("a", "b", "c"):
            topo.add_segment(name, bandwidth_mbps=100.0)
        topo.connect("a", "b", 50.0)
        topo.connect("b", "c", 20.0)
        topo.place("n1", "a")
        topo.place("n2", "c")
        assert topo.path_between("n1", "n2") == ["a", "b", "c"]
        assert topo.link_between("n1", "n2").bandwidth_mbps == 20.0

    def test_shortest_path_chosen(self):
        # Diamond: a-b-d and a-c-d; both two hops, but a direct a-d link wins.
        topo = NetworkTopology()
        for name in ("a", "b", "d"):
            topo.add_segment(name)
        topo.connect("a", "b", 100.0)
        topo.connect("b", "d", 100.0)
        topo.connect("a", "d", 10.0)
        topo.place("n1", "a")
        topo.place("n2", "d")
        assert topo.path_between("n1", "n2") == ["a", "d"]


class TestBuilders:
    def test_flat_lan_places_everyone(self):
        topo = flat_lan([f"n{i}" for i in range(5)])
        assert len(topo.nodes_in("lan")) == 5

    def test_two_groups_matches_paper_example(self):
        group_a = [f"a{i}" for i in range(50)]
        group_b = [f"b{i}" for i in range(50)]
        topo = two_groups(group_a, group_b, intra_mbps=100.0, inter_mbps=10.0)
        assert topo.link_between("a0", "a1").bandwidth_mbps == 100.0
        assert topo.link_between("a0", "b0").bandwidth_mbps == 10.0
