"""Failure-injection tests: the middleware under broken components."""

import pytest

from repro import ApplicationSpec, Grid, JobState, TaskState
from repro.apps.spec import ResourceRequirements
from repro.core.protocols import GRM_INTERFACE, LRM_INTERFACE
from repro.orb.core import Orb
from repro.orb.exceptions import CommunicationError, RemoteInvocationError
from repro.orb.transport import InProcDomain
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


def dedicated_grid(nodes=3, seed=1, **kwargs):
    kwargs.setdefault("policy", "first_fit")
    kwargs.setdefault("lupa_enabled", False)
    grid = Grid(seed=seed, **kwargs)
    grid.add_cluster("c0")
    for i in range(nodes):
        grid.add_node("c0", f"d{i}", dedicated=True)
    grid.run_for(120)
    return grid


def crash_node(grid, name):
    """Stop every timer on a node: it neither computes nor reports."""
    handle = grid.clusters["c0"].nodes[name]
    handle.lrm._tick_task.stop()
    if handle.lrm._update_task is not None:
        handle.lrm._update_task.stop()
    handle.workstation.stop()
    return handle


class TestNodeCrashes:
    def test_sequential_task_migrates_after_crash(self):
        grid = dedicated_grid(nodes=2)
        job_id = grid.submit(ApplicationSpec(
            name="t", work_mips=5e7,
            metadata={"checkpoint_interval_s": 300.0},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        job = grid.job(job_id)
        first_node = job.tasks[0].node
        progress_before = job.tasks[0].progress_mips
        crash_node(grid, first_node)
        assert grid.wait_for_job(job_id, max_seconds=3 * SECONDS_PER_DAY)
        task = job.tasks[0]
        assert job.state is JobState.COMPLETED
        assert task.node != first_node

    def test_crash_without_checkpoint_restarts_from_zero(self):
        grid = dedicated_grid(nodes=2)
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=5e7))
        grid.run_for(SECONDS_PER_HOUR)
        job = grid.job(job_id)
        crash_node(grid, job.tasks[0].node)
        grid.run_for(6 * SECONDS_PER_HOUR)
        task = job.tasks[0]
        # No checkpoint repository entry exists, so the replacement
        # attempt starts over from zero progress.
        assert task.attempts >= 2
        first_run_progress = next(
            e for e in task.history if e.state == "running"
        )
        assert task.state is TaskState.RUNNING or job.done

    def test_whole_cluster_crash_leaves_jobs_pending(self):
        grid = dedicated_grid(nodes=2)
        for name in list(grid.clusters["c0"].nodes):
            crash_node(grid, name)
        grid.run_for(30 * 60)
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=1e6))
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state in (JobState.PENDING, JobState.SCHEDULING)

    def test_bsp_member_crash_triggers_gang_rollback(self):
        grid = dedicated_grid(nodes=5, seed=3)
        job_id = grid.submit(ApplicationSpec(
            name="bsp", kind="bsp", tasks=4, program="kernel",
            work_mips=4e7, checkpoint_every_supersteps=2,
            metadata={"supersteps": 16, "superstep_comm_bytes": 10_000},
        ))
        grid.run_for(2 * SECONDS_PER_HOUR)
        job = grid.job(job_id)
        victim_node = job.tasks[0].node
        assert victim_node is not None
        crash_node(grid, victim_node)
        assert grid.wait_for_job(job_id, max_seconds=3 * SECONDS_PER_DAY)
        coordinator = grid.coordinator(job_id)
        assert job.state is JobState.COMPLETED
        assert coordinator.rollbacks >= 1
        assert job.tasks[0].node != victim_node


class TestOrbFailures:
    def test_call_to_shutdown_orb_raises_communication_error(self):
        domain = InProcDomain()
        server = Orb("server", domain=domain)
        client = Orb("client", domain=domain)
        ref = server.activate(
            _NullGrm(), GRM_INTERFACE
        )
        stub = client.stub(ref, GRM_INTERFACE)
        server.shutdown()
        with pytest.raises(CommunicationError):
            stub.job_status("x")
        client.shutdown()

    def test_servant_exception_crosses_the_wire(self):
        domain = InProcDomain()
        server = Orb("server", domain=domain)
        client = Orb("client", domain=domain)
        try:
            ref = server.activate(_NullGrm(), GRM_INTERFACE)
            stub = client.stub(ref, GRM_INTERFACE)
            with pytest.raises(RemoteInvocationError) as excinfo:
                stub.cancel_job("boom")
            assert excinfo.value.remote_type == "RuntimeError"
        finally:
            server.shutdown()
            client.shutdown()

    def test_tcp_server_death_mid_session(self):
        server = Orb("tcp-s", domain=InProcDomain(), tcp=True)
        client = Orb("tcp-c", domain=InProcDomain(), tcp=True)
        try:
            ref = server.activate(_NullLrm(), LRM_INTERFACE)
            stub = client.stub(ref, LRM_INTERFACE)
            assert stub.ping() is True
            server.shutdown()
            with pytest.raises(CommunicationError):
                stub.ping()
        finally:
            client.shutdown()


class _NullGrm:
    """GRM servant whose cancel_job always raises (failure injection)."""

    def register_node(self, status, ior):
        pass

    def unregister_node(self, node):
        pass

    def send_update(self, status):
        pass

    def send_delta(self, node, delta):
        pass

    def submit(self, spec):
        return "job0"

    def register_asct(self, job_id, ior):
        pass

    def job_status(self, job_id):
        return {}

    def cancel_job(self, job_id):
        raise RuntimeError("injected failure")

    def task_completed(self, node, task_id, result):
        pass

    def task_evicted(self, node, task_id, progress, resume):
        pass

    def task_reached_limit(self, node, task_id):
        pass


class _NullLrm:
    def ping(self):
        return True

    def get_status(self):
        raise RuntimeError("not needed")

    def request_reservation(self, request):
        return {"accepted": False, "reason": "null"}

    def cancel_reservation(self, task_id):
        pass

    def start_task(self, launch):
        return False

    def stop_task(self, task_id):
        return 0.0

    def set_work_limit(self, task_id, limit):
        pass

    def get_progress(self, task_id):
        return 0.0

    def rollback_task(self, task_id, progress):
        pass


class TestCheckpointCorruption:
    def test_corrupt_cluster_checkpoint_fails_loud_not_silent(self):
        from repro.checkpoint.serializer import CheckpointCorrupted
        from repro.checkpoint.store import CheckpointRecord, MemoryCheckpointStore

        store = MemoryCheckpointStore()
        store.save("t1", {"progress_mips": 100.0}, 1.0)
        record = store.load_latest("t1")
        corrupt = CheckpointRecord(
            record.task_id, record.sequence, record.time,
            record.data[:-4] + b"\x00\x00\x00\x00",
        )
        with pytest.raises(CheckpointCorrupted):
            corrupt.state()


class TestImpossibleWorkloads:
    def test_oversized_memory_requirement_never_places(self):
        grid = dedicated_grid()
        job_id = grid.submit(ApplicationSpec(
            name="hog",
            requirements=ResourceRequirements(mem_mb=10_000.0),
        ))
        grid.run_for(4 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING

    def test_mixed_feasible_and_infeasible_jobs(self):
        grid = dedicated_grid()
        good = grid.submit(ApplicationSpec(name="ok", work_mips=1e6))
        bad = grid.submit(ApplicationSpec(
            name="impossible",
            requirements=ResourceRequirements(min_mips=1e9),
        ))
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(good).state is JobState.COMPLETED
        assert grid.job(bad).state is JobState.PENDING
