"""Tests for ORB request interceptors (tracing/accounting hooks)."""

import pytest

from repro.orb.cdr import Double, Void
from repro.orb.core import Orb
from repro.orb.exceptions import RemoteInvocationError
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import InProcDomain

ECHO = InterfaceDef(
    "test/Echo",
    [
        Operation("echo", (Parameter("x", Double),), Double),
        Operation("fire", (Parameter("x", Double),), Void, oneway=True),
    ],
)


class EchoServant:
    def __init__(self):
        self.fired = []

    def echo(self, x):
        return x

    def fire(self, x):
        self.fired.append(x)


@pytest.fixture
def pair():
    domain = InProcDomain()
    server = Orb("server", domain=domain)
    client = Orb("client", domain=domain)
    yield server, client
    server.shutdown()
    client.shutdown()


def test_client_interceptor_sees_every_call(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    seen = []
    client.add_client_interceptor(
        lambda ref, op, args: seen.append((op.name, args))
    )
    stub.echo(1.0)
    stub.fire(2.0)
    assert seen == [("echo", (1.0,)), ("fire", (2.0,))]


def test_server_interceptor_sees_decoded_args(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    seen = []
    server.add_server_interceptor(
        lambda key, op, args: seen.append((key, op.name, list(args)))
    )
    stub.echo(7.0)
    assert seen == [(ref.key, "echo", [7.0])]


def test_multiple_interceptors_run_in_order(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    order = []
    client.add_client_interceptor(lambda *a: order.append("first"))
    client.add_client_interceptor(lambda *a: order.append("second"))
    stub.echo(0.0)
    assert order == ["first", "second"]


def test_client_interceptor_can_veto(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)

    def veto(ref, op, args):
        raise PermissionError("outbound calls forbidden in this test")

    client.add_client_interceptor(veto)
    with pytest.raises(PermissionError):
        stub.echo(1.0)
    assert server.stats()["requests_handled"] == 0


def test_server_interceptor_exception_becomes_remote_error(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    server.add_server_interceptor(
        lambda key, op, args: (_ for _ in ()).throw(ValueError("denied"))
    )
    with pytest.raises(RemoteInvocationError) as excinfo:
        stub.echo(1.0)
    assert excinfo.value.remote_type == "ValueError"


def test_interceptors_do_not_alter_results(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    client.add_client_interceptor(lambda *a: None)
    server.add_server_interceptor(lambda *a: None)
    assert stub.echo(42.0) == 42.0


def test_client_interceptors_run_before_server_interceptors(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    order = []
    client.add_client_interceptor(lambda *a: order.append("client"))
    server.add_server_interceptor(lambda *a: order.append("server"))
    stub.echo(1.0)
    assert order == ["client", "server"]


def test_second_client_interceptor_exception_prevents_send(pair):
    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    order = []
    client.add_client_interceptor(lambda *a: order.append("first"))

    def veto(ref, op, args):
        raise PermissionError("second interceptor vetoes")

    client.add_client_interceptor(veto)
    with pytest.raises(PermissionError):
        stub.echo(1.0)
    # The first interceptor already ran, but nothing reached the server.
    assert order == ["first"]
    assert server.stats()["requests_handled"] == 0


def test_interceptors_run_on_oneway_calls(pair):
    server, client = pair
    servant = EchoServant()
    ref = server.activate(servant, ECHO)
    stub = client.stub(ref, ECHO)
    seen_client, seen_server = [], []
    client.add_client_interceptor(
        lambda ref, op, args: seen_client.append(op.name)
    )
    server.add_server_interceptor(
        lambda key, op, args: seen_server.append(op.name)
    )
    assert stub.fire(3.0) is None
    assert seen_client == ["fire"]
    assert seen_server == ["fire"]
    assert servant.fired == [3.0]


def test_server_interceptor_exception_on_oneway_skips_servant(pair):
    # A oneway call has no reply channel: the server-side interceptor
    # exception cannot propagate to the client, but it must still stop
    # the servant from running (observe-or-veto semantics hold).
    server, client = pair
    servant = EchoServant()
    ref = server.activate(servant, ECHO)
    stub = client.stub(ref, ECHO)
    server.add_server_interceptor(
        lambda key, op, args: (_ for _ in ()).throw(ValueError("denied"))
    )
    assert stub.fire(9.0) is None   # client sees nothing
    assert servant.fired == []      # but the servant never ran


def test_server_interceptor_veto_skips_servant(pair):
    server, client = pair
    servant = EchoServant()
    ref = server.activate(servant, ECHO)
    stub = client.stub(ref, ECHO)
    calls = []
    servant.echo = lambda x: calls.append(x) or x
    server.add_server_interceptor(
        lambda key, op, args: (_ for _ in ()).throw(ValueError("denied"))
    )
    with pytest.raises(RemoteInvocationError):
        stub.echo(5.0)
    assert calls == []


def test_interceptor_order_identical_on_traced_path(pair):
    # Switching the ORBs onto the traced invoke path must not change
    # interceptor ordering or results.
    from repro.obs.trace import Tracer

    server, client = pair
    ref = server.activate(EchoServant(), ECHO)
    stub = client.stub(ref, ECHO)
    tracer = Tracer()
    client.set_tracer(tracer)
    server.set_tracer(tracer)
    order = []
    client.add_client_interceptor(lambda *a: order.append("client"))
    server.add_server_interceptor(lambda *a: order.append("server"))
    assert stub.echo(6.0) == 6.0
    assert order == ["client", "server"]
    names = [span.name for span in tracer.finished]
    assert names == [f"{ref.key}.echo", "test/Echo.echo"]
