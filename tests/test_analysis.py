"""Unit tests for clustering and metrics."""

import numpy as np
import pytest

from repro.analysis.clustering import (
    best_k,
    kmeans,
    silhouette_score,
    silhouette_score_reference,
)
from repro.analysis.metrics import Table, describe, percentile


def three_blobs(n_per=20, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    data = np.vstack([
        center + rng.normal(0, 0.5, size=(n_per, 2)) for center in centers
    ])
    return data


class TestKmeans:
    def test_recovers_separated_blobs(self):
        data = three_blobs()
        result = kmeans(data, 3, seed=1)
        assert result.k == 3
        # Each blob's 20 points should share one label.
        for start in (0, 20, 40):
            labels = set(result.labels[start:start + 20])
            assert len(labels) == 1
        assert sorted(result.cluster_sizes()) == [20, 20, 20]

    def test_deterministic_per_seed(self):
        data = three_blobs()
        r1 = kmeans(data, 3, seed=7)
        r2 = kmeans(data, 3, seed=7)
        assert np.array_equal(r1.labels, r2.labels)
        assert np.allclose(r1.centroids, r2.centroids)

    def test_predict_assigns_nearest(self):
        data = three_blobs()
        result = kmeans(data, 3, seed=1)
        label_near_origin = result.predict(np.array([0.2, -0.1]))
        assert label_near_origin == result.labels[0]

    def test_k_one(self):
        data = three_blobs()
        result = kmeans(data, 1)
        assert np.allclose(result.centroids[0], data.mean(axis=0))

    def test_more_clusters_than_samples(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 3)), 5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)

    def test_non_2d_data(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_identical_points(self):
        data = np.ones((10, 3))
        result = kmeans(data, 2, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_inertia_decreases_with_k(self):
        data = three_blobs()
        inertia_1 = kmeans(data, 1, seed=0).inertia
        inertia_3 = kmeans(data, 3, seed=0).inertia
        assert inertia_3 < inertia_1

    def test_nonpositive_max_iter_rejected(self):
        # Previously an UnboundLocalError (``iteration`` never bound).
        with pytest.raises(ValueError, match="max_iter"):
            kmeans(three_blobs(), 3, max_iter=0)
        with pytest.raises(ValueError, match="max_iter"):
            kmeans(three_blobs(), 3, max_iter=-5)

    def test_warm_start_from_converged_centroids(self):
        data = three_blobs()
        cold = kmeans(data, 3, seed=1)
        warm = kmeans(data, 3, seed=1, init=cold.centroids)
        # Already at the fixed point: one assignment pass, same answer.
        assert warm.iterations == 1
        assert np.array_equal(warm.labels, cold.labels)
        assert np.array_equal(warm.centroids, cold.centroids)

    def test_warm_start_shape_validated(self):
        data = three_blobs()
        with pytest.raises(ValueError, match="init"):
            kmeans(data, 3, init=np.zeros((2, 2)))


class TestSilhouette:
    def test_well_separated_scores_high(self):
        data = three_blobs()
        result = kmeans(data, 3, seed=1)
        assert silhouette_score(data, result.labels) > 0.7

    def test_single_cluster_scores_zero(self):
        data = three_blobs()
        assert silhouette_score(data, np.zeros(len(data), dtype=int)) == 0.0

    def test_wrong_k_scores_lower(self):
        data = three_blobs()
        good = silhouette_score(data, kmeans(data, 3, seed=1).labels)
        bad = silhouette_score(data, kmeans(data, 6, seed=1).labels)
        assert good > bad

    def test_best_k_finds_three(self):
        data = three_blobs()
        k, result = best_k(data, range(2, 7), seed=1)
        assert k == 3

    def test_best_k_empty_range(self):
        with pytest.raises(ValueError):
            best_k(three_blobs(), range(100, 101))

    def test_chunked_matches_reference(self):
        # The chunked x^2+y^2-2xy form is numerically equivalent (not
        # bit-equal) to the seed's full pairwise broadcast.
        rng = np.random.default_rng(11)
        for k in (2, 3, 5):
            data = rng.random((60, 8))
            labels = kmeans(data, k, seed=2).labels
            assert silhouette_score(data, labels) == pytest.approx(
                silhouette_score_reference(data, labels), abs=1e-6
            )

    def test_chunked_matches_reference_with_singletons(self):
        data = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 10.0], [50.0, 50.0]])
        labels = np.array([0, 0, 1, 2])   # two singleton clusters
        assert silhouette_score(data, labels) == pytest.approx(
            silhouette_score_reference(data, labels), abs=1e-9
        )


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestDescribe:
    def test_summary(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["p50"] == 2.5

    def test_empty(self):
        assert describe([])["count"] == 0

    def test_p99_and_stddev(self):
        values = [float(v) for v in range(1, 101)]
        stats = describe(values)
        assert stats["p99"] == pytest.approx(percentile(values, 99))
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert stats["stddev"] == pytest.approx(variance ** 0.5)

    def test_empty_sample_yields_zero_for_every_statistic(self):
        stats = describe([])
        assert stats == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                         "p50": 0.0, "p95": 0.0, "p99": 0.0, "stddev": 0.0}

    def test_single_value_has_zero_stddev(self):
        stats = describe([5.0])
        assert stats["stddev"] == 0.0
        assert stats["p99"] == 5.0


class TestTable:
    def test_render(self):
        table = Table(["policy", "makespan"], title="E4")
        table.add_row("random", 123.456)
        table.add_row("pattern_aware", 99.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "E4"
        assert "policy" in lines[1]
        assert "random" in text
        assert "123.46" in text

    def test_column_count_enforced(self):
        with pytest.raises(ValueError):
            Table(["a", "b"]).add_row(1)

    def test_bool_formatting(self):
        text = Table(["x"]).add_row(True).render()
        assert "yes" in text

    def test_large_and_small_floats(self):
        text = Table(["v"]).add_row(123456.0).add_row(0.00012).render()
        assert "1.23e+05" in text
        assert "0.00012" in text

    def test_empty_table_renders_headers(self):
        text = Table(["alpha", "beta"]).render()
        assert "alpha" in text
