"""Structured event journal: recording, bounds, schema, grid wiring."""

import json

import pytest

from repro.obs.journal import (
    EVENT_TYPES,
    EventJournal,
    JournalFormatError,
    export_journal_jsonl,
    load_journal_jsonl,
    validate_journal,
    validate_journal_file,
)
from repro.sim.clock import SimClock


class TestEventJournal:
    def test_records_are_stamped_in_sim_time(self):
        clock = SimClock()
        journal = EventJournal(clock=clock)
        journal.record("node_up", node="n0")
        clock.advance_to(42.0)
        event = journal.record("node_down", node="n0", reason="test")
        assert event.time == 42.0
        assert journal.events[0].time == 0.0
        assert event.attrs == {"reason": "test"}

    def test_unknown_type_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValueError):
            journal.record("node_exploded", node="n0")

    def test_sequence_numbers_strictly_increase(self):
        journal = EventJournal()
        events = [journal.record("node_up", node=f"n{i}") for i in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]

    def test_record_returns_event_for_causal_chaining(self):
        journal = EventJournal()
        down = journal.record("node_down", node="n0")
        evicted = journal.record(
            "task_evicted", node="n0", task_id="t1", cause=down.seq
        )
        assert evicted.cause == down.seq

    def test_disabled_journal_records_nothing_and_returns_none(self):
        journal = EventJournal()
        journal.disable()
        assert journal.record("node_up", node="n0") is None
        assert len(journal) == 0
        journal.enable()
        assert journal.record("node_up", node="n0") is not None

    def test_bounded_buffer_counts_drops_and_keeps_seq_advancing(self):
        journal = EventJournal(max_events=3)
        for i in range(5):
            event = journal.record("node_up", node=f"n{i}")
        assert len(journal) == 3
        assert journal.recorded == 3
        assert journal.dropped == 2
        # The tail event still got a (valid, increasing) seq so later
        # survivors can reference it.
        assert event.seq == 4

    def test_select_filters_by_type_node_job_task(self):
        journal = EventJournal()
        journal.record("node_up", node="a")
        journal.record("node_up", node="b")
        journal.record("task_scheduled", node="a", job_id="j", task_id="t")
        assert len(journal.select(type="node_up")) == 2
        assert len(journal.select(node="a")) == 2
        assert len(journal.select(job_id="j", task_id="t")) == 1
        assert journal.select(type="node_down") == []

    def test_to_metrics_publishes_accounting_views(self):
        from repro.obs.metrics import MetricsRegistry

        journal = EventJournal(max_events=1)
        registry = MetricsRegistry()
        journal.to_metrics(registry)
        journal.record("node_up", node="a")
        journal.record("node_up", node="b")
        metrics = registry.snapshot()["metrics"]
        assert metrics["obs.journal.recorded"] == 1
        assert metrics["obs.journal.dropped"] == 1
        assert metrics["obs.journal.size"] == 1

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            EventJournal(max_events=0)


class TestExportAndValidation:
    def _journal(self):
        clock = SimClock()
        journal = EventJournal(clock=clock)
        journal.record("node_up", node="n0", mips=1000.0)
        clock.advance_to(10.0)
        down = journal.record("node_down", node="n0", reason="test")
        journal.record("task_evicted", node="n0", job_id="j0",
                       task_id="t0", cause=down.seq)
        return journal

    def test_jsonl_round_trip_validates(self, tmp_path):
        journal = self._journal()
        path = str(tmp_path / "journal.jsonl")
        assert export_journal_jsonl(journal.events, path) == 3
        events = load_journal_jsonl(path)
        assert validate_journal(events) == 3
        assert validate_journal_file(path) == 3
        assert events[2]["cause"] == events[1]["seq"]
        assert events[1]["attrs"]["reason"] == "test"

    def test_validate_accepts_journal_events_directly(self):
        assert validate_journal(self._journal().events) == 3

    def test_validator_rejects_unknown_type(self):
        events = [e.to_dict() for e in self._journal().events]
        events[0]["type"] = "bogus"
        with pytest.raises(JournalFormatError, match="unknown type"):
            validate_journal(events)

    def test_validator_rejects_non_increasing_seq(self):
        events = [e.to_dict() for e in self._journal().events]
        events[1]["seq"] = events[0]["seq"]
        with pytest.raises(JournalFormatError, match="seq"):
            validate_journal(events)

    def test_validator_rejects_time_going_backwards(self):
        events = [e.to_dict() for e in self._journal().events]
        events[2]["time"] = -1.0
        with pytest.raises(JournalFormatError, match="backwards"):
            validate_journal(events)

    def test_validator_rejects_forward_causal_link(self):
        events = [e.to_dict() for e in self._journal().events]
        events[0]["cause"] = 99
        with pytest.raises(JournalFormatError, match="precede"):
            validate_journal(events)

    def test_validator_rejects_missing_fields_and_bad_types(self):
        with pytest.raises(JournalFormatError, match="missing"):
            validate_journal([{"seq": 0, "time": 0.0, "type": "node_up"}])
        with pytest.raises(JournalFormatError, match="node"):
            validate_journal([{"seq": 0, "time": 0.0, "type": "node_up",
                               "node": 5, "attrs": {}}])
        with pytest.raises(JournalFormatError, match="not an object"):
            validate_journal(["nope"])

    def test_loader_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(JournalFormatError, match="line 2"):
            load_journal_jsonl(str(path))


class TestGridWiring:
    def _grid(self):
        from repro import Grid

        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(2):
            grid.add_node("c0", f"d{i}", dedicated=True)
        return grid

    def test_journal_off_by_default(self):
        grid = self._grid()
        assert grid.journal is None
        for handle in grid.clusters.values():
            assert handle.grm.journal is None
            for node in handle.nodes.values():
                assert node.lrm.journal is None

    def test_enable_is_idempotent_and_retroactively_rosters_nodes(self):
        grid = self._grid()
        grid.run_for(120)
        journal = grid.enable_journal()
        assert grid.enable_journal() is journal
        ups = journal.select(type="node_up")
        assert sorted(e.node for e in ups) == ["d0", "d1"]
        assert all(e.attrs.get("retroactive") for e in ups)

    def test_node_added_after_enable_is_journalled_live(self):
        grid = self._grid()
        grid.enable_journal()
        grid.add_node("c0", "d2", dedicated=True)
        grid.run_for(120)
        ups = grid.journal.select(type="node_up", node="d2")
        assert len(ups) == 1
        assert not ups[0].attrs.get("retroactive")
        assert grid.clusters["c0"].nodes["d2"].lrm.journal is grid.journal

    def test_job_lifecycle_emits_linked_events(self):
        from repro import ApplicationSpec

        grid = self._grid()
        grid.run_for(120)
        journal = grid.enable_journal()
        job_id = grid.submit(ApplicationSpec(
            name="t", work_mips=1e6,
            metadata={"checkpoint_interval_s": 300.0},
        ))
        assert grid.wait_for_job(job_id, max_seconds=4 * 3600.0)
        types = {e.type for e in journal.events}
        assert "reservation_granted" in types
        assert "task_scheduled" in types
        assert "checkpoint_saved" in types
        assert "task_completed" in types
        scheduled = journal.select(type="task_scheduled", job_id=job_id)
        assert scheduled and scheduled[0].attrs["initial_progress_mips"] == 0.0
        assert validate_journal(journal.events) == len(journal)

    def test_remove_node_emits_caused_eviction(self):
        from repro import ApplicationSpec

        grid = self._grid()
        grid.run_for(120)
        journal = grid.enable_journal()
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=5e7))
        grid.run_for(600)
        victim = grid.job(job_id).tasks[0].node
        grid.remove_node("c0", victim)
        downs = journal.select(type="node_down", node=victim)
        assert len(downs) == 1
        assert downs[0].attrs["reason"] == "removed"
        evictions = journal.select(type="task_evicted")
        assert evictions and evictions[0].cause == downs[0].seq

    def test_bsp_job_emits_supersteps_and_batch_checkpoints(self):
        from repro import ApplicationSpec

        grid = self._grid()
        grid.run_for(120)
        journal = grid.enable_journal()
        job_id = grid.submit(ApplicationSpec(
            name="bsp", kind="bsp", tasks=2, program="kernel",
            work_mips=4e6, checkpoint_every_supersteps=2,
            metadata={"supersteps": 4, "superstep_comm_bytes": 1000},
        ))
        assert grid.wait_for_job(job_id, max_seconds=24 * 3600.0)
        steps = journal.select(type="bsp_superstep", job_id=job_id)
        # The last barrier releases members to run to completion, so the
        # final superstep ends in task_completed events, not a barrier.
        assert [e.attrs["superstep"] for e in steps] == [1, 2, 3]
        saves = journal.select(type="checkpoint_saved", job_id=job_id)
        assert saves and all(e.attrs["members"] >= 1 for e in saves)
        assert len(journal.select(type="task_completed", job_id=job_id)) == 2

    def test_update_from_unregistered_node_is_journalled_as_dropped(self):
        grid = self._grid()
        journal = grid.enable_journal()
        grm = grid.clusters["c0"].grm
        grm.send_update({"node": "ghost", "mips": 1000.0})
        drops = journal.select(type="update_dropped", node="ghost")
        assert len(drops) == 1
        assert drops[0].attrs["reason"] == "unregistered"

    def test_reservation_lease_expiry_is_a_violation_event(self):
        grid = self._grid()
        journal = grid.enable_journal()
        lrm = grid.clusters["c0"].nodes["d0"].lrm
        reply = lrm.request_reservation({
            "task_id": "tx", "cpu_fraction": 0.5, "mem_mb": 64.0,
            "disk_mb": 0.0, "lease_seconds": 30.0,
        })
        assert reply["accepted"]
        grid.run_for(60.0)   # never confirmed -> expires
        violations = journal.select(type="reservation_violated", node="d0")
        assert len(violations) == 1
        assert violations[0].task_id == "tx"


def test_journal_does_not_perturb_determinism():
    """Same seed, with and without the journal: identical event stream."""
    import hashlib

    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid
    from repro.sim.usage import PROFILES

    def run(enable):
        grid = Grid(seed=17, lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(3):
            grid.add_node("c0", f"n{i}",
                          profile=PROFILES["office_worker"])
        if enable:
            grid.enable_journal()
        grid.submit(ApplicationSpec(
            name="d", tasks=2,
            metadata={"checkpoint_interval_s": 600.0},
        ))
        digest = hashlib.sha256()
        for _ in range(48):
            grid.run_for(1800.0)
            digest.update(repr(grid.loop.now).encode())
            digest.update(repr(grid.loop.events_fired).encode())
        digest.update(repr(grid.protocol_stats()).encode())
        return digest.hexdigest()

    assert run(False) == run(True)


def test_event_type_vocabulary_is_the_documented_set():
    assert EVENT_TYPES == {
        "node_up", "node_down",
        "cluster_up", "cluster_down",
        "task_scheduled", "task_evicted", "task_restored", "task_completed",
        "checkpoint_saved", "checkpoint_restored",
        "reservation_granted", "reservation_violated",
        "bsp_superstep", "update_dropped",
    }


def test_export_accepts_plain_dicts(tmp_path):
    path = str(tmp_path / "j.jsonl")
    events = [{"seq": 0, "time": 0.0, "type": "node_up", "node": "a",
               "job_id": None, "task_id": None, "cause": None, "attrs": {}}]
    assert export_journal_jsonl(events, path) == 1
    assert json.loads(open(path).read())["node"] == "a"
