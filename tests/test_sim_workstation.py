"""Unit tests for the workstation owner-activity model."""

import random

import pytest

from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import ALWAYS_IDLE, ERRATIC, OFFICE_WORKER
from repro.sim.workstation import Workstation


def make_ws(profile=OFFICE_WORKER, seed=1, **kwargs):
    loop = EventLoop()
    ws = Workstation(
        loop,
        "ws0",
        spec=MachineSpec(mips=1000.0, ram_mb=256.0),
        profile=profile,
        rng=random.Random(seed),
        **kwargs,
    )
    return loop, ws


def test_always_idle_never_present():
    loop, ws = make_ws(profile=ALWAYS_IDLE)
    loop.run_until(SECONDS_PER_WEEK)
    assert not ws.owner_present
    assert ws.machine.owner_cpu == 0.0


def test_office_worker_shows_up_during_the_day():
    loop, ws = make_ws(profile=OFFICE_WORKER)
    present_samples = 0
    total = 0
    # Sample Tuesday 9h-18h over several weeks.
    for week in range(4):
        start = week * SECONDS_PER_WEEK + SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR
        for offset in range(0, 9 * SECONDS_PER_HOUR, 1800):
            loop.run_until(start + offset)
            total += 1
            present_samples += ws.owner_present
    assert present_samples / total > 0.5


def test_office_worker_rarely_present_at_night():
    loop, ws = make_ws(profile=OFFICE_WORKER)
    present = 0
    total = 0
    for week in range(4):
        start = week * SECONDS_PER_WEEK + 2 * SECONDS_PER_HOUR
        for offset in range(0, 3 * SECONDS_PER_HOUR, 1800):
            loop.run_until(start + offset)
            total += 1
            present += ws.owner_present
    assert present / total < 0.2


def test_presence_drives_machine_load():
    loop, ws = make_ws(profile=ERRATIC)
    saw_loaded = False
    saw_unloaded = False
    for _ in range(500):
        loop.step()
        if ws.owner_present:
            saw_loaded = saw_loaded or ws.machine.owner_cpu > 0
            assert ws.machine.keyboard_active
        else:
            saw_unloaded = True
            assert ws.machine.owner_cpu == 0.0
    assert saw_loaded and saw_unloaded


def test_owner_change_listener_fires_on_transitions():
    loop, ws = make_ws(profile=ERRATIC)
    transitions = []
    ws.on_owner_change(transitions.append)
    loop.run_until(2 * SECONDS_PER_DAY)
    assert transitions, "erratic owner should come and go within two days"
    # Transitions must alternate: arrive, leave, arrive...
    for a, b in zip(transitions, transitions[1:]):
        assert a != b


def test_deterministic_given_seed():
    loop1, ws1 = make_ws(seed=7)
    loop2, ws2 = make_ws(seed=7)
    history1, history2 = [], []
    ws1.on_owner_change(lambda p: history1.append((loop1.now, p)))
    ws2.on_owner_change(lambda p: history2.append((loop2.now, p)))
    loop1.run_until(SECONDS_PER_WEEK)
    loop2.run_until(SECONDS_PER_WEEK)
    assert history1 == history2
    assert history1


def test_different_seeds_diverge():
    loop1, ws1 = make_ws(seed=1)
    loop2, ws2 = make_ws(seed=2)
    h1, h2 = [], []
    ws1.on_owner_change(lambda p: h1.append((loop1.now, p)))
    ws2.on_owner_change(lambda p: h2.append((loop2.now, p)))
    loop1.run_until(SECONDS_PER_WEEK)
    loop2.run_until(SECONDS_PER_WEEK)
    assert h1 != h2


def test_stop_detaches_from_loop():
    loop, ws = make_ws(profile=ERRATIC)
    loop.run_until(SECONDS_PER_DAY)
    ws.stop()
    fired_before = loop.events_fired
    loop.run_until(2 * SECONDS_PER_DAY)
    assert loop.events_fired == fired_before


def test_holidays_suppress_presence():
    loop, ws = make_ws(profile=OFFICE_WORKER, holidays={1})  # Tuesday of week 0
    tuesday_noon = SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
    assert ws.is_holiday(tuesday_noon)
    assert ws.true_mean_presence(tuesday_noon) < 0.05
    wednesday_morning = 2 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
    assert not ws.is_holiday(wednesday_morning)
    assert ws.true_mean_presence(wednesday_morning) > 0.8


def test_true_mean_presence_matches_profile():
    loop, ws = make_ws(profile=OFFICE_WORKER)
    when = SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR  # Tuesday 10:00
    assert ws.true_mean_presence(when) == pytest.approx(
        OFFICE_WORKER.mean_presence(1, 10.0)
    )
