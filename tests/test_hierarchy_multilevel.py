"""Tests for multi-level (3-tier) GRM hierarchies."""

import pytest

from repro import ApplicationSpec, Grid, JobState
from repro.core.hierarchy import ClusterUplink, NoCapacity, ParentGrm
from repro.core.protocols import GRM_INTERFACE, PARENT_GRM_INTERFACE
from repro.orb.core import Orb
from repro.sim.clock import SECONDS_PER_HOUR


def build_campus(grid, campus, clusters, nodes_each):
    """One mid-level ParentGrm over ``clusters`` leaf clusters."""
    orb = Orb(f"{campus}-orb", domain=grid.domain)
    parent = ParentGrm(grid.loop, orb, name=campus)
    parent_ior = orb.activate(
        parent, PARENT_GRM_INTERFACE, key=f"{campus}/parent"
    ).to_string()
    facade_ior = orb.activate(
        parent, GRM_INTERFACE, key=f"{campus}/grm-facade"
    ).to_string()
    for cluster in clusters:
        handle = grid.add_cluster(cluster)
        for i in range(nodes_each):
            grid.add_node(cluster, f"{cluster}-n{i}", dedicated=True)
        stub = handle.orb.stub(parent_ior, PARENT_GRM_INTERFACE)
        ClusterUplink(grid.loop, handle.grm, stub, handle.grm_ior,
                      interval=120.0)
    return parent, parent_ior, facade_ior, orb


@pytest.fixture
def three_tier():
    """root -> {campus_a: 2x2 nodes, campus_b: 2x4 nodes}."""
    grid = Grid(seed=7, policy="first_fit", lupa_enabled=False,
                update_interval=60.0, tick_interval=60.0)
    campus_a, a_ior, a_facade, a_orb = build_campus(
        grid, "campus_a", ["a1", "a2"], nodes_each=2
    )
    campus_b, b_ior, b_facade, b_orb = build_campus(
        grid, "campus_b", ["b1", "b2"], nodes_each=4
    )
    root_orb = Orb("root-orb", domain=grid.domain)
    root = ParentGrm(grid.loop, root_orb, name="root")
    root_ior = root_orb.activate(
        root, PARENT_GRM_INTERFACE, key="root/parent"
    ).to_string()
    campus_a.attach_parent(
        a_orb.stub(root_ior, PARENT_GRM_INTERFACE), a_facade,
        interval=120.0,
    )
    campus_b.attach_parent(
        b_orb.stub(root_ior, PARENT_GRM_INTERFACE), b_facade,
        interval=120.0,
    )
    grid.run_for(300)
    return grid, root, campus_a, campus_b


class TestAggregation:
    def test_root_sees_campuses_as_clusters(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        assert root.clusters == ["campus_a", "campus_b"]
        summary = root.summary_of("campus_b")
        assert summary["nodes"] == 8   # 2 clusters x 4 nodes

    def test_aggregate_summary_sums_children(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        summary = campus_a.aggregate_summary()
        assert summary["cluster"] == "campus_a"
        assert summary["nodes"] == 4
        assert summary["sharing_nodes"] == 4

    def test_summaries_flow_upward_periodically(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        before = root.summaries_received
        grid.run_for(SECONDS_PER_HOUR)
        assert root.summaries_received > before


class TestEscalation:
    def gang(self, tasks):
        return ApplicationSpec(
            name="gang", kind="bsp", tasks=tasks, program="p",
            work_mips=2e5, metadata={"supersteps": 2},
        )

    def test_sibling_cluster_placement_stays_in_campus(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        # a1 has 2 nodes; a 2-task gang overflowing... it fits: use a
        # 2-task gang on a cluster with capacity so it stays local.
        job_id = grid.submit(self.gang(2), cluster="a1")
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.COMPLETED
        assert root.remote_submissions == 0

    def test_escalates_to_root_when_campus_is_too_small(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        # 3 tasks: neither a1 nor a2 (2 nodes each) can gang it; campus_b
        # clusters have 4 nodes each.
        job_id = grid.submit(self.gang(3), cluster="a1")
        grid.run_for(3 * SECONDS_PER_HOUR)
        local = grid.job(job_id)
        assert local.forwarded_to
        assert campus_a.upward_forwards == 1
        assert root.remote_submissions == 1
        # The job really ran somewhere under campus_b.
        found = None
        for cluster in ("b1", "b2"):
            try:
                found = grid.clusters[cluster].grm.job(local.forwarded_to)
                break
            except KeyError:
                continue
        assert found is not None
        assert found.state is JobState.COMPLETED

    def test_impossible_everywhere_is_rejected_not_looped(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        job_id = grid.submit(self.gang(50), cluster="a1")
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING
        assert root.remote_submissions == 0
        assert root.remote_rejections >= 1


class TestGrmFacade:
    def test_submit_delegates_and_status_follows(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        job_id = campus_b.submit(
            ApplicationSpec(name="direct", work_mips=2e5).to_dict()
        )
        grid.run_for(SECONDS_PER_HOUR)
        status = campus_b.job_status(job_id)
        assert status["state"] == "completed"

    def test_no_capacity_raises(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        with pytest.raises(NoCapacity):
            campus_a.submit(
                ApplicationSpec(
                    name="huge", tasks=100, work_mips=1e5
                ).to_dict()
            )

    def test_cancel_delegates(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        job_id = campus_b.submit(
            ApplicationSpec(name="slow", work_mips=1e12).to_dict()
        )
        grid.run_for(600)
        campus_b.cancel_job(job_id)
        assert campus_b.job_status(job_id)["state"] == "cancelled"

    def test_unknown_job(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        with pytest.raises(KeyError):
            campus_a.job_status("ghost")

    def test_node_registration_refused_at_parents(self, three_tier):
        grid, root, campus_a, campus_b = three_tier
        with pytest.raises(TypeError):
            campus_a.register_node({}, "IOR:x")
