"""Tests for the scaled wide-area plane (PR 9).

Equivalence discipline, same as the information/execution planes: every
optimisation keeps the seed implementation alive as an oracle —
``aggregate_oracle()`` for incremental aggregation, ``_rank_candidates``
for indexed placement — and hypothesis drives arbitrary interleavings
against both.  Float fields use an exact binary grid (multiples of 0.25)
so incremental add/subtract running sums are bit-equal to fresh sums.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApplicationSpec, Grid, JobState
from repro.apps.spec import ResourceRequirements
from repro.core.hierarchy import (
    ClusterUplink,
    HierarchyError,
    NoCapacity,
    ParentGrm,
)
from repro.core.protocols import GRM_INTERFACE, PARENT_GRM_INTERFACE
from repro.orb.core import Orb
from repro.orb.exceptions import OrbError
from repro.orb.transport import InProcDomain
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.events import EventLoop


class FakeChildGrm:
    """A GRM-shaped servant: just enough to register under GRM_INTERFACE."""

    def __init__(self, name="fake"):
        self.name = name
        self.submitted = []

    def register_node(self, status, lrm_ior):
        pass

    def unregister_node(self, node):
        pass

    def send_update(self, status):
        pass

    def send_delta(self, node, delta):
        pass

    def submit(self, spec):
        self.submitted.append(spec)
        return f"{self.name}-job-{len(self.submitted)}"

    def register_asct(self, job_id, asct_ior):
        pass

    def job_status(self, job_id):
        return {"state": "running"}

    def cancel_job(self, job_id):
        pass

    def task_completed(self, node, task_id, result):
        pass

    def task_evicted(self, node, task_id, progress, resume):
        pass

    def task_reached_limit(self, node, task_id):
        pass


def make_parent(**kwargs):
    loop = EventLoop()
    orb = Orb("parent-test-orb", domain=InProcDomain())
    child_ior = orb.activate(
        FakeChildGrm(), GRM_INTERFACE, key="fake/grm"
    ).to_string()
    parent = ParentGrm(loop, orb, name="parent", **kwargs)
    return loop, orb, parent, child_ior


# Exact binary grid: all values are multiples of 0.25, so incremental
# running sums are bit-identical to recomputed sums.
grid_floats = st.integers(min_value=0, max_value=4000).map(
    lambda n: n * 0.25
)
small_ints = st.integers(min_value=0, max_value=200)


def summary_strategy(cluster):
    return st.fixed_dictionaries({
        "cluster": st.just(cluster),
        "time": grid_floats,
        "nodes": small_ints,
        "sharing_nodes": small_ints,
        "free_cpu_total": grid_floats,
        "free_mem_total_mb": grid_floats,
        "max_node_mips": grid_floats,
        "pending_tasks": small_ints,
    })


_CLUSTERS = [f"c{i}" for i in range(6)]

ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("register"),
            st.sampled_from(_CLUSTERS),
        ).flatmap(lambda t: st.tuples(
            st.just(t[0]), st.just(t[1]), summary_strategy(t[1])
        )),
        st.tuples(
            st.just("summary"),
            st.sampled_from(_CLUSTERS),
        ).flatmap(lambda t: st.tuples(
            st.just(t[0]), st.just(t[1]), summary_strategy(t[1])
        )),
        st.tuples(
            st.just("delta"),
            st.sampled_from(_CLUSTERS),
            st.dictionaries(
                st.sampled_from([
                    "nodes", "sharing_nodes", "free_cpu_total",
                    "free_mem_total_mb", "max_node_mips", "pending_tasks",
                ]),
                small_ints,
                max_size=4,
            ),
        ),
        st.tuples(
            st.just("unregister"),
            st.sampled_from(_CLUSTERS),
            st.just(None),
        ),
    ),
    max_size=40,
)


class TestIncrementalAggregation:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy)
    def test_matches_oracle_under_arbitrary_interleavings(self, ops):
        loop, orb, parent, child_ior = make_parent(
            incremental_aggregation=True, indexed_placement=True
        )
        registered = set()
        for op, cluster, payload in ops:
            if op == "register":
                parent.register_cluster(payload, child_ior)
                registered.add(cluster)
            elif op == "summary" and cluster in registered:
                parent.send_summary(payload)
            elif op == "delta" and cluster in registered:
                # Integer-valued deltas stay on the exact grid.
                delta = dict(payload)
                for key in ("free_cpu_total", "free_mem_total_mb",
                            "max_node_mips"):
                    if key in delta:
                        delta[key] = float(delta[key])
                parent.send_summary_delta(cluster, delta)
            elif op == "unregister":
                parent.unregister_cluster(cluster)
                registered.discard(cluster)
            incremental = parent.aggregate_summary()
            oracle = parent.aggregate_oracle()
            assert incremental == oracle

    def test_empty_parent_aggregates_to_zero(self):
        _, _, parent, _ = make_parent(incremental_aggregation=True)
        summary = parent.aggregate_summary()
        assert summary["nodes"] == 0
        assert summary["max_node_mips"] == 0.0
        assert summary == parent.aggregate_oracle()


def spec_dict(tasks=1, cpu_fraction=1.0, min_mips=0.0):
    return ApplicationSpec(
        name="probe", tasks=tasks,
        requirements=ResourceRequirements(
            cpu_fraction=cpu_fraction, min_mips=min_mips
        ),
    ).to_dict()


class TestIndexedPlacement:
    @settings(max_examples=60, deadline=None)
    @given(
        # Few distinct free-CPU levels force ties, exercising the
        # registration-order tie-break against the seed stable sort.
        free_cpus=st.lists(
            st.sampled_from([0.0, 2.0, 4.0, 4.0, 8.0]),
            min_size=1, max_size=12,
        ),
        sharing=st.lists(small_ints, min_size=12, max_size=12),
        mips=st.lists(grid_floats, min_size=12, max_size=12),
        tasks=st.integers(min_value=1, max_value=8),
        min_mips=st.sampled_from([0.0, 100.0, 600.0]),
        origin_idx=st.integers(min_value=0, max_value=12),
    )
    def test_order_matches_seed_rank(self, free_cpus, sharing, mips,
                                     tasks, min_mips, origin_idx):
        loop, orb, parent, child_ior = make_parent(indexed_placement=True)
        for i, free_cpu in enumerate(free_cpus):
            parent.register_cluster({
                "cluster": f"c{i}", "time": 0.0,
                "nodes": sharing[i] + 1, "sharing_nodes": sharing[i],
                "free_cpu_total": free_cpu,
                "free_mem_total_mb": 1024.0,
                "max_node_mips": mips[i],
                "pending_tasks": 0,
            }, child_ior)
        origin = f"c{origin_idx}"
        spec = ApplicationSpec.from_dict(spec_dict(
            tasks=tasks, min_mips=min_mips
        ))
        seed_order = [
            r.cluster for r in parent._rank_candidates(spec, origin)
        ]
        indexed_order = [
            r.cluster for r in parent._indexed_candidates(
                tasks * 1.0, tasks, min_mips, origin
            )
        ]
        assert indexed_order == seed_order

    def test_reregistration_keeps_tie_rank(self):
        loop, orb, parent, child_ior = make_parent(indexed_placement=True)

        def summary(cluster, free_cpu):
            return {
                "cluster": cluster, "time": 0.0, "nodes": 4,
                "sharing_nodes": 4, "free_cpu_total": free_cpu,
                "free_mem_total_mb": 512.0, "max_node_mips": 1000.0,
                "pending_tasks": 0,
            }

        for name in ("a", "b", "c"):
            parent.register_cluster(summary(name, 4.0), child_ior)
        # Re-register "a": the seed dict keeps its key position, so the
        # tie order must stay a, b, c.
        parent.register_cluster(summary("a", 4.0), child_ior)
        spec = ApplicationSpec.from_dict(spec_dict(tasks=1))
        assert [r.cluster for r in parent._rank_candidates(spec, "")] == \
            [r.cluster for r in parent._indexed_candidates(1.0, 1, 0.0, "")]

    def test_index_prunes_before_any_remote_call(self):
        loop, orb, parent, child_ior = make_parent(indexed_placement=True)
        for i in range(8):
            parent.register_cluster({
                "cluster": f"c{i}", "time": 0.0, "nodes": 2,
                "sharing_nodes": 2, "free_cpu_total": float(i),
                "free_mem_total_mb": 512.0, "max_node_mips": 1000.0,
                "pending_tasks": 0,
            }, child_ior)
        # needed_cpu = 6: only c6 and c7 qualify; the walk must stop at
        # the first under-provisioned entry instead of scanning all 8.
        eligible = parent._indexed_candidates(6.0, 2, 0.0, "")
        assert [r.cluster for r in eligible] == ["c7", "c6"]
        assert parent.placements_admitted == 2
        assert parent.placements_skipped_by_index == 6


class TestSatelliteFixes:
    def test_delegated_jobs_is_plain_attribute(self):
        _, _, parent, _ = make_parent()
        assert parent._delegated_jobs == {}
        assert "_delegated_jobs" in vars(parent)

    def test_unregistered_summary_counted_and_journalled(self):
        from repro.obs.journal import EventJournal
        _, _, parent, _ = make_parent()
        journal = EventJournal()
        parent.set_journal(journal)
        parent.send_summary({"cluster": "ghost", "time": 0.0, "nodes": 1,
                             "sharing_nodes": 1, "free_cpu_total": 1.0,
                             "free_mem_total_mb": 1.0,
                             "max_node_mips": 1.0, "pending_tasks": 0})
        parent.send_summary_delta("ghost", {"time": 1.0})
        assert parent.summaries_dropped == 2
        dropped = journal.select(type="update_dropped")
        assert len(dropped) == 2
        assert dropped[0].attrs["cluster"] == "ghost"
        assert parent.summaries_received == 0

    def test_dead_child_wrapped_in_hierarchy_error(self):
        grid = Grid(seed=3, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("alpha")
        for i in range(2):
            grid.add_node("alpha", f"a{i}", dedicated=True)
        parent, _ = grid.connect_clusters_to_parent()
        grid.run_for(120)
        job_id = parent.submit(
            ApplicationSpec(name="slow", work_mips=1e12).to_dict()
        )
        grid.run_for(600)
        # The cluster manager dies mid-flight.
        grid.clusters["alpha"].orb.shutdown()
        with pytest.raises(HierarchyError) as excinfo:
            parent.job_status(job_id)
        assert excinfo.value.cluster == "alpha"
        assert isinstance(excinfo.value.cause, OrbError)
        with pytest.raises(HierarchyError):
            parent.cancel_job(job_id)

    def test_unknown_job_still_raises_key_error(self):
        _, _, parent, _ = make_parent()
        with pytest.raises(KeyError):
            parent.job_status("ghost")


class TestCycleRejection:
    def test_visited_cycle_rejected(self):
        _, _, parent, child_ior = make_parent()
        spec = spec_dict()
        spec["metadata"] = {"visited": ["parent"]}
        assert parent.submit_remote(spec, "elsewhere") == ""
        assert parent.remote_rejections == 1


def build_scaled_three_tier(**flags):
    grid = Grid(seed=7, policy="first_fit", lupa_enabled=False,
                update_interval=60.0, tick_interval=60.0,
                summary_interval=120.0, **flags)
    for cluster, n in (("a1", 2), ("a2", 2), ("b1", 4), ("b2", 4)):
        grid.add_cluster(cluster)
        for i in range(n):
            grid.add_node(cluster, f"{cluster}-n{i}", dedicated=True)
    parents, uplinks = grid.build_hierarchy({
        "root": [{"campus_a": ["a1", "a2"]}, {"campus_b": ["b1", "b2"]}],
    })
    grid.run_for(300)
    return grid, parents, uplinks


ALL_FLAGS = dict(
    incremental_summaries=True, indexed_placement=True,
    delta_uplinks=True, max_summary_interval=960.0,
)


class TestScaledHierarchy:
    def test_build_hierarchy_shape(self):
        grid, parents, uplinks = build_scaled_three_tier(**ALL_FLAGS)
        assert sorted(parents) == ["campus_a", "campus_b", "root"]
        assert len(uplinks) == 4
        assert parents["root"].clusters == ["campus_a", "campus_b"]
        assert parents["campus_a"].clusters == ["a1", "a2"]
        summary = parents["root"].summary_of("campus_b")
        assert summary["nodes"] == 8

    def test_three_level_escalation_with_flags_on(self):
        grid, parents, uplinks = build_scaled_three_tier(**ALL_FLAGS)
        spec = ApplicationSpec(
            name="gang", kind="bsp", tasks=3, program="p",
            work_mips=2e5, metadata={"supersteps": 2},
        )
        job_id = grid.submit(spec, cluster="a1")
        grid.run_for(3 * SECONDS_PER_HOUR)
        local = grid.job(job_id)
        assert local.forwarded_to
        assert parents["campus_a"].upward_forwards == 1
        assert parents["campus_a"].placements_escalated == 1
        assert parents["root"].remote_submissions == 1
        found = None
        for cluster in ("b1", "b2"):
            try:
                found = grid.clusters[cluster].grm.job(local.forwarded_to)
                break
            except KeyError:
                continue
        assert found is not None
        assert found.state is JobState.COMPLETED

    def test_same_workload_same_placement_as_seed_flags(self):
        results = {}
        for label, flags in (("seed", {}), ("scaled", ALL_FLAGS)):
            grid, parents, _ = build_scaled_three_tier(**flags)
            spec = ApplicationSpec(
                name="gang", kind="bsp", tasks=3, program="p",
                work_mips=2e5, metadata={"supersteps": 2},
            )
            job_id = grid.submit(spec, cluster="a1")
            grid.run_for(3 * SECONDS_PER_HOUR)
            results[label] = grid.job(job_id).forwarded_to
        assert results["seed"] == results["scaled"]

    def test_flags_on_run_is_deterministic(self):
        def digest():
            import hashlib
            grid, parents, _ = build_scaled_three_tier(**ALL_FLAGS)
            job_id = grid.submit(
                ApplicationSpec(
                    name="gang", kind="bsp", tasks=3, program="p",
                    work_mips=2e5, metadata={"supersteps": 2},
                ),
                cluster="a1",
            )
            h = hashlib.sha256()
            for _ in range(24):
                grid.run_for(1800.0)
                h.update(repr(grid.loop.now).encode())
                h.update(repr(grid.loop.events_fired).encode())
            h.update(repr(grid.protocol_stats()).encode())
            return h.hexdigest()

        assert digest() == digest()


class TestDeltaUplinks:
    def build(self, **extra):
        grid = Grid(seed=5, policy="first_fit", lupa_enabled=False,
                    update_interval=60.0, tick_interval=60.0,
                    summary_interval=120.0, delta_uplinks=True,
                    incremental_summaries=True, indexed_placement=True,
                    max_summary_interval=480.0, **extra)
        grid.add_cluster("alpha")
        grid.add_cluster("beta")
        for i in range(2):
            grid.add_node("alpha", f"a{i}", dedicated=True)
            grid.add_node("beta", f"b{i}", dedicated=True)
        return grid

    def test_parent_view_tracks_sender_baseline_exactly(self):
        grid = self.build()
        parent, uplinks = grid.connect_clusters_to_parent()
        grid.run_for(4 * SECONDS_PER_HOUR)
        for uplink in uplinks:
            cluster = uplink._grm.cluster
            # The delta protocol's invariant: the receiver's stored state
            # is exactly the sender's baseline.
            assert parent.summary_of(cluster) == uplink._delta.baseline
        assert parent.summaries_received == sum(
            u.summaries_sent for u in uplinks
        )

    def test_idle_clusters_suppress_summaries(self):
        grid = self.build()
        parent, uplinks = grid.connect_clusters_to_parent()
        grid.run_for(8 * SECONDS_PER_HOUR)
        # Dedicated idle clusters: after the first sends, almost all
        # traffic is heartbeats, at a throttled cadence.
        assert parent.summaries_suppressed > 0
        fixed_cadence = 8 * SECONDS_PER_HOUR / 120.0 * len(uplinks)
        assert parent.summaries_received < fixed_cadence / 2

    def test_stale_cluster_demoted_then_revived(self):
        grid = self.build()
        grid.enable_journal()
        parent, uplinks = grid.connect_clusters_to_parent()
        grid.run_for(600)
        # alpha's uplink dies (its summaries stop); stale_after is
        # 3.5 * 480 = 1680s.
        alpha_uplink = next(
            u for u in uplinks if u._grm.cluster == "alpha"
        )
        alpha_uplink.stop()
        grid.run_for(2 * 1680 + 600)
        record = parent._children["alpha"]
        assert not record.alive
        assert parent.clusters_declared_stale == 1
        downs = grid.journal.select(type="cluster_down")
        assert any(e.attrs["cluster"] == "alpha" for e in downs)
        # Placement no longer offers the dead cluster.
        candidates = parent._candidates(spec_dict(), origin="")
        assert all(r.cluster != "alpha" for r in candidates)
        assert parent.aggregate_summary() == parent.aggregate_oracle()
        # The cluster comes back: one summary revives it.
        parent.send_summary(
            grid.clusters["alpha"].grm.cluster_summary()
        )
        assert parent._children["alpha"].alive
        ups = grid.journal.select(type="cluster_up")
        assert any(
            e.attrs.get("reason") == "summaries resumed" for e in ups
        )
        candidates = parent._candidates(spec_dict(), origin="")
        assert any(r.cluster == "alpha" for r in candidates)
        assert parent.aggregate_summary() == parent.aggregate_oracle()

    def test_doctor_names_the_dead_cluster(self):
        grid = self.build()
        grid.enable_journal()
        parent, uplinks = grid.connect_clusters_to_parent()
        grid.run_for(600)
        next(u for u in uplinks if u._grm.cluster == "alpha").stop()
        grid.run_for(2 * 1680 + 600)
        report = grid.health_report()
        assert [d["cluster"] for d in report["dead_clusters"]] == ["alpha"]
        dead = report["dead_clusters"][0]
        assert dead["parent"] == "parent"
        assert dead["reason"] == "summaries stale"
        from repro.obs.health import render_health_report
        assert "cluster alpha DOWN" in render_health_report(report)


class TestMetricsWiring:
    def test_parent_views_and_submit_histogram(self):
        grid = Grid(seed=2, policy="first_fit", lupa_enabled=False,
                    indexed_placement=True, incremental_summaries=True)
        grid.add_cluster("alpha")
        for i in range(2):
            grid.add_node("alpha", f"a{i}", dedicated=True)
        registry = grid.enable_metrics()
        parent, _ = grid.connect_clusters_to_parent()
        grid.run_for(120)
        parent.submit(ApplicationSpec(name="m", work_mips=2e5).to_dict())
        snapshot = registry.snapshot()["metrics"]
        assert snapshot["parent.parent.registered_clusters"] == 1
        assert snapshot["parent.parent.summaries.received"] >= 0
        assert snapshot["parent.parent.submit_latency_s"]["count"] == 1
        assert "parent.parent.placement.admitted" in snapshot


class TestGrmSummaryCache:
    def test_stale_pending_job_id_does_not_crash(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("alpha")
        grid.add_node("alpha", "a0", dedicated=True)
        grm = grid.clusters["alpha"].grm
        grm._pending.append("ghost-job")
        summary = grm.cluster_summary()   # seed raised KeyError here
        assert summary["pending_tasks"] == 0

    def test_cached_sums_track_updates(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False,
                    update_interval=60.0, tick_interval=60.0)
        grid.add_cluster("alpha")
        for i in range(3):
            grid.add_node("alpha", f"a{i}", dedicated=True)
        grm = grid.clusters["alpha"].grm
        first = grm.cluster_summary()
        again = grm.cluster_summary()
        assert {k: v for k, v in first.items() if k != "time"} == \
            {k: v for k, v in again.items() if k != "time"}
        grid.run_for(SECONDS_PER_HOUR)
        fresh = grm.cluster_summary()
        assert fresh["nodes"] == 3
        # Cache invalidation on roster change.
        grm.unregister_node("a0")
        assert grm.cluster_summary()["nodes"] == 2
