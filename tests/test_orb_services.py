"""Unit tests for the Naming and Trading services (local and remote)."""

import pytest

from repro.orb.core import Orb
from repro.orb.naming import (
    NameAlreadyBound,
    NameNotFound,
    NamingService,
    NAMING_INTERFACE,
)
from repro.orb.trading import (
    TradingService,
    TRADING_INTERFACE,
    UnknownOffer,
)
from repro.orb.transport import InProcDomain


class TestNamingLocal:
    def test_bind_resolve(self):
        ns = NamingService()
        ns.bind("cluster0/grm", "IOR:00")
        assert ns.resolve("cluster0/grm") == "IOR:00"

    def test_bind_refuses_overwrite(self):
        ns = NamingService()
        ns.bind("a", "IOR:00")
        with pytest.raises(NameAlreadyBound):
            ns.bind("a", "IOR:01")

    def test_rebind_overwrites(self):
        ns = NamingService()
        ns.bind("a", "IOR:00")
        ns.rebind("a", "IOR:01")
        assert ns.resolve("a") == "IOR:01"

    def test_resolve_missing(self):
        with pytest.raises(NameNotFound):
            NamingService().resolve("ghost")

    def test_unbind(self):
        ns = NamingService()
        ns.bind("a", "IOR:00")
        ns.unbind("a")
        assert not ns.bound("a")
        with pytest.raises(NameNotFound):
            ns.unbind("a")

    def test_list_by_prefix(self):
        ns = NamingService()
        ns.bind("cluster0/grm", "x")
        ns.bind("cluster0/gupa", "y")
        ns.bind("cluster1/grm", "z")
        assert ns.list("cluster0/") == ["cluster0/grm", "cluster0/gupa"]
        assert ns.list("") == ["cluster0/grm", "cluster0/gupa", "cluster1/grm"]

    @pytest.mark.parametrize("bad", ["", "/abs", "trail/"])
    def test_invalid_names(self, bad):
        with pytest.raises(ValueError):
            NamingService().bind(bad, "IOR:00")


class TestNamingRemote:
    def test_naming_over_orb(self):
        domain = InProcDomain()
        server = Orb("ns-host", domain=domain)
        client = Orb("ns-user", domain=domain)
        try:
            ref = server.activate(NamingService(), NAMING_INTERFACE)
            stub = client.stub(ref, NAMING_INTERFACE)
            stub.bind("cluster0/grm", "IOR:abcd")
            assert stub.resolve("cluster0/grm") == "IOR:abcd"
            assert stub.bound("cluster0/grm") is True
            assert stub.list("cluster0/") == ["cluster0/grm"]
            stub.unbind("cluster0/grm")
            assert stub.bound("cluster0/grm") is False
        finally:
            server.shutdown()
            client.shutdown()


def offer_props(**kwargs):
    props = {"mips": 1000.0, "ram_mb": 256.0, "cpu_free": 0.9, "os": "linux"}
    props.update(kwargs)
    return props


class TestTradingLocal:
    def test_export_and_query(self):
        trader = TradingService()
        trader.export("node", "IOR:1", offer_props())
        offers = trader.query("node")
        assert len(offers) == 1
        assert offers[0]["ior"] == "IOR:1"

    def test_constraint_filters(self):
        trader = TradingService()
        trader.export("node", "IOR:slow", offer_props(mips=300.0))
        trader.export("node", "IOR:fast", offer_props(mips=900.0))
        offers = trader.query("node", constraint="mips >= 500")
        assert [o["ior"] for o in offers] == ["IOR:fast"]

    def test_preference_ranks(self):
        trader = TradingService()
        trader.export("node", "IOR:a", offer_props(mips=300.0))
        trader.export("node", "IOR:b", offer_props(mips=900.0))
        trader.export("node", "IOR:c", offer_props(mips=600.0))
        offers = trader.query("node", preference="mips")
        assert [o["ior"] for o in offers] == ["IOR:b", "IOR:c", "IOR:a"]

    def test_max_offers(self):
        trader = TradingService()
        for i in range(10):
            trader.export("node", f"IOR:{i}", offer_props(mips=float(i)))
        offers = trader.query("node", preference="mips", max_offers=3)
        assert len(offers) == 3
        assert offers[0]["ior"] == "IOR:9"

    def test_service_type_isolation(self):
        trader = TradingService()
        trader.export("node", "IOR:n", offer_props())
        trader.export("printer", "IOR:p", {"dpi": 300})
        assert len(trader.query("node")) == 1
        assert len(trader.query("printer")) == 1
        assert trader.query("scanner") == []

    def test_modify_updates_properties(self):
        trader = TradingService()
        offer_id = trader.export("node", "IOR:1", offer_props(cpu_free=0.9))
        assert trader.query("node", constraint="cpu_free >= 0.5")
        trader.modify(offer_id, offer_props(cpu_free=0.1))
        assert not trader.query("node", constraint="cpu_free >= 0.5")

    def test_withdraw(self):
        trader = TradingService()
        offer_id = trader.export("node", "IOR:1", offer_props())
        trader.withdraw(offer_id)
        assert trader.query("node") == []
        with pytest.raises(UnknownOffer):
            trader.withdraw(offer_id)

    def test_modify_unknown_offer(self):
        with pytest.raises(UnknownOffer):
            TradingService().modify("ghost", {})

    def test_malformed_offer_never_matches(self):
        # An offer missing the constrained property is skipped, not an error.
        trader = TradingService()
        trader.export("node", "IOR:broken", {"os": "linux"})
        assert trader.query("node", constraint="mips >= 1") == []

    def test_deterministic_tie_order(self):
        trader = TradingService()
        trader.export("node", "IOR:first", offer_props(mips=500.0))
        trader.export("node", "IOR:second", offer_props(mips=500.0))
        offers = trader.query("node", preference="mips")
        assert [o["ior"] for o in offers] == ["IOR:first", "IOR:second"]

    def test_empty_service_type_rejected(self):
        with pytest.raises(ValueError):
            TradingService().export("", "IOR:1", {})


class TestTradingRemote:
    def test_trader_over_orb(self):
        domain = InProcDomain()
        server = Orb("trader-host", domain=domain)
        client = Orb("trader-user", domain=domain)
        try:
            ref = server.activate(TradingService(), TRADING_INTERFACE)
            stub = client.stub(ref, TRADING_INTERFACE)
            offer_id = stub.export("node", "IOR:x", offer_props(mips=750.0))
            offers = stub.query("node", "mips >= 500", "mips", -1)
            assert len(offers) == 1
            assert offers[0]["offer_id"] == offer_id
            assert offers[0]["properties"]["mips"] == 750.0
            stub.withdraw(offer_id)
            assert stub.query("node", "", "", -1) == []
        finally:
            server.shutdown()
            client.shutdown()
