"""Unit tests for the BSP grid coordinator, against a scripted GRM."""

import pytest

from repro.apps.job import Job, TaskState
from repro.apps.spec import ApplicationSpec
from repro.bsp.gridexec import BspGridCoordinator
from repro.checkpoint.store import MemoryCheckpointStore
from repro.sim.events import EventLoop
from repro.sim.network import flat_lan, two_groups


class FakePacedLrm:
    """Tracks pacing calls for one node."""

    def __init__(self):
        self.limits: dict[str, float] = {}
        self.progress: dict[str, float] = {}
        self.rollbacks: list = []

    def set_work_limit(self, task_id, limit):
        self.limits[task_id] = limit

    def get_progress(self, task_id):
        return self.progress.get(task_id, 0.0)

    def rollback_task(self, task_id, to_progress):
        self.rollbacks.append((task_id, to_progress))
        self.progress[task_id] = min(
            self.progress.get(task_id, 0.0), to_progress
        )


class FakeGrm:
    def __init__(self, network=None):
        self.network = network
        self.lrms: dict[str, FakePacedLrm] = {}

    def lrm_stub(self, node):
        return self.lrms.setdefault(node, FakePacedLrm())


def make_coordinator(tasks=3, supersteps=4, checkpoint_every=0,
                     work=1200.0, network=None, comm_bytes=0,
                     metadata=None):
    loop = EventLoop()
    grm = FakeGrm(network)
    meta = {"supersteps": supersteps, "superstep_comm_bytes": comm_bytes}
    if metadata:
        meta.update(metadata)
    spec = ApplicationSpec(
        name="bsp", kind="bsp", tasks=tasks, program="p", work_mips=work,
        checkpoint_every_supersteps=checkpoint_every,
        metadata=meta,
    )
    job = Job("j0", spec, submitted_at=0.0)
    store = MemoryCheckpointStore()
    coordinator = BspGridCoordinator(loop, grm, job, checkpoint_store=store)
    return loop, grm, job, coordinator, store


def start_all(job, coordinator, grm):
    assignments = {}
    for i, task in enumerate(job.tasks):
        node = f"node{i}"
        task.node = node
        task.transition(TaskState.RESERVED, 0.0)
        task.transition(TaskState.RUNNING, 0.0)
        assignments[task.task_id] = node
    coordinator.members_started(assignments)
    return assignments


def reach_barrier(loop, coordinator, assignments, grm):
    """All members hit their limit; run the comm delay event."""
    for task_id, node in assignments.items():
        grm.lrms[node].progress[task_id] = grm.lrms[node].limits[task_id]
        coordinator.member_reached_limit(task_id, node)
    loop.run()


class TestPacing:
    def test_initial_limits_set_on_start(self):
        loop, grm, job, coordinator, _ = make_coordinator(
            tasks=2, supersteps=4, work=1200.0
        )
        assignments = start_all(job, coordinator, grm)
        for task_id, node in assignments.items():
            assert grm.lrms[node].limits[task_id] == pytest.approx(300.0)

    def test_barrier_advances_all_limits(self):
        loop, grm, job, coordinator, _ = make_coordinator(
            tasks=2, supersteps=4, work=1200.0
        )
        assignments = start_all(job, coordinator, grm)
        reach_barrier(loop, coordinator, assignments, grm)
        assert coordinator.current_superstep == 1
        for task_id, node in assignments.items():
            assert grm.lrms[node].limits[task_id] == pytest.approx(600.0)

    def test_partial_barrier_does_not_advance(self):
        loop, grm, job, coordinator, _ = make_coordinator(tasks=3)
        assignments = start_all(job, coordinator, grm)
        first = next(iter(assignments))
        coordinator.member_reached_limit(first, assignments[first])
        loop.run()
        assert coordinator.current_superstep == 0

    def test_final_barrier_lifts_limits(self):
        loop, grm, job, coordinator, _ = make_coordinator(
            tasks=2, supersteps=2, work=1000.0
        )
        assignments = start_all(job, coordinator, grm)
        reach_barrier(loop, coordinator, assignments, grm)
        # Past the last barrier the limit is infinite: run to completion.
        for task_id, node in assignments.items():
            assert grm.lrms[node].limits[task_id] == float("inf")

    def test_stale_limit_notification_ignored(self):
        loop, grm, job, coordinator, _ = make_coordinator(tasks=2)
        assignments = start_all(job, coordinator, grm)
        coordinator.member_reached_limit(job.tasks[0].task_id, "wrong-node")
        assert not coordinator._reached


class TestCheckpointing:
    def test_cadence(self):
        loop, grm, job, coordinator, store = make_coordinator(
            tasks=2, supersteps=6, checkpoint_every=2, work=600.0
        )
        assignments = start_all(job, coordinator, grm)
        for _ in range(4):
            reach_barrier(loop, coordinator, assignments, grm)
        # Barriers after supersteps 2 and 4 checkpointed.
        assert coordinator.checkpoints_saved == 2
        record = store.load_latest(job.tasks[0].task_id)
        assert record.state()["superstep"] == 4

    def test_recovery_manager_tracks_consistent_cut(self):
        loop, grm, job, coordinator, _ = make_coordinator(
            tasks=2, supersteps=6, checkpoint_every=2, work=600.0
        )
        assignments = start_all(job, coordinator, grm)
        for _ in range(2):
            reach_barrier(loop, coordinator, assignments, grm)
        assert coordinator.recovery.consistent_superstep() == 2


class TestRollback:
    def run_to_superstep(self, n, **kwargs):
        loop, grm, job, coordinator, store = make_coordinator(**kwargs)
        assignments = start_all(job, coordinator, grm)
        for _ in range(n):
            reach_barrier(loop, coordinator, assignments, grm)
        return loop, grm, job, coordinator, assignments

    def evict(self, loop, grm, job, coordinator, assignments, victim_index=0):
        victim = job.tasks[victim_index]
        node = assignments[victim.task_id]
        victim.transition(TaskState.EVICTED, loop.now)
        victim.rollback()
        victim.node = None
        coordinator.member_evicted(victim.task_id, node)
        victim.transition(TaskState.PENDING, loop.now)
        return victim

    def test_rollback_to_consistent_checkpoint(self):
        loop, grm, job, coordinator, assignments = self.run_to_superstep(
            3, tasks=3, supersteps=8, checkpoint_every=2, work=800.0
        )
        victim = self.evict(loop, grm, job, coordinator, assignments)
        assert coordinator.current_superstep == 2   # last checkpointed
        # Survivors rolled back to 2 supersteps' progress.
        for task in job.tasks[1:]:
            node = assignments[task.task_id]
            assert (task.task_id, 200.0) in grm.lrms[node].rollbacks
        # The victim resumes from the checkpoint, not from scratch.
        assert victim.progress_mips == pytest.approx(200.0)

    def test_rollback_without_checkpoints_goes_to_zero(self):
        loop, grm, job, coordinator, assignments = self.run_to_superstep(
            3, tasks=2, supersteps=8, checkpoint_every=0, work=800.0
        )
        victim = self.evict(loop, grm, job, coordinator, assignments)
        assert coordinator.current_superstep == 0
        assert victim.progress_mips == 0.0

    def test_survivor_wasted_work_accounted(self):
        loop, grm, job, coordinator, assignments = self.run_to_superstep(
            3, tasks=2, supersteps=8, checkpoint_every=2, work=800.0
        )
        survivor = job.tasks[1]
        node = assignments[survivor.task_id]
        grm.lrms[node].progress[survivor.task_id] = 300.0   # mid-superstep 3
        self.evict(loop, grm, job, coordinator, assignments, victim_index=0)
        # Superstep work is 100; rollback to 200 loses 100 of progress.
        assert survivor.wasted_mips == pytest.approx(100.0)

    def test_eviction_during_comm_delay_cancels_the_barrier(self):
        # All members reach the barrier; while the communication delay
        # is in flight, one is evicted.  The pending advance must be
        # cancelled — the superstep is re-run from the rollback point,
        # not silently merged with the next one.
        loop, grm, job, coordinator, store = make_coordinator(
            tasks=2, supersteps=8, checkpoint_every=2, work=800.0,
            network=flat_lan(["node0", "node1"]), comm_bytes=10_000_000,
        )
        assignments = start_all(job, coordinator, grm)
        reach_barrier(loop, coordinator, assignments, grm)   # superstep 0 done
        reach_barrier(loop, coordinator, assignments, grm)   # superstep 1 done
        # Reach the next barrier but do NOT run the delayed advance.
        for task_id, node in assignments.items():
            grm.lrms[node].progress[task_id] = grm.lrms[node].limits[task_id]
            coordinator.member_reached_limit(task_id, node)
        assert coordinator._advancing
        self.evict(loop, grm, job, coordinator, assignments)
        assert not coordinator._advancing
        before = coordinator.current_superstep
        loop.run()   # the (cancelled) comm event must not fire
        assert coordinator.current_superstep == before

    def test_replacement_member_gets_current_limit(self):
        loop, grm, job, coordinator, assignments = self.run_to_superstep(
            2, tasks=2, supersteps=8, checkpoint_every=2, work=800.0
        )
        victim = self.evict(loop, grm, job, coordinator, assignments)
        coordinator.members_started({victim.task_id: "fresh-node"})
        limit = grm.lrms["fresh-node"].limits[victim.task_id]
        assert limit == pytest.approx(
            (coordinator.current_superstep + 1)
            * coordinator.work_per_superstep
        )


class TestCommunicationModel:
    def test_no_network_flat_barrier_cost(self):
        loop, grm, job, coordinator, _ = make_coordinator(
            tasks=2, comm_bytes=1_000_000, network=None
        )
        start_all(job, coordinator, grm)
        assert coordinator._communication_seconds() == pytest.approx(0.05)

    def test_scales_with_member_count(self):
        def comm_for(tasks):
            nodes = [f"node{i}" for i in range(tasks)]
            network = flat_lan(nodes, bandwidth_mbps=100.0)
            loop, grm, job, coordinator, _ = make_coordinator(
                tasks=tasks, comm_bytes=1_000_000, network=network
            )
            start_all(job, coordinator, grm)
            return coordinator._communication_seconds()

        assert comm_for(8) > comm_for(2)

    def test_slow_uplink_dominates_when_groups_are_split(self):
        nodes = [f"node{i}" for i in range(4)]
        fast = flat_lan(nodes, bandwidth_mbps=100.0)
        split = two_groups(nodes[:2], nodes[2:], intra_mbps=100.0,
                           inter_mbps=1.0)
        results = {}
        for label, network in (("fast", fast), ("split", split)):
            loop, grm, job, coordinator, _ = make_coordinator(
                tasks=4, comm_bytes=500_000, network=network
            )
            start_all(job, coordinator, grm)
            results[label] = coordinator._communication_seconds()
        assert results["split"] > 10 * results["fast"]

    def test_status_reporting(self):
        loop, grm, job, coordinator, _ = make_coordinator(tasks=3)
        start_all(job, coordinator, grm)
        status = coordinator.status()
        assert status["members_running"] == 3
        assert status["superstep"] == 0
        assert status["rollbacks"] == 0


class TestValidation:
    def test_zero_supersteps_rejected(self):
        loop = EventLoop()
        spec = ApplicationSpec(
            name="bsp", kind="bsp", tasks=1, program="p",
            metadata={"supersteps": 0},
        )
        job = Job("j0", spec, 0.0)
        with pytest.raises(ValueError):
            BspGridCoordinator(loop, FakeGrm(), job)


class TestCheckpointWrites:
    """Modelled checkpoint write time: blocking vs pipelined."""

    def arm(self, write_s, pipelined, supersteps=6, work=600.0):
        loop, grm, job, coordinator, store = make_coordinator(
            tasks=2, supersteps=supersteps, checkpoint_every=2, work=work,
            metadata={"checkpoint_write_s": write_s,
                      "pipelined_checkpoints": pipelined},
        )
        assignments = start_all(job, coordinator, grm)
        return loop, grm, job, coordinator, store, assignments

    def hit_barrier(self, loop, grm, coordinator, assignments):
        for task_id, node in assignments.items():
            grm.lrms[node].progress[task_id] = grm.lrms[node].limits[task_id]
            coordinator.member_reached_limit(task_id, node)

    def test_zero_write_time_is_the_seed_path(self):
        loop, grm, job, coordinator, store, assignments = self.arm(0.0, False)
        for _ in range(2):
            self.hit_barrier(loop, grm, coordinator, assignments)
            loop.run()
        assert coordinator.checkpoints_saved == 1
        assert coordinator.checkpoint_stall_s == 0.0
        assert coordinator.checkpoint_overlap_s == 0.0
        assert not coordinator._pending_ckpts

    def test_blocking_write_stalls_the_next_superstep(self):
        loop, grm, job, coordinator, store, assignments = self.arm(5.0, False)
        self.hit_barrier(loop, grm, coordinator, assignments)
        loop.run_for(0.06)   # past the comm delay, inside the write
        assert coordinator.current_superstep == 1   # no checkpoint due: free
        self.hit_barrier(loop, grm, coordinator, assignments)
        loop.run_for(0.06)
        assert coordinator.current_superstep == 2   # checkpoint due here
        # Mid-write: nothing saved yet, and the next superstep's limits
        # are still the old ones — the barrier is held.
        assert coordinator.checkpoints_saved == 0
        node = assignments[job.tasks[0].task_id]
        held = grm.lrms[node].limits[job.tasks[0].task_id]
        loop.run_for(5.0)    # the write commits
        assert coordinator.checkpoints_saved == 1
        assert store.load_latest(job.tasks[0].task_id) is not None
        assert grm.lrms[node].limits[job.tasks[0].task_id] > held
        assert coordinator.checkpoint_stall_s == 5.0
        assert not coordinator._pending_ckpts

    def test_pipelined_write_releases_immediately(self):
        loop, grm, job, coordinator, store, assignments = self.arm(5.0, True)
        self.hit_barrier(loop, grm, coordinator, assignments)
        loop.run_for(0.06)
        self.hit_barrier(loop, grm, coordinator, assignments)
        loop.run_for(0.06)
        assert coordinator.current_superstep == 2
        # The write is still in flight, but the next superstep already
        # got its limits: the write overlaps computation.
        assert coordinator.checkpoints_saved == 0
        assert len(coordinator._pending_ckpts) == 1
        node = assignments[job.tasks[0].task_id]
        assert grm.lrms[node].limits[job.tasks[0].task_id] == \
            pytest.approx(300.0)
        loop.run_for(5.0)
        assert coordinator.checkpoints_saved == 1
        assert coordinator.checkpoint_overlap_s == 5.0
        assert coordinator.checkpoint_stall_s == 0.0
        assert coordinator.recovery.consistent_superstep() == 2

    def test_eviction_cancels_in_flight_checkpoint(self):
        loop, grm, job, coordinator, store, assignments = self.arm(5.0, True)
        for _ in range(2):
            self.hit_barrier(loop, grm, coordinator, assignments)
            loop.run_for(0.06)
        assert len(coordinator._pending_ckpts) == 1
        victim = job.tasks[0]
        node = assignments[victim.task_id]
        victim.transition(TaskState.EVICTED, loop.now)
        victim.rollback()
        victim.node = None
        coordinator.member_evicted(victim.task_id, node)
        assert not coordinator._pending_ckpts
        loop.run_for(10.0)   # the cancelled write must never commit
        assert coordinator.checkpoints_saved == 0
        # The uncommitted checkpoint is invisible to recovery: the job
        # rolled back to scratch, and re-checkpointing superstep 2 later
        # is legal.
        assert coordinator.recovery.consistent_superstep() is None
        coordinator.recovery.record_checkpoint(victim.task_id, 2)

    def test_status_reports_write_accounting(self):
        loop, grm, job, coordinator, store, assignments = self.arm(1.0, True)
        for _ in range(2):
            self.hit_barrier(loop, grm, coordinator, assignments)
            loop.run_for(0.06)
        status = coordinator.status()
        assert status["checkpoints_pending"] == 1
        assert status["checkpoint_overlap_s"] == 1.0
        assert status["checkpoint_stall_s"] == 0.0
