"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.events import EventLoop


def test_schedule_and_step():
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, lambda: fired.append(loop.now))
    assert loop.step()
    assert fired == [5.0]
    assert loop.now == 5.0


def test_step_returns_false_when_empty():
    assert not EventLoop().step()


def test_events_fire_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(3.0, lambda: order.append("c"))
    loop.schedule(1.0, lambda: order.append("a"))
    loop.schedule(2.0, lambda: order.append("b"))
    loop.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    loop = EventLoop()
    order = []
    for label in "abcde":
        loop.schedule(1.0, lambda lab=label: order.append(lab))
    loop.run()
    assert order == list("abcde")


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        EventLoop().schedule(-1.0, lambda: None)


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    loop.run()
    assert fired == []


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    loop.run()


def test_run_until_stops_at_boundary():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(2.0, lambda: fired.append(2))
    loop.schedule(3.0, lambda: fired.append(3))
    loop.run_until(2.0)
    assert fired == [1, 2]
    assert loop.now == 2.0
    loop.run()
    assert fired == [1, 2, 3]


def test_run_until_advances_clock_even_without_events():
    loop = EventLoop()
    loop.run_until(100.0)
    assert loop.now == 100.0


def test_run_for_is_relative():
    loop = EventLoop()
    loop.run_until(10.0)
    loop.run_for(5.0)
    assert loop.now == 15.0


def test_events_scheduled_during_run_fire():
    loop = EventLoop()
    fired = []

    def first():
        loop.schedule(1.0, lambda: fired.append("second"))
        fired.append("first")

    loop.schedule(1.0, first)
    loop.run()
    assert fired == ["first", "second"]


def test_runaway_guard():
    loop = EventLoop()

    def rearm():
        loop.schedule(1.0, rearm)

    loop.schedule(1.0, rearm)
    with pytest.raises(RuntimeError):
        loop.run(max_events=100)


def test_periodic_task_fires_repeatedly():
    loop = EventLoop()
    ticks = []
    loop.every(10.0, lambda: ticks.append(loop.now))
    loop.run_until(35.0)
    assert ticks == [10.0, 20.0, 30.0]


def test_periodic_task_start_after():
    loop = EventLoop()
    ticks = []
    loop.every(10.0, lambda: ticks.append(loop.now), start_after=0.0)
    loop.run_until(25.0)
    assert ticks == [0.0, 10.0, 20.0]


def test_periodic_task_stop():
    loop = EventLoop()
    ticks = []
    task = loop.every(10.0, lambda: ticks.append(loop.now))
    loop.run_until(25.0)
    task.stop()
    loop.run_until(100.0)
    assert ticks == [10.0, 20.0]
    assert task.stopped


def test_periodic_task_can_stop_itself():
    loop = EventLoop()
    ticks = []

    def tick():
        ticks.append(loop.now)
        if len(ticks) == 2:
            task.stop()

    task = loop.every(1.0, tick)
    loop.run()
    assert ticks == [1.0, 2.0]


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        EventLoop().every(0.0, lambda: None)


def test_events_fired_counter():
    loop = EventLoop()
    for _ in range(4):
        loop.schedule(1.0, lambda: None)
    loop.run()
    assert loop.events_fired == 4


def test_pending_counts_live_events_only():
    loop = EventLoop()
    handles = [loop.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert loop.pending == 10
    assert loop.raw_heap_size == 10
    handles[0].cancel()
    handles[1].cancel()
    # Cancelled entries are tombstones: still in the heap, not pending.
    assert loop.pending == 8
    assert loop.raw_heap_size >= 8
    loop.run()
    assert loop.pending == 0
    assert loop.raw_heap_size == 0


def test_tombstones_compact_when_they_dominate():
    loop = EventLoop()
    fired = []
    handles = [
        loop.schedule(float(i + 1), lambda i=i: fired.append(i))
        for i in range(100)
    ]
    for handle in handles[:80]:
        handle.cancel()
    # Once cancellations outnumber live entries the heap is compacted,
    # so the raw size tracks the live count instead of growing unbounded.
    assert loop.pending == 20
    assert loop.raw_heap_size < 100
    loop.run()
    assert fired == list(range(80, 100))


def test_pending_tracks_periodic_tasks():
    loop = EventLoop()
    task = loop.every(10.0, lambda: None)
    assert loop.pending == 1      # exactly one queued occurrence at a time
    loop.run_until(35.0)
    assert loop.pending == 1
    task.stop()
    loop.run_until(100.0)
    assert loop.pending == 0
