"""Unit tests for the simulated clock and its calendar helpers."""

import pytest

from repro.sim.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
    SimClock,
)


def test_starts_at_epoch_by_default():
    assert SimClock().now == 0.0


def test_custom_start():
    assert SimClock(100.0).now == 100.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_to_moves_forward():
    clock = SimClock()
    clock.advance_to(42.0)
    assert clock.now == 42.0


def test_advance_backwards_rejected():
    clock = SimClock(10.0)
    with pytest.raises(ValueError):
        clock.advance_to(5.0)


def test_advance_to_same_time_is_ok():
    clock = SimClock(10.0)
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_epoch_is_monday_midnight():
    clock = SimClock()
    assert clock.day_of_week() == 0
    assert clock.day_name() == "monday"
    assert clock.hour_of_day() == 0.0


def test_day_of_week_cycles():
    clock = SimClock()
    clock.advance_to(5 * SECONDS_PER_DAY)
    assert clock.day_name() == "saturday"
    clock.advance_to(7 * SECONDS_PER_DAY)
    assert clock.day_name() == "monday"


def test_hour_of_day():
    clock = SimClock(13.5 * SECONDS_PER_HOUR)
    assert clock.hour_of_day() == pytest.approx(13.5)


def test_second_of_day_wraps():
    clock = SimClock(SECONDS_PER_DAY + 61.0)
    assert clock.second_of_day() == pytest.approx(61.0)


def test_week_index():
    clock = SimClock()
    assert clock.week_index() == 0
    clock.advance_to(3 * SECONDS_PER_WEEK + 5)
    assert clock.week_index() == 3


def test_is_weekend():
    clock = SimClock()
    assert not clock.is_weekend()
    assert clock.is_weekend(5 * SECONDS_PER_DAY)
    assert clock.is_weekend(6 * SECONDS_PER_DAY)
    assert not clock.is_weekend(7 * SECONDS_PER_DAY)


def test_helpers_accept_explicit_when():
    clock = SimClock()
    assert clock.day_of_week(2 * SECONDS_PER_DAY) == 2
    assert clock.hour_of_day(6 * SECONDS_PER_HOUR) == pytest.approx(6.0)
    # the clock itself did not move
    assert clock.now == 0.0
