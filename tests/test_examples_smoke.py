"""Smoke tests: every example must run clean from a fresh interpreter.

The examples are documentation; a broken one is a broken promise.  Each
runs as a subprocess (so import side effects and __main__ guards are
exercised exactly as a user would hit them) and must exit 0 with its
signature line in the output.  The render farm is marked slow.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

FAST_EXAMPLES = {
    "quickstart.py": "Final state: completed",
    "bsp_parallel_applications.py": "grid job",
    "usage_prediction.py": "GUPA idle-span predictions",
    "campus_grid.py": "wide-area placements",
    "virtual_topology.py": "inter-group bandwidth: 10 Mbps",
    "sandboxed_tasks.py": "sandbox violation",
    "cluster_dashboard.py": "jobs completed",
    "trace_workflow.py": "Idle forecasts from the replay-trained profile",
}


def run_example(name, timeout=120):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name,signature", sorted(FAST_EXAMPLES.items()))
def test_example_runs_clean(name, signature):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert signature in result.stdout, (
        f"{name} output missing {signature!r}:\n{result.stdout[-2000:]}"
    )
    assert result.stderr == ""


@pytest.mark.slow
def test_render_farm_example():
    result = run_example("render_farm.py", timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Render batch" in result.stdout


def test_every_example_is_covered():
    """A new example file must be added to this smoke suite."""
    on_disk = {
        name for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    covered = set(FAST_EXAMPLES) | {"render_farm.py"}
    assert on_disk == covered, (
        f"uncovered examples: {sorted(on_disk - covered)}; "
        f"stale entries: {sorted(covered - on_disk)}"
    )
