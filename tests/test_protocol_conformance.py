"""Wire-shape conformance: every dict a component emits must marshal
under its declared protocol struct, exactly.

These tests catch field drift — adding a field to ``Lrm.status()``
without extending ``NODE_STATUS`` (or vice versa) fails here before it
fails deep inside an integration run.
"""

import random

import pytest

from repro.apps.spec import (
    ApplicationSpec,
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.core.lrm import Lrm
from repro.core.ncc import NodeControlCenter
from repro.core.protocols import (
    CLUSTER_SUMMARY,
    NODE_STATUS,
    RESERVATION_REPLY,
    RESERVATION_REQUEST,
    TASK_LAUNCH,
)
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.workstation import Workstation


def roundtrip(struct, value):
    enc = CdrEncoder()
    struct.encode(enc, value)
    return struct.decode(CdrDecoder(enc.getvalue()))


def struct_fields(struct):
    return {name for name, _ in struct.fields}


class TestNodeStatusConformance:
    def make_lrm(self):
        loop = EventLoop()
        ws = Workstation(loop, "n0", spec=MachineSpec(),
                         rng=random.Random(1))
        return Lrm(loop, ws, NodeControlCenter(loop.clock))

    def test_lrm_status_marshals_exactly(self):
        status = self.make_lrm().status()
        assert roundtrip(NODE_STATUS, status) == pytest.approx(status)

    def test_no_extra_fields(self):
        # A field in status() missing from NODE_STATUS silently vanishes
        # on the wire; flag it.
        status = self.make_lrm().status()
        assert set(status) == struct_fields(NODE_STATUS)


class TestClusterSummaryConformance:
    def test_grm_summary_marshals_exactly(self):
        from repro import Grid

        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        grid.run_for(120)
        summary = grid.clusters["c0"].grm.cluster_summary()
        assert roundtrip(CLUSTER_SUMMARY, summary) == pytest.approx(summary)
        assert set(summary) == struct_fields(CLUSTER_SUMMARY)

    def test_parent_aggregate_marshals_exactly(self):
        from repro import Grid

        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        parent, _ = grid.connect_clusters_to_parent()
        grid.run_for(120)
        aggregate = parent.aggregate_summary()
        assert roundtrip(CLUSTER_SUMMARY, aggregate) == \
            pytest.approx(aggregate)
        assert set(aggregate) == struct_fields(CLUSTER_SUMMARY)


class TestRequestShapes:
    def test_grm_reservation_request_matches_struct(self):
        # The exact dict Grm._reserve_on builds, field for field.
        request = {
            "task_id": "j.0", "cpu_fraction": 1.0, "mem_mb": 16.0,
            "disk_mb": 0.0, "lease_seconds": 120.0,
        }
        assert set(request) == struct_fields(RESERVATION_REQUEST)
        assert roundtrip(RESERVATION_REQUEST, request) == request

    def test_lrm_reply_matches_struct(self):
        loop = EventLoop()
        ws = Workstation(loop, "n0", spec=MachineSpec(),
                         rng=random.Random(1))
        lrm = Lrm(loop, ws, NodeControlCenter(loop.clock))
        reply = lrm.request_reservation({
            "task_id": "t", "cpu_fraction": 0.5, "mem_mb": 8.0,
            "disk_mb": 0.0, "lease_seconds": 60.0,
        })
        assert set(reply) == struct_fields(RESERVATION_REPLY)
        assert roundtrip(RESERVATION_REPLY, reply) == reply

    def test_grm_launch_matches_struct(self):
        launch = {
            "task_id": "j.0", "job_id": "j", "work_mips": 1e6,
            "initial_progress_mips": 0.0, "checkpoint_interval_s": 0.0,
            "payload": "",
        }
        assert set(launch) == struct_fields(TASK_LAUNCH)
        assert roundtrip(TASK_LAUNCH, launch) == launch


class TestSpecDictRoundtrip:
    @pytest.mark.parametrize("spec", [
        ApplicationSpec(name="plain"),
        ApplicationSpec(name="reqs", tasks=3, work_mips=5e6,
                        requirements=ResourceRequirements(
                            min_mips=500, min_ram_mb=16, os="linux",
                            min_net_mbps=10.0, extra="cpu_free >= 0.5",
                        ),
                        preference="mips",
                        metadata={"checkpoint_interval_s": 600.0}),
        ApplicationSpec(name="bsp", kind="bsp", tasks=4, program="p",
                        checkpoint_every_supersteps=2,
                        metadata={"supersteps": 8}),
        ApplicationSpec(
            name="topo", kind="bsp", tasks=4, program="p",
            topology=VirtualTopologyRequest(
                groups=(NodeGroupRequest(2, 100.0),
                        NodeGroupRequest(2, 100.0)),
                inter_bandwidth_mbps=10.0,
            ),
        ),
    ])
    def test_to_dict_from_dict_identity(self, spec):
        assert ApplicationSpec.from_dict(spec.to_dict()) == spec

    def test_dict_form_is_variant_marshallable(self):
        from repro.orb.cdr import VARIANT

        spec = ApplicationSpec(
            name="x", kind="bsp", tasks=2, program="p",
            topology=VirtualTopologyRequest(
                groups=(NodeGroupRequest(1, 100.0),
                        NodeGroupRequest(1, 100.0)),
                inter_bandwidth_mbps=10.0,
            ),
        )
        enc = CdrEncoder()
        VARIANT.encode(enc, spec.to_dict())
        decoded = VARIANT.decode(CdrDecoder(enc.getvalue()))
        assert ApplicationSpec.from_dict(decoded) == spec
