"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.metrics import percentile
from repro.apps.constraints import Constraint, UNDEFINED, evaluate
from repro.checkpoint.serializer import (
    CheckpointCorrupted,
    deserialize,
    serialize,
)
from repro.bsp.messages import MessageBuffers
from repro.orb.cdr import (
    CdrDecoder,
    CdrEncoder,
    Double,
    Long,
    Sequence,
    String,
    Struct,
    VARIANT,
)
from repro.orb.ior import ObjectRef
from repro.sim.events import EventLoop
from repro.sim.machine import InsufficientResources, Machine, MachineSpec

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

variant_values = st.recursive(
    st.none()
    | st.booleans()
    | i64
    | finite_floats
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)

state_dicts = st.dictionaries(
    st.text(min_size=1, max_size=12), variant_values, max_size=6
)


def normalise(value):
    """Variant decoding returns lists for tuples; ints stay ints."""
    if isinstance(value, tuple):
        return [normalise(v) for v in value]
    if isinstance(value, list):
        return [normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: normalise(v) for k, v in value.items()}
    return value


# ---------------------------------------------------------------------------
# CDR marshalling
# ---------------------------------------------------------------------------

class TestCdrProperties:
    @given(variant_values)
    def test_variant_roundtrip(self, value):
        enc = CdrEncoder()
        VARIANT.encode(enc, value)
        decoded = VARIANT.decode(CdrDecoder(enc.getvalue()))
        assert decoded == normalise(value)

    @given(st.text(max_size=200))
    def test_string_roundtrip(self, text):
        enc = CdrEncoder()
        enc.write_string(text)
        assert CdrDecoder(enc.getvalue()).read_string() == text

    @given(st.lists(i64, max_size=50))
    def test_sequence_roundtrip(self, values):
        seq = Sequence(Struct("Item", [("v", Double)]))
        items = [{"v": float(v % 10**12)} for v in values]
        enc = CdrEncoder()
        seq.encode(enc, items)
        assert seq.decode(CdrDecoder(enc.getvalue())) == items

    @given(st.text(max_size=30), st.text(min_size=1, max_size=30),
           finite_floats)
    def test_struct_roundtrip(self, name, key, number):
        struct = Struct("S", [("name", String), ("x", Double)])
        value = {"name": name, "x": number}
        enc = CdrEncoder()
        struct.encode(enc, value)
        decoded = struct.decode(CdrDecoder(enc.getvalue()))
        assert decoded["name"] == name
        assert decoded["x"] == number

    @given(variant_values)
    def test_encoding_is_deterministic(self, value):
        enc1, enc2 = CdrEncoder(), CdrEncoder()
        VARIANT.encode(enc1, value)
        VARIANT.encode(enc2, value)
        assert enc1.getvalue() == enc2.getvalue()


# ---------------------------------------------------------------------------
# Checkpoint serializer
# ---------------------------------------------------------------------------

class TestCheckpointProperties:
    @given(state_dicts)
    def test_roundtrip(self, state):
        assert deserialize(serialize(state)) == normalise(state)

    @given(state_dicts, st.data())
    def test_any_single_byte_corruption_detected_or_equal(self, state, data):
        blob = bytearray(serialize(state))
        index = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        blob[index] ^= flip
        # CRC32 catches every single-byte error.
        with pytest.raises(CheckpointCorrupted):
            deserialize(bytes(blob))

    @given(state_dicts, st.integers(min_value=0, max_value=20))
    def test_truncation_detected(self, state, cut):
        blob = serialize(state)
        assume(cut > 0)
        with pytest.raises(CheckpointCorrupted):
            deserialize(blob[:-cut] if cut <= len(blob) else b"")


# ---------------------------------------------------------------------------
# Constraint language
# ---------------------------------------------------------------------------

class TestConstraintProperties:
    @given(finite_floats, finite_floats)
    def test_comparisons_match_python(self, a, b):
        props = {"a": a, "b": b}
        assert evaluate("a < b", props) == (a < b)
        assert evaluate("a >= b", props) == (a >= b)
        assert evaluate("a == b", props) == (a == b)

    @given(st.booleans(), st.booleans())
    def test_boolean_identities(self, p, q):
        props = {"p": p, "q": q}
        assert evaluate("p && q", props) == (p and q)
        assert evaluate("p || q", props) == (p or q)
        assert evaluate("!(p && q)", props) == evaluate("!p || !q", props)

    @given(finite_floats)
    def test_double_negation(self, x):
        props = {"x": x}
        assert evaluate("!!(x >= 0)", props) == evaluate("x >= 0", props)

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=8))
    def test_undefined_identifier_never_matches_comparison(self, name):
        assert not evaluate(f"{name} > 0", {})
        assert not evaluate(f"{name} <= 0", {})

    @given(finite_floats, finite_floats)
    def test_arithmetic_matches_python(self, a, b):
        assume(abs(a) < 1e100 and abs(b) < 1e100)
        props = {"a": a, "b": b}
        constraint = Constraint("a + b")
        assert constraint.value(props) == a + b
        product = Constraint("a * b").value(props)
        assert product == a * b


# ---------------------------------------------------------------------------
# Event loop ordering
# ---------------------------------------------------------------------------

class TestEventLoopProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=40))
    def test_events_fire_in_time_order(self, delays):
        loop = EventLoop()
        fired = []
        for delay in delays:
            loop.schedule(delay, lambda: fired.append(loop.now))
        loop.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        st.booleans(),
    ), max_size=30))
    def test_cancelled_events_never_fire(self, plan):
        loop = EventLoop()
        fired = []
        expected = 0
        for delay, cancel in plan:
            handle = loop.schedule(delay, lambda d=delay: fired.append(d))
            if cancel:
                handle.cancel()
            else:
                expected += 1
        loop.run()
        assert len(fired) == expected


# ---------------------------------------------------------------------------
# Machine capacity invariants
# ---------------------------------------------------------------------------

class TestMachineProperties:
    @given(st.lists(st.tuples(
        st.sampled_from(["alloc", "release", "owner"]),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    ), max_size=60))
    def test_capacity_never_violated(self, ops):
        machine = Machine("m", MachineSpec(mips=1000, ram_mb=256))
        live = []
        counter = 0
        for op, amount in ops:
            if op == "alloc":
                counter += 1
                task_id = f"t{counter}"
                try:
                    machine.allocate(task_id, amount, amount * 10)
                    live.append(task_id)
                except InsufficientResources:
                    pass
            elif op == "release" and live:
                machine.release(live.pop())
            elif op == "owner":
                machine.set_owner_load(amount, amount * 100, True)
            # Invariants after every operation.  Owner load may arrive
            # *after* an allocation (the grid is then throttled, not
            # revoked), so the strong bound is on effective rates, not
            # on allocations.
            assert 0.0 <= machine.grid_cpu <= 1.0 + 1e-9
            assert machine.grid_mem_mb <= machine.spec.ram_mb + 1e-6
            grid_rate_total = sum(
                machine.grid_task_rate_mips(task_id) for task_id in live
            )
            available = machine.spec.mips * (1.0 - machine.owner_cpu)
            assert grid_rate_total <= available + 1e-6
            assert machine.owner_received_cpu() == machine.owner_cpu

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_fair_share_conserves_cpu(self, owner, grid):
        assume(grid > 0.01)
        machine = Machine("m", MachineSpec(), scheduling="fair_share")
        machine.set_owner_load(owner, 0.0, True)
        try:
            machine.allocate("t", grid, 1.0)
        except InsufficientResources:
            assume(False)
        total = machine.owner_received_cpu() + \
            machine.grid_task_rate_mips("t") / machine.spec.mips
        assert total <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Misc invariants
# ---------------------------------------------------------------------------

class TestMetricProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_percentile_bounded(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(min_value=0, max_value=99, allow_nan=False),
           st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    def test_percentile_monotone_in_q(self, values, q, dq):
        assert percentile(values, q) <= percentile(values, min(100, q + dq))


class TestIorProperties:
    names = st.text(min_size=1, max_size=30)

    @given(names, names, st.lists(
        st.tuples(st.sampled_from(["inproc", "tcp"]), names),
        min_size=1, max_size=3,
    ))
    def test_roundtrip(self, interface, key, endpoints):
        ref = ObjectRef(interface, key, tuple(endpoints))
        assert ObjectRef.from_string(ref.to_string()) == ref


class TestConstraintFuzz:
    """The parser must raise ConstraintError (never anything else) on
    arbitrary text, and evaluation must never raise at all."""

    token_soup = st.text(
        alphabet="abcxyz0123456789 +-*/()<>=!&|'\".", max_size=60
    )

    @given(token_soup)
    @settings(max_examples=300)
    def test_parse_raises_only_constraint_error(self, text):
        from repro.apps.constraints import Constraint, ConstraintError

        try:
            constraint = Constraint(text)
        except ConstraintError:
            return
        # Parsed OK: evaluating over any property set must not raise.
        assert constraint.matches({"a": 1.0, "b": "x"}) in (True, False)
        assert constraint.matches({}) in (True, False)

    @given(st.dictionaries(
        st.sampled_from(["mips", "ram_mb", "cpu_free", "os"]),
        st.one_of(finite_floats, st.sampled_from(["linux", "windows"])),
        max_size=4,
    ))
    def test_trader_results_always_satisfy_the_constraint(self, props):
        from repro.apps.constraints import Constraint
        from repro.orb.trading import TradingService

        trader = TradingService()
        trader.export("node", "IOR:x", props)
        constraint = "mips >= 500 && cpu_free >= 0.5"
        matcher = Constraint(constraint)
        for offer in trader.query("node", constraint=constraint):
            assert matcher.matches(offer["properties"])


class TestNetworkProperties:
    segment_names = st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=4),
        min_size=2, max_size=5, unique=True,
    )

    @given(segment_names, st.data())
    def test_link_between_is_symmetric(self, names, data):
        from repro.sim.network import NetworkTopology

        topo = NetworkTopology()
        for name in names:
            topo.add_segment(
                name,
                bandwidth_mbps=data.draw(
                    st.floats(min_value=1.0, max_value=1000.0)
                ),
            )
        # Random spanning-ish edges.
        for a, b in zip(names, names[1:]):
            topo.connect(a, b, data.draw(
                st.floats(min_value=1.0, max_value=1000.0)
            ))
        for i, name in enumerate(names):
            topo.place(f"node{i}", name)
        nodes = [f"node{i}" for i in range(len(names))]
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                link_ab = topo.link_between(a, b)
                link_ba = topo.link_between(b, a)
                assert (link_ab is None) == (link_ba is None)
                if link_ab is not None:
                    assert link_ab.bandwidth_mbps == \
                        pytest.approx(link_ba.bandwidth_mbps)

    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=1, max_value=10**9))
    def test_transfer_time_monotone_in_bytes(self, a, b):
        from repro.sim.network import Link

        link = Link(bandwidth_mbps=100.0, latency_ms=1.0)
        lo, hi = sorted((a, b))
        assert link.transfer_seconds(lo) <= link.transfer_seconds(hi)


class TestTraceProperties:
    events_strategy = st.lists(
        st.tuples(
            st.booleans(),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=512.0, allow_nan=False),
        ),
        min_size=1, max_size=30,
    )

    @given(events_strategy)
    def test_dump_parse_roundtrip(self, rows):
        from repro.sim.trace import TraceEvent, dump_trace, parse_trace

        events = [
            TraceEvent(
                time=float(i * 10),
                present=present,
                cpu_fraction=round(cpu, 4),
                mem_mb=round(mem, 1),
            )
            for i, (present, cpu, mem) in enumerate(rows)
        ]
        parsed = parse_trace(dump_trace(events))
        assert len(parsed) == len(events)
        for original, back in zip(events, parsed):
            assert back.present == original.present
            assert back.cpu_fraction == pytest.approx(
                original.cpu_fraction, abs=1e-4
            )
            assert back.mem_mb == pytest.approx(original.mem_mb, abs=0.1)


class TestLupaProperties:
    @given(st.floats(min_value=0.0, max_value=6.9e5, allow_nan=False),
           st.floats(min_value=1.0, max_value=1e5, allow_nan=False))
    def test_idle_probability_bounded_and_monotone(self, start, duration):
        from repro.core.lupa import Lupa
        loop = EventLoop()
        lupa = Lupa(loop, "n", probe=lambda: 0.3, min_history_days=1)
        loop.run_until(2 * 86400.0)
        assert lupa.learned
        p_short = lupa.idle_probability(start, duration)
        p_long = lupa.idle_probability(start, duration * 2)
        assert 0.0 <= p_long <= p_short <= 1.0


class TestOrbDispatchFuzz:
    """The ORB must answer *any* byte soup with a marshalled error reply,
    never crash or hang."""

    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_garbage_requests_yield_error_replies(self, junk):
        from repro.orb.core import Orb, _STATUS_EXCEPTION
        from repro.orb.transport import InProcDomain

        orb = Orb(domain=InProcDomain())
        try:
            reply = orb.handle_request_bytes(junk)
            dec = CdrDecoder(reply)
            assert dec.read_octet() == _STATUS_EXCEPTION
            # The reply itself must be well-formed: type + message.
            dec.read_string()
            dec.read_string()
        finally:
            orb.shutdown()

    @given(st.binary(max_size=200))
    @settings(max_examples=100)
    def test_auth_required_orb_rejects_garbage(self, junk):
        from repro.orb.core import Orb, _STATUS_EXCEPTION
        from repro.orb.transport import InProcDomain
        from repro.security.auth import KeyRing

        ring = KeyRing()
        ring.add("a", b"k")
        orb = Orb(domain=InProcDomain(), keyring=ring, require_auth=True)
        try:
            reply = orb.handle_request_bytes(junk)
            dec = CdrDecoder(reply)
            assert dec.read_octet() == _STATUS_EXCEPTION
            exc_type = dec.read_string()
            assert exc_type in ("AuthenticationError", "MarshalError")
        finally:
            orb.shutdown()


class TestBspMessageProperties:
    @given(st.integers(min_value=1, max_value=6), st.data())
    def test_exchange_delivers_everything_exactly_once(self, nprocs, data):
        buffers = MessageBuffers(nprocs)
        sends = data.draw(st.lists(st.tuples(
            st.integers(0, nprocs - 1),
            st.integers(0, nprocs - 1),
            st.integers(-1000, 1000),
        ), max_size=40))
        for sender, dest, payload in sends:
            buffers.send(sender, dest, (sender, payload))
        buffers.exchange()
        delivered = [
            message
            for pid in range(nprocs)
            for message in buffers.inbox(pid)
        ]
        assert sorted(delivered) == sorted(
            (sender, payload) for sender, dest, payload in sends
        )
        # A second exchange with no sends clears every inbox.
        buffers.exchange()
        assert all(buffers.inbox(pid) == [] for pid in range(nprocs))
