"""Unit tests for usage-pattern learning (LUPA) and aggregation (GUPA)."""

import random

import pytest

from repro.core.gupa import Gupa, UNKNOWN
from repro.core.lupa import Lupa
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import ALWAYS_IDLE, OFFICE_WORKER
from repro.sim.workstation import Workstation


def office_lupa(weeks=2, seed=3):
    """A LUPA fed from a simulated office workstation for ``weeks``."""
    loop = EventLoop()
    ws = Workstation(
        loop, "ws0", spec=MachineSpec(), profile=OFFICE_WORKER,
        rng=random.Random(seed),
    )
    machine = ws.machine
    lupa = Lupa(
        loop, "ws0",
        probe=lambda: 1.0 if (machine.keyboard_active or machine.owner_cpu >= 0.1) else 0.0,
        min_history_days=7,
    )
    loop.run_until(weeks * SECONDS_PER_WEEK)
    return loop, lupa


class TestLupaCollection:
    def test_samples_accumulate(self):
        loop = EventLoop()
        lupa = Lupa(loop, "n0", probe=lambda: 0.0)
        loop.run_until(SECONDS_PER_HOUR)
        assert lupa.samples_taken == 12   # every 5 minutes

    def test_history_days_grow(self):
        loop = EventLoop()
        lupa = Lupa(loop, "n0", probe=lambda: 0.0)
        loop.run_until(3 * SECONDS_PER_DAY + 60)
        assert lupa.history_days == 3

    def test_not_learned_before_min_history(self):
        loop = EventLoop()
        lupa = Lupa(loop, "n0", probe=lambda: 0.0, min_history_days=7)
        loop.run_until(3 * SECONDS_PER_DAY)
        assert not lupa.learned
        assert lupa.predict_busy(0.0) == 0.5   # maximum uncertainty
        assert lupa.pattern() is None

    def test_invalid_configuration(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            Lupa(loop, "n0", probe=lambda: 0.0, bins_per_day=7)
        with pytest.raises(ValueError):
            Lupa(loop, "n0", probe=lambda: 0.0, categories=0)
        with pytest.raises(ValueError):
            Lupa(loop, "n0", probe=lambda: 0.0, relearn_interval=0)


def weekday_lupa(days, relearn_interval=1, min_history_days=3):
    """A LUPA fed a deterministic weekday-busy / weekend-idle owner."""
    loop = EventLoop()
    lupa = Lupa(
        loop, "n0",
        probe=lambda: 1.0 if (
            int(loop.now // SECONDS_PER_DAY) % 7 < 5
            and 9 * SECONDS_PER_HOUR <= loop.now % SECONDS_PER_DAY
            < 17 * SECONDS_PER_HOUR
        ) else 0.0,
        min_history_days=min_history_days,
        relearn_interval=relearn_interval,
    )
    loop.run_until(days * SECONDS_PER_DAY + SECONDS_PER_HOUR)
    return lupa


class TestLupaIncrementalLearning:
    def test_default_relearns_daily(self):
        lupa = weekday_lupa(days=10)
        assert lupa.incremental_updates == 0
        # One full clustering pass per finished day once history suffices.
        assert lupa.full_relearns == 10 - 3 + 1

    def test_interval_skips_clustering_passes(self):
        daily = weekday_lupa(days=10)
        sparse = weekday_lupa(days=10, relearn_interval=7)
        assert sparse.full_relearns < daily.full_relearns
        assert sparse.incremental_updates > 0
        # Every finished day still refreshes the profile one way or the other.
        assert sparse.full_relearns + sparse.incremental_updates \
            == daily.full_relearns

    def test_incremental_profile_still_predicts(self):
        lupa = weekday_lupa(days=14, relearn_interval=7)
        assert lupa.learned
        tuesday_noon = (7 + 1) * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
        saturday_noon = (7 + 5) * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
        assert lupa.predict_busy(tuesday_noon) > 0.8
        assert lupa.predict_busy(saturday_noon) < 0.2

    def test_learn_wall_time_accumulates(self):
        lupa = weekday_lupa(days=5)
        assert lupa.full_relearns > 0
        assert lupa.learn_wall_s > 0.0


class TestLupaLearning:
    def test_office_pattern_recovered(self):
        _, lupa = office_lupa(weeks=3)
        assert lupa.learned
        tuesday_10am = SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
        tuesday_3am = SECONDS_PER_DAY + 3 * SECONDS_PER_HOUR
        saturday_noon = 5 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
        assert lupa.predict_busy(tuesday_10am) > 0.5
        assert lupa.predict_busy(tuesday_3am) < 0.2
        assert lupa.predict_busy(saturday_noon) < 0.3

    def test_idle_node_learns_idleness(self):
        loop = EventLoop()
        lupa = Lupa(loop, "n0", probe=lambda: 0.0, min_history_days=7)
        loop.run_until(8 * SECONDS_PER_DAY)
        assert lupa.learned
        assert lupa.predict_busy(SECONDS_PER_DAY) == pytest.approx(0.0)

    def test_idle_probability_longer_spans_less_likely(self):
        _, lupa = office_lupa(weeks=3)
        monday_7am = 7 * SECONDS_PER_HOUR
        short = lupa.idle_probability(monday_7am, 30 * 60)
        long = lupa.idle_probability(monday_7am, 8 * SECONDS_PER_HOUR)
        assert short > long

    def test_night_span_predicted_idle(self):
        _, lupa = office_lupa(weeks=3)
        monday_10pm = 22 * SECONDS_PER_HOUR
        assert lupa.idle_probability(monday_10pm, 6 * SECONDS_PER_HOUR) > 0.5

    def test_workday_span_predicted_busy(self):
        _, lupa = office_lupa(weeks=3)
        tuesday_9am = SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR
        assert lupa.idle_probability(tuesday_9am, 6 * SECONDS_PER_HOUR) < 0.2

    def test_pattern_is_marshallable_shape(self):
        _, lupa = office_lupa(weeks=2)
        pattern = lupa.pattern()
        assert pattern["node"] == "ws0"
        assert len(pattern["weekly"]) == 7
        assert len(pattern["weekly"][0]) == lupa.bins_per_day
        assert all(
            0.0 <= v <= 1.0 for row in pattern["weekly"] for v in row
        )

    def test_stop_halts_sampling(self):
        loop = EventLoop()
        lupa = Lupa(loop, "n0", probe=lambda: 0.0)
        loop.run_until(SECONDS_PER_HOUR)
        lupa.stop()
        before = lupa.samples_taken
        loop.run_until(2 * SECONDS_PER_HOUR)
        assert lupa.samples_taken == before


class TestGupa:
    def make_pattern(self, busy_hours=(9, 17), bins_per_day=24):
        weekly = []
        for day in range(7):
            row = [
                1.0 if (day < 5 and busy_hours[0] <= h < busy_hours[1]) else 0.0
                for h in range(bins_per_day)
            ]
            weekly.append(row)
        return {"bins_per_day": bins_per_day, "weekly": weekly}

    def test_upload_and_query(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern())
        assert gupa.has_pattern("n0")
        assert gupa.uploads == 1
        monday_noon = 12 * SECONDS_PER_HOUR
        assert gupa.busy_probability("n0", monday_noon) == 1.0
        monday_3am = 3 * SECONDS_PER_HOUR
        assert gupa.busy_probability("n0", monday_3am) == 0.0

    def test_unknown_node(self):
        gupa = Gupa()
        assert not gupa.has_pattern("ghost")
        assert gupa.busy_probability("ghost", 0.0) == UNKNOWN
        assert gupa.idle_probability("ghost", 0.0, 100.0) == UNKNOWN

    def test_none_upload_ignored(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", None)   # LUPA not learned yet
        assert not gupa.has_pattern("n0")
        assert gupa.uploads == 0

    def test_malformed_pattern_rejected(self):
        gupa = Gupa()
        with pytest.raises(ValueError):
            gupa.upload_pattern("n0", {"weekly": [[0.0]]})
        with pytest.raises(ValueError):
            gupa.upload_pattern("n0", {"bins_per_day": 24})

    def test_non_dividing_bins_per_day_rejected(self):
        gupa = Gupa()
        for bad in (7, 23, 1000):   # none divide the 86400-second day
            with pytest.raises(ValueError, match="divide"):
                gupa.upload_pattern(
                    "n0", {"bins_per_day": bad, "weekly": [[0.0] * bad] * 7}
                )
        assert not gupa.has_pattern("n0")

    def test_nonpositive_or_non_integer_bins_rejected(self):
        gupa = Gupa()
        for bad in (0, -24, 24.0, "24", True):
            with pytest.raises(ValueError):
                gupa.upload_pattern(
                    "n0", {"bins_per_day": bad, "weekly": [[0.0]] * 7}
                )

    def test_row_length_mismatch_rejected(self):
        gupa = Gupa()
        weekly = [[0.0] * 24 for _ in range(7)]
        weekly[3] = [0.0] * 23   # one short row
        with pytest.raises(ValueError, match="row"):
            gupa.upload_pattern("n0", {"bins_per_day": 24, "weekly": weekly})
        assert not gupa.has_pattern("n0")

    def test_batch_matches_single_queries(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern())
        gupa.upload_pattern("n1", self.make_pattern(busy_hours=(0, 24)))
        start = 8 * SECONDS_PER_HOUR
        duration = 4 * SECONDS_PER_HOUR
        batch = gupa.idle_probabilities(
            ["n0", "n1", "ghost"], start, duration
        )
        assert batch[0] == gupa.idle_probability("n0", start, duration)
        assert batch[1] == gupa.idle_probability("n1", start, duration)
        assert batch[2] == UNKNOWN

    def test_batch_mixed_bin_widths(self):
        gupa = Gupa()
        gupa.upload_pattern("hourly", self.make_pattern(bins_per_day=24))
        gupa.upload_pattern(
            "halfhour", self.make_pattern(bins_per_day=48)
        )
        start = 16 * SECONDS_PER_HOUR + 600.0
        batch = gupa.idle_probabilities(["hourly", "halfhour"], start, 7200.0)
        for node, value in zip(["hourly", "halfhour"], batch):
            assert value == gupa.idle_probability(node, start, 7200.0)

    def test_batch_per_node_durations(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern())
        gupa.upload_pattern("n1", self.make_pattern())
        import numpy as np
        durations = np.array([3600.0, -1.0])
        batch = gupa.idle_probabilities(["n0", "n1"], 1000.0, durations)
        assert batch[0] == gupa.idle_probability("n0", 1000.0, 3600.0)
        assert batch[1] == gupa.idle_probability("n1", 1000.0, -1.0)

    def test_idle_probability_spans(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern())
        night = 22 * SECONDS_PER_HOUR
        assert gupa.idle_probability("n0", night, 4 * SECONDS_PER_HOUR) \
            == pytest.approx(1.0)
        morning = 8 * SECONDS_PER_HOUR
        # 08:00 + 4h crosses into the busy 9-17 block: certain interruption
        assert gupa.idle_probability("n0", morning, 4 * SECONDS_PER_HOUR) \
            == pytest.approx(0.0)

    def test_weekend_is_idle(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern())
        saturday_noon = 5 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
        assert gupa.idle_probability(
            "n0", saturday_noon, 8 * SECONDS_PER_HOUR
        ) == pytest.approx(1.0)

    def test_forget(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern())
        gupa.forget("n0")
        assert not gupa.has_pattern("n0")

    def test_reupload_refreshes(self):
        gupa = Gupa()
        gupa.upload_pattern("n0", self.make_pattern(busy_hours=(0, 24)))
        gupa.upload_pattern("n0", self.make_pattern(busy_hours=(9, 10)))
        assert gupa.busy_probability("n0", 12 * SECONDS_PER_HOUR) == 0.0
        assert gupa.known_nodes == ["n0"]


class TestEndToEndPatternFlow:
    def test_lupa_pattern_feeds_gupa(self):
        _, lupa = office_lupa(weeks=2)
        gupa = Gupa()
        gupa.upload_pattern(lupa.node, lupa.pattern())
        tuesday_10am = SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
        # Both sides must agree: same model, same numbers.
        assert gupa.busy_probability("ws0", tuesday_10am) == pytest.approx(
            lupa.predict_busy(tuesday_10am)
        )
        assert gupa.idle_probability(
            "ws0", tuesday_10am, SECONDS_PER_HOUR
        ) == pytest.approx(lupa.idle_probability(tuesday_10am, SECONDS_PER_HOUR))
