"""Edge-case tests for the TCP transport.

Malformed wire input (empty frames, oversized frames, connections cut
mid-frame) must never kill a serving thread or poison other callers,
frame-size limits are enforced in both directions, concurrent invokes
are safe on both framings, and connection bookkeeping must not leak.
"""

import socket
import struct
import threading
import time

import pytest

from repro.orb.cdr import CdrDecoder, CdrEncoder, String
from repro.orb.core import Orb
from repro.orb.exceptions import CommunicationError
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import (
    MAX_FRAME_BYTES,
    InProcDomain,
    _send_frame,
)

ECHO_INTERFACE = InterfaceDef("test/Echo", [
    Operation("echo", (Parameter("text", String),), returns=String),
])


class Echo:
    def echo(self, text):
        return text


def make_server(pipelined=False):
    orb = Orb("edge-server", domain=InProcDomain(), tcp=True,
              tcp_pipelined=pipelined)
    ref = orb.activate(Echo(), ECHO_INTERFACE, key="test/echo")
    return orb, ref


def make_client(pipelined=False):
    return Orb("edge-client", domain=InProcDomain(), tcp=True,
               tcp_pipelined=pipelined)


def raw_connect(orb):
    transport = orb._tcp
    return socket.create_connection((transport.host, transport.port),
                                    timeout=5)


def legacy_request_frame(key, operation, text):
    """A hand-built legacy frame (flag byte 1 = reply expected)."""
    enc = CdrEncoder()
    enc.write_string(key)
    enc.write_string(operation)
    enc.write_string(text)
    payload = b"\x01" + enc.getvalue()
    return struct.pack(">I", len(payload)) + payload


def recv_reply(sock):
    header = sock.recv(4)
    (length,) = struct.unpack(">I", header)
    data = b""
    while len(data) < length:
        chunk = sock.recv(length - len(data))
        assert chunk, "server closed mid-reply"
        data += chunk
    dec = CdrDecoder(data)
    assert dec.read_octet() == 0   # status ok
    return dec.read_string()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestMalformedFrames:
    def test_empty_frame_is_dropped_and_connection_keeps_serving(self):
        server, _ = make_server()
        try:
            with raw_connect(server) as sock:
                sock.sendall(struct.pack(">I", 0))   # zero-length frame
                sock.sendall(legacy_request_frame("test/echo", "echo", "hi"))
                assert recv_reply(sock) == "hi"
            assert server._tcp.frames_rejected == 1
        finally:
            server.shutdown()

    def test_oversized_inbound_frame_drops_the_connection(self):
        server, _ = make_server()
        try:
            with raw_connect(server) as sock:
                # A header claiming more than MAX_FRAME_BYTES must kill
                # the connection before any allocation happens.
                sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
                sock.settimeout(5)
                assert sock.recv(1) == b""   # server closed it
            # The transport itself survives: a well-formed connection
            # right after still gets served.
            with raw_connect(server) as sock:
                sock.sendall(legacy_request_frame("test/echo", "echo", "ok"))
                assert recv_reply(sock) == "ok"
        finally:
            server.shutdown()

    def test_oversized_outbound_frame_fails_fast(self, monkeypatch):
        import repro.orb.transport as transport_mod

        monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 64)
        with pytest.raises(CommunicationError):
            # Rejected before the socket is touched (hence None works).
            _send_frame(None, b"x" * 65)

    def test_peer_close_mid_frame_does_not_kill_the_server(self):
        server, ref = make_server()
        client = make_client()
        try:
            with raw_connect(server) as sock:
                sock.sendall(struct.pack(">I", 100) + b"only ten b")
            # The half-written connection is gone; a real client on a
            # fresh connection is unaffected.
            stub = client.stub(ref, ECHO_INTERFACE)
            assert stub.echo("still alive") == "still alive"
        finally:
            client.shutdown()
            server.shutdown()

    def test_empty_frame_on_pipelined_connection_is_dropped(self):
        server, ref = make_server(pipelined=True)
        client = make_client(pipelined=True)
        try:
            stub = client.stub(ref, ECHO_INTERFACE)
            assert stub.echo("negotiate") == "negotiate"   # upgrade first
            conn = next(iter(client._tcp._pipelined_conns.values()))
            with conn.send_lock:
                conn.sock.sendall(struct.pack(">I", 0))
            assert wait_for(lambda: server._tcp.frames_rejected == 1)
            assert stub.echo("after") == "after"
        finally:
            client.shutdown()
            server.shutdown()


class TestConcurrentInvokes:
    @pytest.mark.parametrize("pipelined", [False, True])
    def test_threaded_echo_storm(self, pipelined):
        server, ref = make_server(pipelined=pipelined)
        client = make_client(pipelined=pipelined)
        errors = []

        def worker(tid):
            try:
                stub = client.stub(ref, ECHO_INTERFACE)
                for i in range(25):
                    text = f"t{tid}-{i}"
                    if stub.echo(text) != text:
                        raise AssertionError("echo mismatch")
            except Exception as exc:
                errors.append(exc)

        try:
            threads = [threading.Thread(target=worker, args=(tid,))
                       for tid in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert server.requests_handled >= 8 * 25
        finally:
            client.shutdown()
            server.shutdown()


class TestConnectionBookkeeping:
    def test_server_prunes_closed_connections(self):
        server, ref = make_server()
        client = make_client()
        try:
            stub = client.stub(ref, ECHO_INTERFACE)
            assert stub.echo("x") == "x"
            assert wait_for(lambda: len(server._tcp._server_conns) == 1)
        finally:
            client.shutdown()
        try:
            # Closing the client must drain the server's connection list,
            # not leave a dead socket behind for the transport's lifetime.
            assert wait_for(lambda: len(server._tcp._server_conns) == 0)
        finally:
            server.shutdown()

    def test_dropping_a_connection_drops_its_lock(self):
        server, ref = make_server()
        client = make_client()
        try:
            stub = client.stub(ref, ECHO_INTERFACE)
            assert stub.echo("x") == "x"
            transport = client._tcp
            address = server._tcp.address
            assert address in transport._conn_locks
            transport._drop_connection(address)
            assert address not in transport._conn_locks
            assert address not in transport._client_socks
            # And the client recovers by reconnecting transparently.
            assert stub.echo("y") == "y"
        finally:
            client.shutdown()
            server.shutdown()


class TestFramingInterop:
    def test_pipelined_client_against_legacy_server(self):
        server, ref = make_server(pipelined=False)
        client = make_client(pipelined=True)
        try:
            stub = client.stub(ref, ECHO_INTERFACE)
            assert stub.echo("mixed") == "mixed"
            # The failed probe is remembered: this peer speaks legacy.
            assert server._tcp.address in client._tcp._legacy_addrs
            assert client._tcp._pipelined_conns == {}
        finally:
            client.shutdown()
            server.shutdown()

    def test_legacy_client_against_pipelined_server(self):
        server, ref = make_server(pipelined=True)
        client = make_client(pipelined=False)
        try:
            stub = client.stub(ref, ECHO_INTERFACE)
            assert stub.echo("mixed") == "mixed"
        finally:
            client.shutdown()
            server.shutdown()
