"""Unit tests for the synthetic usage profiles."""

import pytest

from repro.sim.usage import (
    ALWAYS_IDLE,
    ERRATIC,
    NIGHT_OWL,
    OFFICE_WORKER,
    PROFILES,
    STUDENT_LAB,
)


class TestOfficeWorker:
    def test_busy_during_working_hours(self):
        assert OFFICE_WORKER.mean_presence(1, 10.0) > 0.8

    def test_lunch_dip(self):
        lunch = OFFICE_WORKER.mean_presence(1, 12.5)
        morning = OFFICE_WORKER.mean_presence(1, 10.0)
        assert lunch < morning / 2

    def test_idle_at_night(self):
        assert OFFICE_WORKER.mean_presence(1, 3.0) < 0.1

    def test_idle_on_weekend(self):
        assert OFFICE_WORKER.mean_presence(5, 10.0) < 0.1
        assert OFFICE_WORKER.mean_presence(6, 10.0) < 0.1

    def test_holiday_discount(self):
        normal = OFFICE_WORKER.mean_presence(1, 10.0)
        holiday = OFFICE_WORKER.mean_presence(1, 10.0, holiday=True)
        assert holiday < normal * 0.1


class TestOtherProfiles:
    def test_night_owl_peaks_at_night(self):
        assert NIGHT_OWL.mean_presence(2, 22.0) > NIGHT_OWL.mean_presence(2, 14.0)

    def test_night_owl_wraps_midnight(self):
        assert NIGHT_OWL.mean_presence(2, 1.0) > 0.5

    def test_always_idle_is_always_idle(self):
        for day in range(7):
            for hour in (0.0, 6.0, 12.0, 18.0, 23.5):
                assert ALWAYS_IDLE.mean_presence(day, hour) == 0.0

    def test_erratic_is_flat(self):
        values = {
            ERRATIC.mean_presence(d, h)
            for d in range(7)
            for h in (0.0, 8.0, 16.0)
        }
        assert len(values) == 1

    def test_student_lab_open_long_hours(self):
        assert STUDENT_LAB.mean_presence(3, 21.0) > 0.5
        assert STUDENT_LAB.mean_presence(3, 23.5) < 0.1


class TestTransitionProbs:
    def test_stationary_distribution_matches_mean(self):
        for mean in (0.1, 0.5, 0.9):
            p_on, p_off = OFFICE_WORKER.transition_probs(mean, tick_minutes=5.0)
            stationary = p_on / (p_on + p_off)
            assert stationary == pytest.approx(mean, rel=1e-6)

    def test_zero_mean_never_arrives(self):
        p_on, p_off = OFFICE_WORKER.transition_probs(0.0, 5.0)
        assert p_on == 0.0
        assert p_off == 1.0

    def test_full_mean_never_leaves(self):
        p_on, p_off = OFFICE_WORKER.transition_probs(1.0, 5.0)
        assert p_on == 1.0
        assert p_off == 0.0

    def test_session_length_sets_p_off(self):
        p_on, p_off = OFFICE_WORKER.transition_probs(0.5, tick_minutes=5.0)
        assert p_off == pytest.approx(5.0 / OFFICE_WORKER.mean_session_minutes)

    def test_probs_clamped_to_one(self):
        # Very high mean with short sessions must not exceed probability 1.
        p_on, p_off = ERRATIC.transition_probs(0.99, tick_minutes=60.0)
        assert 0.0 <= p_on <= 1.0
        assert 0.0 <= p_off <= 1.0


def test_profile_registry():
    assert set(PROFILES) == {
        "office_worker", "student_lab", "night_owl", "always_idle", "erratic",
    }
    for name, profile in PROFILES.items():
        assert profile.name == name


def test_presence_clamped():
    # Day and hour outside canonical ranges are wrapped, not errors.
    assert 0.0 <= OFFICE_WORKER.mean_presence(8, 25.0) <= 1.0


class TestVectorizedGrids:
    """The weekly numpy grids must be bit-identical to the scalar path."""

    def test_presence_grid_matches_scalar(self):
        from repro.sim.usage import (
            SECONDS_PER_DAY, SECONDS_PER_HOUR, presence_grid,
        )
        for profile in (OFFICE_WORKER, STUDENT_LAB, ALWAYS_IDLE):
            for holiday in (False, True):
                grid = presence_grid(profile, 300.0, holiday)
                assert len(grid) == 2016   # a week of 5-minute ticks
                for k in (0, 1, 500, 1000, 2015):
                    t = k * 300.0
                    day = int(t // SECONDS_PER_DAY) % 7
                    hour = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
                    assert grid[k] == profile.mean_presence(
                        day, hour, holiday=holiday
                    )

    def test_transition_grid_matches_scalar(self):
        from repro.sim.usage import presence_grid, transition_grid
        for profile in (NIGHT_OWL, ERRATIC, ALWAYS_IDLE):
            mean = presence_grid(profile, 300.0)
            grid = transition_grid(profile, 300.0)
            for k in range(0, len(grid), 97):
                expected = profile.transition_probs(mean[k], 5.0)
                assert (grid[k, 0], grid[k, 1]) == expected

    def test_grids_are_cached_and_read_only(self):
        from repro.sim.usage import presence_grid
        a = presence_grid(OFFICE_WORKER, 300.0)
        assert presence_grid(OFFICE_WORKER, 300.0) is a
        with pytest.raises(ValueError):
            a[0] = 0.5

    def test_generate_presence_trace_deterministic(self):
        import numpy as np
        from repro.sim.usage import generate_presence_trace
        t1 = generate_presence_trace(OFFICE_WORKER, weeks=2, seed=7)
        t2 = generate_presence_trace(OFFICE_WORKER, weeks=2, seed=7)
        assert t1.dtype == bool and len(t1) == 2 * 2016
        assert np.array_equal(t1, t2)
        t3 = generate_presence_trace(OFFICE_WORKER, weeks=2, seed=8)
        assert not np.array_equal(t1, t3)
        assert not generate_presence_trace(ALWAYS_IDLE, weeks=1).any()
        with pytest.raises(ValueError):
            generate_presence_trace(OFFICE_WORKER, weeks=0)

    def test_holiday_days_suppress_presence(self):
        import numpy as np
        from repro.sim.usage import generate_presence_trace
        ticks_per_day = 288
        busy = generate_presence_trace(STUDENT_LAB, weeks=1, seed=3)
        quiet = generate_presence_trace(
            STUDENT_LAB, weeks=1, seed=3, holidays={1}
        )
        day1 = slice(1 * ticks_per_day, 2 * ticks_per_day)
        assert quiet[day1].sum() <= busy[day1].sum()
