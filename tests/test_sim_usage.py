"""Unit tests for the synthetic usage profiles."""

import pytest

from repro.sim.usage import (
    ALWAYS_IDLE,
    ERRATIC,
    NIGHT_OWL,
    OFFICE_WORKER,
    PROFILES,
    STUDENT_LAB,
)


class TestOfficeWorker:
    def test_busy_during_working_hours(self):
        assert OFFICE_WORKER.mean_presence(1, 10.0) > 0.8

    def test_lunch_dip(self):
        lunch = OFFICE_WORKER.mean_presence(1, 12.5)
        morning = OFFICE_WORKER.mean_presence(1, 10.0)
        assert lunch < morning / 2

    def test_idle_at_night(self):
        assert OFFICE_WORKER.mean_presence(1, 3.0) < 0.1

    def test_idle_on_weekend(self):
        assert OFFICE_WORKER.mean_presence(5, 10.0) < 0.1
        assert OFFICE_WORKER.mean_presence(6, 10.0) < 0.1

    def test_holiday_discount(self):
        normal = OFFICE_WORKER.mean_presence(1, 10.0)
        holiday = OFFICE_WORKER.mean_presence(1, 10.0, holiday=True)
        assert holiday < normal * 0.1


class TestOtherProfiles:
    def test_night_owl_peaks_at_night(self):
        assert NIGHT_OWL.mean_presence(2, 22.0) > NIGHT_OWL.mean_presence(2, 14.0)

    def test_night_owl_wraps_midnight(self):
        assert NIGHT_OWL.mean_presence(2, 1.0) > 0.5

    def test_always_idle_is_always_idle(self):
        for day in range(7):
            for hour in (0.0, 6.0, 12.0, 18.0, 23.5):
                assert ALWAYS_IDLE.mean_presence(day, hour) == 0.0

    def test_erratic_is_flat(self):
        values = {
            ERRATIC.mean_presence(d, h)
            for d in range(7)
            for h in (0.0, 8.0, 16.0)
        }
        assert len(values) == 1

    def test_student_lab_open_long_hours(self):
        assert STUDENT_LAB.mean_presence(3, 21.0) > 0.5
        assert STUDENT_LAB.mean_presence(3, 23.5) < 0.1


class TestTransitionProbs:
    def test_stationary_distribution_matches_mean(self):
        for mean in (0.1, 0.5, 0.9):
            p_on, p_off = OFFICE_WORKER.transition_probs(mean, tick_minutes=5.0)
            stationary = p_on / (p_on + p_off)
            assert stationary == pytest.approx(mean, rel=1e-6)

    def test_zero_mean_never_arrives(self):
        p_on, p_off = OFFICE_WORKER.transition_probs(0.0, 5.0)
        assert p_on == 0.0
        assert p_off == 1.0

    def test_full_mean_never_leaves(self):
        p_on, p_off = OFFICE_WORKER.transition_probs(1.0, 5.0)
        assert p_on == 1.0
        assert p_off == 0.0

    def test_session_length_sets_p_off(self):
        p_on, p_off = OFFICE_WORKER.transition_probs(0.5, tick_minutes=5.0)
        assert p_off == pytest.approx(5.0 / OFFICE_WORKER.mean_session_minutes)

    def test_probs_clamped_to_one(self):
        # Very high mean with short sessions must not exceed probability 1.
        p_on, p_off = ERRATIC.transition_probs(0.99, tick_minutes=60.0)
        assert 0.0 <= p_on <= 1.0
        assert 0.0 <= p_off <= 1.0


def test_profile_registry():
    assert set(PROFILES) == {
        "office_worker", "student_lab", "night_owl", "always_idle", "erratic",
    }
    for name, profile in PROFILES.items():
        assert profile.name == name


def test_presence_clamped():
    # Day and hour outside canonical ranges are wrapped, not errors.
    assert 0.0 <= OFFICE_WORKER.mean_presence(8, 25.0) <= 1.0
