"""Tests for the metrics registry: primitives, views, component wiring."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDS_S,
    MetricsRegistry,
)
from repro.sim.clock import SimClock


# -- primitives ---------------------------------------------------------------


def test_counter_and_gauge():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge("g")
    gauge.set(2.5)
    gauge.add(-1.0)
    assert gauge.value == 1.5


def test_histogram_exact_statistics():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 8.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == pytest.approx(13.0)
    assert hist.mean == pytest.approx(3.25)
    assert hist.min == 0.5
    assert hist.max == 8.0
    expected_var = sum((v - 3.25) ** 2 for v in (0.5, 1.5, 3.0, 8.0)) / 4
    assert hist.stddev == pytest.approx(math.sqrt(expected_var))
    # One observation per bucket, including overflow.
    assert hist.counts == [1, 1, 1, 1]


def test_histogram_percentiles_clamped_to_observed_range():
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for _ in range(100):
        hist.observe(5.0)
    assert hist.percentile(50) == pytest.approx(5.0, abs=5.0)
    assert hist.min <= hist.percentile(99) <= hist.max
    assert hist.percentile(0) >= hist.min
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_empty_snapshot_is_all_zero():
    snap = Histogram("h").snapshot()
    assert snap["count"] == 0
    assert snap["mean"] == 0.0
    assert snap["min"] == 0.0
    assert snap["max"] == 0.0
    assert snap["p50"] == 0.0
    assert snap["p99"] == 0.0
    assert snap["stddev"] == 0.0


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=())


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    with pytest.raises(ValueError):
        registry.gauge("a")   # name already taken by a counter


def test_registry_view_and_metric_names_collide():
    registry = MetricsRegistry()
    registry.counter("c")
    with pytest.raises(ValueError):
        registry.view("c", lambda: 1)
    registry.view("v", lambda: 1)
    with pytest.raises(ValueError):
        registry.counter("v")
    # Re-registering a view replaces it (idempotent re-wiring).
    registry.view("v", lambda: 2)
    assert registry.snapshot()["metrics"]["v"] == 2


def test_snapshot_stamped_in_sim_time():
    clock = SimClock()
    registry = MetricsRegistry(clock=clock)
    registry.counter("c").inc(3)
    clock.advance_to(42.5)
    snap = registry.snapshot()
    assert snap["time"] == 42.5
    assert snap["metrics"]["c"] == 3


def test_bind_publishes_object_attributes_as_views():
    class Stats:
        hits = 7
        misses = 2

    registry = MetricsRegistry()
    stats = Stats()
    registry.bind("cache", stats, ("hits", "misses"))
    stats.hits = 9   # views are live, not copies
    metrics = registry.snapshot()["metrics"]
    assert metrics["cache.hits"] == 9
    assert metrics["cache.misses"] == 2


# -- component wiring ---------------------------------------------------------


def test_event_loop_metrics_views():
    from repro.sim.events import EventLoop

    loop = EventLoop()
    registry = MetricsRegistry(clock=loop.clock)
    loop.to_metrics(registry)
    handle = loop.schedule(5.0, lambda: None)
    loop.schedule(1.0, lambda: None)
    handle.cancel()
    loop.run_until(10.0)
    metrics = registry.snapshot()["metrics"]
    assert metrics["eventloop.events_fired"] == 1
    assert metrics["eventloop.events_cancelled"] == 1
    assert metrics["eventloop.pending"] == 0
    assert metrics["eventloop.sim_time"] == 10.0


def test_event_loop_handler_timing_is_opt_in():
    from repro.sim.events import EventLoop

    loop = EventLoop()
    hist = Histogram("eventloop.handler_wall_s", LATENCY_BOUNDS_S)
    loop.time_handlers(hist)
    loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    loop.run_until(5.0)
    assert hist.count == 2
    loop.time_handlers(None)   # revert to the untimed fast path
    loop.schedule(1.0, lambda: None)
    loop.run_until(10.0)
    assert hist.count == 2


def test_trader_metrics_count_query_paths():
    from repro.orb.trading import TradingService

    trader = TradingService()
    registry = MetricsRegistry()
    trader.bind_metrics(registry)
    trader.export("node", "ior0", {"sharing": True, "cpu": 1.0})
    trader.export("node", "ior1", {"sharing": False, "cpu": 2.0})
    trader.query("node", constraint="sharing == true")   # indexed
    trader.query("node", constraint="cpu > 0.5")         # linear
    metrics = registry.snapshot()["metrics"]
    assert metrics["trader.queries"] == 2
    assert metrics["trader.indexed_queries"] == 1
    assert metrics["trader.linear_queries"] == 1
    assert metrics["trader.offer_count"] == 2
    assert metrics["trader.query_latency_s"]["count"] == 2


def test_grid_enable_metrics_unifies_component_counters():
    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid

    grid = Grid(seed=3, lupa_enabled=False)
    grid.add_cluster("c0")
    for i in range(3):
        grid.add_node("c0", f"n{i}")
    registry = grid.enable_metrics()
    job_id = grid.submit(ApplicationSpec(name="m", tasks=2))
    assert grid.wait_for_job(job_id, max_seconds=4 * 3600.0)
    metrics = registry.snapshot()["metrics"]
    grm = grid.clusters["c0"].grm
    # The registry views and the attribute APIs read the same storage.
    assert metrics["grm.c0.placements"] == grm.stats.placements == 2
    assert metrics["grm.c0.completions"] == grm.stats.completions == 2
    lrm_completed = sum(
        node.lrm.completed_count
        for node in grid.clusters["c0"].nodes.values()
    )
    assert metrics["lrm.total.completed_count"] == lrm_completed == 2
    assert metrics["eventloop.events_fired"] == grid.loop.events_fired
    assert metrics["orb.totals"] == grid.protocol_stats()
    assert metrics["trader.c0.queries"] == grm.trader.queries > 0
    assert metrics["grm.c0.rank_latency_s"]["count"] > 0


def test_grid_enable_metrics_is_idempotent_and_covers_late_nodes():
    from repro.core.grid import Grid

    grid = Grid(seed=0, lupa_enabled=False)
    grid.add_cluster("c0")
    registry = grid.enable_metrics()
    assert grid.enable_metrics() is registry
    grid.add_node("c0", "late0")   # added after enable_metrics
    metrics = registry.snapshot()["metrics"]
    assert "lrm.late0.completed_count" in metrics
    assert "orb.late0-orb" in metrics


def test_cluster_monitor_to_metrics():
    from repro.core.grid import Grid
    from repro.core.monitor import ClusterMonitor

    grid = Grid(seed=1, lupa_enabled=False)
    grid.add_cluster("c0")
    grid.add_node("c0", "n0")
    monitor = ClusterMonitor(grid.loop, grid.clusters["c0"].grm,
                             period=600.0)
    registry = grid.enable_metrics()
    monitor.to_metrics(registry)
    before = registry.snapshot()["metrics"]
    assert before["monitor.c0.samples"] == 0
    assert before["monitor.c0.nodes"] == 0   # no sample yet -> zeros
    grid.run_for(1800.0)
    after = registry.snapshot()["metrics"]
    assert after["monitor.c0.samples"] >= 2
    assert after["monitor.c0.nodes"] == 1
    assert 0.0 <= after["monitor.c0.harvest_ratio"] <= 1.0


def test_lupa_to_metrics():
    from repro.core.lupa import Lupa
    from repro.sim.events import EventLoop

    loop = EventLoop()
    lupa = Lupa(loop, "n0", probe=lambda: 0.0, min_history_days=1)
    registry = MetricsRegistry(clock=loop.clock)
    lupa.to_metrics(registry)
    loop.run_until(2 * 86400.0)
    metrics = registry.snapshot()["metrics"]
    assert metrics["lupa.n0.samples_taken"] == lupa.samples_taken > 0
    assert metrics["lupa.n0.history_days"] == lupa.history_days


def test_bsp_barrier_wait_histogram():
    from repro.bsp.runtime import run_bsp

    def program(bsp):
        for _ in range(3):
            bsp.sync()
        return bsp.pid

    registry = MetricsRegistry()
    run = run_bsp(2, program, metrics=registry)
    assert run.results == [0, 1]
    hist = registry.get("bsp.barrier_wait_s")
    # 2 processes x 3 syncs; drain barriers may add more observations.
    assert hist.count >= 6


def test_metrics_do_not_perturb_determinism():
    """Same seed, with and without metrics: byte-identical event stream."""
    import hashlib

    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid

    def run(enable):
        grid = Grid(seed=11, lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(3):
            grid.add_node("c0", f"n{i}",
                          profile=__import__(
                              "repro.sim.usage", fromlist=["PROFILES"]
                          ).PROFILES["office_worker"])
        if enable:
            grid.enable_metrics()
        grid.submit(ApplicationSpec(name="d", tasks=2))
        digest = hashlib.sha256()
        for _ in range(48):
            grid.run_for(1800.0)
            digest.update(repr(grid.loop.now).encode())
            digest.update(repr(grid.loop.events_fired).encode())
        digest.update(repr(grid.protocol_stats()).encode())
        return digest.hexdigest()

    assert run(False) == run(True)


def test_export_metrics_json_round_trip(tmp_path):
    import json

    from repro.obs.exporters import export_metrics_json

    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.histogram("h").observe(0.5)
    path = tmp_path / "metrics.json"
    snapshot = export_metrics_json(registry, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["metrics"]["c"] == 2
    assert loaded["metrics"]["h"]["count"] == 1
    assert snapshot["metrics"]["c"] == 2


class TestHistogramValidation:
    """Bounds and percentile argument checking (defensive hardening)."""

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Histogram("h", bounds=())

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 3.0, 2.0))

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 2.0, 2.0, 3.0))

    def test_single_bound_is_valid(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        assert hist.counts == [1, 1]

    def test_registry_histogram_validates_bounds_too(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=[5.0, 5.0])

    def test_percentile_rejects_out_of_range_q(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        for bad in (-0.1, 100.1, 1e9, -50):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                hist.percentile(bad)

    def test_percentile_q0_and_q100_clamp_to_observed_extremes(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.percentile(0) == 0.5
        assert hist.percentile(100) == 50.0
        assert 0.5 <= hist.percentile(50) <= 50.0

    def test_percentile_of_empty_histogram_is_zero(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        assert hist.percentile(0) == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 0.0
        snapshot = hist.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] == 0.0 and snapshot["p99"] == 0.0
