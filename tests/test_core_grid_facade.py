"""Unit tests for the Grid facade itself (assembly-level behaviour)."""

import pytest

from repro import ApplicationSpec, Grid
from repro.core.grid import DEDICATED_POLICY
from repro.core.ncc import SharingPolicy
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import ALWAYS_IDLE, OFFICE_WORKER


class TestAssembly:
    def test_unknown_policy_rejected(self):
        grid = Grid(seed=1, policy="clairvoyant")
        with pytest.raises(ValueError):
            grid.add_cluster("c0")

    def test_duplicate_cluster_rejected(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        with pytest.raises(ValueError):
            grid.add_cluster("c0")

    def test_duplicate_node_rejected(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        grid.add_node("c0", "n0")
        with pytest.raises(ValueError):
            grid.add_node("c0", "n0")

    def test_node_in_unknown_cluster_rejected(self):
        grid = Grid(seed=1)
        with pytest.raises(KeyError):
            grid.add_node("ghost", "n0")

    def test_dedicated_overrides_profile_and_policy(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        node = grid.add_node(
            "c0", "d0", profile=OFFICE_WORKER,
            sharing=SharingPolicy(enabled=False), dedicated=True,
        )
        assert node.workstation.profile is ALWAYS_IDLE
        assert node.ncc.policy == DEDICATED_POLICY
        assert node.lupa is None   # the paper's footnote

    def test_lupa_disabled_grid(self):
        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        node = grid.add_node("c0", "ws0", profile=OFFICE_WORKER)
        assert node.lupa is None

    def test_custom_segment_placement(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        grid.add_node("c0", "n0", segment="lab-a")
        grid.add_node("c0", "n1", segment="lab-b")
        network = grid.clusters["c0"].network
        assert network.segment_of("n0") == "lab-a"
        assert network.segment_of("n1") == "lab-b"

    def test_holidays_flow_to_workstations(self):
        grid = Grid(seed=1, holidays={1})
        grid.add_cluster("c0")
        node = grid.add_node("c0", "ws0", profile=OFFICE_WORKER)
        assert node.workstation.is_holiday(1.5 * SECONDS_PER_DAY)
        assert not node.workstation.is_holiday(2.5 * SECONDS_PER_DAY)

    def test_naming_bound_for_manager_components(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        naming = grid.clusters["c0"].naming
        assert naming.bound("c0/grm")
        assert naming.bound("c0/gupa")


class TestTraceNodes:
    def test_trace_node_fully_wired(self):
        from repro.sim.trace import TraceEvent

        grid = Grid(seed=1, policy="first_fit", lupa_enabled=True)
        grid.add_cluster("c0")
        events = [
            TraceEvent(0.0, False, 0.0, 0.0),
            TraceEvent(30_000.0, True, 0.5, 64.0),
            TraceEvent(60_000.0, False, 0.0, 0.0),
        ]
        node = grid.add_trace_node("c0", "replayed", events)
        assert node.lupa is not None      # trace nodes learn patterns too
        grid.run_for(600)
        grm = grid.clusters["c0"].grm
        assert grm.trader.offer_count == 1
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=1e6))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)

    def test_trace_node_duplicate_name_rejected(self):
        from repro.sim.trace import TraceEvent

        grid = Grid(seed=1)
        grid.add_cluster("c0")
        events = [TraceEvent(0.0, False, 0.0, 0.0)]
        grid.add_trace_node("c0", "n0", events)
        with pytest.raises(ValueError):
            grid.add_trace_node("c0", "n0", events)


class TestDeterminism:
    def scenario(self, seed):
        grid = Grid(seed=seed, policy="pattern_aware", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(4):
            grid.add_node("c0", f"ws{i}", profile=OFFICE_WORKER)
        grid.run_for(6 * SECONDS_PER_HOUR)
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=2e6))
        grid.wait_for_job(job_id, max_seconds=2 * SECONDS_PER_DAY)
        job = grid.job(job_id)
        return (
            job.makespan,
            job.tasks[0].node,
            job.tasks[0].attempts,
            grid.loop.events_fired,
        )

    def test_same_seed_bit_identical(self):
        assert self.scenario(7) == self.scenario(7)

    # (Seed *divergence* is asserted at the workstation level in
    # test_sim_workstation.py; at the facade level short scenarios can
    # legitimately coincide across seeds.)


class TestAccounting:
    def test_protocol_stats_keys(self):
        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        grid.run_for(600)
        stats = grid.protocol_stats()
        assert set(stats) == {
            "requests_sent", "replies_received", "requests_received",
            "bytes_sent", "bytes_received", "requests_handled",
        }
        assert stats["requests_sent"] > 0

    def test_multiple_ascts(self):
        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        asct1 = grid.make_asct("c0", user="alice")
        asct2 = grid.make_asct("c0", user="bob")
        assert len(grid.ascts) == 2
        assert asct1.ior != asct2.ior

    def test_unknown_job_lookup(self):
        grid = Grid(seed=1)
        grid.add_cluster("c0")
        with pytest.raises(KeyError):
            grid.job("ghost")
