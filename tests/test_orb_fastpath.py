"""Parity tests for the in-process ORB fast path.

With ``fast_local=True`` on both ORBs of a co-located pair, invocations
bypass CDR marshalling entirely.  Every *observable* behaviour of the
marshalled path must survive the shortcut: interceptor order, exception
translation, oneway swallowing, trace-context semantics, auth gating,
and failure modes.  When the flag is off (the default), the wire bytes
must be identical to the seed.
"""

import pytest

from repro.obs.trace import Tracer
from repro.orb.cdr import Double, Void
from repro.orb.core import Orb
from repro.orb.exceptions import CommunicationError, RemoteInvocationError
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import InProcDomain
from repro.security.auth import Credentials, KeyRing

ECHO = InterfaceDef(
    "test/Echo",
    [
        Operation("echo", (Parameter("x", Double),), Double),
        Operation("boom", (Parameter("x", Double),), Double),
        Operation("fire", (Parameter("x", Double),), Void, oneway=True),
        Operation("misfire", (Parameter("x", Double),), Void, oneway=True),
    ],
)


class EchoServant:
    def __init__(self):
        self.fired = []

    def echo(self, x):
        return x * 2

    def boom(self, x):
        raise ValueError(f"bad value {x}")

    def fire(self, x):
        self.fired.append(x)

    def misfire(self, x):
        raise RuntimeError("oneway failure")


def make_pair(client_fast=True, server_fast=True, **server_kwargs):
    domain = InProcDomain()
    server = Orb("server", domain=domain, fast_local=server_fast,
                 **server_kwargs)
    client = Orb("client", domain=domain, fast_local=client_fast)
    servant = EchoServant()
    ref = server.activate(servant, ECHO)
    stub = client.stub(ref, ECHO)
    return server, client, stub, servant


class TestFastDispatch:
    def test_result_parity_and_no_wire_bytes(self):
        server, client, stub, _ = make_pair()
        assert stub.echo(21.0) == 42.0
        assert server.fast_local_calls == 1
        assert server.requests_handled == 1
        # Nothing crossed the transport: no bytes, no messages.
        assert client.inproc_stats().snapshot()["bytes_sent"] == 0
        assert server.inproc_stats().snapshot()["requests_received"] == 0

    def test_requires_both_sides_opted_in(self):
        for client_fast, server_fast in [(True, False), (False, True),
                                         (False, False)]:
            server, client, stub, _ = make_pair(client_fast, server_fast)
            assert stub.echo(1.0) == 2.0
            assert server.fast_local_calls == 0
            assert client.inproc_stats().snapshot()["bytes_sent"] > 0
            server.shutdown()
            client.shutdown()

    def test_oneway_returns_none_and_reaches_servant(self):
        server, client, stub, servant = make_pair()
        assert stub.fire(3.0) is None
        assert servant.fired == [3.0]
        assert server.fast_local_calls == 1

    def test_arg_count_still_checked(self):
        server, client, stub, _ = make_pair()
        with pytest.raises(TypeError):
            client.invoke(stub._ref, ECHO.operation("echo"), (1.0, 2.0))


class TestExceptionParity:
    def test_servant_exception_becomes_remote_invocation_error(self):
        server, client, stub, _ = make_pair()
        with pytest.raises(RemoteInvocationError) as excinfo:
            stub.boom(7.0)
        # Same type name and message the marshalled reply would carry.
        assert excinfo.value.remote_type == "ValueError"
        assert "bad value 7.0" in str(excinfo.value)
        assert server.fast_local_calls == 1

    def test_matches_marshalled_path_exactly(self):
        fast = make_pair(True, True)
        slow = make_pair(False, False)
        errors = []
        for server, client, stub, _ in (fast, slow):
            with pytest.raises(RemoteInvocationError) as excinfo:
                stub.boom(1.5)
            errors.append((excinfo.value.remote_type, str(excinfo.value)))
            server.shutdown()
            client.shutdown()
        assert errors[0] == errors[1]

    def test_oneway_exception_swallowed(self):
        server, client, stub, _ = make_pair()
        assert stub.misfire(1.0) is None   # never surfaces, like the wire

    def test_unknown_servant_parity(self):
        import dataclasses
        server, client, stub, _ = make_pair()
        ghost = dataclasses.replace(stub._ref, key="no/such/servant")
        with pytest.raises(RemoteInvocationError) as excinfo:
            client.invoke(ghost, ECHO.operation("echo"), (1.0,))
        assert excinfo.value.remote_type == "ObjectNotFound"

    def test_shutdown_peer_fails_like_marshalled_path(self):
        server, client, stub, _ = make_pair()
        server.shutdown()
        with pytest.raises(CommunicationError):
            stub.echo(1.0)


class TestInterceptors:
    def test_client_and_server_interceptors_fire_in_order(self):
        server, client, stub, _ = make_pair()
        order = []
        client.add_client_interceptor(
            lambda ref, op, args: order.append(("client", op.name,
                                                tuple(args))))
        server.add_server_interceptor(
            lambda key, op, args: order.append(("server", op.name,
                                                tuple(args))))
        stub.echo(4.0)
        assert order == [("client", "echo", (4.0,)),
                         ("server", "echo", (4.0,))]
        assert server.fast_local_calls == 1

    def test_client_interceptor_veto_prevents_dispatch(self):
        server, client, stub, _ = make_pair()

        def veto(ref, operation, args):
            raise PermissionError("denied by policy")

        client.add_client_interceptor(veto)
        with pytest.raises(PermissionError):
            stub.echo(1.0)
        assert server.requests_handled == 0


class TestTraceContext:
    def test_traced_calls_take_the_marshalled_path(self):
        # Trace propagation rides the CDR header extension, so traced
        # invocations must marshal; parent/child linkage is preserved.
        server, client, stub, _ = make_pair()
        tracer = Tracer()
        client.set_tracer(tracer)
        server.set_tracer(tracer)
        with tracer.span("root") as root:
            assert stub.echo(21.0) == 42.0
        assert server.fast_local_calls == 0
        client_span = next(
            s for s in tracer.finished if s.attrs.get("kind") == "client")
        server_span = next(
            s for s in tracer.finished if s.attrs.get("kind") == "server")
        assert client_span.parent_id == root.span_id
        assert server_span.parent_id == client_span.span_id

    def test_fast_path_resumes_when_tracing_stops(self):
        server, client, stub, _ = make_pair()
        tracer = Tracer()
        client.set_tracer(tracer)
        stub.echo(1.0)
        assert server.fast_local_calls == 0
        client.set_tracer(None)
        stub.echo(1.0)
        assert server.fast_local_calls == 1


class TestAuthGating:
    def test_client_credentials_force_marshalled_path(self):
        ring = KeyRing()
        ring.add("alice", b"alice-key")
        domain = InProcDomain()
        server = Orb("server", domain=domain, fast_local=True,
                     keyring=ring)
        client = Orb("client", domain=domain, fast_local=True,
                     credentials=Credentials("alice", b"alice-key"))
        ref = server.activate(EchoServant(), ECHO)
        stub = client.stub(ref, ECHO)
        assert stub.echo(1.0) == 2.0
        assert server.fast_local_calls == 0
        assert server.current_principal == "alice"

    def test_require_auth_target_forces_marshalled_path(self):
        ring = KeyRing()
        ring.add("alice", b"alice-key")
        server, client, stub, _ = make_pair(
            keyring=ring, require_auth=True)
        with pytest.raises(RemoteInvocationError):
            stub.echo(1.0)   # unauthenticated: rejected, not fast-pathed
        assert server.fast_local_calls == 0


class TestWireBytesWhenDisabled:
    def test_disabled_fast_local_is_byte_identical(self):
        captured = []
        original = Orb.handle_request_bytes

        def capture(self, data):
            captured.append(bytes(data))
            return original(self, data)

        try:
            Orb.handle_request_bytes = capture
            server, client, stub, _ = make_pair(False, False)
            stub.echo(1.0)
            server.shutdown()
            client.shutdown()
            flag_off = captured[-1]

            # A seed-shaped pair that never saw the flag at all.
            domain = InProcDomain()
            server = Orb("server", domain=domain)
            client = Orb("client", domain=domain)
            ref = server.activate(EchoServant(), ECHO)
            stub = client.stub(ref, ECHO)
            stub.echo(1.0)
            server.shutdown()
            client.shutdown()
            no_flag = captured[-1]
        finally:
            Orb.handle_request_bytes = original
        assert flag_off == no_flag

    def test_fast_local_not_reported_in_stats(self):
        # Grid.protocol_stats sums stats() dicts over a fixed key set;
        # the fast-path counter lives on the attribute instead.
        server, client, stub, _ = make_pair()
        stub.echo(1.0)
        assert "fast_local_calls" not in server.stats()
        assert server.fast_local_calls == 1
