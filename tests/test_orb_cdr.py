"""Unit tests for CDR marshalling."""

import pytest

from repro.orb.cdr import (
    Boolean,
    CdrDecoder,
    CdrEncoder,
    Double,
    Enum,
    Long,
    LongLong,
    MarshalError,
    Octet,
    Octets,
    Sequence,
    Short,
    String,
    Struct,
    ULong,
    UShort,
    VARIANT,
    Void,
)


def roundtrip(idl_type, value):
    enc = CdrEncoder()
    idl_type.encode(enc, value)
    return idl_type.decode(CdrDecoder(enc.getvalue()))


class TestPrimitives:
    @pytest.mark.parametrize("idl_type,value", [
        (Boolean, True),
        (Boolean, False),
        (Octet, 0),
        (Octet, 255),
        (Short, -32768),
        (UShort, 65535),
        (Long, -2**31),
        (ULong, 2**32 - 1),
        (LongLong, -2**63),
        (Double, 3.141592653589793),
        (Double, 0.0),
        (String, "hello"),
        (String, ""),
        (String, "unicode: ação ✓"),
        (Octets, b"\x00\x01\xff"),
        (Octets, b""),
    ])
    def test_roundtrip(self, idl_type, value):
        assert roundtrip(idl_type, value) == value

    def test_void(self):
        assert roundtrip(Void, None) is None

    def test_void_rejects_values(self):
        with pytest.raises(MarshalError):
            roundtrip(Void, 42)

    def test_out_of_range_rejected(self):
        with pytest.raises(MarshalError):
            roundtrip(Octet, 256)
        with pytest.raises(MarshalError):
            roundtrip(Long, 2**40)

    def test_string_type_checked(self):
        with pytest.raises(MarshalError):
            roundtrip(String, 42)


class TestAlignment:
    def test_double_is_8_aligned(self):
        enc = CdrEncoder()
        enc.write_octet(1)
        enc.write_double(2.0)
        data = enc.getvalue()
        assert len(data) == 16   # 1 byte + 7 padding + 8
        dec = CdrDecoder(data)
        assert dec.read_octet() == 1
        assert dec.read_double() == 2.0

    def test_long_is_4_aligned(self):
        enc = CdrEncoder()
        enc.write_octet(1)
        enc.write_long(7)
        assert len(enc.getvalue()) == 8

    def test_interleaved_alignment_roundtrip(self):
        enc = CdrEncoder()
        enc.write_boolean(True)
        enc.write_short(5)
        enc.write_octet(9)
        enc.write_double(1.5)
        enc.write_string("x")
        dec = CdrDecoder(enc.getvalue())
        assert dec.read_boolean() is True
        assert dec.read_short() == 5
        assert dec.read_octet() == 9
        assert dec.read_double() == 1.5
        assert dec.read_string() == "x"


class TestComposites:
    def test_sequence_of_longs(self):
        assert roundtrip(Sequence(Long), [1, -2, 3]) == [1, -2, 3]

    def test_empty_sequence(self):
        assert roundtrip(Sequence(String), []) == []

    def test_nested_sequence(self):
        t = Sequence(Sequence(Double))
        assert roundtrip(t, [[1.0], [], [2.0, 3.0]]) == [[1.0], [], [2.0, 3.0]]

    def test_sequence_type_checked(self):
        with pytest.raises(MarshalError):
            roundtrip(Sequence(Long), "not a list")

    def test_struct(self):
        t = Struct("Point", [("x", Double), ("y", Double)])
        assert roundtrip(t, {"x": 1.0, "y": -2.0}) == {"x": 1.0, "y": -2.0}

    def test_struct_missing_field(self):
        t = Struct("Point", [("x", Double), ("y", Double)])
        with pytest.raises(MarshalError):
            roundtrip(t, {"x": 1.0})

    def test_struct_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            Struct("Bad", [("x", Double), ("x", Long)])

    def test_struct_of_sequences(self):
        t = Struct("Box", [("names", Sequence(String)), ("id", ULong)])
        value = {"names": ["a", "b"], "id": 7}
        assert roundtrip(t, value) == value

    def test_enum(self):
        t = Enum("Color", ["red", "green", "blue"])
        assert roundtrip(t, "green") == "green"

    def test_enum_unknown_member(self):
        t = Enum("Color", ["red"])
        with pytest.raises(MarshalError):
            roundtrip(t, "pink")


class TestVariant:
    @pytest.mark.parametrize("value", [
        None,
        True,
        False,
        42,
        -7,
        2.5,
        "text",
        b"bytes",
        [1, "two", 3.0],
        {"cpu_free": 0.5, "os": "linux", "tags": ["a", "b"]},
        {"nested": {"deep": [1, {"deeper": None}]}},
    ])
    def test_roundtrip(self, value):
        assert roundtrip(VARIANT, value) == value

    def test_bool_not_confused_with_int(self):
        assert roundtrip(VARIANT, True) is True
        assert roundtrip(VARIANT, 1) == 1
        assert not isinstance(roundtrip(VARIANT, 1), bool)

    def test_unsupported_type_rejected(self):
        with pytest.raises(MarshalError):
            roundtrip(VARIANT, object())

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(MarshalError):
            roundtrip(VARIANT, {1: "x"})


class TestDecoderRobustness:
    def test_underrun(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x01").read_double()

    def test_string_underrun(self):
        enc = CdrEncoder()
        enc.write_ulong(100)
        with pytest.raises(MarshalError):
            CdrDecoder(enc.getvalue()).read_string()

    def test_truncated_string_not_terminated(self):
        enc = CdrEncoder()
        enc.write_string("ok")
        data = bytearray(enc.getvalue())
        data[-1] = 7   # corrupt the NUL
        with pytest.raises(MarshalError):
            CdrDecoder(bytes(data)).read_string()

    def test_remaining(self):
        enc = CdrEncoder()
        enc.write_ulong(1)
        dec = CdrDecoder(enc.getvalue())
        assert dec.remaining == 4
        dec.read_ulong()
        assert dec.remaining == 0


class TestZeroCopyDecoder:
    def _payload(self):
        enc = CdrEncoder()
        enc.write_string("chunk-0")
        enc.write_ulong(7)
        enc.write_octets(b"\x00\x01\xff" * 100)
        enc.write_double(2.5)
        return enc.getvalue()

    def test_zero_copy_roundtrip_matches_seed(self):
        buf = self._payload()
        seed = CdrDecoder(buf)
        zc = CdrDecoder(buf, zero_copy=True)
        assert seed.read_string() == zc.read_string()
        assert seed.read_ulong() == zc.read_ulong()
        assert seed.read_octets() == bytes(zc.read_octets())
        assert seed.read_double() == zc.read_double()
        assert zc.remaining == 0

    def test_zero_copy_octets_are_views_into_the_buffer(self):
        buf = self._payload()
        zc = CdrDecoder(buf, zero_copy=True)
        zc.read_string()
        zc.read_ulong()
        blob = zc.read_octets()
        assert isinstance(blob, memoryview)
        assert bytes(blob) == b"\x00\x01\xff" * 100

    def test_seed_octets_stay_bytes(self):
        # The default decoder must keep returning owning bytes: callers
        # in the seed path stash them past the buffer's lifetime.
        buf = self._payload()
        dec = CdrDecoder(buf)
        dec.read_string()
        dec.read_ulong()
        assert isinstance(dec.read_octets(), bytes)

    def test_zero_copy_accepts_memoryview_input(self):
        buf = self._payload()
        zc = CdrDecoder(memoryview(buf), zero_copy=True)
        assert zc.read_string() == "chunk-0"
        assert zc.read_ulong() == 7

    def test_zero_copy_underrun_still_raises(self):
        with pytest.raises(MarshalError):
            CdrDecoder(b"\x01", zero_copy=True).read_double()


class TestEncoderPool:
    def test_acquire_release_reuses_instances(self):
        from repro.orb.cdr import acquire_encoder, release_encoder

        enc = acquire_encoder()
        enc.write_string("x")
        release_encoder(enc)
        again = acquire_encoder()
        try:
            # Pooled encoders come back reset: no residue from the
            # previous user may leak into the next payload.
            assert again.getvalue() == b""
        finally:
            release_encoder(again)

    def test_pooled_output_matches_fresh(self):
        from repro.orb.cdr import acquire_encoder, release_encoder

        fresh = CdrEncoder()
        fresh.write_string("task")
        fresh.write_double(1.25)
        pooled = acquire_encoder()
        try:
            pooled.write_string("task")
            pooled.write_double(1.25)
            assert pooled.getvalue() == fresh.getvalue()
        finally:
            release_encoder(pooled)

    def test_pool_is_bounded(self):
        from repro.orb.cdr import (
            _ENCODER_POOL,
            _ENCODER_POOL_MAX,
            acquire_encoder,
            release_encoder,
        )

        encoders = [acquire_encoder() for _ in range(_ENCODER_POOL_MAX + 8)]
        for enc in encoders:
            release_encoder(enc)
        assert len(_ENCODER_POOL) <= _ENCODER_POOL_MAX
