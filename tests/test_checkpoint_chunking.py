"""Property and unit tests for the chunked, content-addressed
checkpoint plane.

The seed full-snapshot store is retained in production code precisely
so these tests can compare against it: for any sequence of state
mutations — including sequences long enough to cross a full rebase —
the delta chain must reconstruct the serialized checkpoint
**bit-identically** to the full-snapshot oracle, and a broken chain
(missing base, missing or corrupted chunk) must be rejected rather than
silently restored.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint.chunking import (
    ChunkedChainError,
    ChunkedRepository,
    ChunkPool,
)
from repro.checkpoint.serializer import chunk_digest, serialize, split_chunks
from repro.checkpoint.store import FileCheckpointStore, MemoryCheckpointStore

CHUNK = 64          # tiny chunks so small states still span many chunks
REBASE = 4


def chunked_store(**kwargs):
    kwargs.setdefault("chunked", True)
    kwargs.setdefault("chunk_size", CHUNK)
    kwargs.setdefault("rebase_every", REBASE)
    return MemoryCheckpointStore(**kwargs)


# -- hypothesis: oracle equivalence ------------------------------------------

_blob = st.binary(min_size=0, max_size=CHUNK * 6)
_states = st.lists(
    st.fixed_dictionaries({
        "step": st.integers(min_value=0, max_value=1_000),
        "blob": _blob,
        "extra": st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                    width=32), max_size=8),
    }),
    min_size=1,
    max_size=3 * REBASE,   # long enough to cross multiple rebases
)


@settings(max_examples=60, deadline=None)
@given(states=_states)
def test_chain_restore_matches_full_snapshot_oracle(states):
    chain_store = chunked_store()
    oracle = MemoryCheckpointStore()
    for i, state in enumerate(states):
        chained = chain_store.save("t", state, float(i))
        full = oracle.save("t", state, float(i))
        assert chained.data == full.data
        # The restore is checked after EVERY save, so equivalence holds
        # mid-chain, immediately after a rebase, and at arbitrary
        # lengths — not just at the end.
        restored = chain_store.load_latest("t")
        expected = oracle.load_latest("t")
        assert restored.data == expected.data          # bit-identical
        assert restored.state() == expected.state()
        assert restored.sequence == expected.sequence
    if len(states) > REBASE:
        assert chain_store.repo.rebases >= 1
        assert len(chain_store.repo.chain("t")) <= REBASE


@settings(max_examples=40, deadline=None)
@given(states=_states)
def test_chain_length_is_always_bounded(states):
    store = chunked_store()
    for i, state in enumerate(states):
        store.save("t", state, float(i))
        assert len(store.repo.chain("t")) <= REBASE


@settings(max_examples=40, deadline=None)
@given(blob=_blob, chunk_size=st.integers(min_value=1, max_value=257))
def test_split_chunks_roundtrip(blob, chunk_size):
    chunks = split_chunks(blob, chunk_size)
    assert b"".join(chunks) == blob
    assert all(len(c) == chunk_size for c in chunks[:-1])


# -- chain validation --------------------------------------------------------

class TestChainValidation:
    def _grow_chain(self, repo, n=3):
        data = [serialize({"v": i, "pad": b"x" * 200}) for i in range(n)]
        for i, d in enumerate(data):
            repo.save("t", d, i + 1, float(i))
        return data

    def test_missing_base_rejected(self):
        repo = ChunkedRepository(chunk_size=CHUNK, rebase_every=8)
        self._grow_chain(repo, 3)
        # Surgically remove the middle record: the last delta now
        # references a base sequence the chain no longer holds.
        del repo._chains["t"][1]
        with pytest.raises(ChunkedChainError, match="missing base"):
            repo.resolve_bytes("t")

    def test_chain_starting_with_delta_rejected(self):
        repo = ChunkedRepository(chunk_size=CHUNK, rebase_every=8)
        self._grow_chain(repo, 2)
        del repo._chains["t"][0]   # drop the full record
        with pytest.raises(ChunkedChainError):
            repo.resolve_bytes("t")

    def test_missing_chunk_rejected(self):
        repo = ChunkedRepository(chunk_size=CHUNK, rebase_every=8)
        self._grow_chain(repo, 2)
        digest = repo.resolve_digests("t")[0]
        repo.pool.delete(digest)
        with pytest.raises(ChunkedChainError, match="not in the pool"):
            repo.resolve_bytes("t")

    def test_corrupted_chunk_rejected(self):
        repo = ChunkedRepository(chunk_size=CHUNK, rebase_every=8)
        self._grow_chain(repo, 2)
        digest = repo.resolve_digests("t")[0]
        repo.pool.put(digest, b"Z" * CHUNK)   # content no longer matches
        with pytest.raises(ChunkedChainError, match="does not match"):
            repo.resolve_bytes("t")

    def test_unknown_task_rejected(self):
        repo = ChunkedRepository()
        with pytest.raises(ChunkedChainError):
            repo.resolve_bytes("ghost")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChunkedRepository(chunk_size=0)
        with pytest.raises(ValueError):
            ChunkedRepository(rebase_every=0)
        with pytest.raises(ValueError):
            split_chunks(b"x", 0)


# -- dedup and refcounting ---------------------------------------------------

class TestDedup:
    def test_cross_task_dedup(self):
        store = chunked_store()
        state = {"blob": bytes(range(256)) * 2}
        store.save("replica-a", state, 1.0)
        before = store.repo.chunks_written
        store.save("replica-b", state, 1.0)
        # The replica's identical chunks were all already pooled.
        assert store.repo.chunks_written == before
        assert store.repo.chunks_deduped > 0
        assert store.repo.dedup_hit_rate > 0.0
        # Both replicas still restore independently.
        assert store.load_latest("replica-a").data == \
            store.load_latest("replica-b").data

    def test_discard_releases_chunks_but_respects_sharing(self):
        store = chunked_store()
        state = {"blob": bytes(range(256)) * 2}
        store.save("a", state, 1.0)
        store.save("b", state, 1.0)
        store.discard("a")
        # b still restores: shared chunks survive a's discard...
        assert store.load_latest("b").state() == state
        store.discard("b")
        # ...and the pool drains completely once nobody references them.
        assert len(store.repo.pool) == 0
        assert store.repo.pool.bytes_stored == 0

    def test_delta_writes_only_changed_chunks(self):
        store = chunked_store()
        blob = bytearray(CHUNK * 8)
        store.save("t", {"blob": bytes(blob)}, 1.0)
        written_before = store.repo.chunk_bytes_written
        blob[3 * CHUNK] ^= 0xFF   # dirty exactly one chunk's span
        store.save("t", {"blob": bytes(blob)}, 2.0)
        delta_bytes = store.repo.chunk_bytes_written - written_before
        # Far less than the full state went to storage.
        assert 0 < delta_bytes <= 3 * CHUNK
        assert store.bytes_written_delta < store.bytes_written_full

    def test_rebase_costs_almost_nothing(self):
        store = chunked_store()
        state = {"blob": bytes(CHUNK * 6), "step": 0}
        for i in range(REBASE + 1):   # the last save triggers the rebase
            state["step"] = i
            store.save("t", state, float(i))
        assert store.repo.rebases == 1
        # The rebase's chunks were already pooled: it wrote ~no new data.
        assert store.repo.dedup_hit_rate > 0.5


# -- store-level behaviour ---------------------------------------------------

class TestChunkedMemoryStore:
    def test_skip_unchanged(self):
        store = chunked_store(skip_unchanged=True)
        first = store.save("t", {"p": 1}, 1.0)
        again = store.save("t", {"p": 1}, 2.0)
        assert store.skipped_saves == 1
        assert again.sequence == first.sequence
        changed = store.save("t", {"p": 2}, 3.0)
        assert changed.sequence == first.sequence + 1
        assert store.saves == 2

    def test_missing_task_and_discard(self):
        store = chunked_store()
        assert store.load_latest("ghost") is None
        store.save("t", {"p": 1}, 1.0)
        store.discard("t")
        assert store.load_latest("t") is None
        store.discard("t")   # idempotent
        assert store.task_ids == []

    def test_accounting_splits_full_and_delta(self):
        store = chunked_store()
        store.save("t", {"blob": bytes(CHUNK * 4), "s": 0}, 1.0)
        store.save("t", {"blob": bytes(CHUNK * 4), "s": 1}, 2.0)
        assert store.bytes_written == \
            store.bytes_written_full + store.bytes_written_delta
        assert store.bytes_written_full > 0
        assert store.bytes_written_delta > 0

    def test_metrics_views(self):
        from repro.obs.metrics import MetricsRegistry

        class Clock:
            now = 0.0

        store = chunked_store()
        store.save("t", {"p": 1}, 1.0)
        registry = MetricsRegistry(Clock())
        store.to_metrics(registry, prefix="checkpoint.c0")
        store.load_latest("t")
        snap = registry.snapshot()["metrics"]
        assert snap["checkpoint.c0.saves"] == 1
        assert snap["checkpoint.c0.full_saves"] == 1
        assert snap["checkpoint.c0.restore_latency_s"]["count"] == 1
        assert "checkpoint.c0.dedup_hit_rate" in snap
        assert "checkpoint.c0.rebases" in snap


class TestChunkedFileStore:
    def make(self, tmp_path):
        return FileCheckpointStore(
            str(tmp_path), chunked=True, chunk_size=CHUNK,
            rebase_every=REBASE,
        )

    def test_save_restore_and_reload(self, tmp_path):
        store = self.make(tmp_path)
        state = {"blob": bytes(range(256)), "step": 0}
        for i in range(REBASE + 2):   # crosses a rebase on disk
            state["step"] = i
            store.save(f"job/{i % 2}", dict(state), float(i))
        latest = store.load_latest("job/1")
        # A brand-new store instance adopts the persisted chains.
        fresh = self.make(tmp_path)
        restored = fresh.load_latest("job/1")
        assert restored.data == latest.data
        assert restored.sequence == latest.sequence
        # ...and continues the sequence numbering where it left off.
        nxt = fresh.save("job/1", {"blob": b"", "step": 99}, 100.0)
        assert nxt.sequence == latest.sequence + 1

    def test_orphan_chunks_reaped_on_reload(self, tmp_path):
        store = self.make(tmp_path)
        store.save("t", {"p": 1}, 1.0)
        orphan = os.path.join(str(tmp_path), "chunks", "ab" * 16 + ".chunk")
        with open(orphan, "wb") as f:
            f.write(b"crashed mid-save")
        fresh = self.make(tmp_path)
        assert not os.path.exists(orphan)
        assert fresh.load_latest("t").state() == {"p": 1}

    def test_discard_removes_chain_and_chunks(self, tmp_path):
        store = self.make(tmp_path)
        store.save("t", {"blob": bytes(CHUNK * 3)}, 1.0)
        store.discard("t")
        assert store.load_latest("t") is None
        assert store.task_ids == []
        assert os.listdir(os.path.join(str(tmp_path), "chunks")) == []

    def test_shared_chunks_survive_one_tasks_discard(self, tmp_path):
        store = self.make(tmp_path)
        state = {"blob": bytes(range(256)) * 2}
        store.save("a", state, 1.0)
        store.save("b", state, 1.0)
        store.discard("a")
        assert store.load_latest("b").state() == state

    def test_missing_chunk_file_rejected(self, tmp_path):
        store = self.make(tmp_path)
        store.save("t", {"blob": bytes(CHUNK * 3)}, 1.0)
        chunks_dir = os.path.join(str(tmp_path), "chunks")
        victim = sorted(os.listdir(chunks_dir))[0]
        os.remove(os.path.join(chunks_dir, victim))
        with pytest.raises(ChunkedChainError):
            store.load_latest("t")


# -- digest helpers ----------------------------------------------------------

def test_chunk_digest_is_stable_and_content_addressed():
    assert chunk_digest(b"abc") == chunk_digest(b"abc")
    assert chunk_digest(b"abc") != chunk_digest(b"abd")
    assert len(chunk_digest(b"")) == 16


def test_pool_get_missing_digest():
    pool = ChunkPool()
    with pytest.raises(ChunkedChainError):
        pool.get(chunk_digest(b"never stored"))


# -- grid integration --------------------------------------------------------

def test_grid_chunked_checkpoints_end_to_end():
    """A grid with every execution-plane flag on still completes jobs,
    and the cluster repository actually runs in chunked mode."""
    from repro.apps.spec import ApplicationSpec
    from repro.core.grid import Grid
    from repro.apps.job import JobState
    from repro.sim.clock import SECONDS_PER_DAY

    grid = Grid(
        policy="first_fit",
        lupa_enabled=False,
        chunked_checkpoints=True,
        checkpoint_chunk_size=128,
        checkpoint_rebase_every=3,
        skip_unchanged_checkpoints=True,
    )
    grid.enable_metrics()
    grid.add_cluster("c0")
    for i in range(4):
        grid.add_node("c0", f"n{i}", dedicated=True)
    grid.run_for(120)
    job_id = grid.submit(ApplicationSpec(
        name="bsp", kind="bsp", tasks=4, program="kernel",
        work_mips=4e7, checkpoint_every_supersteps=2,
        metadata={"supersteps": 8},
    ))
    assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
    assert grid.job(job_id).state is JobState.COMPLETED
    store = grid.clusters["c0"].checkpoint_store
    assert store.chunked and store.repo is not None
    assert store.saves > 0
    snap = grid.metrics.snapshot()["metrics"]
    assert snap["checkpoint.c0.saves"] == store.saves
    assert "checkpoint.c0.dedup_hit_rate" in snap
    assert "lrm.total.checkpoints_skipped" in snap
