"""Tests for later extensions: user preferences in placement, holiday
detection, and TCP transport thread-safety."""

import random
import threading

import pytest

from repro import ApplicationSpec, Grid, MachineSpec
from repro.core.lupa import Lupa
from repro.orb.cdr import Double
from repro.orb.core import Orb
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import InProcDomain
from repro.sim.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
)
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec as Spec
from repro.sim.usage import OFFICE_WORKER
from repro.sim.workstation import Workstation


class TestUserPreferencePlacement:
    def build(self, preference):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "small", spec=MachineSpec(mips=600, ram_mb=64),
                      dedicated=True)
        grid.add_node("c0", "big", spec=MachineSpec(mips=2000, ram_mb=512),
                      dedicated=True)
        grid.run_for(120)
        job_id = grid.submit(ApplicationSpec(
            name="t", work_mips=1e5, preference=preference,
        ))
        grid.run_for(600)
        return grid.job(job_id).tasks[0].node

    def test_prefer_fast_cpu(self):
        # first_fit alone would pick "small" (registration order); the
        # user preference overrides it.
        assert self.build("mips") == "big"

    def test_prefer_small_memory_footprint_nodes(self):
        assert self.build("-ram_mb") == "small"

    def test_no_preference_keeps_policy_order(self):
        assert self.build("") == "small"

    def test_preference_on_gang_jobs(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(2):
            grid.add_node("c0", f"slow{i}", spec=MachineSpec(mips=500),
                          dedicated=True)
        for i in range(2):
            grid.add_node("c0", f"fast{i}", spec=MachineSpec(mips=2000),
                          dedicated=True)
        grid.run_for(120)
        job_id = grid.submit(ApplicationSpec(
            name="gang", kind="bsp", tasks=2, program="p", work_mips=1e5,
            preference="mips", metadata={"supersteps": 2},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        nodes = {t.node for t in grid.job(job_id).tasks}
        assert nodes == {"fast0", "fast1"}


class TestHolidayDetection:
    def trained_pair(self, holidays=frozenset(), weeks=3, seed=3):
        loop = EventLoop()
        workstation = Workstation(
            loop, "ws", spec=Spec(), profile=OFFICE_WORKER,
            rng=random.Random(seed), holidays=set(holidays),
        )
        machine = workstation.machine
        lupa = Lupa(
            loop, "ws",
            probe=lambda: 1.0 if (
                machine.keyboard_active or machine.owner_cpu >= 0.1
            ) else 0.0,
            min_history_days=7,
        )
        loop.run_until(weeks * SECONDS_PER_WEEK)
        return loop, lupa

    def test_normal_weekday_scores_low(self):
        loop, lupa = self.trained_pair()
        # Run into Tuesday noon of the next week (a normal busy day).
        loop.run_until(loop.now + SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
        assert lupa.holiday_likelihood() < 0.6

    def test_holiday_scores_high_by_noon(self):
        # Day 22 (Tuesday of week 4) is a holiday: the owner stays home.
        holiday_day = 22
        loop, lupa = self.trained_pair(holidays={holiday_day})
        loop.run_until(holiday_day * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
        assert lupa.holiday_likelihood() > 0.8

    def test_adaptive_prediction_discounts_holiday(self):
        holiday_day = 22
        loop, lupa = self.trained_pair(holidays={holiday_day})
        loop.run_until(holiday_day * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
        afternoon = holiday_day * SECONDS_PER_DAY + 14 * SECONDS_PER_HOUR
        assert lupa.predict_busy(afternoon) > 0.5, "profile says busy"
        assert lupa.predict_busy_adaptive(afternoon) < 0.3, \
            "but today is observably a holiday"

    def test_adaptive_prediction_leaves_other_days_alone(self):
        holiday_day = 22
        loop, lupa = self.trained_pair(holidays={holiday_day})
        loop.run_until(holiday_day * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
        tomorrow = (holiday_day + 1) * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
        assert lupa.predict_busy_adaptive(tomorrow) == \
            lupa.predict_busy(tomorrow)

    def test_unlearned_lupa_scores_zero(self):
        loop = EventLoop()
        lupa = Lupa(loop, "n", probe=lambda: 0.0)
        assert lupa.holiday_likelihood() == 0.0


SLOW_ECHO = InterfaceDef(
    "test/SlowEcho",
    [Operation("echo", (Parameter("x", Double),), Double)],
)


class _Echo:
    def echo(self, x):
        return x * 2.0


class TestTcpThreadSafety:
    def test_concurrent_callers_share_one_connection(self):
        server = Orb("mt-server", domain=InProcDomain(), tcp=True)
        client = Orb("mt-client", domain=InProcDomain(), tcp=True)
        try:
            ref = server.activate(_Echo(), SLOW_ECHO)
            stub = client.stub(ref, SLOW_ECHO)
            stub.echo(0.0)   # warm the connection
            errors = []
            results = {}

            def worker(tid):
                try:
                    for i in range(50):
                        value = float(tid * 1000 + i)
                        got = stub.echo(value)
                        if got != value * 2.0:
                            errors.append((value, got))
                    results[tid] = True
                except Exception as exc:   # noqa: BLE001
                    errors.append(repr(exc))

            threads = [
                threading.Thread(target=worker, args=(t,)) for t in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors[:5]
            assert len(results) == 6
        finally:
            server.shutdown()
            client.shutdown()
