"""Tests for ORB request authentication (HMAC envelopes)."""

import pytest

from repro.orb.cdr import Double
from repro.orb.core import Orb
from repro.orb.exceptions import RemoteInvocationError
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import InProcDomain
from repro.security.auth import (
    AuthenticationError,
    Credentials,
    KeyRing,
    is_authenticated,
)

ECHO = InterfaceDef(
    "test/Echo", [Operation("echo", (Parameter("x", Double),), Double)]
)


class EchoServant:
    def echo(self, x):
        return x


class TestEnvelope:
    def test_wrap_unwrap_roundtrip(self):
        ring = KeyRing()
        ring.add("alice", b"s3cret")
        credentials = Credentials("alice", b"s3cret")
        principal, payload = ring.unwrap(credentials.wrap(b"hello"))
        assert principal == "alice"
        assert payload == b"hello"

    def test_tampered_payload_rejected(self):
        ring = KeyRing()
        ring.add("alice", b"s3cret")
        envelope = bytearray(Credentials("alice", b"s3cret").wrap(b"hello"))
        envelope[-1] ^= 0xFF
        with pytest.raises(AuthenticationError):
            ring.unwrap(bytes(envelope))

    def test_unknown_principal_rejected(self):
        ring = KeyRing()
        envelope = Credentials("mallory", b"x").wrap(b"hi")
        with pytest.raises(AuthenticationError):
            ring.unwrap(envelope)

    def test_wrong_secret_rejected(self):
        ring = KeyRing()
        ring.add("alice", b"right")
        envelope = Credentials("alice", b"wrong").wrap(b"hi")
        with pytest.raises(AuthenticationError):
            ring.unwrap(envelope)

    def test_unauthenticated_payload_detected(self):
        assert not is_authenticated(b"plain request bytes")
        assert is_authenticated(Credentials("a", b"k").wrap(b"x"))

    def test_truncated_envelope(self):
        ring = KeyRing()
        ring.add("alice", b"k")
        envelope = Credentials("alice", b"k").wrap(b"payload")
        with pytest.raises(AuthenticationError):
            ring.unwrap(envelope[:10])

    def test_empty_credentials_rejected(self):
        with pytest.raises(ValueError):
            Credentials("", b"k")
        with pytest.raises(ValueError):
            Credentials("a", b"")

    def test_keyring_management(self):
        ring = KeyRing()
        ring.add("a", b"k")
        assert "a" in ring
        credentials = ring.credentials_for("a")
        assert credentials.principal == "a"
        ring.remove("a")
        assert "a" not in ring
        with pytest.raises(AuthenticationError):
            ring.credentials_for("a")


class TestAuthenticatedOrb:
    def make_pair(self, client_credentials=None, require_auth=True):
        domain = InProcDomain()
        ring = KeyRing()
        ring.add("alice", b"alice-key")
        server = Orb("auth-server", domain=domain, keyring=ring,
                     require_auth=require_auth)
        client = Orb("auth-client", domain=domain,
                     credentials=client_credentials)
        ref = server.activate(EchoServant(), ECHO)
        stub = client.stub(ref, ECHO)
        return server, client, stub

    def test_signed_call_succeeds_and_identifies_caller(self):
        server, client, stub = self.make_pair(
            Credentials("alice", b"alice-key")
        )
        try:
            assert stub.echo(5.0) == 5.0
            assert server.current_principal == "alice"
        finally:
            server.shutdown()
            client.shutdown()

    def test_unsigned_call_rejected_when_required(self):
        server, client, stub = self.make_pair(client_credentials=None)
        try:
            with pytest.raises(RemoteInvocationError) as excinfo:
                stub.echo(1.0)
            assert excinfo.value.remote_type == "AuthenticationError"
        finally:
            server.shutdown()
            client.shutdown()

    def test_wrong_key_rejected(self):
        server, client, stub = self.make_pair(
            Credentials("alice", b"not-her-key")
        )
        try:
            with pytest.raises(RemoteInvocationError) as excinfo:
                stub.echo(1.0)
            assert excinfo.value.remote_type == "AuthenticationError"
        finally:
            server.shutdown()
            client.shutdown()

    def test_unknown_principal_rejected(self):
        server, client, stub = self.make_pair(
            Credentials("mallory", b"whatever")
        )
        try:
            with pytest.raises(RemoteInvocationError):
                stub.echo(1.0)
        finally:
            server.shutdown()
            client.shutdown()

    def test_optional_auth_accepts_both(self):
        server, client, stub = self.make_pair(
            client_credentials=None, require_auth=False
        )
        try:
            assert stub.echo(2.0) == 2.0
            assert server.current_principal is None
        finally:
            server.shutdown()
            client.shutdown()

    def test_require_auth_needs_keyring(self):
        with pytest.raises(ValueError):
            Orb("bad", domain=InProcDomain(), require_auth=True)

    def test_authenticated_grid_rejects_rogue_orb(self):
        from repro import ApplicationSpec, Grid
        from repro.core.protocols import GRM_INTERFACE

        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False,
                    auth_secret=b"cluster-token")
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        grid.run_for(120)
        # The legitimate path works end to end...
        job_id = grid.submit(ApplicationSpec(name="ok", work_mips=1e5))
        assert grid.wait_for_job(job_id, max_seconds=3600.0)
        # ...but a rogue ORB without the membership secret is refused.
        rogue = Orb("rogue", domain=grid.domain)
        try:
            stub = rogue.stub(grid.clusters["c0"].grm_ior, GRM_INTERFACE)
            with pytest.raises(RemoteInvocationError) as excinfo:
                stub.submit(ApplicationSpec(name="evil").to_dict())
            assert excinfo.value.remote_type == "AuthenticationError"
        finally:
            rogue.shutdown()

    def test_authenticated_call_over_tcp(self):
        ring = KeyRing()
        ring.add("bob", b"bob-key")
        server = Orb("tcp-auth-s", domain=InProcDomain(), tcp=True,
                     keyring=ring, require_auth=True)
        client = Orb("tcp-auth-c", domain=InProcDomain(), tcp=True,
                     credentials=Credentials("bob", b"bob-key"))
        try:
            ref = server.activate(EchoServant(), ECHO)
            stub = client.stub(ref, ECHO)
            assert stub.echo(9.0) == 9.0
            assert server.current_principal == "bob"
        finally:
            server.shutdown()
            client.shutdown()
