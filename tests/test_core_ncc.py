"""Unit tests for the Node Control Center."""

import pytest

from repro.core.ncc import (
    BlackoutWindow,
    DEFAULT_POLICY,
    NodeControlCenter,
    SharingPolicy,
    VACATE_POLICY,
    thirty_percent_policy,
)
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock
from repro.sim.machine import ResourceSample


def sample(cpu_owner=0.0, keyboard=False):
    return ResourceSample(
        time=0.0, cpu_total=cpu_owner, cpu_owner=cpu_owner, cpu_grid=0.0,
        mem_used_mb=0.0, mem_owner_mb=0.0, mem_grid_mb=0.0,
        disk_used_mb=0.0, net_owner_mbps=0.0, keyboard_active=keyboard,
    )


class TestBlackoutWindow:
    def test_covers_hours(self):
        window = BlackoutWindow(9.0, 17.0)
        assert window.covers(0, 12.0)
        assert not window.covers(0, 8.0)
        assert not window.covers(0, 17.0)   # end-exclusive

    def test_day_restriction(self):
        window = BlackoutWindow(9.0, 17.0, days=(0, 1))
        assert window.covers(1, 10.0)
        assert not window.covers(4, 10.0)

    @pytest.mark.parametrize("kwargs", [
        {"start_hour": -1.0, "end_hour": 5.0},
        {"start_hour": 5.0, "end_hour": 25.0},
        {"start_hour": 10.0, "end_hour": 9.0},
        {"start_hour": 9.0, "end_hour": 17.0, "days": (7,)},
    ])
    def test_invalid_windows(self, kwargs):
        with pytest.raises(ValueError):
            BlackoutWindow(**kwargs)


class TestSharingPolicy:
    def test_default_policy_is_permissive_when_idle(self):
        assert DEFAULT_POLICY.enabled
        assert DEFAULT_POLICY.cpu_cap_idle == 1.0

    def test_vacate_policy(self):
        assert VACATE_POLICY.vacate_on_owner_return
        assert VACATE_POLICY.cpu_cap_active == 0.0

    def test_thirty_percent_policy_matches_paper_example(self):
        policy = thirty_percent_policy(ram_mb=256.0)
        assert policy.cpu_cap_idle == pytest.approx(0.30)
        assert policy.mem_cap_mb == pytest.approx(128.0)

    @pytest.mark.parametrize("kwargs", [
        {"cpu_cap_idle": 1.5},
        {"cpu_cap_active": -0.1},
        {"mem_cap_mb": -1.0},
        {"idle_owner_cpu_below": 2.0},
    ])
    def test_invalid_policies(self, kwargs):
        with pytest.raises(ValueError):
            SharingPolicy(**kwargs)


class TestNodeControlCenter:
    def test_sharing_now_default(self):
        ncc = NodeControlCenter(SimClock())
        assert ncc.sharing_now()

    def test_disabled_policy(self):
        ncc = NodeControlCenter(SimClock(), SharingPolicy(enabled=False))
        assert not ncc.sharing_now()
        ok, reason = ncc.admission_check(False, 0.1)
        assert not ok
        assert "disabled" in reason

    def test_blackout_blocks_sharing(self):
        clock = SimClock(10 * SECONDS_PER_HOUR)   # Monday 10:00
        policy = SharingPolicy(blackouts=(BlackoutWindow(9.0, 17.0),))
        ncc = NodeControlCenter(clock, policy)
        assert ncc.in_blackout()
        assert not ncc.sharing_now()
        ok, reason = ncc.admission_check(False, 0.1)
        assert not ok and "blackout" in reason

    def test_blackout_respects_day(self):
        saturday_10am = 5 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
        clock = SimClock(saturday_10am)
        policy = SharingPolicy(
            blackouts=(BlackoutWindow(9.0, 17.0, days=(0, 1, 2, 3, 4)),)
        )
        ncc = NodeControlCenter(clock, policy)
        assert ncc.sharing_now()

    def test_cpu_cap_by_owner_state(self):
        ncc = NodeControlCenter(
            SimClock(), SharingPolicy(cpu_cap_idle=0.9, cpu_cap_active=0.2)
        )
        assert ncc.cpu_cap(owner_present=False) == 0.9
        assert ncc.cpu_cap(owner_present=True) == 0.2

    def test_admission_respects_cap(self):
        ncc = NodeControlCenter(
            SimClock(), SharingPolicy(cpu_cap_idle=0.5)
        )
        ok, _ = ncc.admission_check(False, 0.5)
        assert ok
        ok, reason = ncc.admission_check(False, 0.6)
        assert not ok and "exceeds cap" in reason

    def test_admission_zero_active_cap(self):
        ncc = NodeControlCenter(SimClock(), VACATE_POLICY)
        ok, reason = ncc.admission_check(True, 0.1)
        assert not ok and "owner present" in reason

    def test_should_vacate(self):
        vacate = NodeControlCenter(SimClock(), VACATE_POLICY)
        share = NodeControlCenter(SimClock(), DEFAULT_POLICY)
        assert vacate.should_vacate(owner_present=True)
        assert not vacate.should_vacate(owner_present=False)
        assert not share.should_vacate(owner_present=True)

    def test_idleness_definition(self):
        ncc = NodeControlCenter(SimClock())
        assert ncc.considered_idle(sample(cpu_owner=0.05, keyboard=False))
        assert not ncc.considered_idle(sample(cpu_owner=0.05, keyboard=True))
        assert not ncc.considered_idle(sample(cpu_owner=0.5, keyboard=False))

    def test_custom_idleness_threshold(self):
        ncc = NodeControlCenter(
            SimClock(),
            SharingPolicy(idle_owner_cpu_below=0.5,
                          idle_requires_no_keyboard=False),
        )
        assert ncc.considered_idle(sample(cpu_owner=0.3, keyboard=True))

    def test_mem_cap(self):
        ncc = NodeControlCenter(
            SimClock(), SharingPolicy(mem_cap_mb=64.0)
        )
        assert ncc.mem_cap_mb() == 64.0
        assert NodeControlCenter(SimClock()).mem_cap_mb() is None
