"""Tests for the classic BSP kernel library (real computation)."""

import operator
import random

import pytest

from repro.bsp.programs import (
    all_reduce,
    block_range,
    broadcast,
    gather_to_root,
    prefix_sums,
    reduce_to_root,
    sample_sort,
    stencil_1d,
)
from repro.bsp.runtime import run_bsp


class TestBlockRange:
    def test_partitions_exactly(self):
        n, p = 103, 8
        covered = []
        for pid in range(p):
            covered.extend(block_range(pid, p, n))
        assert covered == list(range(n))

    def test_single_process(self):
        assert list(block_range(0, 1, 5)) == [0, 1, 2, 3, 4]


class TestCollectives:
    @pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
    def test_reduce_to_root(self, nprocs):
        def program(bsp):
            return reduce_to_root(bsp, bsp.pid + 1)

        run = run_bsp(nprocs, program)
        assert run.results[0] == sum(range(1, nprocs + 1))
        assert all(r is None for r in run.results[1:])

    def test_reduce_with_custom_op(self):
        def program(bsp):
            return reduce_to_root(bsp, bsp.pid + 1, op=operator.mul)

        run = run_bsp(4, program)
        assert run.results[0] == 24

    def test_reduce_to_non_zero_root(self):
        def program(bsp):
            return reduce_to_root(bsp, 1, root=2)

        run = run_bsp(4, program)
        assert run.results[2] == 4
        assert run.results[0] is None

    @pytest.mark.parametrize("nprocs", [1, 3, 8])
    def test_broadcast(self, nprocs):
        def program(bsp):
            return broadcast(bsp, "payload" if bsp.pid == 0 else None)

        run = run_bsp(nprocs, program)
        assert run.results == ["payload"] * nprocs

    @pytest.mark.parametrize("nprocs", [1, 2, 6])
    def test_all_reduce(self, nprocs):
        def program(bsp):
            return all_reduce(bsp, bsp.pid)

        run = run_bsp(nprocs, program)
        expected = sum(range(nprocs))
        assert run.results == [expected] * nprocs

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 7, 8])
    def test_prefix_sums(self, nprocs):
        def program(bsp):
            return prefix_sums(bsp, bsp.pid + 1)

        run = run_bsp(nprocs, program)
        assert run.results == [
            sum(range(1, pid + 2)) for pid in range(nprocs)
        ]

    def test_gather_to_root(self):
        def program(bsp):
            return gather_to_root(bsp, bsp.pid * 10)

        run = run_bsp(5, program)
        assert run.results[0] == [0, 10, 20, 30, 40]


class TestSampleSort:
    @pytest.mark.parametrize("nprocs,n", [(1, 40), (2, 100), (4, 400), (8, 64)])
    def test_sorts_globally(self, nprocs, n):
        rng = random.Random(9)
        data = [rng.randint(0, 10_000) for _ in range(n)]

        def program(bsp, data):
            block = [data[i] for i in block_range(bsp.pid, bsp.nprocs, len(data))]
            return sample_sort(bsp, block)

        run = run_bsp(nprocs, program, data)
        merged = [x for block in run.results for x in block]
        assert merged == sorted(data)
        # Slices are globally ordered across pids.
        for a, b in zip(run.results, run.results[1:]):
            if a and b:
                assert a[-1] <= b[0]

    def test_duplicate_heavy_input(self):
        data = [5] * 50 + [1] * 30 + [9] * 20

        def program(bsp, data):
            block = [data[i] for i in block_range(bsp.pid, bsp.nprocs, len(data))]
            return sample_sort(bsp, block)

        run = run_bsp(4, program, data)
        assert [x for b in run.results for x in b] == sorted(data)

    def test_empty_input(self):
        def program(bsp):
            return sample_sort(bsp, [])

        run = run_bsp(3, program)
        assert all(block == [] for block in run.results)


class TestStencil:
    def test_heat_diffusion_conserves_and_smooths(self):
        n, p, steps = 32, 4, 10
        initial = [0.0] * n
        initial[n // 2] = 100.0

        def update(left, centre, right):
            l = centre if left is None else left
            r = centre if right is None else right
            return (l + centre + r) / 3.0

        def program(bsp, data):
            block = [data[i] for i in block_range(bsp.pid, bsp.nprocs, len(data))]
            return stencil_1d(bsp, block, steps, update)

        run = run_bsp(p, program, initial)
        final = [x for block in run.results for x in block]
        assert len(final) == n
        # The spike spreads: the centre drops, neighbours rise.
        assert final[n // 2] < 100.0
        assert final[n // 2 - 3] > 0.0
        # Sequential reference must match exactly.
        cells = list(initial)
        for _ in range(steps):
            cells = [
                update(
                    cells[i - 1] if i > 0 else None,
                    cells[i],
                    cells[i + 1] if i < n - 1 else None,
                )
                for i in range(n)
            ]
        assert final == pytest.approx(cells)

    def test_shift_stencil(self):
        # update = take the left neighbour: after k steps values shift
        # right by k (left edge refills with None->0).
        n, p, steps = 16, 4, 3
        initial = list(range(n))

        def update(left, centre, right):
            return 0 if left is None else left

        def program(bsp, data):
            block = [data[i] for i in block_range(bsp.pid, bsp.nprocs, len(data))]
            return stencil_1d(bsp, block, steps, update)

        run = run_bsp(p, program, initial)
        final = [x for block in run.results for x in block]
        assert final == [0] * steps + list(range(n - steps))


class TestGridRegistration:
    def test_kernel_registrable_and_grid_executable(self):
        from repro import ApplicationSpec, Grid
        from repro.apps.registry import ProgramRegistry
        from repro.sim.clock import SECONDS_PER_DAY

        def program(bsp):
            return all_reduce(bsp, bsp.pid + 1)

        registry = ProgramRegistry()
        registry.register("allreduce", program)
        grid = Grid(seed=2, policy="first_fit", lupa_enabled=False,
                    programs=registry)
        grid.add_cluster("c0")
        for i in range(3):
            grid.add_node("c0", f"d{i}", dedicated=True)
        grid.run_for(120)
        job_id = grid.submit(ApplicationSpec(
            name="ar", kind="bsp", tasks=3, program="allreduce",
            work_mips=2e5, metadata={"supersteps": 2},
        ))
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        assert [t.result for t in grid.job(job_id).tasks] == [6, 6, 6]
