"""Unit tests for the reservation ledger."""

import pytest

from repro.core.reservation import ReservationLedger
from repro.sim.events import EventLoop
from repro.sim.machine import InsufficientResources, Machine, MachineSpec


@pytest.fixture
def env():
    loop = EventLoop()
    machine = Machine("n0", MachineSpec(mips=1000, ram_mb=256))
    return loop, machine, ReservationLedger(loop, machine)


def test_reserve_claims_resources(env):
    loop, machine, ledger = env
    ledger.reserve("t1", 0.5, 64.0)
    assert machine.grid_cpu == pytest.approx(0.5)
    assert ledger.holds("t1")
    assert not ledger.get("t1").confirmed


def test_duplicate_reservation_rejected(env):
    _, _, ledger = env
    ledger.reserve("t1", 0.2, 8.0)
    with pytest.raises(ValueError):
        ledger.reserve("t1", 0.2, 8.0)


def test_insufficient_resources_counted(env):
    loop, machine, ledger = env
    machine.set_owner_load(0.9, 0.0, True)
    with pytest.raises(InsufficientResources):
        ledger.reserve("t1", 0.5, 8.0)
    assert ledger.refused_count == 1
    assert not ledger.holds("t1")


def test_unconfirmed_reservation_expires(env):
    loop, machine, ledger = env
    ledger.reserve("t1", 0.5, 64.0, lease_seconds=60.0)
    loop.run_until(61.0)
    assert not ledger.holds("t1")
    assert machine.grid_cpu == 0.0
    assert ledger.expired_count == 1


def test_confirmed_reservation_survives_lease(env):
    loop, machine, ledger = env
    ledger.reserve("t1", 0.5, 64.0, lease_seconds=60.0)
    ledger.confirm("t1")
    loop.run_until(3600.0)
    assert ledger.holds("t1")
    assert ledger.get("t1").confirmed
    assert machine.grid_cpu == pytest.approx(0.5)


def test_confirm_is_idempotent(env):
    loop, _, ledger = env
    ledger.reserve("t1", 0.5, 64.0)
    ledger.confirm("t1")
    ledger.confirm("t1")


def test_release_frees_resources(env):
    loop, machine, ledger = env
    ledger.reserve("t1", 0.5, 64.0)
    ledger.release("t1")
    assert machine.grid_cpu == 0.0
    loop.run_until(3600.0)   # expiry event must be a no-op
    assert ledger.expired_count == 0


def test_release_unknown_task(env):
    _, _, ledger = env
    with pytest.raises(KeyError):
        ledger.release("ghost")


def test_confirm_unknown_task(env):
    _, _, ledger = env
    with pytest.raises(KeyError):
        ledger.confirm("ghost")


def test_invalid_lease(env):
    _, _, ledger = env
    with pytest.raises(ValueError):
        ledger.reserve("t1", 0.5, 64.0, lease_seconds=0.0)


def test_multiple_reservations_tracked(env):
    loop, machine, ledger = env
    ledger.reserve("t1", 0.3, 32.0)
    ledger.reserve("t2", 0.3, 32.0)
    assert len(ledger.active) == 2
    assert machine.grid_cpu == pytest.approx(0.6)


def test_expiry_only_hits_its_own_lease(env):
    loop, machine, ledger = env
    ledger.reserve("t1", 0.3, 32.0, lease_seconds=60.0)
    ledger.reserve("t2", 0.3, 32.0, lease_seconds=600.0)
    ledger.confirm("t2")
    loop.run_until(120.0)
    assert not ledger.holds("t1")
    assert ledger.holds("t2")
