"""Wire-level tests: GUPA over the ORB, naming-based bootstrap, and the
full Figure 1 control path crossing real marshalling end to end."""

import pytest

from repro import ApplicationSpec, Grid
from repro.core.gupa import Gupa
from repro.core.protocols import (
    ASCT_INTERFACE,
    GRM_INTERFACE,
    GUPA_INTERFACE,
    LRM_INTERFACE,
)
from repro.orb.core import Orb
from repro.orb.naming import NAMING_INTERFACE
from repro.orb.transport import InProcDomain
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestGupaOverTheWire:
    def make_pair(self):
        domain = InProcDomain()
        server = Orb("gupa-host", domain=domain)
        client = Orb("gupa-user", domain=domain)
        gupa = Gupa()
        ref = server.activate(gupa, GUPA_INTERFACE)
        stub = client.stub(ref, GUPA_INTERFACE)
        return server, client, gupa, stub

    def pattern(self, busy=0.0):
        return {"bins_per_day": 24, "weekly": [[busy] * 24] * 7}

    def test_upload_and_query(self):
        server, client, gupa, stub = self.make_pair()
        try:
            stub.upload_pattern("n0", self.pattern(0.2))
            assert stub.has_pattern("n0") is True
            p = stub.idle_probability("n0", 0.0, 3600.0)
            assert p == pytest.approx(0.8, rel=1e-6)
        finally:
            server.shutdown()
            client.shutdown()

    def test_none_pattern_survives_marshalling(self):
        server, client, gupa, stub = self.make_pair()
        try:
            stub.upload_pattern("n0", None)   # LUPA not learned yet
            assert stub.has_pattern("n0") is False
        finally:
            server.shutdown()
            client.shutdown()

    def test_unknown_node_sentinel_crosses_wire(self):
        server, client, gupa, stub = self.make_pair()
        try:
            assert stub.idle_probability("ghost", 0.0, 1.0) == -1.0
        finally:
            server.shutdown()
            client.shutdown()


class TestNamingBootstrap:
    def test_new_client_bootstraps_from_naming_alone(self):
        """A user node that only knows the naming service finds the GRM,
        submits, and monitors — the canonical CORBA bootstrap path."""
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        grid.add_node("c0", "d0", dedicated=True)
        grid.run_for(120)
        handle = grid.clusters["c0"]
        # The only thing the new client holds: the naming servant's orb
        # name and key — everything else is resolved.
        client_orb = Orb("newcomer", domain=grid.domain)
        naming_ref = None
        # Resolve via the manager's naming service (activated at
        # "<cluster>/naming" on the manager orb).
        from repro.orb.ior import ObjectRef
        naming_ref = ObjectRef(
            NAMING_INTERFACE.name, "c0/naming",
            (("inproc", handle.orb.name),),
        )
        naming = client_orb.stub(naming_ref, NAMING_INTERFACE)
        grm_ior = naming.resolve("c0/grm")
        grm = client_orb.stub(grm_ior, GRM_INTERFACE)
        job_id = grm.submit(
            ApplicationSpec(name="bootstrapped", work_mips=1e5).to_dict()
        )
        grid.run_for(SECONDS_PER_HOUR)
        status = grm.job_status(job_id)
        assert status["state"] == "completed"
        client_orb.shutdown()

    def test_gupa_resolvable_from_naming(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        handle = grid.clusters["c0"]
        assert handle.naming.resolve("c0/gupa").startswith("IOR:")
        assert handle.naming.list("c0/") == ["c0/grm", "c0/gupa"]


class TestLupaToGupaOverTheWire:
    def test_pattern_upload_flows_through_orb(self):
        """The Grid wires LUPA -> GUPA through real stubs; after enough
        simulated history the GUPA must know every workstation."""
        from repro.sim.usage import OFFICE_WORKER
        grid = Grid(seed=6, policy="pattern_aware", lupa_enabled=True,
                    lupa_min_history_days=3,
                    update_interval=600.0, tick_interval=600.0)
        grid.add_cluster("c0")
        for i in range(2):
            grid.add_node("c0", f"ws{i}", profile=OFFICE_WORKER)
        grid.add_node("c0", "ded0", dedicated=True)
        grid.run_for(5 * SECONDS_PER_DAY)
        gupa = grid.clusters["c0"].gupa
        assert gupa.known_nodes == ["ws0", "ws1"]   # no LUPA on dedicated
        assert gupa.uploads >= 2
        # And the patterns are usable for scheduling decisions.
        p = gupa.idle_probability("ws0", grid.loop.now, SECONDS_PER_HOUR)
        assert 0.0 <= p <= 1.0
