"""Direct unit tests of the GRM against scripted fake LRMs.

The integration suite drives the GRM through real LRMs; these tests pin
down GRM-internal behaviour — candidate filtering, negotiation fallback
order, gang atomicity, liveness handling — with LRM stubs whose answers
are scripted, including failure injection.
"""

import pytest

from repro.apps.job import JobState, TaskState
from repro.apps.spec import ApplicationSpec, ResourceRequirements
from repro.checkpoint.store import MemoryCheckpointStore
from repro.core.grm import Grm
from repro.core.protocols import LRM_INTERFACE
from repro.orb.core import Orb
from repro.orb.exceptions import CommunicationError
from repro.orb.transport import InProcDomain
from repro.sim.events import EventLoop


class ScriptedLrm:
    """A servant whose reservation answers follow a script."""

    def __init__(self, node, accept=True, fail_start=False, crash=False):
        self.node = node
        self.accept = accept
        self.fail_start = fail_start
        self.crash = crash           # raise instead of answering
        self.reservation_requests = []
        self.started = []
        self.cancelled = []
        self.stopped = []

    def ping(self):
        return True

    def get_status(self):
        return self.status()

    def status(self, **overrides):
        base = {
            "node": self.node, "time": 0.0, "mips": 1000.0,
            "ram_mb": 256.0, "disk_mb": 10_000.0, "os": "linux",
            "arch": "x86", "cpu_free": 1.0, "mem_free_mb": 200.0,
            "disk_free_mb": 10_000.0, "net_mbps": 100.0,
            "net_free_mbps": 100.0, "owner_active": False,
            "sharing": True, "grid_tasks": 0,
        }
        base.update(overrides)
        return base

    def request_reservation(self, request):
        if self.crash:
            raise CommunicationError("node unreachable")
        self.reservation_requests.append(request["task_id"])
        if self.accept:
            return {"accepted": True, "reason": "ok"}
        return {"accepted": False, "reason": "scripted refusal"}

    def cancel_reservation(self, task_id):
        self.cancelled.append(task_id)

    def start_task(self, launch):
        if self.fail_start:
            return False
        self.started.append(launch["task_id"])
        return True

    def stop_task(self, task_id):
        self.stopped.append(task_id)
        return 100.0

    def set_work_limit(self, task_id, limit):
        pass

    def get_progress(self, task_id):
        return 0.0

    def rollback_task(self, task_id, progress):
        pass


@pytest.fixture
def env():
    loop = EventLoop()
    domain = InProcDomain()
    orb = Orb("grm-orb", domain=domain)
    grm = Grm(loop, orb, cluster="test",
              checkpoint_store=MemoryCheckpointStore(),
              schedule_interval=30.0, update_interval_hint=60.0)
    lrms = {}

    def add_lrm(node, **kwargs):
        servant = ScriptedLrm(node, **kwargs)
        node_orb = Orb(f"{node}-orb", domain=domain)
        ref = node_orb.activate(servant, LRM_INTERFACE, key=f"{node}/lrm")
        grm.register_node(servant.status(), ref.to_string())
        lrms[node] = servant
        return servant

    yield loop, grm, add_lrm, lrms
    grm.stop()


def submit_and_run(loop, grm, spec=None):
    if spec is None:
        spec = ApplicationSpec(name="t", work_mips=1e6)
    job_id = grm.submit(spec)
    loop.run_for(60.0)
    return grm.job(job_id)


class TestRegistration:
    def test_register_exports_offer(self, env):
        loop, grm, add_lrm, _ = env
        add_lrm("n0")
        assert grm.trader.offer_count == 1

    def test_reregistration_replaces_offer(self, env):
        loop, grm, add_lrm, _ = env
        servant = add_lrm("n0")
        grm.register_node(servant.status(), grm._nodes["n0"].lrm_ior)
        assert grm.trader.offer_count == 1

    def test_unregister_withdraws(self, env):
        loop, grm, add_lrm, _ = env
        add_lrm("n0")
        grm.unregister_node("n0")
        assert grm.trader.offer_count == 0
        grm.unregister_node("n0")   # idempotent

    def test_update_from_unknown_node_dropped(self, env):
        loop, grm, add_lrm, _ = env
        grm.send_update(ScriptedLrm("ghost").status())
        assert grm.trader.offer_count == 0
        assert grm.stats.updates_received == 0


class TestNegotiationFallback:
    def test_falls_through_refusals(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("a", accept=False)
        add_lrm("b", accept=False)
        add_lrm("c", accept=True)
        job = submit_and_run(loop, grm)
        assert job.tasks[0].state is TaskState.RUNNING
        assert job.tasks[0].node == "c"
        assert grm.stats.reservations_refused == 2
        assert grm.stats.negotiation_rounds == 3

    def test_crashing_node_skipped(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("dead", crash=True)
        add_lrm("ok")
        job = submit_and_run(loop, grm)
        assert job.tasks[0].node == "ok"

    def test_failed_start_releases_reservation(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("flaky", fail_start=True)
        add_lrm("ok")
        job = submit_and_run(loop, grm)
        assert job.tasks[0].node == "ok"
        assert lrms["flaky"].cancelled == [job.tasks[0].task_id]

    def test_all_refuse_leaves_pending_and_retries(self, env):
        loop, grm, add_lrm, lrms = env
        servant = add_lrm("busy", accept=False)
        job = submit_and_run(loop, grm)
        assert job.tasks[0].state is TaskState.PENDING
        first_round = len(servant.reservation_requests)
        assert first_round >= 1
        loop.run_for(120.0)
        assert len(servant.reservation_requests) > first_round

    def test_max_negotiations_bounds_attempts(self, env):
        loop, grm, add_lrm, lrms = env
        for i in range(12):
            add_lrm(f"n{i:02}", accept=False)
        grm.submit(ApplicationSpec(name="t", work_mips=1e6))
        loop.run_for(1.0)   # exactly one scheduling pass
        total = sum(len(s.reservation_requests) for s in lrms.values())
        assert total == grm._max_negotiations


class TestOfferFiltering:
    def test_requirements_filter(self, env):
        loop, grm, add_lrm, lrms = env
        slow = add_lrm("slow")
        grm.send_update(slow.status(mips=100.0))
        fast = add_lrm("fast")
        spec = ApplicationSpec(
            name="t", work_mips=1e6,
            requirements=ResourceRequirements(min_mips=500.0),
        )
        job = submit_and_run(loop, grm, spec)
        assert job.tasks[0].node == "fast"
        assert slow.reservation_requests == []

    def test_non_sharing_nodes_excluded(self, env):
        loop, grm, add_lrm, lrms = env
        dark = add_lrm("dark")
        grm.send_update(dark.status(sharing=False, cpu_free=0.0))
        job = submit_and_run(loop, grm)
        assert job.tasks[0].state is TaskState.PENDING

    def test_busy_nodes_excluded(self, env):
        loop, grm, add_lrm, lrms = env
        busy = add_lrm("busy")
        grm.send_update(busy.status(cpu_free=0.05))
        job = submit_and_run(loop, grm)
        assert job.tasks[0].state is TaskState.PENDING


class TestGangAtomicity:
    def gang_spec(self, tasks=3):
        return ApplicationSpec(
            name="gang", kind="bsp", tasks=tasks, program="p",
            work_mips=1e6, metadata={"supersteps": 2},
        )

    def test_all_or_nothing_on_refusal(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("a", accept=True)
        add_lrm("b", accept=True)
        add_lrm("c", accept=False)   # the third member has nowhere to go
        job = submit_and_run(loop, grm, self.gang_spec(3))
        assert all(t.state is TaskState.PENDING for t in job.tasks)
        # Reservations taken along the way were handed back.
        assert lrms["a"].cancelled or lrms["b"].cancelled
        assert grm.stats.gang_failures >= 1
        assert not lrms["a"].started and not lrms["b"].started

    def test_distinct_nodes_per_member(self, env):
        loop, grm, add_lrm, lrms = env
        for name in ("a", "b", "c"):
            add_lrm(name)
        job = submit_and_run(loop, grm, self.gang_spec(3))
        nodes = {t.node for t in job.tasks}
        assert len(nodes) == 3

    def test_too_few_nodes_fails_fast(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("only")
        job = submit_and_run(loop, grm, self.gang_spec(3))
        assert all(t.state is TaskState.PENDING for t in job.tasks)
        assert lrms["only"].reservation_requests == []


class TestMigration:
    def test_migrate_moves_task_without_losing_work(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("origin")
        add_lrm("target")
        job = submit_and_run(loop, grm)
        task = job.tasks[0]
        first_node = task.node
        other = "target" if first_node == "origin" else "origin"
        assert grm.migrate_task(task.task_id) is True
        assert task.state is TaskState.RUNNING
        assert task.node == other
        assert task.wasted_mips == 0.0          # stop_task is lossless
        assert lrms[first_node].stopped == [task.task_id]
        assert lrms[other].started[-1] == task.task_id

    def test_migrate_with_nowhere_to_go_leaves_pending(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("only")
        job = submit_and_run(loop, grm)
        task = job.tasks[0]
        assert grm.migrate_task(task.task_id) is False
        assert task.state is TaskState.PENDING
        # The normal scheduling pass may then re-place it anywhere,
        # including the original node.
        loop.run_for(120.0)
        assert task.state is TaskState.RUNNING

    def test_migrate_non_running_task(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("busy", accept=False)
        job = submit_and_run(loop, grm)
        assert grm.migrate_task(job.tasks[0].task_id) is False

    def test_migrate_unknown_task(self, env):
        loop, grm, _, _ = env
        with pytest.raises(KeyError):
            grm.migrate_task("ghost")


class TestEvictionRequeueExclusion:
    def test_evicted_task_avoids_its_old_node(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("flaky")
        add_lrm("stable")
        job = submit_and_run(loop, grm)
        task = job.tasks[0]
        first = task.node
        other = "stable" if first == "flaky" else "flaky"
        grm.task_evicted(first, task.task_id, 100.0, 0.0)
        loop.run_for(120.0)
        assert task.state is TaskState.RUNNING
        assert task.node == other

    def test_single_node_cluster_falls_back_to_old_node(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("only")
        job = submit_and_run(loop, grm)
        task = job.tasks[0]
        grm.task_evicted("only", task.task_id, 100.0, 0.0)
        loop.run_for(120.0)
        assert task.state is TaskState.RUNNING
        assert task.node == "only"


class TestLiveness:
    def test_silent_node_declared_dead(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("quiet")
        job = submit_and_run(loop, grm)
        assert job.tasks[0].node == "quiet"
        # No send_update ever arrives; after the stale window the node is
        # buried and its task requeued.
        loop.run_for(60.0 * 3.5 * 3)
        assert grm.stats.nodes_declared_dead == 1
        assert "quiet" not in grm._nodes
        assert job.tasks[0].state in (TaskState.PENDING, TaskState.EVICTED)

    def test_dead_node_task_resumes_from_cluster_checkpoint(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("quiet")
        job = submit_and_run(loop, grm)
        task = job.tasks[0]
        grm.store.save(task.task_id, {"progress_mips": 4e5}, loop.now)
        loop.run_for(60.0 * 3.5 * 3)
        assert task.progress_mips == pytest.approx(4e5)

    def test_updates_keep_node_alive(self, env):
        loop, grm, add_lrm, lrms = env
        servant = add_lrm("chatty")
        for _ in range(20):
            loop.run_for(60.0)
            grm.send_update(servant.status(time=loop.now))
        assert grm.stats.nodes_declared_dead == 0


class TestJobManagement:
    def test_cancel_stops_remote_tasks(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("n0")
        job = submit_and_run(loop, grm)
        grm.cancel_job(job.job_id)
        assert job.state is JobState.CANCELLED
        assert lrms["n0"].stopped == [job.tasks[0].task_id]

    def test_cancel_terminal_job_is_noop(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("n0")
        job = submit_and_run(loop, grm)
        grm.cancel_job(job.job_id)
        grm.cancel_job(job.job_id)

    def test_unknown_job_raises(self, env):
        loop, grm, _, _ = env
        with pytest.raises(KeyError):
            grm.job_status("ghost")
        with pytest.raises(KeyError):
            grm.cancel_job("ghost")

    def test_stale_completion_ignored(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("n0")
        job = submit_and_run(loop, grm)
        grm.cancel_job(job.job_id)
        # A late completion notice from the node must not resurrect it.
        grm.task_completed("n0", job.tasks[0].task_id, None)
        assert job.state is JobState.CANCELLED

    def test_stale_eviction_ignored(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("n0")
        job = submit_and_run(loop, grm)
        grm.cancel_job(job.job_id)
        grm.task_evicted("n0", job.tasks[0].task_id, 100.0, 0.0)
        assert job.state is JobState.CANCELLED

    def test_cluster_summary_shape(self, env):
        loop, grm, add_lrm, lrms = env
        add_lrm("n0")
        add_lrm("n1")
        summary = grm.cluster_summary()
        assert summary["cluster"] == "test"
        assert summary["nodes"] == 2
        assert summary["sharing_nodes"] == 2
        assert summary["max_node_mips"] == 1000.0
