"""Unit tests for application descriptors and job/task lifecycle."""

import pytest

from repro.apps.job import InvalidTransition, Job, JobState, Task, TaskState
from repro.apps.spec import (
    ApplicationSpec,
    BSP,
    NodeGroupRequest,
    ResourceRequirements,
    SEQUENTIAL,
    VirtualTopologyRequest,
)


class TestResourceRequirements:
    def test_defaults_accept_anything(self):
        reqs = ResourceRequirements()
        assert reqs.satisfied_by({"mips": 1, "ram_mb": 1, "disk_mb": 0})

    def test_min_mips(self):
        reqs = ResourceRequirements(min_mips=500)
        assert reqs.satisfied_by({"mips": 500})
        assert not reqs.satisfied_by({"mips": 499})

    def test_paper_example_requirements(self):
        # "at least 16 MB of RAM and a CPU of at least 500 MIPS"
        reqs = ResourceRequirements(min_mips=500, min_ram_mb=16)
        assert reqs.satisfied_by({"mips": 800, "ram_mb": 32})
        assert not reqs.satisfied_by({"mips": 800, "ram_mb": 8})

    def test_platform_prerequisites(self):
        reqs = ResourceRequirements(os="linux", arch="x86")
        assert reqs.satisfied_by({"os": "linux", "arch": "x86"})
        assert not reqs.satisfied_by({"os": "windows", "arch": "x86"})

    def test_extra_constraint(self):
        reqs = ResourceRequirements(extra="cpu_free >= 0.5")
        assert reqs.satisfied_by({"cpu_free": 0.9})
        assert not reqs.satisfied_by({"cpu_free": 0.1})

    def test_bad_extra_constraint_fails_fast(self):
        with pytest.raises(Exception):
            ResourceRequirements(extra="mips >=")

    def test_invalid_cpu_fraction(self):
        with pytest.raises(ValueError):
            ResourceRequirements(cpu_fraction=0.0)
        with pytest.raises(ValueError):
            ResourceRequirements(cpu_fraction=1.5)

    def test_missing_properties_fail_requirements(self):
        assert not ResourceRequirements(min_mips=1).satisfied_by({})


class TestVirtualTopology:
    def test_paper_example(self):
        reqs = ResourceRequirements(min_mips=500, min_ram_mb=16)
        topo = VirtualTopologyRequest(
            groups=(
                NodeGroupRequest(50, 100.0, reqs),
                NodeGroupRequest(50, 100.0, reqs),
            ),
            inter_bandwidth_mbps=10.0,
        )
        assert topo.total_nodes == 100

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            VirtualTopologyRequest(groups=(), inter_bandwidth_mbps=10.0)

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            NodeGroupRequest(0, 100.0)

    def test_topology_must_match_task_count(self):
        topo = VirtualTopologyRequest(
            groups=(NodeGroupRequest(4, 100.0),), inter_bandwidth_mbps=10.0
        )
        with pytest.raises(ValueError):
            ApplicationSpec(name="x", tasks=8, topology=topo)


class TestApplicationSpec:
    def test_defaults(self):
        spec = ApplicationSpec(name="render")
        assert spec.kind == SEQUENTIAL
        assert spec.tasks == 1

    def test_bsp_requires_program(self):
        with pytest.raises(ValueError):
            ApplicationSpec(name="x", kind=BSP, tasks=4)

    def test_bsp_with_program(self):
        spec = ApplicationSpec(name="x", kind=BSP, tasks=4, program="psum")
        assert spec.program == "psum"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            ApplicationSpec(name="x", kind="mapreduce")

    def test_invalid_preference_fails_fast(self):
        with pytest.raises(Exception):
            ApplicationSpec(name="x", preference="mips >=")

    def test_preference_rank(self):
        spec = ApplicationSpec(name="x", preference="mips")
        assert spec.preference_rank().score({"mips": 5}) == 5.0


class TestTaskLifecycle:
    def make_task(self):
        return Task("job0", 0, work_mips=1000.0)

    def test_happy_path(self):
        task = self.make_task()
        task.transition(TaskState.RESERVED, 1.0)
        task.transition(TaskState.RUNNING, 2.0)
        task.advance(1000.0)
        task.transition(TaskState.COMPLETED, 3.0)
        assert task.done
        assert task.attempts == 1
        assert [e.state for e in task.history] == [
            "reserved", "running", "completed",
        ]

    def test_illegal_transition(self):
        task = self.make_task()
        with pytest.raises(InvalidTransition):
            task.transition(TaskState.RUNNING, 1.0)   # must reserve first

    def test_terminal_states_are_final(self):
        task = self.make_task()
        task.transition(TaskState.RESERVED, 1.0)
        task.transition(TaskState.RUNNING, 2.0)
        task.transition(TaskState.COMPLETED, 3.0)
        with pytest.raises(InvalidTransition):
            task.transition(TaskState.PENDING, 4.0)

    def test_eviction_and_retry_counts(self):
        task = self.make_task()
        task.transition(TaskState.RESERVED, 1.0)
        task.transition(TaskState.RUNNING, 2.0)
        task.advance(400.0)
        task.transition(TaskState.EVICTED, 3.0)
        task.rollback()
        task.transition(TaskState.PENDING, 3.0)
        task.transition(TaskState.RESERVED, 4.0)
        task.transition(TaskState.RUNNING, 5.0)
        assert task.attempts == 2
        assert task.evictions == 1
        assert task.wasted_mips == pytest.approx(400.0)
        assert task.progress_mips == 0.0

    def test_rollback_to_checkpoint(self):
        task = self.make_task()
        task.transition(TaskState.RESERVED, 1.0)
        task.transition(TaskState.RUNNING, 2.0)
        task.advance(700.0)
        task.rollback(to_progress_mips=500.0)
        assert task.progress_mips == 500.0
        assert task.wasted_mips == pytest.approx(200.0)

    def test_cannot_roll_forward(self):
        task = self.make_task()
        with pytest.raises(ValueError):
            task.rollback(to_progress_mips=100.0)

    def test_progress_saturates(self):
        task = self.make_task()
        task.advance(5000.0)
        assert task.progress_mips == 1000.0
        assert task.remaining_mips == 0.0

    def test_negative_progress_rejected(self):
        with pytest.raises(ValueError):
            self.make_task().advance(-1.0)


class TestJobLifecycle:
    def make_job(self, tasks=2):
        spec = ApplicationSpec(name="app", tasks=tasks, work_mips=100.0)
        return Job("job0", spec, submitted_at=10.0)

    def test_initial_state(self):
        job = self.make_job()
        assert job.state is JobState.PENDING
        assert len(job.tasks) == 2
        assert job.makespan is None

    def test_task_ids_are_namespaced(self):
        job = self.make_job(3)
        assert [t.task_id for t in job.tasks] == ["job0.0", "job0.1", "job0.2"]

    def test_refresh_to_completed(self):
        job = self.make_job()
        for task in job.tasks:
            task.transition(TaskState.RESERVED, 11.0)
            task.transition(TaskState.RUNNING, 12.0)
            task.advance(100.0)
            task.transition(TaskState.COMPLETED, 20.0)
        job.refresh_state(20.0)
        assert job.state is JobState.COMPLETED
        assert job.makespan == pytest.approx(10.0)

    def test_refresh_to_failed(self):
        job = self.make_job()
        job.tasks[0].transition(TaskState.FAILED, 12.0, "node lost")
        job.refresh_state(12.0)
        assert job.state is JobState.FAILED

    def test_refresh_to_running(self):
        job = self.make_job()
        job.tasks[0].transition(TaskState.RESERVED, 11.0)
        job.tasks[0].transition(TaskState.RUNNING, 12.0)
        job.refresh_state(12.0)
        assert job.state is JobState.RUNNING

    def test_terminal_job_rejects_changes(self):
        job = self.make_job()
        job.set_state(JobState.CANCELLED, 11.0)
        with pytest.raises(InvalidTransition):
            job.set_state(JobState.RUNNING, 12.0)

    def test_progress_fraction(self):
        job = self.make_job()
        job.tasks[0].advance(50.0)
        assert job.progress_fraction() == pytest.approx(0.25)
