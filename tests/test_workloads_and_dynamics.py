"""Tests for workload generators and dynamic node membership."""

import pytest

from repro import ApplicationSpec, Grid, JobState, TaskState
from repro.apps.workloads import (
    PlannedSubmission,
    SubmissionPlan,
    bag_of_tasks,
    diurnal_stream,
    mixed_campaign,
    steady_stream,
)
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestBagOfTasks:
    def test_shape(self):
        plan = bag_of_tasks(5, work_mips=1e6, submit_at=100.0)
        assert len(plan) == 5
        assert all(p.time == 100.0 for p in plan)
        assert plan.total_work_mips == 5e6

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            bag_of_tasks(0, 1e6)


class TestSteadyStream:
    def test_rate_approximately_met(self):
        plan = steady_stream(jobs_per_day=24, duration_days=10,
                             work_mips=1e6, seed=1)
        # 240 expected; Poisson noise allows a wide band.
        assert 150 < len(plan) < 340
        times = [p.time for p in plan]
        assert times == sorted(times)
        assert times[-1] < 10 * SECONDS_PER_DAY

    def test_deterministic_per_seed(self):
        a = steady_stream(10, 2, 1e6, seed=5)
        b = steady_stream(10, 2, 1e6, seed=5)
        assert [p.time for p in a] == [p.time for p in b]

    def test_different_seeds_differ(self):
        a = steady_stream(10, 2, 1e6, seed=5)
        b = steady_stream(10, 2, 1e6, seed=6)
        assert [p.time for p in a] != [p.time for p in b]


class TestDiurnalStream:
    def test_submissions_only_in_working_hours(self):
        plan = diurnal_stream(jobs_per_workday=6, duration_days=14,
                              work_mips=1e6, seed=2)
        for planned in plan:
            day = int(planned.time // SECONDS_PER_DAY) % 7
            hour = (planned.time % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            assert day < 5, "no weekend submissions"
            assert 9.0 <= hour <= 18.0

    def test_weekends_skipped_in_count(self):
        plan = diurnal_stream(jobs_per_workday=3, duration_days=7,
                              work_mips=1e6)
        assert len(plan) == 3 * 5


class TestMixedCampaign:
    def test_composition(self):
        plan = mixed_campaign(sequential_jobs=6, bsp_jobs=2, bsp_tasks=4,
                              work_mips=1e6)
        kinds = [p.spec.kind for p in plan]
        assert kinds.count("sequential") == 6
        assert kinds.count("bsp") == 2
        assert all(
            p.spec.tasks == 4 for p in plan if p.spec.kind == "bsp"
        )


class TestPlanValidation:
    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError):
            SubmissionPlan((
                PlannedSubmission(10.0, ApplicationSpec(name="a")),
                PlannedSubmission(5.0, ApplicationSpec(name="b")),
            ))


class TestDrive:
    def test_plan_drives_a_grid(self):
        grid = Grid(seed=1, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(3):
            grid.add_node("c0", f"d{i}", dedicated=True)
        grid.run_for(60)
        plan = bag_of_tasks(3, work_mips=1e6, submit_at=grid.loop.now + 60)
        job_ids = plan.drive(grid.submit, grid.loop)
        grid.run_for(2 * SECONDS_PER_HOUR)
        assert len(job_ids) == 3
        assert all(grid.job(j).state is JobState.COMPLETED for j in job_ids)


class TestNodeDeparture:
    def make_grid(self):
        grid = Grid(seed=4, policy="first_fit", lupa_enabled=False)
        grid.add_cluster("c0")
        for i in range(2):
            grid.add_node("c0", f"d{i}", dedicated=True)
        grid.run_for(120)
        return grid

    def test_departure_withdraws_offer(self):
        grid = self.make_grid()
        grid.remove_node("c0", "d0")
        assert grid.clusters["c0"].grm.trader.offer_count == 1
        assert "d0" not in grid.clusters["c0"].nodes

    def test_departure_evicts_and_job_migrates(self):
        grid = self.make_grid()
        job_id = grid.submit(ApplicationSpec(
            name="t", work_mips=2e7,
            metadata={"checkpoint_interval_s": 300.0},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        job = grid.job(job_id)
        first_node = job.tasks[0].node
        grid.remove_node("c0", first_node)
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
        assert job.state is JobState.COMPLETED
        assert job.tasks[0].node != first_node
        assert job.tasks[0].evictions >= 1

    def test_remove_unknown_node(self):
        grid = self.make_grid()
        with pytest.raises(KeyError):
            grid.remove_node("c0", "ghost")

    def test_departed_node_orb_unreachable(self):
        grid = self.make_grid()
        grid.remove_node("c0", "d0")
        assert grid.domain.lookup("d0-orb") is None

    def test_all_nodes_leave_then_new_node_joins(self):
        grid = self.make_grid()
        grid.remove_node("c0", "d0")
        grid.remove_node("c0", "d1")
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=1e6))
        grid.run_for(SECONDS_PER_HOUR)
        assert grid.job(job_id).state is JobState.PENDING
        grid.add_node("c0", "fresh", dedicated=True)
        assert grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
