"""Unit tests for small modules covered only indirectly elsewhere."""

import pytest

from repro.apps.spec import ApplicationSpec
from repro.core.asct import Asct, JobEvent
from repro.orb.cdr import Double, Void
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.sim.rng import SeededStreams


class TestSeededStreams:
    def test_same_name_same_stream_object(self):
        streams = SeededStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_deterministic_across_factories(self):
        a = SeededStreams(42).stream("owner.n0")
        b = SeededStreams(42).stream("owner.n0")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = SeededStreams(42)
        first = streams.stream("a")
        baseline = [first.random() for _ in range(5)]
        # Creating and draining another stream must not perturb "a".
        fresh = SeededStreams(42)
        other = fresh.stream("b")
        [other.random() for _ in range(100)]
        replay = fresh.stream("a")
        assert [replay.random() for _ in range(5)] == baseline

    def test_different_seeds_differ(self):
        a = SeededStreams(1).stream("x")
        b = SeededStreams(2).stream("x")
        assert a.random() != b.random()

    def test_fork_is_deterministic_and_distinct(self):
        parent = SeededStreams(7)
        fork1 = parent.fork("child")
        fork2 = SeededStreams(7).fork("child")
        assert fork1.master_seed == fork2.master_seed
        assert fork1.master_seed != parent.master_seed
        assert parent.fork("other").master_seed != fork1.master_seed


class TestIdlDefinitions:
    def test_duplicate_operation_rejected(self):
        with pytest.raises(ValueError):
            InterfaceDef("x", [
                Operation("op", (), Void),
                Operation("op", (), Void),
            ])

    def test_oneway_with_return_rejected(self):
        with pytest.raises(ValueError):
            Operation("bad", (), Double, oneway=True)

    def test_operation_lookup(self):
        iface = InterfaceDef("x", [Operation("op", (), Void)])
        assert iface.operation("op").name == "op"
        assert "op" in iface.operations
        assert repr(iface).startswith("InterfaceDef")

    def test_parameter_shape(self):
        param = Parameter("x", Double)
        assert param.name == "x"
        assert param.idl_type is Double


class FakeGrmStub:
    """Duck-typed GRM for driving the ASCT directly."""

    def __init__(self):
        self.registered = []
        self.cancelled = []
        self._states = {}

    def submit(self, spec_dict):
        job_id = f"job{len(self._states)}"
        self._states[job_id] = {"job_id": job_id, "state": "pending",
                                "progress": 0.0, "tasks": []}
        return job_id

    def register_asct(self, job_id, ior):
        self.registered.append((job_id, ior))

    def job_status(self, job_id):
        return self._states[job_id]

    def cancel_job(self, job_id):
        self.cancelled.append(job_id)
        self._states[job_id]["state"] = "cancelled"


class TestAsctUnit:
    def test_submit_registers_callback_when_ior_known(self):
        grm = FakeGrmStub()
        asct = Asct(grm, own_ior="IOR:me")
        job_id = asct.submit(ApplicationSpec(name="t"))
        assert grm.registered == [(job_id, "IOR:me")]
        assert asct.submitted == [job_id]

    def test_submit_without_ior_skips_registration(self):
        grm = FakeGrmStub()
        asct = Asct(grm)
        asct.submit(ApplicationSpec(name="t"))
        assert grm.registered == []

    def test_event_listeners_and_filtering(self):
        asct = Asct(FakeGrmStub())
        seen = []
        asct.on_event(seen.append)
        asct.job_event("j1", "running", "")
        asct.job_event("j2", "completed", "")
        asct.job_event("j1", "completed", "")
        assert len(seen) == 3
        assert [e.event for e in asct.events_for("j1")] == \
            ["running", "completed"]
        assert asct.events_for("ghost") == []

    def test_cancel_and_done(self):
        grm = FakeGrmStub()
        asct = Asct(grm)
        job_id = asct.submit(ApplicationSpec(name="t"))
        assert not asct.is_done(job_id)
        asct.cancel(job_id)
        assert grm.cancelled == [job_id]
        assert asct.is_done(job_id)

    def test_progress(self):
        grm = FakeGrmStub()
        asct = Asct(grm)
        job_id = asct.submit(ApplicationSpec(name="t"))
        grm._states[job_id]["progress"] = 0.25
        assert asct.progress(job_id) == 0.25


class TestClusterSnapshotRatios:
    def test_harvest_and_utilisation(self):
        from repro.core.monitor import ClusterSnapshot

        snapshot = ClusterSnapshot(
            time=0.0, nodes=4, sharing_nodes=4, owner_active_nodes=1,
            cpu_capacity=4.0, cpu_free_for_grid=2.0, cpu_grid_running=1.0,
            grid_tasks=2, pending_tasks=0,
        )
        assert snapshot.grid_utilisation == pytest.approx(0.25)
        assert snapshot.harvest_ratio == pytest.approx(1.0 / 3.0)

    def test_zero_capacity_edge(self):
        from repro.core.monitor import ClusterSnapshot

        empty = ClusterSnapshot(
            time=0.0, nodes=0, sharing_nodes=0, owner_active_nodes=0,
            cpu_capacity=0.0, cpu_free_for_grid=0.0, cpu_grid_running=0.0,
            grid_tasks=0, pending_tasks=0,
        )
        assert empty.grid_utilisation == 0.0
        assert empty.harvest_ratio == 0.0
