"""Property tests for the delta-compressed Information Update Protocol.

The delta path must be *state-identical* to the full-snapshot oracle:
for any sequence of status mutations, delta-encode → delta-apply leaves
the receiver with exactly the dict a full snapshot would have delivered
— including resynchronisation via the periodic full refresh after a
dropped update.  The full-snapshot path is retained in production code
precisely so these tests can compare against it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grm import Grm
from repro.core.protocols import LRM_INTERFACE
from repro.core.update_protocol import (
    DELTA,
    DeltaSender,
    FULL,
    HEARTBEAT,
    apply_delta,
)
from repro.orb.core import Orb
from repro.orb.transport import InProcDomain
from repro.sim.events import EventLoop

# -- strategies --------------------------------------------------------------

_FLOAT_KEYS = (
    "cpu_free", "mem_free_mb", "disk_free_mb", "net_free_mbps",
)
_finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


def base_status():
    return {
        "node": "n0", "time": 0.0, "mips": 1000.0, "ram_mb": 256.0,
        "disk_mb": 10_000.0, "os": "linux", "arch": "x86",
        "cpu_free": 1.0, "mem_free_mb": 200.0, "disk_free_mb": 10_000.0,
        "net_mbps": 100.0, "net_free_mbps": 100.0, "owner_active": False,
        "sharing": True, "grid_tasks": 0,
    }


mutations = st.lists(
    st.fixed_dictionaries(
        {},
        optional={
            "cpu_free": _finite,
            "mem_free_mb": _finite,
            "disk_free_mb": _finite,
            "net_free_mbps": _finite,
            "owner_active": st.booleans(),
            "sharing": st.booleans(),
            "grid_tasks": st.integers(min_value=0, max_value=50),
        },
    ),
    min_size=1,
    max_size=40,
)


def replay(sender, receiver_state, status):
    """One protocol step: encode on the sender, apply on the receiver."""
    kind, payload = sender.encode(status)
    if kind == FULL:
        return kind, dict(payload)
    return kind, apply_delta(receiver_state, payload)


class TestExactReconstruction:
    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(steps=mutations, refresh=st.integers(min_value=1, max_value=7))
    def test_receiver_tracks_sender_exactly(self, steps, refresh):
        """With epsilon=0 every send leaves receiver == sender status."""
        status = base_status()
        sender = DeltaSender(60.0, full_refresh_every=refresh)
        sender.register(status)
        state = dict(status)
        for i, mutation in enumerate(steps):
            status = dict(status, time=float(i + 1) * 60.0, **mutation)
            _kind, state = replay(sender, state, status)
            assert state == status

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(
        steps=mutations,
        refresh=st.integers(min_value=2, max_value=6),
        drop_at=st.integers(min_value=0, max_value=39),
    )
    def test_full_refresh_resyncs_after_dropped_update(
        self, steps, refresh, drop_at
    ):
        """Losing one delta desynchronises for at most ``refresh`` sends."""
        status = base_status()
        sender = DeltaSender(60.0, full_refresh_every=refresh)
        sender.register(status)
        state = dict(status)
        sends_since_drop = None
        for i, mutation in enumerate(steps):
            status = dict(status, time=float(i + 1) * 60.0, **mutation)
            kind, payload = sender.encode(status)
            dropped = i == drop_at and kind != FULL
            if dropped:
                sends_since_drop = 0   # receiver never sees this message
            else:
                state = dict(payload) if kind == FULL \
                    else apply_delta(state, payload)
            if sends_since_drop is not None:
                sends_since_drop += 1
                if kind == FULL:
                    assert state == status   # resynchronised exactly
                    assert sends_since_drop <= refresh
                    sends_since_drop = None
        # Whatever happened, a long enough run of heartbeats ends in a
        # full refresh; force the tail to prove the bound holds.
        if sends_since_drop is not None:
            for j in range(refresh):
                status = dict(status, time=status["time"] + 60.0)
                kind, payload = sender.encode(status)
                if kind == FULL:
                    state = dict(payload)
                    break
            assert state == status

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(steps=mutations)
    def test_epsilon_bounds_float_divergence(self, steps):
        """With epsilon > 0, unsent drift never exceeds epsilon."""
        epsilon = 0.5
        status = base_status()
        sender = DeltaSender(60.0, full_refresh_every=10, epsilon=epsilon)
        sender.register(status)
        state = dict(status)
        for i, mutation in enumerate(steps):
            status = dict(status, time=float(i + 1) * 60.0, **mutation)
            _kind, state = replay(sender, state, status)
            for key, value in status.items():
                if key == "time":
                    continue
                if key in _FLOAT_KEYS:
                    assert abs(state[key] - value) <= epsilon
                else:
                    assert state[key] == value   # non-floats always exact


class TestThrottle:
    def test_idle_interval_stretches_to_cap_and_snaps_back(self):
        sender = DeltaSender(60.0, full_refresh_every=100,
                             max_interval=480.0)
        status = base_status()
        sender.register(status)
        seen = []
        for i in range(6):
            status = dict(status, time=float(i + 1) * 60.0)
            kind, _ = sender.encode(status)
            assert kind == HEARTBEAT
            seen.append(sender.current_interval)
        assert seen == [120.0, 240.0, 480.0, 480.0, 480.0, 480.0]
        status = dict(status, time=status["time"] + 60.0, cpu_free=0.25)
        kind, _ = sender.encode(status)
        assert kind == DELTA
        assert sender.current_interval == 60.0   # change snaps back

    def test_no_cap_means_no_throttle(self):
        sender = DeltaSender(60.0, full_refresh_every=100)
        sender.register(base_status())
        for i in range(5):
            sender.encode(dict(base_status(), time=float(i + 1)))
            assert sender.current_interval == 60.0

    def test_full_refresh_cadence(self):
        sender = DeltaSender(60.0, full_refresh_every=4)
        status = base_status()
        sender.register(status)
        kinds = []
        for i in range(12):
            status = dict(status, time=float(i + 1) * 60.0)
            kind, _ = sender.encode(status)
            kinds.append(kind)
        assert kinds == [HEARTBEAT, HEARTBEAT, HEARTBEAT, FULL] * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            DeltaSender(0.0)
        with pytest.raises(ValueError):
            DeltaSender(60.0, full_refresh_every=0)
        with pytest.raises(ValueError):
            DeltaSender(60.0, epsilon=-1.0)
        with pytest.raises(ValueError):
            DeltaSender(60.0, max_interval=30.0)
        with pytest.raises(RuntimeError):
            DeltaSender(60.0).encode(base_status())


# -- GRM-level equivalence: delta path vs the full-snapshot oracle ----------


class TestGrmEquivalence:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(steps=mutations, batched=st.booleans())
    def test_delta_ingest_matches_full_snapshot_oracle(self, steps, batched):
        loop = EventLoop()
        domain = InProcDomain()
        oracle = Grm(EventLoop(), Orb(domain=domain), cluster="oracle")
        subject = Grm(loop, Orb(domain=domain), cluster="subject",
                      batched_ingest=batched)

        from tests.test_core_grm_unit import ScriptedLrm
        servant = ScriptedLrm("n0")
        node_orb = Orb(domain=domain)
        ref = node_orb.activate(servant, LRM_INTERFACE, key="n0/lrm")
        ior = ref.to_string()
        status = servant.status()
        oracle.register_node(dict(status), ior)
        subject.register_node(dict(status), ior)

        sender = DeltaSender(60.0, full_refresh_every=5)
        sender.register(status)
        for i, mutation in enumerate(steps):
            status = dict(status, time=float(i + 1) * 60.0, **mutation)
            oracle.send_update(dict(status))
            kind, payload = sender.encode(status)
            if kind == FULL:
                subject.send_update(dict(payload))
            else:
                subject.send_delta("n0", dict(payload))

        subject.flush_updates()
        o_rec = oracle._nodes["n0"]
        s_rec = subject._nodes["n0"]
        assert s_rec.last_status == o_rec.last_status
        assert (subject.trader.offer(s_rec.offer_id).properties
                == oracle.trader.offer(o_rec.offer_id).properties)

        oracle.stop()
        subject.stop()
