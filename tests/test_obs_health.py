"""Health plane: failure forensics, alert rules, doctor reports."""

import json

import pytest

from repro.obs.health import (
    AlertEvaluator,
    AlertRule,
    default_rules,
    doctor_report,
    failure_chains,
    flatten_metrics,
    grid_health_report,
    render_health_report,
)
from repro.obs.journal import EventJournal
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock


def synthetic_crash_events():
    """A hand-built journal: one crash, one restored + one restarted task."""
    clock = SimClock()
    journal = EventJournal(clock=clock)
    journal.record("node_up", node="n0", mips=1000.0)
    journal.record("node_up", node="n1", mips=1000.0)
    journal.record("task_scheduled", node="n0", job_id="j0", task_id="t0",
                   initial_progress_mips=0.0, attempt=1)
    journal.record("task_scheduled", node="n0", job_id="j1", task_id="t1",
                   initial_progress_mips=0.0, attempt=1)
    clock.advance_to(100.0)
    down = journal.record("node_down", node="n0", reason="status stale")
    journal.record("checkpoint_restored", node="n0", job_id="j0",
                   task_id="t0", cause=down.seq, progress_mips=400.0)
    journal.record("task_evicted", node="n0", job_id="j0", task_id="t0",
                   cause=down.seq, progress_mips=400.0,
                   resume_progress_mips=400.0)
    journal.record("task_evicted", node="n0", job_id="j1", task_id="t1",
                   cause=down.seq, progress_mips=250.0,
                   resume_progress_mips=0.0)
    clock.advance_to(130.0)
    journal.record("task_scheduled", node="n1", job_id="j0", task_id="t0",
                   initial_progress_mips=400.0, attempt=2)
    journal.record("task_restored", node="n1", job_id="j0", task_id="t0",
                   progress_mips=400.0)
    clock.advance_to(160.0)
    journal.record("task_scheduled", node="n1", job_id="j1", task_id="t1",
                   initial_progress_mips=0.0, attempt=2)
    clock.advance_to(500.0)
    journal.record("task_completed", node="n1", job_id="j0", task_id="t0",
                   attempts=2)
    return journal.events


class TestFailureChains:
    def test_chain_joins_evictions_by_causal_link(self):
        chains = failure_chains(synthetic_crash_events())
        assert len(chains) == 1
        chain = chains[0]
        assert chain.node == "n0"
        assert chain.reason == "status stale"
        assert chain.down_at == 100.0
        assert {t.task_id for t in chain.tasks} == {"t0", "t1"}
        assert chain.checkpoints_restored == 1
        assert chain.jobs_affected == ["j0", "j1"]

    def test_recovery_outcomes_and_cost_attribution(self):
        chain = failure_chains(synthetic_crash_events())[0]
        by_task = {t.task_id: t for t in chain.tasks}
        restored = by_task["t0"]
        assert restored.outcome == "restored"
        assert restored.resume_progress_mips == 400.0
        assert restored.lost_progress_mips == 0.0
        assert restored.stall_s == 30.0
        assert restored.rescheduled_node == "n1"
        assert restored.completed_at == 500.0
        restarted = by_task["t1"]
        assert restarted.outcome == "restarted"
        assert restarted.lost_progress_mips == 250.0
        assert restarted.stall_s == 60.0
        assert restarted.completed_at is None
        assert chain.cost_s == 90.0

    def test_unrecovered_task_has_no_stall(self):
        events = [e.to_dict() for e in synthetic_crash_events()]
        # Drop everything after the evictions: t0/t1 never reschedule.
        events = [e for e in events if e["time"] <= 100.0]
        chain = failure_chains(events)[0]
        assert all(t.outcome == "unrecovered" for t in chain.tasks)
        assert chain.cost_s == 0.0

    def test_works_on_dicts_and_events_alike(self):
        events = synthetic_crash_events()
        from_objects = failure_chains(events)
        from_dicts = failure_chains([e.to_dict() for e in events])
        assert from_objects[0].to_dict() == from_dicts[0].to_dict()

    def test_no_deaths_means_no_chains(self):
        journal = EventJournal()
        journal.record("node_up", node="a")
        assert failure_chains(journal.events) == []


class TestAlertRules:
    def test_threshold_rule_fires_on_flat_and_nested_metrics(self):
        evaluator = AlertEvaluator([
            AlertRule(name="dead", kind="threshold",
                      metric="grm.c0.nodes_declared_dead", op=">=", value=1),
            AlertRule(name="slow-rank", kind="threshold",
                      metric="grm.c0.rank_latency_s.p95", op=">", value=0.5),
        ])
        fired = evaluator.evaluate({
            "grm.c0.nodes_declared_dead": 2,
            "grm.c0.rank_latency_s": {"p95": 0.9, "count": 10},
        }, time=5.0)
        assert {f.rule for f in fired} == {"dead", "slow-rank"}
        assert all(f.time == 5.0 for f in fired)

    def test_threshold_rule_silent_below_and_when_missing(self):
        evaluator = AlertEvaluator([
            AlertRule(name="dead", kind="threshold",
                      metric="grm.c0.nodes_declared_dead", op=">=", value=1),
        ])
        assert evaluator.evaluate({"grm.c0.nodes_declared_dead": 0}) == []
        assert evaluator.evaluate({}) == []

    def test_absence_rule_fires_only_when_metric_missing(self):
        evaluator = AlertEvaluator([
            AlertRule(name="silent", kind="absence", metric="lrm.n0.ticks"),
        ])
        assert evaluator.evaluate({"lrm.n0.ticks": 4}) == []
        fired = evaluator.evaluate({})
        assert [f.rule for f in fired] == ["silent"]
        assert fired[0].observed is None

    def test_rate_rule_needs_two_samples_and_elapsed_time(self):
        evaluator = AlertEvaluator([
            AlertRule(name="eviction-storm", kind="rate",
                      metric="lrm.total.evicted_count", op=">", value=0.1),
        ])
        assert evaluator.evaluate(
            {"lrm.total.evicted_count": 0}, time=0.0) == []
        fired = evaluator.evaluate(
            {"lrm.total.evicted_count": 30}, time=60.0)
        assert [f.rule for f in fired] == ["eviction-storm"]
        assert fired[0].observed == pytest.approx(0.5)
        # No time elapsed: no rate, no crash.
        assert evaluator.evaluate(
            {"lrm.total.evicted_count": 60}, time=60.0) == []

    def test_top_counts_cumulative_firings(self):
        evaluator = AlertEvaluator([
            AlertRule(name="a", kind="threshold", metric="x",
                      op=">=", value=1),
            AlertRule(name="b", kind="threshold", metric="y",
                      op=">=", value=1),
        ])
        evaluator.evaluate({"x": 1, "y": 1})
        evaluator.evaluate({"x": 1, "y": 0})
        assert evaluator.top(2) == [("a", 2), ("b", 1)]
        assert evaluator.top(1) == [("a", 2)]

    def test_rules_from_dicts_and_bad_rules_rejected(self):
        evaluator = AlertEvaluator([
            {"name": "d", "kind": "threshold", "metric": "m", "op": ">",
             "value": 2.0, "severity": "critical"},
        ])
        assert evaluator.rules[0].severity == "critical"
        with pytest.raises(ValueError):
            AlertRule(name="x", kind="sideways", metric="m")
        with pytest.raises(ValueError):
            AlertRule(name="x", kind="threshold", metric="m", op="~=")

    def test_flatten_skips_non_numeric_and_dots_into_dicts(self):
        flat = flatten_metrics({
            "a": 1, "b": {"c": 2.5, "d": {"e": 3}}, "s": "text",
            "flag": True, "list": [1, 2],
        })
        assert flat == {"a": 1, "b.c": 2.5, "b.d.e": 3, "flag": 1.0}

    def test_default_rules_cover_grid_shape(self):
        rules = default_rules(clusters=["c0"], bsp_jobs=["c0-job0"])
        names = {r.name for r in rules}
        assert "dead-nodes.c0" in names
        assert "status-staleness.c0" in names
        assert "checkpoint-lag.c0-job0" in names
        assert "journal-loss" in names
        assert "trace-loss" in names


class TestDoctorReport:
    def test_offline_report_from_journal_alone(self):
        report = doctor_report(synthetic_crash_events())
        assert report["dead_nodes"] == ["n0"]
        assert report["jobs_affected"] == ["j0", "j1"]
        assert report["events"] == 12
        assert report["alerts"] == []
        chain = report["chains"][0]
        assert chain["cost_s"] == 90.0

    def test_report_with_metrics_evaluates_rules(self):
        report = doctor_report(
            synthetic_crash_events(),
            metrics={"grm.c0.nodes_declared_dead": 1},
            rules=[AlertRule(name="dead-nodes.c0", kind="threshold",
                             metric="grm.c0.nodes_declared_dead",
                             op=">=", value=1, severity="critical")],
        )
        assert [a["rule"] for a in report["alerts"]] == ["dead-nodes.c0"]
        assert report["top_alerts"] == [("dead-nodes.c0", 1)]

    def test_render_names_nodes_outcomes_and_alerts(self):
        report = doctor_report(
            synthetic_crash_events(),
            metrics={"grm.c0.nodes_declared_dead": 1},
            rules=[AlertRule(name="dead-nodes.c0", kind="threshold",
                             metric="grm.c0.nodes_declared_dead",
                             op=">=", value=1, severity="critical")],
        )
        text = render_health_report(report)
        assert "node n0 DOWN" in text
        assert "restored" in text and "restarted" in text
        assert "jobs affected: j0, j1" in text
        assert "[critical] dead-nodes.c0" in text

    def test_render_of_quiet_report(self):
        text = render_health_report(doctor_report([]))
        assert "no node deaths" in text
        assert "no alerts" in text


class TestEndToEndCrashForensics:
    """The acceptance scenario: inject a crash, then reconstruct it —
    dead node, every evicted task, each recovery outcome, and the
    sim-time delay — from the exported journal alone."""

    def _crashed_grid(self):
        from tests.test_failure_injection import crash_node, dedicated_grid

        from repro import ApplicationSpec

        grid = dedicated_grid(nodes=2)
        grid.enable_journal()
        job_id = grid.submit(ApplicationSpec(
            name="t", work_mips=5e7,
            metadata={"checkpoint_interval_s": 300.0},
        ))
        grid.run_for(SECONDS_PER_HOUR)
        job = grid.job(job_id)
        victim = job.tasks[0].node
        crash_time = grid.loop.now
        crash_node(grid, victim)
        assert grid.wait_for_job(job_id, max_seconds=3 * SECONDS_PER_DAY)
        return grid, job_id, victim, crash_time

    def test_doctor_reconstructs_crash_from_exported_journal(self, tmp_path):
        from repro.obs.journal import (
            export_journal_jsonl,
            load_journal_jsonl,
            validate_journal,
        )

        grid, job_id, victim, crash_time = self._crashed_grid()
        path = str(tmp_path / "journal.jsonl")
        export_journal_jsonl(grid.journal.events, path)
        events = load_journal_jsonl(path)
        validate_journal(events)

        # The report is assembled solely from the exported file.
        report = doctor_report(events)
        assert report["dead_nodes"] == [victim]
        assert report["jobs_affected"] == [job_id]
        chain = report["chains"][0]
        assert chain["reason"] == "status stale"
        # The GRM declares death one staleness window after the last
        # accepted update, so the recorded death trails the crash.
        assert chain["down_at"] > crash_time

        # Every evicted task is named, with its recovery outcome.
        task = grid.job(job_id).tasks[0]
        recoveries = {t["task_id"]: t for t in chain["tasks"]}
        assert task.task_id in recoveries
        recovery = recoveries[task.task_id]
        assert recovery["outcome"] == "restored"   # checkpoint existed
        assert recovery["resume_progress_mips"] > 0
        assert recovery["rescheduled_node"] == task.node != victim
        assert recovery["completed_at"] is not None

        # Sim-time delay attributed to the crash: each evicted task sat
        # dead through the liveness detection window (a full staleness
        # interval at minimum) plus its requeue stall.
        assert chain["detection_s"] > 0
        assert recovery["stall_s"] >= 0
        assert chain["cost_s"] >= chain["detection_s"] + recovery["stall_s"]
        assert chain["cost_s"] > 0

        text = render_health_report(report)
        assert victim in text
        assert task.task_id in text

    def test_crash_without_checkpoint_reads_as_restarted(self):
        from tests.test_failure_injection import crash_node, dedicated_grid

        from repro import ApplicationSpec

        grid = dedicated_grid(nodes=2)
        grid.enable_journal()
        job_id = grid.submit(ApplicationSpec(name="t", work_mips=5e7))
        grid.run_for(SECONDS_PER_HOUR)
        victim = grid.job(job_id).tasks[0].node
        crash_node(grid, victim)
        grid.run_for(6 * SECONDS_PER_HOUR)
        chain = failure_chains(grid.journal.events)[0]
        assert chain.node == victim
        assert chain.checkpoints_restored == 0
        outcomes = {t.outcome for t in chain.tasks}
        assert outcomes == {"restarted"}
        # No checkpoint survived: nothing to resume from.  (The work
        # lost on the dead node is unknowable, so it reads as 0.)
        assert all(t.resume_progress_mips == 0.0 for t in chain.tasks)

    def test_live_health_report_fires_dead_node_alert(self):
        grid, job_id, victim, _ = self._crashed_grid()
        report = grid_health_report(grid)
        assert report["dead_nodes"] == [victim]
        assert report["journal"]["recorded"] == len(grid.journal)
        assert report["journal"]["dropped"] == 0
        fired = {a["rule"] for a in report["alerts"]}
        assert "dead-nodes.c0" in fired
        severities = {a["rule"]: a["severity"] for a in report["alerts"]}
        assert severities["dead-nodes.c0"] == "critical"

    def test_health_report_requires_journal(self):
        from repro import Grid

        grid = Grid(seed=1, lupa_enabled=False)
        grid.add_cluster("c0")
        with pytest.raises(ValueError, match="journal"):
            grid_health_report(grid)


class TestDoctorCli:
    def test_doctor_command_offline_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.journal import export_journal_jsonl

        journal_path = str(tmp_path / "journal.jsonl")
        export_journal_jsonl(synthetic_crash_events(), journal_path)
        metrics_path = str(tmp_path / "metrics.json")
        with open(metrics_path, "w") as f:
            json.dump({"time": 500.0, "metrics": {
                "grm.c0.nodes_declared_dead": 1,
                "bsp.c0-job0.stragglers": 0,
            }}, f)
        report_path = str(tmp_path / "report.json")
        assert main(["doctor", journal_path, "--metrics", metrics_path,
                     "--json", report_path]) == 0
        out = capsys.readouterr().out
        assert "node n0 DOWN" in out
        assert "dead-nodes.c0" in out
        report = json.loads(open(report_path).read())
        assert report["dead_nodes"] == ["n0"]

    def test_simulate_journal_and_health_report_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.journal import validate_journal_file

        journal_path = str(tmp_path / "sim.jsonl")
        health_path = str(tmp_path / "health.json")
        assert main([
            "simulate", "--nodes", "3", "--jobs", "1",
            "--train-days", "0", "--horizon-days", "1",
            "--journal", journal_path, "--health-report", health_path,
        ]) == 0
        assert validate_journal_file(journal_path) > 0
        report = json.loads(open(health_path).read())
        assert "chains" in report and "alerts" in report
        out = capsys.readouterr().out
        assert "Event journal" in out
        assert "Grid health report" in out
