"""E10 — virtual-topology-aware group placement.

The paper's worked request: "two groups of 50 nodes, each group
connected internally by a 100 Mbps network and the two groups connected
by a 10 Mbps network; each node should have at least 16 MB of RAM and a
CPU of at least 500 MIPS."  Three measurements:

1. the exact request is satisfiable and correctly placed on a matching
   physical network (one group per fast segment);
2. satisfiability degrades honestly when the physical network cannot
   honour the requested bandwidths;
3. topology-aware placement beats topology-blind placement on superstep
   communication time (blind placement splits groups across the slow
   uplink).
"""

from repro import (
    ApplicationSpec,
    Grid,
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.analysis.metrics import Table
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.machine import MachineSpec
from repro.sim.network import NetworkTopology

from conftest import run_once, save_result

GROUP = 50
NODE_REQS = ResourceRequirements(min_mips=500.0, min_ram_mb=16.0)


def build_network(intra_mbps, inter_mbps):
    network = NetworkTopology()
    network.add_segment("west", bandwidth_mbps=intra_mbps)
    network.add_segment("east", bandwidth_mbps=intra_mbps)
    network.connect("west", "east", bandwidth_mbps=inter_mbps)
    return network


def build_grid(intra_mbps=100.0, inter_mbps=10.0, spare=5):
    network = build_network(intra_mbps, inter_mbps)
    grid = Grid(seed=5, policy="first_fit", lupa_enabled=False,
                update_interval=600.0, tick_interval=120.0)
    grid.add_cluster("campus", network=network)
    spec = MachineSpec(mips=800.0, ram_mb=64.0)
    for i in range(GROUP + spare):
        grid.add_node("campus", f"w{i:02}", spec=spec, dedicated=True,
                      segment="west")
        grid.add_node("campus", f"e{i:02}", spec=spec, dedicated=True,
                      segment="east")
    grid.run_for(1200)
    return grid, network


def paper_request(inter_required=10.0, intra_required=100.0):
    return VirtualTopologyRequest(
        groups=(NodeGroupRequest(GROUP, intra_required, NODE_REQS),
                NodeGroupRequest(GROUP, intra_required, NODE_REQS)),
        inter_bandwidth_mbps=inter_required,
    )


def submit_topology_job(grid, topology):
    spec = ApplicationSpec(
        name="application-X", kind="bsp", tasks=2 * GROUP,
        program="application_x", work_mips=4e5,
        topology=topology,
        metadata={"supersteps": 4, "superstep_comm_bytes": 50_000},
    )
    job_id = grid.submit(spec)
    grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
    return grid.job(job_id), grid.coordinator(job_id)


def placement_quality(job, network):
    segments = {}
    for task in job.tasks:
        if task.node is None:
            return None
        segments.setdefault(network.segment_of(task.node), 0)
        segments[network.segment_of(task.node)] += 1
    return segments


def run_satisfiable():
    grid, network = build_grid()
    job, coordinator = submit_topology_job(grid, paper_request())
    segments = placement_quality(job, network)
    return {
        "done": job.done and job.makespan is not None,
        "segments": segments,
        "comm_total_s": coordinator.comm_seconds_total,
    }


def run_unsatisfiable(inter_required):
    grid, _ = build_grid(inter_mbps=1.0)   # physical uplink only 1 Mbps
    spec = ApplicationSpec(
        name="application-X", kind="bsp", tasks=2 * GROUP,
        program="application_x", work_mips=4e5,
        topology=paper_request(inter_required=inter_required),
        metadata={"supersteps": 4},
    )
    job_id = grid.submit(spec)
    grid.run_for(4 * 3600)
    job = grid.job(job_id)
    return {
        "placed": any(t.node is not None for t in job.tasks),
        "gang_failures": grid.clusters["campus"].grm.stats.gang_failures,
    }


def run_blind():
    """Same job, topology request stripped: the GRM places blindly."""
    grid, network = build_grid()
    spec = ApplicationSpec(
        name="application-X-blind", kind="bsp", tasks=2 * GROUP,
        program="application_x", work_mips=4e5,
        metadata={"supersteps": 4, "superstep_comm_bytes": 50_000},
    )
    job_id = grid.submit(spec)
    grid.wait_for_job(job_id, max_seconds=SECONDS_PER_DAY)
    job = grid.job(job_id)
    coordinator = grid.coordinator(job_id)
    segments = placement_quality(job, network)
    return {
        "done": job.done,
        "segments": segments,
        "comm_total_s": coordinator.comm_seconds_total,
    }


def run_experiment():
    aware = run_satisfiable()
    blind = run_blind()
    impossible = run_unsatisfiable(inter_required=10.0)

    table = Table(
        ["scenario", "placed", "group split (west/east)",
         "superstep comm total (s)"],
        title=(
            "E10: the paper's 2 x 50-node virtual topology request\n"
            "(physical: two 100 Mbps labs joined by 10 Mbps)"
        ),
    )
    table.add_row(
        "topology-aware (the paper's request)",
        aware["done"],
        f"{aware['segments'].get('west', 0)}/{aware['segments'].get('east', 0)}",
        aware["comm_total_s"],
    )
    table.add_row(
        "topology-blind (request stripped)",
        blind["done"],
        f"{blind['segments'].get('west', 0)}/{blind['segments'].get('east', 0)}",
        blind["comm_total_s"],
    )
    table.add_row(
        "physically unsatisfiable (1 Mbps uplink)",
        impossible["placed"],
        "-",
        "-",
    )
    return table, aware, blind, impossible


def test_e10_virtual_topology(benchmark):
    table, aware, blind, impossible = run_once(benchmark, run_experiment)
    save_result("e10_virtual_topology", table.render(), table=table)
    # The exact paper request is satisfied: 50/50 split, one group per lab.
    assert aware["done"]
    assert sorted(aware["segments"].values()) == [GROUP, GROUP]
    # Topology-aware placement keeps group traffic off the slow uplink.
    assert aware["comm_total_s"] < blind["comm_total_s"]
    # An unsatisfiable request is refused, not mis-placed.
    assert not impossible["placed"]
    assert impossible["gang_failures"] > 0
