"""E11 — ORB microbenchmarks.

Section 5: the prototype used UIC-CORBA, "a very small memory footprint
CORBA-compatible implementation", so client machines pay almost nothing
for the middleware.  These are the classic ORB numbers for our Python
substitute: marshalling throughput, invocation round-trip latency
in-process and over real TCP sockets, and the wire size of each
protocol message — the costs every other experiment builds on.
"""

import pytest

from repro.analysis.metrics import Table
from repro.core.protocols import (
    CLUSTER_SUMMARY,
    LRM_INTERFACE,
    NODE_STATUS,
    RESERVATION_REQUEST,
    TASK_LAUNCH,
)
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.core import Orb
from repro.orb.transport import InProcDomain

from conftest import save_result

SAMPLE_STATUS = {
    "node": "node042", "time": 123456.789, "mips": 1000.0,
    "ram_mb": 256.0, "disk_mb": 10_000.0, "os": "linux", "arch": "x86",
    "cpu_free": 0.85, "mem_free_mb": 180.0, "disk_free_mb": 9_000.0,
    "net_mbps": 100.0, "net_free_mbps": 97.5,
    "owner_active": False, "sharing": True, "grid_tasks": 2,
}

SAMPLE_RESERVATION = {
    "task_id": "cluster0-job17.3", "cpu_fraction": 1.0, "mem_mb": 64.0,
    "disk_mb": 0.0, "lease_seconds": 120.0,
}

SAMPLE_LAUNCH = {
    "task_id": "cluster0-job17.3", "job_id": "cluster0-job17",
    "work_mips": 3.6e6, "initial_progress_mips": 0.0,
    "checkpoint_interval_s": 600.0, "payload": "",
}

SAMPLE_SUMMARY = {
    "cluster": "cluster0", "time": 123456.789, "nodes": 100,
    "sharing_nodes": 73, "free_cpu_total": 61.5,
    "free_mem_total_mb": 11_000.0, "max_node_mips": 3000.0,
    "pending_tasks": 4,
}


class EchoLrm:
    """A minimal LRM servant for round-trip measurements."""

    def ping(self):
        return True

    def get_status(self):
        return SAMPLE_STATUS

    def request_reservation(self, request):
        return {"accepted": True, "reason": "ok"}

    def cancel_reservation(self, task_id):
        pass

    def start_task(self, launch):
        return True

    def stop_task(self, task_id):
        return 0.0

    def set_work_limit(self, task_id, limit):
        pass

    def get_progress(self, task_id):
        return 0.0

    def rollback_task(self, task_id, progress):
        pass


def encode_status():
    enc = CdrEncoder()
    NODE_STATUS.encode(enc, SAMPLE_STATUS)
    return enc.getvalue()


def message_size_table():
    table = Table(
        ["protocol message", "CDR bytes"],
        title="E11: wire sizes of the protocol messages",
    )
    for name, idl_type, sample in (
        ("NodeStatus (Information Update)", NODE_STATUS, SAMPLE_STATUS),
        ("ReservationRequest", RESERVATION_REQUEST, SAMPLE_RESERVATION),
        ("TaskLaunch", TASK_LAUNCH, SAMPLE_LAUNCH),
        ("ClusterSummary (hierarchy)", CLUSTER_SUMMARY, SAMPLE_SUMMARY),
    ):
        enc = CdrEncoder()
        idl_type.encode(enc, sample)
        table.add_row(name, len(enc.getvalue()))
    return table


def test_e11_message_sizes(benchmark):
    table = benchmark(message_size_table)
    save_result("e11_orb_message_sizes", table.render())
    sizes = {row[0]: int(row[1]) for row in table.rows}
    # All protocol messages fit comfortably in a single ethernet frame.
    assert all(size < 256 for size in sizes.values())


def test_e11_marshal_node_status(benchmark):
    data = benchmark(encode_status)
    assert len(data) > 0


def test_e11_unmarshal_node_status(benchmark):
    data = encode_status()
    result = benchmark(lambda: NODE_STATUS.decode(CdrDecoder(data)))
    assert result["node"] == "node042"


def test_e11_inproc_roundtrip(benchmark):
    domain = InProcDomain()
    server = Orb("server", domain=domain)
    client = Orb("client", domain=domain)
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        assert benchmark(stub.get_status)["node"] == "node042"
    finally:
        server.shutdown()
        client.shutdown()


def test_e11_tcp_roundtrip(benchmark):
    server = Orb("tcp-server", domain=InProcDomain(), tcp=True)
    client = Orb("tcp-client", domain=InProcDomain(), tcp=True)
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        stub.ping()   # establish the connection outside the timing loop
        assert benchmark(stub.get_status)["node"] == "node042"
    finally:
        server.shutdown()
        client.shutdown()


def test_e11_authenticated_roundtrip(benchmark):
    """The cost of HMAC request authentication on top of a call."""
    from repro.security.auth import Credentials, KeyRing

    ring = KeyRing()
    ring.add("grm", b"cluster-secret")
    domain = InProcDomain()
    server = Orb("auth-server", domain=domain, keyring=ring,
                 require_auth=True)
    client = Orb("auth-client", domain=domain,
                 credentials=Credentials("grm", b"cluster-secret"))
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        assert benchmark(stub.get_status)["node"] == "node042"
    finally:
        server.shutdown()
        client.shutdown()


def test_e11_oneway_inproc(benchmark):
    domain = InProcDomain()
    server = Orb("ow-server", domain=domain)
    client = Orb("ow-client", domain=domain)
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        benchmark(stub.cancel_reservation, "t1")
    finally:
        server.shutdown()
        client.shutdown()
