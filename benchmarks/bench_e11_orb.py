"""E11 — ORB microbenchmarks.

Section 5: the prototype used UIC-CORBA, "a very small memory footprint
CORBA-compatible implementation", so client machines pay almost nothing
for the middleware.  These are the classic ORB numbers for our Python
substitute: marshalling throughput, invocation round-trip latency
in-process and over real TCP sockets, and the wire size of each
protocol message — the costs every other experiment builds on.
"""

import time

import pytest

from repro.analysis.metrics import Table
from repro.core.protocols import (
    CLUSTER_SUMMARY,
    LRM_INTERFACE,
    NODE_STATUS,
    RESERVATION_REQUEST,
    TASK_LAUNCH,
)
from repro.orb.cdr import CdrDecoder, CdrEncoder
from repro.orb.core import Orb
from repro.orb.trading import TradingService
from repro.orb.transport import InProcDomain

from conftest import save_json, save_result

SAMPLE_STATUS = {
    "node": "node042", "time": 123456.789, "mips": 1000.0,
    "ram_mb": 256.0, "disk_mb": 10_000.0, "os": "linux", "arch": "x86",
    "cpu_free": 0.85, "mem_free_mb": 180.0, "disk_free_mb": 9_000.0,
    "net_mbps": 100.0, "net_free_mbps": 97.5,
    "owner_active": False, "sharing": True, "grid_tasks": 2,
}

SAMPLE_RESERVATION = {
    "task_id": "cluster0-job17.3", "cpu_fraction": 1.0, "mem_mb": 64.0,
    "disk_mb": 0.0, "lease_seconds": 120.0,
}

SAMPLE_LAUNCH = {
    "task_id": "cluster0-job17.3", "job_id": "cluster0-job17",
    "work_mips": 3.6e6, "initial_progress_mips": 0.0,
    "checkpoint_interval_s": 600.0, "payload": "",
}

SAMPLE_SUMMARY = {
    "cluster": "cluster0", "time": 123456.789, "nodes": 100,
    "sharing_nodes": 73, "free_cpu_total": 61.5,
    "free_mem_total_mb": 11_000.0, "max_node_mips": 3000.0,
    "pending_tasks": 4,
}


class EchoLrm:
    """A minimal LRM servant for round-trip measurements."""

    def ping(self):
        return True

    def get_status(self):
        return SAMPLE_STATUS

    def request_reservation(self, request):
        return {"accepted": True, "reason": "ok"}

    def cancel_reservation(self, task_id):
        pass

    def start_task(self, launch):
        return True

    def stop_task(self, task_id):
        return 0.0

    def set_work_limit(self, task_id, limit):
        pass

    def get_progress(self, task_id):
        return 0.0

    def rollback_task(self, task_id, progress):
        pass


def encode_status():
    enc = CdrEncoder()
    NODE_STATUS.encode(enc, SAMPLE_STATUS)
    return enc.getvalue()


def message_size_table():
    table = Table(
        ["protocol message", "CDR bytes"],
        title="E11: wire sizes of the protocol messages",
    )
    for name, idl_type, sample in (
        ("NodeStatus (Information Update)", NODE_STATUS, SAMPLE_STATUS),
        ("ReservationRequest", RESERVATION_REQUEST, SAMPLE_RESERVATION),
        ("TaskLaunch", TASK_LAUNCH, SAMPLE_LAUNCH),
        ("ClusterSummary (hierarchy)", CLUSTER_SUMMARY, SAMPLE_SUMMARY),
    ):
        enc = CdrEncoder()
        idl_type.encode(enc, sample)
        table.add_row(name, len(enc.getvalue()))
    return table


def test_e11_message_sizes(benchmark):
    table = benchmark(message_size_table)
    save_result("e11_orb_message_sizes", table.render(), table=table)
    sizes = {row[0]: int(row[1]) for row in table.rows}
    # All protocol messages fit comfortably in a single ethernet frame.
    assert all(size < 256 for size in sizes.values())


def test_e11_marshal_node_status(benchmark):
    data = benchmark(encode_status)
    assert len(data) > 0


def test_e11_unmarshal_node_status(benchmark):
    data = encode_status()
    result = benchmark(lambda: NODE_STATUS.decode(CdrDecoder(data)))
    assert result["node"] == "node042"


def test_e11_inproc_roundtrip(benchmark):
    domain = InProcDomain()
    server = Orb("server", domain=domain)
    client = Orb("client", domain=domain)
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        assert benchmark(stub.get_status)["node"] == "node042"
    finally:
        server.shutdown()
        client.shutdown()


def test_e11_tcp_roundtrip(benchmark):
    server = Orb("tcp-server", domain=InProcDomain(), tcp=True)
    client = Orb("tcp-client", domain=InProcDomain(), tcp=True)
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        stub.ping()   # establish the connection outside the timing loop
        assert benchmark(stub.get_status)["node"] == "node042"
    finally:
        server.shutdown()
        client.shutdown()


def test_e11_authenticated_roundtrip(benchmark):
    """The cost of HMAC request authentication on top of a call."""
    from repro.security.auth import Credentials, KeyRing

    ring = KeyRing()
    ring.add("grm", b"cluster-secret")
    domain = InProcDomain()
    server = Orb("auth-server", domain=domain, keyring=ring,
                 require_auth=True)
    client = Orb("auth-client", domain=domain,
                 credentials=Credentials("grm", b"cluster-secret"))
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        assert benchmark(stub.get_status)["node"] == "node042"
    finally:
        server.shutdown()
        client.shutdown()


def build_trader(offers=1000):
    """A trader loaded with a realistic mixed-node offer population."""
    svc = TradingService()
    for i in range(offers):
        svc.export("node", f"ior:n{i:04}", {
            "node": f"n{i:04}",
            "mips": 500.0 + (i % 7) * 250.0,
            "cpu_free": (i % 10) / 10.0,
            "mem_free_mb": 64.0 + (i % 5) * 64.0,
            "os": "linux" if i % 3 else "solaris",
            "sharing": i % 4 != 0,
            "owner_active": i % 5 == 0,
        })
    return svc


TRADER_CONSTRAINT = (
    "sharing == true && !owner_active && mips >= 750 && mem_free_mb >= 128"
)
TRADER_PREFERENCE = "cpu_free * mips"


def _best_rate(fn, rounds=5, calls=20):
    """Best-of-N calls/second for ``fn`` (rides out machine noise)."""
    best = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        best = max(best, calls / elapsed)
    return best


def test_e11_trader_query_indexed(benchmark):
    svc = build_trader()
    result = benchmark(
        svc.query, "node", TRADER_CONSTRAINT, TRADER_PREFERENCE, 10
    )
    assert len(result) == 10


def test_e11_trader_query_linear_oracle(benchmark):
    svc = build_trader()
    result = benchmark(
        svc.query_linear, "node", TRADER_CONSTRAINT, TRADER_PREFERENCE, 10
    )
    assert len(result) == 10


def test_e11_metrics_json(benchmark):
    """One self-contained pass producing every BENCH_E11.json metric:
    wire sizes, marshalling bytes/s, and indexed-vs-linear trader query
    rates at 1000 offers."""
    def measure():
        sizes = {}
        for name, idl_type, sample in (
            ("node_status", NODE_STATUS, SAMPLE_STATUS),
            ("reservation_request", RESERVATION_REQUEST, SAMPLE_RESERVATION),
            ("task_launch", TASK_LAUNCH, SAMPLE_LAUNCH),
            ("cluster_summary", CLUSTER_SUMMARY, SAMPLE_SUMMARY),
        ):
            enc = CdrEncoder()
            idl_type.encode(enc, sample)
            sizes[name] = len(enc.getvalue())

        msg_bytes = len(encode_status())
        encodes_per_s = _best_rate(encode_status, rounds=5, calls=2000)

        svc = build_trader()
        args = ("node", TRADER_CONSTRAINT, TRADER_PREFERENCE, 10)
        assert svc.query(*args) == svc.query_linear(*args)
        indexed_qps = _best_rate(lambda: svc.query(*args))
        linear_qps = _best_rate(lambda: svc.query_linear(*args))
        return sizes, msg_bytes, encodes_per_s, indexed_qps, linear_qps

    sizes, msg_bytes, enc_per_s, indexed_qps, linear_qps = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    save_json("E11", {
        "experiment": "e11_orb",
        "message_bytes": sizes,
        "marshal_node_status_per_s": round(enc_per_s, 1),
        "marshal_bytes_per_s": round(enc_per_s * msg_bytes, 1),
        "trader_offers": 1000,
        "trader_indexed_queries_per_s": round(indexed_qps, 1),
        "trader_linear_queries_per_s": round(linear_qps, 1),
        "trader_speedup": round(indexed_qps / linear_qps, 2),
    })
    assert indexed_qps > linear_qps


def test_e11_oneway_inproc(benchmark):
    domain = InProcDomain()
    server = Orb("ow-server", domain=domain)
    client = Orb("ow-client", domain=domain)
    try:
        ref = server.activate(EchoLrm(), LRM_INTERFACE)
        stub = client.stub(ref, LRM_INTERFACE)
        benchmark(stub.cancel_reservation, "t1")
    finally:
        server.shutdown()
        client.shutdown()
