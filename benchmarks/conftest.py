"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure from the experiment index
in DESIGN.md.  The measured rows are printed AND written to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote them
verbatim; the pytest-benchmark fixture times one representative run.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(experiment: str, text: str) -> None:
    """Persist an experiment's rendered table(s)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as f:
        f.write(text.rstrip() + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full experiment run with pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
