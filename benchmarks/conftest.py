"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure from the experiment index
in DESIGN.md.  The measured rows are printed AND written to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote them
verbatim; the pytest-benchmark fixture times one representative run.

Benchmarks can additionally emit machine-readable metrics with
:func:`save_json`.  JSON emission is off by default (so routine test
runs never dirty the committed baselines) and is enabled with either
``--bench-json`` on the pytest command line or ``BENCH_JSON=1`` in the
environment.  Files land in ``benchmarks/results/BENCH_<TAG>.json`` and
are the baselines the CI perf smoke compares against.
"""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_JSON_ENABLED = bool(os.environ.get("BENCH_JSON"))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store_true",
        default=False,
        help="write machine-readable BENCH_<TAG>.json metric files",
    )


def pytest_configure(config):
    global _JSON_ENABLED
    if config.getoption("--bench-json", default=False):
        _JSON_ENABLED = True


def save_result(experiment: str, text: str, table=None) -> None:
    """Persist an experiment's rendered table(s).

    When ``table`` (a :class:`repro.analysis.metrics.Table`) is given and
    JSON mode is on, also emit the rows as ``BENCH_<TAG>.json`` where the
    tag is the experiment's index prefix (``e3_lupa_prediction`` → E3).
    Benches with richer metrics call :func:`save_json` themselves, after
    ``save_result``, overwriting this generic sidecar.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as f:
        f.write(text.rstrip() + "\n")
    print(f"\n{text}\n[saved to {path}]")
    if table is not None:
        save_json(experiment.split("_")[0].upper(), {
            "experiment": experiment,
            "headers": table.headers,
            "rows": table.rows,
        })


def save_json(tag: str, metrics: dict) -> None:
    """Persist machine-readable metrics as ``BENCH_<TAG>.json``.

    A no-op unless ``--bench-json`` / ``BENCH_JSON=1`` is set, so normal
    test runs never touch the committed baselines.  Content is metrics
    only — no timestamps — so reruns with unchanged numbers diff clean.
    """
    if not _JSON_ENABLED:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{tag}.json")
    with open(path, "w") as f:
        json.dump(metrics, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[metrics saved to {path}]")


def load_json(tag: str):
    """Read a committed ``BENCH_<TAG>.json`` baseline, or None if absent."""
    path = os.path.join(RESULTS_DIR, f"BENCH_{tag}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full experiment run with pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
