"""S3 — information-plane scaling (infrastructure benchmark).

The paper's update protocol ships every node's complete status on a
fixed interval; at tens of thousands of nodes the GRM drowns in
identical snapshots.  This benchmark drives a *real* GRM through a real
ORB with three configurations of the same workload and measures what
the scaling features buy:

* ``full``        — the seed protocol: full snapshot, every node, every
  interval, re-indexed per update (the paper's baseline).
* ``delta``       — delta encoding + adaptive throttling on the sender,
  batched ingestion on the GRM; still fully marshalled.
* ``delta+batch`` — the same, plus transport-level oneway batching: the
  sender ORB queues its update oneways and flushes once per interval,
  so frames drop from O(messages) to O(flushes) (still marshalled).
* ``delta+fast``  — delta + the in-process ORB fast path.

Senders are :class:`~repro.core.update_protocol.DeltaSender` machines
over synthetic status dicts (building 10k full node stacks would
measure the simulator, not the protocol).  Workload: ``CHURN_PERIOD``-th
of the nodes change a float field each interval, the rest idle, and the
GRM's view is queried every ``QUERY_EVERY`` rounds so batched mode pays
its flushes.

Reported per (nodes, mode): messages, updates/s of wall time, bytes on
the wire, bytes/update, and total information-plane cost (wall seconds
for the identical simulated horizon — the product of ingest time per
update and update volume).  Rows land in ``BENCH_S3.json`` with
``--bench-json``; the committed file is the CI perf baseline and the
gates (>= 5x plane cost down with everything on, >= 3x bytes down from
deltas + throttling alone, both at 10k nodes) run in ``perf_smoke.py``.
"""

import hashlib
import time

from repro.core.grm import Grm
from repro.core.protocols import GRM_INTERFACE, LRM_INTERFACE
from repro.core.update_protocol import FULL, DeltaSender
from repro.orb.core import Orb
from repro.orb.transport import InProcDomain
from repro.sim.events import EventLoop
from repro.analysis.metrics import Table

from conftest import save_json, save_result

SCALING_NODES = (1_000, 4_000, 10_000)
MODES = ("full", "delta", "delta+batch", "delta+fast")
ROUNDS = 36                    # simulated update intervals per run
BASE_INTERVAL = 60.0
MAX_INTERVAL = 8 * BASE_INTERVAL
FULL_REFRESH_EVERY = 10
CHURN_PERIOD = 20              # 5% of the nodes change per round
QUERY_EVERY = 5                # rounds between GRM view queries


def node_status(i):
    return {
        "node": f"n{i:05}", "time": 0.0, "mips": 1000.0 + (i % 7) * 100.0,
        "ram_mb": 512.0, "disk_mb": 20_000.0, "os": "linux", "arch": "x86",
        "cpu_free": 0.9, "mem_free_mb": 400.0, "disk_free_mb": 15_000.0,
        "net_mbps": 100.0, "net_free_mbps": 80.0, "owner_active": False,
        "sharing": True, "grid_tasks": 0,
    }


def build_plane(nodes, mode):
    """A registered GRM + client stub + per-node sender state."""
    fast = mode == "delta+fast"
    batch = mode == "delta+batch"
    domain = InProcDomain()
    server_orb = Orb("grm-orb", domain=domain, fast_local=fast,
                     batch_oneway=batch)
    client_orb = Orb("lrm-orb", domain=domain, fast_local=fast,
                     batch_oneway=batch)
    grm = Grm(EventLoop(), server_orb, cluster="bench",
              batched_ingest=(mode != "full"))
    grm_ref = server_orb.activate(grm, GRM_INTERFACE, key="bench/grm")
    stub = client_orb.stub(grm_ref, GRM_INTERFACE)

    # One placeholder LRM servant backs every registration: S3 measures
    # the update path, and the GRM only dials back on scheduling.
    class _IdleLrm:
        def __getattr__(self, name):
            return lambda *args: None

    lrm_ref = client_orb.activate(_IdleLrm(), LRM_INTERFACE, key="bench/lrm")
    lrm_ior = lrm_ref.to_string()

    statuses = [node_status(i) for i in range(nodes)]
    for status in statuses:
        grm.register_node(dict(status), lrm_ior)

    senders = None
    next_due = None
    if mode != "full":
        senders = []
        for status in statuses:
            sender = DeltaSender(
                BASE_INTERVAL, full_refresh_every=FULL_REFRESH_EVERY,
                max_interval=MAX_INTERVAL,
            )
            sender.register(status)
            senders.append(sender)
        next_due = [BASE_INTERVAL] * nodes
    return server_orb, client_orb, grm, stub, statuses, senders, next_due


def drive(grm, stub, statuses, senders, next_due, rounds=ROUNDS,
          flush_orb=None):
    """Run the workload; returns (messages sent, wall seconds).

    ``flush_orb`` (the sender ORB, in ``delta+batch`` mode) is flushed
    at every interval boundary — the bench's stand-in for the grid's
    sim-event-boundary flush — so each round's queued oneways ride one
    batch frame.
    """
    sent = 0
    start = time.perf_counter()
    for r in range(1, rounds + 1):
        now = r * BASE_INTERVAL
        # Deterministic churn: every CHURN_PERIOD-th node moves its load
        # figure this round (no RNG, so reruns measure the same bytes).
        for i in range(len(statuses)):
            if (i + r) % CHURN_PERIOD == 0:
                statuses[i]["cpu_free"] = 0.1 + 0.08 * (r % 10)
        if senders is None:
            for status in statuses:
                status["time"] = now
                stub.send_update(dict(status))
                sent += 1
        else:
            for i, sender in enumerate(senders):
                if now < next_due[i]:
                    continue
                status = statuses[i]
                status["time"] = now
                kind, payload = sender.encode(status)
                if kind == FULL:
                    stub.send_update(dict(payload))
                else:
                    stub.send_delta(status["node"], dict(payload))
                next_due[i] = now + sender.current_interval
                sent += 1
        if flush_orb is not None:
            flush_orb.flush()
        if r % QUERY_EVERY == 0:
            grm.flush_updates()   # a consumer reads the Trader's view
    grm.flush_updates()
    return sent, time.perf_counter() - start


def measure_mode(nodes, mode, rounds=ROUNDS):
    """One full run; returns the S3 metric row for (nodes, mode)."""
    server_orb, client_orb, grm, stub, statuses, senders, next_due = \
        build_plane(nodes, mode)
    try:
        sent, elapsed = drive(
            grm, stub, statuses, senders, next_due, rounds,
            flush_orb=client_orb if mode == "delta+batch" else None,
        )
        wire = server_orb.stats()
        bytes_in = wire["bytes_received"]
        assert grm.stats.updates_received == sent
        # Fold the GRM's final node view into a digest: batching must
        # leave the information plane's *state* bit-identical, not just
        # its counters.
        digest = hashlib.sha256()
        for node in sorted(grm._nodes):
            status = grm._nodes[node].last_status
            digest.update(f"{node}|{sorted(status.items())!r}".encode())
        return {
            "nodes": nodes,
            "mode": mode,
            "rounds": rounds,
            "messages": sent,
            "frames": wire["requests_received"],
            "updates_per_wall_s": round(sent / elapsed, 1),
            "wire_bytes": bytes_in,
            "bytes_per_update": round(bytes_in / sent, 1) if sent else 0.0,
            "plane_cost_s": round(elapsed, 4),
            "view_digest": digest.hexdigest(),
        }
    finally:
        grm.stop()
        server_orb.shutdown()
        client_orb.shutdown()


def run_experiment():
    table = Table(
        ["nodes", "mode", "messages", "frames", "updates/s (wall)",
         "bytes/update", "KB on wire", "plane cost (s)"],
        title="S3: information-plane cost per 36 simulated intervals",
    )
    rows = []
    for nodes in SCALING_NODES:
        for mode in MODES:
            row = measure_mode(nodes, mode)
            rows.append(row)
            table.add_row(
                nodes, mode, row["messages"], row["frames"],
                f"{row['updates_per_wall_s']:,.0f}",
                f"{row['bytes_per_update']:,.0f}",
                f"{row['wire_bytes'] / 1024.0:,.0f}",
                f"{row['plane_cost_s']:.3f}",
            )
    return table, rows


def _row(rows, nodes, mode):
    return next(r for r in rows if r["nodes"] == nodes and r["mode"] == mode)


def test_s3_information_plane(benchmark):
    table, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_result("s3_information_plane", table.render())
    save_json("S3", {
        "experiment": "s3_information_plane",
        "rounds": ROUNDS,
        "base_interval_s": BASE_INTERVAL,
        "churn_period": CHURN_PERIOD,
        "rows": rows,
    })
    for nodes in SCALING_NODES:
        full = _row(rows, nodes, "full")
        delta = _row(rows, nodes, "delta")
        batch = _row(rows, nodes, "delta+batch")
        fast = _row(rows, nodes, "delta+fast")
        # Throttling must actually shed messages...
        assert delta["messages"] < full["messages"] / 2
        # ...and deltas must shrink what the GRM absorbs per message.
        assert delta["bytes_per_update"] < full["bytes_per_update"]
        # The fast path removes the wire entirely for co-located pairs.
        assert fast["wire_bytes"] == 0
        # Oneway batching sends the same messages in far fewer frames
        # and leaves the GRM's final node view bit-identical.
        assert batch["messages"] == delta["messages"]
        assert batch["view_digest"] == delta["view_digest"]
        assert delta["frames"] == delta["messages"]
        assert delta["frames"] / batch["frames"] >= 5.0
    full = _row(rows, 10_000, "full")
    delta = _row(rows, 10_000, "delta")
    fast = _row(rows, 10_000, "delta+fast")
    # The headline claims the CI smoke re-checks against the committed
    # baseline: >= 5x plane cost down with everything on, >= 3x bytes
    # down from deltas + throttling alone (the fast path's zero wire
    # bytes would make that ratio trivial).
    assert full["plane_cost_s"] / fast["plane_cost_s"] >= 5.0
    assert full["wire_bytes"] / delta["wire_bytes"] >= 3.0
