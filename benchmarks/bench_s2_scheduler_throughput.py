"""S2 — scheduler ranking throughput (vectorized vs scalar-oracle).

The paper's pattern-aware scheduler must rank every candidate node each
pass; at grid scale that ranking is the hot path (see PAPERS.md on
resource-broker matchmaking throughput).  This benchmark measures one
schedule-pass ranking — policy ``order()`` over N offers against a GUPA
holding learned weekly patterns — for the vectorized path and for the
retained seed implementation (``order_scalar``), at 64/256/1024 nodes.

Reported per size: pass latency (ms), offers ranked per second, and the
vectorized-over-scalar speedup.  The committed ``BENCH_S2.json`` is the
baseline the CI perf smoke compares against; the 1024-node pattern-aware
row must show >= 5x.
"""

import time

import numpy as np

from repro.analysis.metrics import Table
from repro.apps.spec import ApplicationSpec
from repro.core.gupa import Gupa
from repro.core.scheduler import (
    FastestFirstPolicy,
    PatternAwarePolicy,
    ScheduleContext,
)

from conftest import run_once, save_json, save_result

SIZES = (64, 256, 1024)
BINS_PER_DAY = 48                 # the LUPA default
PATTERNLESS_FRACTION = 0.1        # nodes still learning -> UNKNOWN path
SPEEDUP_TARGET = 5.0


def build_workload(n_nodes, seed=42):
    """A GUPA with learned patterns plus one offer per node."""
    rng = np.random.default_rng(seed)
    gupa = Gupa()
    offers = []
    for i in range(n_nodes):
        node = f"n{i:04d}"
        if rng.random() >= PATTERNLESS_FRACTION:
            weekly = rng.random((7, BINS_PER_DAY))
            gupa.upload_pattern(
                node,
                {"bins_per_day": BINS_PER_DAY, "weekly": weekly.tolist()},
            )
        offers.append({
            "node": node,
            "mips": float(rng.choice([500.0, 1000.0, 2000.0, 4000.0])),
            "cpu_free": float(rng.choice([0.25, 0.5, 0.75, 1.0])),
            "mem_free_mb": 512.0,
            "sharing": True,
        })
    return gupa, offers


def make_ctx(gupa, now=10 * 3600.0, work=3.6e6):
    return ScheduleContext(
        spec=ApplicationSpec(name="s2", work_mips=work),
        remaining_mips=work,
        now=now,
        gupa=gupa,
    )


def _best_pass_s(fn, rounds=5, calls=3):
    """Best-of-N seconds per call (rides out machine noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / calls)
    return best


def measure(n_nodes):
    """One row per policy: vectorized vs scalar ranking at ``n_nodes``."""
    gupa, offers = build_workload(n_nodes)
    rows = []
    for policy in (PatternAwarePolicy(), FastestFirstPolicy()):
        # Equivalence first: same GUPA, same offers, identical order.
        ctx = make_ctx(gupa)
        vec_order = [o["node"] for o in policy.order(offers, ctx)]
        scalar_order = [o["node"] for o in policy.order_scalar(offers, ctx)]
        assert vec_order == scalar_order, (
            f"{policy.name}: vectorized order diverged at {n_nodes} nodes"
        )
        # Fresh context per pass, as the GRM does per job.
        vec_s = _best_pass_s(
            lambda: policy.order(offers, make_ctx(gupa))
        )
        scalar_s = _best_pass_s(
            lambda: policy.order_scalar(offers, make_ctx(gupa)),
            calls=1,
        )
        rows.append({
            "nodes": n_nodes,
            "policy": policy.name,
            "vector_pass_ms": vec_s * 1e3,
            "scalar_pass_ms": scalar_s * 1e3,
            "offers_ranked_per_s": n_nodes / vec_s,
            "speedup": scalar_s / vec_s,
        })
    return rows


def run_experiment():
    table = Table(
        ["nodes", "policy", "vector pass (ms)", "scalar pass (ms)",
         "offers ranked/s", "speedup"],
        title="S2: schedule-pass ranking throughput",
    )
    all_rows = []
    for n_nodes in SIZES:
        for row in measure(n_nodes):
            all_rows.append(row)
            table.add_row(
                row["nodes"], row["policy"], row["vector_pass_ms"],
                row["scalar_pass_ms"], row["offers_ranked_per_s"],
                row["speedup"],
            )
    return table, all_rows


def test_s2_scheduler_throughput(benchmark):
    table, rows = run_once(benchmark, run_experiment)
    save_result("s2_scheduler_throughput", table.render())
    save_json("S2", {
        "experiment": "s2_scheduler_throughput",
        "bins_per_day": BINS_PER_DAY,
        "patternless_fraction": PATTERNLESS_FRACTION,
        "rows": rows,
    })
    at_scale = next(
        r for r in rows
        if r["nodes"] == 1024 and r["policy"] == "pattern_aware"
    )
    assert at_scale["speedup"] >= SPEEDUP_TARGET, (
        f"pattern-aware ranking at 1024 nodes only "
        f"{at_scale['speedup']:.1f}x over the scalar oracle"
    )
