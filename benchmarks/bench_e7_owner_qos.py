"""E7 — owner quality-of-service preservation.

The paper's hardest requirement: "users who decide to share their
machines with the Grid shall not perceive any drop in the quality of
service".  An office owner works on a machine that also hosts grid
tasks, under three regimes:

* **naive harvester** — grid work at normal priority (fair-share CPU):
  the owner visibly loses cycles whenever the machine is oversubscribed;
* **InteGrade, share mode** — user-level control gives the owner
  absolute priority; the grid is throttled to the NCC's active-cap;
* **InteGrade, vacate mode** — Condor-style: grid leaves on arrival.

Measured: owner CPU received / requested (QoS), and grid throughput on
the same machine.  Expected shape: naive harvesting costs the owner
~30-50% during contention; both InteGrade modes keep owner QoS at 100%,
with share mode harvesting more than vacate mode.
"""

import random

from repro.core.lrm import Lrm
from repro.core.ncc import (
    NodeControlCenter,
    SharingPolicy,
    VACATE_POLICY,
)
from repro.analysis.metrics import Table
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import OFFICE_WORKER
from repro.sim.workstation import Workstation

from conftest import run_once, save_result


class _SinkGrm:
    """Swallows LRM notifications; relaunches evicted work."""

    def __init__(self):
        self.completed = 0
        self.evictions = 0

    def register_node(self, status, ior):
        pass

    def send_update(self, status):
        pass

    def task_completed(self, node, task_id, result=None):
        self.completed += 1

    def task_evicted(self, node, task_id, progress, resume):
        self.evictions += 1

    def task_reached_limit(self, node, task_id):
        pass


def run_regime(label, policy, scheduling, seed=21):
    loop = EventLoop()
    workstation = Workstation(
        loop, "desk", spec=MachineSpec(mips=1000.0, ram_mb=512.0),
        profile=OFFICE_WORKER, rng=random.Random(seed),
        scheduling=scheduling,
    )
    ncc = NodeControlCenter(loop.clock, policy)
    lrm = Lrm(loop, workstation, ncc, tick_interval=30.0)
    grm = _SinkGrm()
    lrm.attach_grm(grm, "IOR:sink")

    machine = workstation.machine
    owner_requested = 0.0
    owner_received = 0.0
    grid_done_mips = 0.0
    task_counter = [0]

    def keep_grid_busy():
        """Whenever the node has no grid task, try to start one."""
        if lrm.running_tasks:
            return
        task_counter[0] += 1
        task_id = f"t{task_counter[0]}"
        reply = lrm.request_reservation({
            "task_id": task_id, "cpu_fraction": 1.0, "mem_mb": 64.0,
            "disk_mb": 0.0, "lease_seconds": 300.0,
        })
        if reply["accepted"]:
            lrm.start_task({
                "task_id": task_id, "job_id": "stream",
                "work_mips": 1e6, "initial_progress_mips": 0.0,
                "checkpoint_interval_s": 600.0,
            })

    def measure():
        nonlocal owner_requested, owner_received, grid_done_mips
        owner_requested += machine.owner_cpu
        owner_received += machine.owner_received_cpu()
        for task_id in lrm.running_tasks:
            grid_done_mips += lrm.task_rate_mips(task_id) * 30.0

    loop.every(60.0, keep_grid_busy)
    loop.every(30.0, measure)
    loop.run_until(7 * SECONDS_PER_DAY)

    qos = owner_received / owner_requested if owner_requested else 1.0
    return {
        "label": label,
        "owner_qos": qos,
        "owner_slowdown_pct": (1.0 - qos) * 100.0,
        "grid_cpu_hours": grid_done_mips / 1000.0 / 3600.0,
        "evictions": grm.evictions,
    }


def run_experiment():
    regimes = [
        ("naive fair-share harvester",
         SharingPolicy(cpu_cap_idle=1.0, cpu_cap_active=1.0),
         "fair_share"),
        ("InteGrade share mode (cap 0.2 while owner active)",
         SharingPolicy(cpu_cap_idle=1.0, cpu_cap_active=0.2),
         "owner_first"),
        ("InteGrade vacate mode (Condor-like)",
         VACATE_POLICY,
         "owner_first"),
        ("InteGrade vacate with 30 min suspend-grace",
         SharingPolicy(cpu_cap_active=0.0, vacate_on_owner_return=True,
                       vacate_grace_s=1800.0),
         "owner_first"),
    ]
    table = Table(
        ["regime", "owner slowdown %", "grid CPU-hours/week", "evictions"],
        title=(
            "E7: owner QoS on one office desktop over a simulated week\n"
            "(grid kept saturated with work)"
        ),
    )
    results = {}
    for label, policy, scheduling in regimes:
        outcome = run_regime(label, policy, scheduling)
        results[label] = outcome
        table.add_row(
            label, outcome["owner_slowdown_pct"],
            outcome["grid_cpu_hours"], outcome["evictions"],
        )
    return table, results


def test_e7_owner_qos(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("e7_owner_qos", table.render(), table=table)
    naive = results["naive fair-share harvester"]
    share = results["InteGrade share mode (cap 0.2 while owner active)"]
    vacate = results["InteGrade vacate mode (Condor-like)"]
    # The naive harvester visibly hurts the owner; InteGrade does not.
    assert naive["owner_slowdown_pct"] > 10.0
    assert share["owner_slowdown_pct"] < 0.5
    assert vacate["owner_slowdown_pct"] < 0.5
    # Share mode harvests at least as much as vacate mode.
    assert share["grid_cpu_hours"] >= vacate["grid_cpu_hours"]
