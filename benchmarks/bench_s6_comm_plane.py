"""S6 — communication-plane scaling (infrastructure benchmark).

The seed ORB sends one transport frame per call, copies every octet
sequence out of the receive buffer, and serialises TCP callers behind a
per-connection lock.  This benchmark measures what the PR's three
opt-in mechanisms buy, each against its seed path run in-process:

* **Oneway storm** — 10k logical senders fire oneway status reports at
  one sink per round.  ``per-call`` mode is the seed (one frame per
  call); ``batched`` queues per peer and flushes once per round, so
  frames drop from O(calls) to O(flushes).  A server-side interceptor
  digests every dispatched call, so delivery (content *and* order) is
  asserted bit-identical between modes.
* **CDR plane** — decode throughput over chunk-shaped records (string +
  ulong + 64 KiB octets): the seed decoder copies every blob out of the
  buffer, ``zero_copy=True`` returns memoryview slices.  Encode
  throughput with pooled vs per-message encoders rides along.  Output
  bytes are asserted identical.
* **Pipelined TCP** — oneway delivery over a real socket: legacy
  framing pays one frame (and one send syscall) per message, the
  pipelined connection negotiates batch capability so flushed batches
  collapse frames by the flush interval.  A threaded two-way run (8
  client threads sharing one connection, both framings) rides along as
  a correctness check; its throughput is reported, not gated — with
  per-connection dispatch serialised on both framings, loopback
  request/reply is a round-trip-latency race that pipelining is not
  built to win.

Rows land in ``BENCH_S6.json`` with ``--bench-json``; the committed
file is the CI baseline and the headline gates (>= 5x frame reduction
with identical digests, >= 2x zero-copy decode throughput) re-run in
``perf_smoke.py``.
"""

import hashlib
import threading
import time

from repro.analysis.metrics import Table
from repro.orb.cdr import (
    CdrDecoder,
    CdrEncoder,
    acquire_encoder,
    release_encoder,
)
from repro.orb.core import Orb
from repro.orb.idl import InterfaceDef, Operation, Parameter
from repro.orb.transport import InProcDomain
from repro.orb.cdr import Double, String, ULong

from conftest import save_json, save_result

SENDERS = 10_000               # logical senders per storm round
STORM_ROUNDS = 4
CDR_RECORDS = 512
CDR_CHUNK_BYTES = 64 * 1024
TCP_THREADS = 8
TCP_CALLS_PER_THREAD = 50
TCP_ONEWAYS = 20_000
TCP_FLUSH_EVERY = 1_000
TCP_DRAIN_TIMEOUT_S = 30.0
BEST_OF = 3

SINK_INTERFACE = InterfaceDef("BenchSink", [
    Operation("report", (
        Parameter("node", String),
        Parameter("seq", ULong),
        Parameter("load", Double),
    ), oneway=True),
])

ECHO_INTERFACE = InterfaceDef("BenchEcho", [
    Operation("echo", (Parameter("text", String),), returns=String),
])


class _Sink:
    def report(self, node, seq, load):
        pass


class _Echo:
    def echo(self, text):
        return text


# -- oneway storm ------------------------------------------------------------

def measure_storm(mode: str, rounds: int = STORM_ROUNDS) -> dict:
    """Drive the oneway storm in one mode; returns its metric row.

    The digest folds in every dispatched call's key, operation, and
    argument tuple *in dispatch order*, so two modes with equal digests
    delivered the same calls in the same order.
    """
    batch = mode == "batched"
    domain = InProcDomain()
    server_orb = Orb("sink-orb", domain=domain, batch_oneway=batch)
    client_orb = Orb("storm-orb", domain=domain, batch_oneway=batch)
    digest = hashlib.sha256()

    def interceptor(key, operation, args):
        digest.update(f"{key}|{operation.name}|{args!r}".encode())

    server_orb.add_server_interceptor(interceptor)
    ref = server_orb.activate(_Sink(), SINK_INTERFACE, key="bench/sink")
    stub = client_orb.stub(ref, SINK_INTERFACE)
    try:
        report = stub.report
        start = time.perf_counter()
        for r in range(rounds):
            base = float(r)
            for i in range(SENDERS):
                report(f"n{i:05}", r, base + (i % 10) * 0.01)
            client_orb.flush()   # the grid's event-boundary flush
        elapsed = time.perf_counter() - start
        calls = rounds * SENDERS
        assert server_orb.requests_handled == calls
        return {
            "mode": mode,
            "rounds": rounds,
            "calls": calls,
            "frames": server_orb.inproc_stats().requests_received,
            "batch_calls": client_orb.batch_calls,
            "batch_frames": client_orb.batch_frames,
            "bytes_saved": client_orb.batch_bytes_saved,
            "wire_bytes": server_orb.stats()["bytes_received"],
            "calls_per_wall_s": round(calls / elapsed, 1),
            "wall_s": round(elapsed, 4),
            "digest": digest.hexdigest(),
        }
    finally:
        server_orb.shutdown()
        client_orb.shutdown()


# -- CDR plane ---------------------------------------------------------------

_CHUNK_FILL = bytes(range(256)) * (CDR_CHUNK_BYTES // 256)


def _chunk_buffer() -> bytes:
    """One buffer of CDR_RECORDS chunk-shaped records."""
    enc = CdrEncoder()
    for i in range(CDR_RECORDS):
        enc.write_string(f"task-{i:04}")
        enc.write_ulong(i)
        enc.write_octets(_CHUNK_FILL)
    return enc.getvalue()


def _decode_all(buf: bytes, zero_copy: bool) -> int:
    dec = CdrDecoder(buf, zero_copy=zero_copy)
    total = 0
    for _ in range(CDR_RECORDS):
        dec.read_string()
        dec.read_ulong()
        total += len(dec.read_octets())
    return total


def measure_cdr() -> dict:
    """Best-of decode and encode throughput, seed vs zero-copy/pooled."""
    buf = _chunk_buffer()
    # Equivalence: both decoders yield content-identical records.
    seed_dec = CdrDecoder(buf)
    zc_dec = CdrDecoder(buf, zero_copy=True)
    for _ in range(CDR_RECORDS):
        assert seed_dec.read_string() == zc_dec.read_string()
        assert seed_dec.read_ulong() == zc_dec.read_ulong()
        assert seed_dec.read_octets() == bytes(zc_dec.read_octets())

    rates = {"seed": 0.0, "zero_copy": 0.0}
    for _ in range(BEST_OF):
        for label, zero_copy in (("seed", False), ("zero_copy", True)):
            start = time.perf_counter()
            total = _decode_all(buf, zero_copy)
            elapsed = time.perf_counter() - start
            assert total == CDR_RECORDS * CDR_CHUNK_BYTES
            rates[label] = max(rates[label], CDR_RECORDS / elapsed)

    def encode_round(pooled: bool) -> bytes:
        last = b""
        for i in range(CDR_RECORDS):
            enc = acquire_encoder() if pooled else CdrEncoder()
            enc.write_string(f"task-{i:04}")
            enc.write_ulong(i)
            enc.write_octets(_CHUNK_FILL)
            last = enc.getvalue()
            if pooled:
                release_encoder(enc)
        return last

    assert encode_round(False) == encode_round(True)
    enc_rates = {"fresh": 0.0, "pooled": 0.0}
    for _ in range(BEST_OF):
        for label, pooled in (("fresh", False), ("pooled", True)):
            start = time.perf_counter()
            encode_round(pooled)
            elapsed = time.perf_counter() - start
            enc_rates[label] = max(enc_rates[label], CDR_RECORDS / elapsed)
    return {
        "records": CDR_RECORDS,
        "chunk_bytes": CDR_CHUNK_BYTES,
        "decode_seed_records_per_s": round(rates["seed"], 1),
        "decode_zero_copy_records_per_s": round(rates["zero_copy"], 1),
        "decode_speedup": round(rates["zero_copy"] / rates["seed"], 2),
        "encode_fresh_records_per_s": round(enc_rates["fresh"], 1),
        "encode_pooled_records_per_s": round(enc_rates["pooled"], 1),
    }


# -- pipelined TCP -----------------------------------------------------------

def _tcp_pair(pipelined: bool, batch: bool) -> tuple:
    """Server + client ORB joined only by a real TCP socket.

    Separate in-proc domains force the client's route onto TCP (the
    servant's in-proc endpoint is not resolvable from the client's
    domain, exactly like two separate processes).
    """
    server_orb = Orb("tcp-server", domain=InProcDomain(), tcp=True,
                     tcp_pipelined=pipelined, batch_oneway=batch)
    client_orb = Orb("tcp-client", domain=InProcDomain(), tcp=True,
                     tcp_pipelined=pipelined, batch_oneway=batch)
    return server_orb, client_orb


def measure_tcp_oneway(mode: str) -> dict:
    """Oneway delivery over TCP: per-call frames vs negotiated batches."""
    batch = mode == "pipelined+batched"
    pipelined = mode != "legacy"
    server_orb, client_orb = _tcp_pair(pipelined, batch)
    digest = hashlib.sha256()

    def interceptor(key, operation, args):
        digest.update(f"{key}|{operation.name}|{args!r}".encode())

    server_orb.add_server_interceptor(interceptor)
    ref = server_orb.activate(_Sink(), SINK_INTERFACE, key="bench/sink")
    stub = client_orb.stub(ref, SINK_INTERFACE)
    try:
        report = stub.report
        start = time.perf_counter()
        for i in range(TCP_ONEWAYS):
            report(f"n{i % 100:03}", i, 0.5)
            if batch and (i + 1) % TCP_FLUSH_EVERY == 0:
                client_orb.flush()
        if batch:
            client_orb.flush()
        # Oneways are asynchronous on the wire: wall time covers actual
        # delivery, polled on the server's dispatch counter.
        deadline = time.monotonic() + TCP_DRAIN_TIMEOUT_S
        while (server_orb.requests_handled < TCP_ONEWAYS
               and time.monotonic() < deadline):
            time.sleep(0.002)
        elapsed = time.perf_counter() - start
        assert server_orb.requests_handled == TCP_ONEWAYS
        return {
            "mode": mode,
            "calls": TCP_ONEWAYS,
            "frames": server_orb.stats()["requests_received"],
            "calls_per_wall_s": round(TCP_ONEWAYS / elapsed, 1),
            "wall_s": round(elapsed, 4),
            "digest": digest.hexdigest(),
        }
    finally:
        client_orb.shutdown()
        server_orb.shutdown()


def measure_tcp_twoway(pipelined: bool) -> dict:
    """Threaded two-way calls over one real TCP connection."""
    server_orb, client_orb = _tcp_pair(pipelined, batch=False)
    ref = server_orb.activate(_Echo(), ECHO_INTERFACE, key="bench/echo")
    stub = client_orb.stub(ref, ECHO_INTERFACE)
    errors: list = []

    def worker(tid: int) -> None:
        try:
            for i in range(TCP_CALLS_PER_THREAD):
                text = f"t{tid}-{i}"
                if stub.echo(text) != text:
                    raise AssertionError("echo mismatch")
        except Exception as exc:   # surfaced after join
            errors.append(exc)

    try:
        stub.echo("warm-up")   # connection + (maybe) negotiation
        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(TCP_THREADS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        calls = TCP_THREADS * TCP_CALLS_PER_THREAD
        return {
            "mode": "pipelined" if pipelined else "legacy",
            "threads": TCP_THREADS,
            "calls": calls,
            "calls_per_wall_s": round(calls / elapsed, 1),
            "wall_s": round(elapsed, 4),
        }
    finally:
        client_orb.shutdown()
        server_orb.shutdown()


# -- harness -----------------------------------------------------------------

def run_experiment():
    storm_table = Table(
        ["mode", "calls", "frames", "KB on wire", "calls/s (wall)"],
        title=f"S6a: {SENDERS}-sender oneway storm, {STORM_ROUNDS} rounds",
    )
    storm_rows = [measure_storm(mode) for mode in ("per-call", "batched")]
    for row in storm_rows:
        storm_table.add_row(
            row["mode"], f"{row['calls']:,}", f"{row['frames']:,}",
            f"{row['wire_bytes'] / 1024.0:,.0f}",
            f"{row['calls_per_wall_s']:,.0f}",
        )
    cdr_row = measure_cdr()
    cdr_table = Table(
        ["plane", "seed rec/s", "optimized rec/s", "speedup"],
        title=f"S6b: CDR {CDR_CHUNK_BYTES // 1024} KiB chunk records",
    )
    cdr_table.add_row(
        "decode", f"{cdr_row['decode_seed_records_per_s']:,.0f}",
        f"{cdr_row['decode_zero_copy_records_per_s']:,.0f}",
        f"{cdr_row['decode_speedup']:.1f}x",
    )
    enc_speedup = (cdr_row["encode_pooled_records_per_s"]
                   / cdr_row["encode_fresh_records_per_s"])
    cdr_table.add_row(
        "encode", f"{cdr_row['encode_fresh_records_per_s']:,.0f}",
        f"{cdr_row['encode_pooled_records_per_s']:,.0f}",
        f"{enc_speedup:.1f}x",
    )
    tcp_table = Table(
        ["mode", "calls", "frames", "msgs/s (wall)"],
        title="S6c: oneway delivery over one TCP connection",
    )
    tcp_rows = [
        measure_tcp_oneway(mode)
        for mode in ("legacy", "pipelined", "pipelined+batched")
    ]
    for row in tcp_rows:
        tcp_table.add_row(
            row["mode"], f"{row['calls']:,}", f"{row['frames']:,}",
            f"{row['calls_per_wall_s']:,.0f}",
        )
    twoway_table = Table(
        ["mode", "threads", "calls", "calls/s (wall)"],
        title="S6d: threaded two-way calls over one TCP connection",
    )
    twoway_rows = [measure_tcp_twoway(pipelined) for pipelined in (False, True)]
    for row in twoway_rows:
        twoway_table.add_row(
            row["mode"], row["threads"], row["calls"],
            f"{row['calls_per_wall_s']:,.0f}",
        )
    tables = (storm_table, cdr_table, tcp_table, twoway_table)
    return tables, storm_rows, cdr_row, tcp_rows, twoway_rows


def _storm_row(rows, mode):
    return next(r for r in rows if r["mode"] == mode)


def test_s6_comm_plane(benchmark):
    tables, storm_rows, cdr_row, tcp_rows, twoway_rows = \
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_result(
        "s6_comm_plane",
        "\n\n".join(table.render() for table in tables),
    )
    save_json("S6", {
        "experiment": "s6_comm_plane",
        "senders": SENDERS,
        "storm_rounds": STORM_ROUNDS,
        "storm_rows": storm_rows,
        "cdr": cdr_row,
        "tcp_oneway_rows": tcp_rows,
        "tcp_twoway_rows": twoway_rows,
    })
    seed = _storm_row(storm_rows, "per-call")
    batched = _storm_row(storm_rows, "batched")
    # Identical delivery (content and order), proven by the server-side
    # digest, with every logical call dispatched in both modes...
    assert seed["digest"] == batched["digest"]
    assert seed["calls"] == batched["calls"]
    assert seed["frames"] == seed["calls"]
    # ...but the batched wire carries one frame per flush, not per call
    # (each round's queue stays under the early-flush byte cap).
    assert batched["frames"] == STORM_ROUNDS
    assert batched["batch_calls"] == batched["calls"]
    assert seed["frames"] / batched["frames"] >= 5.0
    assert batched["bytes_saved"] > 0
    # Zero-copy decode is the headline CDR gate; pooled encode must at
    # minimum not regress.
    assert cdr_row["decode_speedup"] >= 2.0
    assert (cdr_row["encode_pooled_records_per_s"]
            >= 0.7 * cdr_row["encode_fresh_records_per_s"])
    # Over the real socket, every mode delivers the same calls in the
    # same order (server-side digest), legacy pays one frame per call,
    # and negotiated batching collapses frames by the flush interval.
    legacy = next(r for r in tcp_rows if r["mode"] == "legacy")
    piped = next(r for r in tcp_rows if r["mode"] == "pipelined")
    piped_batch = next(
        r for r in tcp_rows if r["mode"] == "pipelined+batched")
    assert legacy["digest"] == piped["digest"] == piped_batch["digest"]
    assert legacy["frames"] == TCP_ONEWAYS
    assert piped_batch["frames"] == TCP_ONEWAYS // TCP_FLUSH_EVERY
    assert legacy["frames"] / piped_batch["frames"] >= 5.0
    # Both TCP framings completed every threaded two-way call
    # (throughput is reported, not gated: loopback timings are noisy).
    for row in twoway_rows:
        assert row["calls"] == TCP_THREADS * TCP_CALLS_PER_THREAD
