"""E3 — LUPA usage-pattern learning and idle prediction.

The paper: 5-minute samples are grouped into periods, clustered, and
the resulting categories "map to common usage periods such as
lunch-breaks, nights, holidays, working periods" enabling the scheduler
"to forecast if an idle machine will stay idle".  Train LUPAs on 1-6
weeks of synthetic owner traces and score, on a held-out week:

* busy-probability MAE against the profile's true presence curve, and
* idle-span forecast accuracy: at each probe hour, does "will the node
  stay idle for the next 2 h?" (threshold 0.5) match what the actual
  trace then does?

Expected shape: error falls with training weeks for structured owners
(office, lab, night-owl) and stays at chance for the erratic one.

The JSON payload (``--bench-json``) additionally records the learning
cost per run — cumulative learn-pass wall time and full-vs-incremental
relearn counts — plus a paired run with ``relearn_interval=7`` showing
that the incremental path skips most clustering passes without moving
prediction quality.
"""

import random

from repro.analysis.metrics import Table
from repro.core.lupa import Lupa
from repro.sim.clock import SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import ERRATIC, NIGHT_OWL, OFFICE_WORKER, PROFILES, STUDENT_LAB
from repro.sim.workstation import Workstation

from conftest import run_once, save_json, save_result

PROBE_SPAN_S = 2 * SECONDS_PER_HOUR


def train(profile, weeks, seed, relearn_interval=1):
    loop = EventLoop()
    workstation = Workstation(
        loop, profile.name, spec=MachineSpec(), profile=profile,
        rng=random.Random(seed),
    )
    machine = workstation.machine
    lupa = Lupa(
        loop, profile.name,
        probe=lambda: 1.0 if (
            machine.keyboard_active or machine.owner_cpu >= 0.1
        ) else 0.0,
        min_history_days=7,
        relearn_interval=relearn_interval,
    )
    loop.run_until(weeks * SECONDS_PER_WEEK)
    return loop, workstation, lupa


def evaluate(profile, weeks, seed=13, relearn_interval=1):
    loop, workstation, lupa = train(
        profile, weeks, seed, relearn_interval=relearn_interval
    )
    if not lupa.learned:
        return None
    # Held-out week: walk span by span; score against the *realized*
    # trace (not the generating distribution — that would flatter
    # unpredictable owners whose mean is flat but whose behaviour is not).
    mae_sum, mae_n = 0.0, 0
    span_hits, span_total, idle_forecasts = 0, 0, 0
    start = loop.now
    while loop.now < start + SECONDS_PER_WEEK - PROBE_SPAN_S:
        probe_at = loop.now
        predicted_busy = lupa.predict_busy(probe_at)
        realized = 1.0 if workstation.owner_present else 0.0
        mae_sum += abs(predicted_busy - realized)
        mae_n += 1
        forecast_idle = lupa.idle_probability(probe_at, PROBE_SPAN_S) >= 0.5
        idle_forecasts += forecast_idle
        # Watch what actually happens over the span.
        interrupted = workstation.owner_present
        target = probe_at + PROBE_SPAN_S
        while loop.now < target:
            loop.run_for(lupa.sample_interval)
            if workstation.owner_present:
                interrupted = True
        span_hits += forecast_idle == (not interrupted)
        span_total += 1
    return {
        "mae": mae_sum / mae_n,
        "span_accuracy": span_hits / span_total,
        "idle_forecast_fraction": idle_forecasts / span_total,
        "learn_wall_s": lupa.learn_wall_s,
        "full_relearns": lupa.full_relearns,
        "incremental_updates": lupa.incremental_updates,
    }


def run_experiment():
    table = Table(
        ["profile", "training weeks", "busy MAE (realized)",
         "2h span accuracy", "spans forecast idle"],
        title="E3: LUPA prediction quality vs training history",
    )
    json_rows = []
    for profile in (OFFICE_WORKER, STUDENT_LAB, NIGHT_OWL, ERRATIC):
        for weeks in (1, 2, 4):
            scores = evaluate(profile, weeks)
            if scores is None:
                table.add_row(profile.name, weeks, "n/a", "n/a", "n/a")
                continue
            table.add_row(
                profile.name, weeks, scores["mae"],
                scores["span_accuracy"], scores["idle_forecast_fraction"],
            )
            json_rows.append({
                "profile": profile.name,
                "weeks": weeks,
                "relearn_interval": 1,
                **scores,
            })
    # Paired incremental-learning run: weekly re-clustering instead of
    # daily should cut full relearns without moving prediction quality.
    incremental = evaluate(OFFICE_WORKER, 4, relearn_interval=7)
    json_rows.append({
        "profile": OFFICE_WORKER.name,
        "weeks": 4,
        "relearn_interval": 7,
        **incremental,
    })
    return table, json_rows


def test_e3_lupa_prediction(benchmark):
    table, json_rows = run_once(benchmark, run_experiment)
    save_result("e3_lupa_prediction", table.render(), table=table)
    save_json("E3", {"experiment": "e3_lupa_prediction", "rows": json_rows})
    daily = next(
        r for r in json_rows
        if r["profile"] == "office_worker" and r["weeks"] == 4
        and r["relearn_interval"] == 1
    )
    weekly = next(
        r for r in json_rows
        if r["profile"] == "office_worker" and r["weeks"] == 4
        and r["relearn_interval"] == 7
    )
    # Incremental learning replaces most clustering passes...
    assert weekly["full_relearns"] < daily["full_relearns"]
    assert weekly["incremental_updates"] > 0
    # ...without hurting prediction quality.
    assert abs(weekly["mae"] - daily["mae"]) < 0.10
    rows = {(r[0], r[1]): r for r in table.rows}
    # Structured owners are predictable after 4 weeks...
    for name in ("office_worker", "night_owl"):
        assert float(rows[(name, "4")][2]) < 0.30
        assert float(rows[(name, "4")][3]) > 0.7
    # ...the erratic owner is not (realized-trace error near chance).
    assert float(rows[("erratic", "4")][2]) > \
        float(rows[("office_worker", "4")][2])
    # Structured owners actually yield usable idle slots.
    assert float(rows[("office_worker", "4")][4]) > 0.3
    assert float(rows[("erratic", "4")][4]) < 0.1
