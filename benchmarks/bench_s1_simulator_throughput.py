"""S1 — substrate throughput (infrastructure benchmark, not a paper
experiment).

How much simulated grid a second of wall clock buys, as a function of
cluster size — the number that decides what experiment scales are
practical.  pytest-benchmark times one simulated hour of a fully wired
cluster (owners, LRMs, updates, LUPA sampling all active).

The scaling test also records wall-clock events/s per cluster size into
``BENCH_S1.json`` (with ``--bench-json``); each row is best-of-N to ride
out machine noise, and the committed file is the CI perf baseline.
"""

import time

from repro import Grid
from repro.analysis.metrics import Table
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.usage import OFFICE_WORKER

from conftest import save_json, save_result

SCALING_NODES = (8, 32, 128)
BEST_OF = 3


def build(nodes, seed=1):
    grid = Grid(seed=seed, policy="pattern_aware", lupa_enabled=True,
                update_interval=60.0, tick_interval=30.0)
    grid.add_cluster("c0")
    for i in range(nodes):
        grid.add_node("c0", f"n{i:03}", profile=OFFICE_WORKER,
                      sharing=VACATE_POLICY)
    grid.run_for(60)
    return grid


def simulate_one_hour(grid):
    grid.run_for(SECONDS_PER_HOUR)
    return grid.loop.events_fired


def measure_hour(nodes, best_of=BEST_OF):
    """(events in one simulated hour, best wall events/s over best_of runs)."""
    events = 0
    best_rate = 0.0
    grid = build(nodes)
    for _ in range(best_of):
        before = grid.loop.events_fired
        start = time.perf_counter()
        grid.run_for(SECONDS_PER_HOUR)
        elapsed = time.perf_counter() - start
        events = grid.loop.events_fired - before
        best_rate = max(best_rate, events / elapsed)
    return events, best_rate


def test_s1_throughput_16_nodes(benchmark):
    grid = build(16)
    events = benchmark.pedantic(
        simulate_one_hour, args=(grid,), rounds=3, iterations=1
    )
    assert events > 0


def test_s1_throughput_64_nodes(benchmark):
    grid = build(64)
    events = benchmark.pedantic(
        simulate_one_hour, args=(grid,), rounds=3, iterations=1
    )
    assert events > 0


def test_s1_events_scaling(benchmark):
    """Event volume per simulated hour scales linearly with nodes."""
    def measure():
        table = Table(
            ["nodes", "events per simulated hour", "events/s (wall)"],
            title="S1: event volume per simulated hour (fully wired nodes)",
        )
        volumes = {}
        rates = {}
        for nodes in SCALING_NODES:
            volumes[nodes], rates[nodes] = measure_hour(nodes)
            table.add_row(nodes, volumes[nodes], f"{rates[nodes]:,.0f}")
        return table, volumes, rates

    table, volumes, rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_result("s1_simulator_throughput", table.render(), table=table)
    save_json("S1", {
        "experiment": "s1_simulator_throughput",
        "best_of": BEST_OF,
        "rows": [
            {
                "nodes": nodes,
                "events_per_sim_hour": volumes[nodes],
                "events_per_wall_s": round(rates[nodes], 1),
            }
            for nodes in SCALING_NODES
        ],
    })
    ratio = volumes[32] / volumes[8]
    assert 3.0 < ratio < 5.0   # ~linear in node count
    # The 128-node row must complete and stay roughly linear too.
    assert 3.0 < volumes[128] / volumes[32] < 5.0
