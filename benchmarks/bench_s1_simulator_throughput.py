"""S1 — substrate throughput (infrastructure benchmark, not a paper
experiment).

How much simulated grid a second of wall clock buys, as a function of
cluster size — the number that decides what experiment scales are
practical.  pytest-benchmark times one simulated hour of a fully wired
cluster (owners, LRMs, updates, LUPA sampling all active).
"""

from repro import Grid
from repro.analysis.metrics import Table
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.usage import OFFICE_WORKER

from conftest import save_result


def build(nodes, seed=1):
    grid = Grid(seed=seed, policy="pattern_aware", lupa_enabled=True,
                update_interval=60.0, tick_interval=30.0)
    grid.add_cluster("c0")
    for i in range(nodes):
        grid.add_node("c0", f"n{i:03}", profile=OFFICE_WORKER,
                      sharing=VACATE_POLICY)
    grid.run_for(60)
    return grid


def simulate_one_hour(grid):
    grid.run_for(SECONDS_PER_HOUR)
    return grid.loop.events_fired


def test_s1_throughput_16_nodes(benchmark):
    grid = build(16)
    events = benchmark.pedantic(
        simulate_one_hour, args=(grid,), rounds=3, iterations=1
    )
    assert events > 0


def test_s1_throughput_64_nodes(benchmark):
    grid = build(64)
    events = benchmark.pedantic(
        simulate_one_hour, args=(grid,), rounds=3, iterations=1
    )
    assert events > 0


def test_s1_events_scaling(benchmark):
    """Event volume per simulated hour scales linearly with nodes."""
    def measure():
        table = Table(
            ["nodes", "events per simulated hour"],
            title="S1: event volume per simulated hour (fully wired nodes)",
        )
        volumes = {}
        for nodes in (8, 32):
            grid = build(nodes)
            before = grid.loop.events_fired
            grid.run_for(SECONDS_PER_HOUR)
            volumes[nodes] = grid.loop.events_fired - before
            table.add_row(nodes, volumes[nodes])
        return table, volumes

    table, volumes = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_result("s1_simulator_throughput", table.render())
    ratio = volumes[32] / volumes[8]
    assert 3.0 < ratio < 5.0   # ~linear in node count
