"""CI perf smoke: remeasure the committed baselines, fail on a cliff.

Remeasures the 32-node S1 simulator throughput, the 1000-offer indexed
trader query rate, the 1024-node S2 pattern-aware ranking rate, the
10k-node S3 information-plane run, the 1024-process S4
execution-plane run, the 256-cluster S5 wide-area run, and the S6
oneway-storm / CDR communication-plane run (reusing the benchmark
modules' own builders, so the measured workload cannot drift from what
produced the baseline), then compares against the committed
``BENCH_S1.json`` / ``BENCH_E11.json`` / ``BENCH_S2.json`` /
``BENCH_S3.json`` / ``BENCH_S4.json`` / ``BENCH_S5.json`` /
``BENCH_S6.json``.  A drop of more than ``TOLERANCE`` fails the
build; S3 and S4 additionally enforce absolute headline ratios (>= 5x
plane cost and >= 3x bytes on the wire for S3; >= 3x checkpoint bytes
down and exactly O(peers) ORB calls for S4), S5 enforces >= 5x
submit-path cost down, >= 3x uplink bytes down, and bit-identical
placements between the seed scan and the indexed fast path, and S6
enforces >= 5x frame reduction with a bit-identical dispatch digest
plus >= 2x zero-copy CDR decode throughput.

The 30 % margin absorbs runner-to-runner noise; the regressions this
guards against — losing an index, falling off a compiled path, an
accidentally quadratic event loop — are 2–6× cliffs, not 30 %.

Run from the repo root:  PYTHONPATH=src python benchmarks/perf_smoke.py
"""

import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, BENCH_DIR)

from bench_e11_orb import (          # noqa: E402
    TRADER_CONSTRAINT,
    TRADER_PREFERENCE,
    _best_rate,
    build_trader,
)
from bench_s1_simulator_throughput import build, measure_hour  # noqa: E402
from bench_s3_information_plane import measure_mode  # noqa: E402
from bench_s4_execution_plane import (  # noqa: E402
    DEGREE,
    MSGS_PER_PEER,
    SUPERSTEPS,
    drive_comm,
    measure_checkpoint_plane,
)
from bench_s5_wide_area import measure_wide_area  # noqa: E402
from bench_s6_comm_plane import measure_cdr, measure_storm  # noqa: E402
from bench_s2_scheduler_throughput import (  # noqa: E402
    _best_pass_s,
    build_workload,
    make_ctx,
)
from repro.core.scheduler import PatternAwarePolicy  # noqa: E402

from conftest import load_json       # noqa: E402

TOLERANCE = 0.30
#: Always-on metrics must cost no more than this fraction of S1
#: throughput.  The registry is views-only on the S1 path (evaluated at
#: snapshot time, never per event), so the real cost is ~0; the gate
#: catches someone accidentally putting allocation or formatting onto
#: the hot path.
METRICS_TOLERANCE = 0.05
#: The event journal with all emitters live must also cost no more than
#: this fraction of S1 throughput.  Journal records are a handful of
#: attribute stores behind one guard check; the gate catches anyone
#: putting per-event formatting or unbounded growth onto the hot path.
JOURNAL_TOLERANCE = 0.05


def measure_metrics_overhead(nodes=32, best_of=3):
    """Best events/s for one simulated hour: plain vs metrics enabled.

    The two grids are measured interleaved, round by round, so machine
    drift during the run biases both configurations equally; best-of
    rides out transient noise the same way ``measure_hour`` does.
    """
    import time

    from repro.sim.clock import SECONDS_PER_HOUR

    plain = build(nodes)
    metered = build(nodes)
    registry = metered.enable_metrics()
    assert metered.tracer is None, "tracing must stay opt-in"
    best = {"plain": 0.0, "metered": 0.0}
    for _ in range(best_of):
        for label, grid in (("plain", plain), ("metered", metered)):
            before = grid.loop.events_fired
            start = time.perf_counter()
            grid.run_for(SECONDS_PER_HOUR)
            elapsed = time.perf_counter() - start
            rate = (grid.loop.events_fired - before) / elapsed
            best[label] = max(best[label], rate)
    # The registry really was live the whole time.
    assert registry.snapshot()["metrics"]["eventloop.events_fired"] > 0
    return best["plain"], best["metered"]


def measure_journal_overhead(nodes=32, best_of=3):
    """Best events/s for one simulated hour: plain vs journal enabled.

    Interleaved rounds, same protocol as :func:`measure_metrics_overhead`
    — machine drift biases both configurations equally.
    """
    import time

    from repro.sim.clock import SECONDS_PER_HOUR

    plain = build(nodes)
    journalled = build(nodes)
    journal = journalled.enable_journal()
    assert journalled.metrics is None, "metrics must stay opt-in"
    best = {"plain": 0.0, "journalled": 0.0}
    for _ in range(best_of):
        for label, grid in (("plain", plain), ("journalled", journalled)):
            before = grid.loop.events_fired
            start = time.perf_counter()
            grid.run_for(SECONDS_PER_HOUR)
            elapsed = time.perf_counter() - start
            rate = (grid.loop.events_fired - before) / elapsed
            best[label] = max(best[label], rate)
    # The journal really was live (node registrations at minimum).
    assert journal.recorded > 0
    return best["plain"], best["journalled"]


def check(name, measured, baseline):
    floor = baseline * (1.0 - TOLERANCE)
    ok = measured >= floor
    verdict = "ok" if ok else "REGRESSION"
    print(f"{name}: measured {measured:,.0f}/s, baseline {baseline:,.0f}/s, "
          f"floor {floor:,.0f}/s -> {verdict}")
    return ok


def main():
    failures = 0

    s1 = load_json("S1")
    if s1 is None:
        print("no BENCH_S1.json baseline committed; skipping S1 smoke")
    else:
        baseline = next(
            row["events_per_wall_s"] for row in s1["rows"]
            if row["nodes"] == 32
        )
        _, rate = measure_hour(32, best_of=3)
        failures += not check("S1 events (32 nodes)", rate, baseline)

    e11 = load_json("E11")
    if e11 is None:
        print("no BENCH_E11.json baseline committed; skipping E11 smoke")
    else:
        svc = build_trader(e11["trader_offers"])
        args = ("node", TRADER_CONSTRAINT, TRADER_PREFERENCE, 10)
        qps = _best_rate(lambda: svc.query(*args))
        failures += not check(
            "E11 trader queries", qps, e11["trader_indexed_queries_per_s"]
        )

    s2 = load_json("S2")
    if s2 is None:
        print("no BENCH_S2.json baseline committed; skipping S2 smoke")
    else:
        baseline = next(
            row["offers_ranked_per_s"] for row in s2["rows"]
            if row["nodes"] == 1024 and row["policy"] == "pattern_aware"
        )
        gupa, offers = build_workload(1024)
        policy = PatternAwarePolicy()
        pass_s = _best_pass_s(lambda: policy.order(offers, make_ctx(gupa)))
        failures += not check(
            "S2 pattern-aware ranking (1024 nodes)", 1024 / pass_s, baseline
        )

    s3 = load_json("S3")
    if s3 is None:
        print("no BENCH_S3.json baseline committed; skipping S3 smoke")
    else:
        full = measure_mode(10_000, "full")
        delta = measure_mode(10_000, "delta")
        fast = measure_mode(10_000, "delta+fast")
        baseline = next(
            row["updates_per_wall_s"] for row in s3["rows"]
            if row["nodes"] == 10_000 and row["mode"] == "delta+fast"
        )
        failures += not check(
            "S3 delta+fast ingest (10k nodes)",
            fast["updates_per_wall_s"], baseline,
        )
        # Absolute headline gates, not baseline-relative: the scaled
        # information plane must stay >= 5x cheaper end to end and the
        # delta wire format >= 3x smaller than full snapshots.
        cost_ratio = full["plane_cost_s"] / fast["plane_cost_s"]
        ok = cost_ratio >= 5.0
        verdict = "ok" if ok else "REGRESSION"
        print(f"S3 plane-cost reduction (10k nodes): "
              f"{cost_ratio:.1f}x (floor 5.0x) -> {verdict}")
        failures += not ok
        bytes_ratio = full["wire_bytes"] / delta["wire_bytes"]
        ok = bytes_ratio >= 3.0
        verdict = "ok" if ok else "REGRESSION"
        print(f"S3 bytes-on-wire reduction (10k nodes): "
              f"{bytes_ratio:.1f}x (floor 3.0x) -> {verdict}")
        failures += not ok

    s4 = load_json("S4")
    if s4 is None:
        print("no BENCH_S4.json baseline committed; skipping S4 smoke")
    else:
        full = measure_checkpoint_plane(1024, 0.10, "full")
        chunked = measure_checkpoint_plane(1024, 0.10, "chunked")
        baseline = next(
            row["saves_per_wall_s"] for row in s4["checkpoint_rows"]
            if row["nprocs"] == 1024 and row["mutation_rate"] == 0.10
            and row["mode"] == "chunked"
        )
        failures += not check(
            "S4 chunked checkpoint saves (1024 procs, 10% mutation)",
            chunked["saves_per_wall_s"], baseline,
        )
        # Absolute headline gates: incremental checkpointing must keep
        # cutting bytes >= 3x at 1024 processes / 10% mutation, and
        # combining must hold ORB calls at exactly O(peers).
        bytes_ratio = full["bytes_written"] / chunked["bytes_written"]
        ok = bytes_ratio >= 3.0
        verdict = "ok" if ok else "REGRESSION"
        print(f"S4 checkpoint-bytes reduction (1024 procs, 10% mutation): "
              f"{bytes_ratio:.1f}x (floor 3.0x) -> {verdict}")
        failures += not ok
        comb = drive_comm(1024, combining=True)
        expected_calls = SUPERSTEPS * 1024 * DEGREE
        ok = comb["orb_calls"] == expected_calls
        verdict = "ok" if ok else "REGRESSION"
        print(f"S4 combining ORB calls (1024 procs): "
              f"{comb['orb_calls']:,} (expected exactly {expected_calls:,}, "
              f"= {MSGS_PER_PEER}x fewer than per-message) -> {verdict}")
        failures += not ok

    s5 = load_json("S5")
    if s5 is None:
        print("no BENCH_S5.json baseline committed; skipping S5 smoke")
    else:
        seed = measure_wide_area(256, "seed")
        indexed = measure_wide_area(256, "indexed")
        delta = measure_wide_area(256, "indexed+delta")
        baseline = next(
            row["submits_per_wall_s"] for row in s5["rows"]
            if row["clusters"] == 256 and row["mode"] == "indexed"
        )
        failures += not check(
            "S5 indexed wide-area submits (256 clusters)",
            indexed["submits_per_wall_s"], baseline,
        )
        # Absolute headline gates: the indexed placement path must stay
        # >= 5x cheaper than the seed scan+sort, delta uplinks must keep
        # >= 3x bytes off the federation wire, and the index must place
        # jobs exactly where the seed ranking would.
        cost_ratio = seed["submit_cost_s"] / indexed["submit_cost_s"]
        ok = cost_ratio >= 5.0
        verdict = "ok" if ok else "REGRESSION"
        print(f"S5 submit-cost reduction (256 clusters): "
              f"{cost_ratio:.1f}x (floor 5.0x) -> {verdict}")
        failures += not ok
        bytes_ratio = seed["uplink_bytes"] / delta["uplink_bytes"]
        ok = bytes_ratio >= 3.0
        verdict = "ok" if ok else "REGRESSION"
        print(f"S5 uplink-bytes reduction (256 clusters): "
              f"{bytes_ratio:.1f}x (floor 3.0x) -> {verdict}")
        failures += not ok
        ok = (seed["placements_digest"] == indexed["placements_digest"]
              and indexed["oracle_mismatches"] == 0
              and delta["oracle_mismatches"] == 0)
        verdict = "ok" if ok else "REGRESSION"
        print(f"S5 placement equivalence (256 clusters): "
              f"seed==indexed digest and 0 oracle mismatches -> {verdict}")
        failures += not ok

    s6 = load_json("S6")
    if s6 is None:
        print("no BENCH_S6.json baseline committed; skipping S6 smoke")
    else:
        seed = measure_storm("per-call")
        batched = measure_storm("batched")
        baseline = next(
            row["calls_per_wall_s"] for row in s6["storm_rows"]
            if row["mode"] == "batched"
        )
        failures += not check(
            "S6 batched oneway storm", batched["calls_per_wall_s"], baseline,
        )
        # Absolute headline gates: oneway batching must keep collapsing
        # frames >= 5x while delivering the identical call stream, and
        # the zero-copy decoder must stay >= 2x the seed decoder.
        frames_ratio = seed["frames"] / batched["frames"]
        ok = frames_ratio >= 5.0 and seed["digest"] == batched["digest"]
        verdict = "ok" if ok else "REGRESSION"
        print(f"S6 frame reduction ({seed['calls']:,} oneways): "
              f"{frames_ratio:.0f}x (floor 5.0x), digests "
              f"{'equal' if seed['digest'] == batched['digest'] else 'DIFFER'}"
              f" -> {verdict}")
        failures += not ok
        cdr = measure_cdr()
        failures += not check(
            "S6 zero-copy CDR decode",
            cdr["decode_zero_copy_records_per_s"],
            s6["cdr"]["decode_zero_copy_records_per_s"],
        )
        ok = cdr["decode_speedup"] >= 2.0
        verdict = "ok" if ok else "REGRESSION"
        print(f"S6 zero-copy decode speedup (64 KiB chunk records): "
              f"{cdr['decode_speedup']:.1f}x (floor 2.0x) -> {verdict}")
        failures += not ok

    plain_rate, metered_rate = measure_metrics_overhead()
    ratio = metered_rate / plain_rate if plain_rate else 0.0
    ok = ratio >= 1.0 - METRICS_TOLERANCE
    verdict = "ok" if ok else "REGRESSION"
    print(f"S1 metrics overhead (32 nodes): plain {plain_rate:,.0f}/s, "
          f"metrics-on {metered_rate:,.0f}/s, ratio {ratio:.3f} "
          f"(floor {1.0 - METRICS_TOLERANCE:.2f}) -> {verdict}")
    failures += not ok

    plain_rate, journal_rate = measure_journal_overhead()
    ratio = journal_rate / plain_rate if plain_rate else 0.0
    ok = ratio >= 1.0 - JOURNAL_TOLERANCE
    verdict = "ok" if ok else "REGRESSION"
    print(f"S1 journal overhead (32 nodes): plain {plain_rate:,.0f}/s, "
          f"journal-on {journal_rate:,.0f}/s, ratio {ratio:.3f} "
          f"(floor {1.0 - JOURNAL_TOLERANCE:.2f}) -> {verdict}")
    failures += not ok

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
