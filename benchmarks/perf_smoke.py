"""CI perf smoke: remeasure the committed baselines, fail on a cliff.

Remeasures the 32-node S1 simulator throughput, the 1000-offer indexed
trader query rate, and the 1024-node S2 pattern-aware ranking rate
(reusing the benchmark modules' own builders, so the measured workload
cannot drift from what produced the baseline), then compares against
the committed ``BENCH_S1.json`` / ``BENCH_E11.json`` / ``BENCH_S2.json``.
A drop of more than ``TOLERANCE`` fails the build.

The 30 % margin absorbs runner-to-runner noise; the regressions this
guards against — losing an index, falling off a compiled path, an
accidentally quadratic event loop — are 2–6× cliffs, not 30 %.

Run from the repo root:  PYTHONPATH=src python benchmarks/perf_smoke.py
"""

import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, BENCH_DIR)

from bench_e11_orb import (          # noqa: E402
    TRADER_CONSTRAINT,
    TRADER_PREFERENCE,
    _best_rate,
    build_trader,
)
from bench_s1_simulator_throughput import measure_hour  # noqa: E402
from bench_s2_scheduler_throughput import (  # noqa: E402
    _best_pass_s,
    build_workload,
    make_ctx,
)
from repro.core.scheduler import PatternAwarePolicy  # noqa: E402

from conftest import load_json       # noqa: E402

TOLERANCE = 0.30


def check(name, measured, baseline):
    floor = baseline * (1.0 - TOLERANCE)
    ok = measured >= floor
    verdict = "ok" if ok else "REGRESSION"
    print(f"{name}: measured {measured:,.0f}/s, baseline {baseline:,.0f}/s, "
          f"floor {floor:,.0f}/s -> {verdict}")
    return ok


def main():
    failures = 0

    s1 = load_json("S1")
    if s1 is None:
        print("no BENCH_S1.json baseline committed; skipping S1 smoke")
    else:
        baseline = next(
            row["events_per_wall_s"] for row in s1["rows"]
            if row["nodes"] == 32
        )
        _, rate = measure_hour(32, best_of=3)
        failures += not check("S1 events (32 nodes)", rate, baseline)

    e11 = load_json("E11")
    if e11 is None:
        print("no BENCH_E11.json baseline committed; skipping E11 smoke")
    else:
        svc = build_trader(e11["trader_offers"])
        args = ("node", TRADER_CONSTRAINT, TRADER_PREFERENCE, 10)
        qps = _best_rate(lambda: svc.query(*args))
        failures += not check(
            "E11 trader queries", qps, e11["trader_indexed_queries_per_s"]
        )

    s2 = load_json("S2")
    if s2 is None:
        print("no BENCH_S2.json baseline committed; skipping S2 smoke")
    else:
        baseline = next(
            row["offers_ranked_per_s"] for row in s2["rows"]
            if row["nodes"] == 1024 and row["policy"] == "pattern_aware"
        )
        gupa, offers = build_workload(1024)
        policy = PatternAwarePolicy()
        pass_s = _best_pass_s(lambda: policy.order(offers, make_ctx(gupa)))
        failures += not check(
            "S2 pattern-aware ranking (1024 nodes)", 1024 / pass_s, baseline
        )

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
