"""A1 — ablation: negotiate-then-reserve vs trusting the hint.

The paper is explicit that the GRM's trader contents are only "a hint";
the Reservation Protocol's direct negotiation with fallback candidates
is what makes placement robust to staleness.  This ablation swaps in a
GRM that asks only its single best-ranked candidate per pass
(:class:`repro.baselines.simple.OptimisticGrm`) and measures what the
negotiation machinery is worth under stale information.  Expected
shape: with fresh hints both behave alike; with stale hints the
optimistic GRM's time-to-placement degrades much faster.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table, describe
from repro.baselines.simple import OptimisticGrm
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.usage import ERRATIC

from conftest import run_once, save_result

NODES = 8
JOBS = 20


def run_variant(update_interval, optimistic, seed=3):
    grid = Grid(
        seed=seed, policy="first_fit", lupa_enabled=False,
        update_interval=update_interval, tick_interval=60.0,
        schedule_interval=60.0,
    )
    handle = grid.add_cluster("c0")
    if optimistic:
        handle.grm.__class__ = OptimisticGrm
    for i in range(NODES):
        grid.add_node("c0", f"n{i:02}", profile=ERRATIC,
                      sharing=VACATE_POLICY)
    grid.run_for(SECONDS_PER_HOUR)

    job_ids = []
    for j in range(JOBS):
        job_ids.append(grid.submit(
            ApplicationSpec(name=f"job{j}", work_mips=1.2e6)
        ))
        grid.run_for(15 * 60)
    grid.run_for(6 * SECONDS_PER_HOUR)

    delays = []
    for job_id in job_ids:
        job = grid.job(job_id)
        for task in job.tasks:
            first_run = next(
                (e.time for e in task.history if e.state == "running"), None
            )
            if first_run is not None:
                delays.append(first_run - job.submitted_at)
    grm = grid.clusters["c0"].grm
    return {
        "placed": len(delays),
        "p50_delay_min": describe(delays)["p50"] / 60 if delays else None,
        "p95_delay_min": describe(delays)["p95"] / 60 if delays else None,
        "refusal_rate": (
            grm.stats.reservations_refused / grm.stats.negotiation_rounds
            if grm.stats.negotiation_rounds else 0.0
        ),
    }


def run_experiment():
    table = Table(
        ["update interval (s)", "GRM variant", "tasks placed",
         "p50 place (min)", "p95 place (min)", "refusal rate"],
        title=(
            "A1: negotiation protocol vs trusting the hint\n"
            f"({NODES} erratic desktops, {JOBS} jobs)"
        ),
    )
    results = {}
    for interval in (60.0, 600.0):
        for optimistic in (False, True):
            outcome = run_variant(interval, optimistic)
            results[(interval, optimistic)] = outcome
            table.add_row(
                int(interval),
                "optimistic (1 candidate)" if optimistic
                else "negotiating (paper)",
                outcome["placed"],
                outcome["p50_delay_min"],
                outcome["p95_delay_min"],
                outcome["refusal_rate"],
            )
    return table, results


def test_a1_ablation_negotiation(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("a1_ablation_negotiation", table.render(), table=table)
    # Everything is eventually placed either way...
    assert all(r["placed"] == JOBS for r in results.values())
    # ...but under stale hints, skipping negotiation fallback costs
    # placement latency.
    stale_negotiating = results[(600.0, False)]
    stale_optimistic = results[(600.0, True)]
    assert stale_optimistic["p95_delay_min"] > \
        stale_negotiating["p95_delay_min"]
