"""A2 — ablation: LUPA's clustering design choices.

The paper prescribes grouping samples into *periods* and clustering
them into behavioural categories.  Two sweeps justify the design:

* **category count k** — k = 1 collapses to a single average day (no
  weekday/weekend distinction); enough categories separate "working
  day" from "weekend day" and prediction error drops;
* **period clustering vs raw per-bin averaging** — averaging every
  sample per (weekday, bin) with no clustering is the no-structure
  strawman; clustering is competitive while also *naming* behaviour
  categories (which the raw average cannot).

Scored like E3: busy MAE against the realized held-out week.
"""

import random

import numpy as np

from repro.analysis.metrics import Table
from repro.core.lupa import Lupa
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import OFFICE_WORKER
from repro.sim.workstation import Workstation

from conftest import run_once, save_result

TRAIN_WEEKS = 4


def train(categories, seed=19):
    loop = EventLoop()
    workstation = Workstation(
        loop, "ws", spec=MachineSpec(), profile=OFFICE_WORKER,
        rng=random.Random(seed),
    )
    machine = workstation.machine
    lupa = Lupa(
        loop, "ws",
        probe=lambda: 1.0 if (
            machine.keyboard_active or machine.owner_cpu >= 0.1
        ) else 0.0,
        min_history_days=7,
        categories=categories,
    )
    loop.run_until(TRAIN_WEEKS * SECONDS_PER_WEEK)
    return loop, workstation, lupa


def raw_average_predictor(lupa):
    """The no-clustering strawman: mean activity per (weekday, bin)."""
    sums = np.zeros((7, lupa.bins_per_day))
    counts = np.zeros((7, lupa.bins_per_day))
    for dow, period in zip(lupa._period_dows, lupa._periods):
        sums[dow] += period
        counts[dow] += 1
    with np.errstate(invalid="ignore"):
        table = np.where(counts > 0, sums / counts, 0.5)

    def predict(when):
        dow = int(when // SECONDS_PER_DAY) % 7
        bin_index = int(
            (when % SECONDS_PER_DAY) // (SECONDS_PER_DAY / lupa.bins_per_day)
        )
        return float(table[dow, bin_index])

    return predict


def score(loop, workstation, predict):
    mae_sum, n = 0.0, 0
    end = loop.now + SECONDS_PER_WEEK
    while loop.now < end:
        predicted = predict(loop.now)
        realized = 1.0 if workstation.owner_present else 0.0
        mae_sum += abs(predicted - realized)
        n += 1
        loop.run_for(300.0)
    return mae_sum / n


def run_experiment():
    table = Table(
        ["predictor", "categories k", "busy MAE (held-out week)"],
        title=(
            "A2: LUPA design ablation on the office_worker profile\n"
            f"({TRAIN_WEEKS} training weeks)"
        ),
    )
    maes = {}
    for k in (1, 2, 3, 4, 6):
        loop, workstation, lupa = train(categories=k)
        mae = score(loop, workstation, lupa.predict_busy)
        maes[k] = mae
        table.add_row("period clustering (paper)", k, mae)
    loop, workstation, lupa = train(categories=3)
    raw_mae = score(loop, workstation, raw_average_predictor(lupa))
    table.add_row("raw per-bin average (no clustering)", "-", raw_mae)
    return table, maes, raw_mae


def test_a2_ablation_clustering(benchmark):
    table, maes, raw_mae = run_once(benchmark, run_experiment)
    save_result("a2_ablation_clustering", table.render(), table=table)
    # One category cannot separate weekdays from weekends.
    assert maes[1] > maes[2]
    # The paper's k=3 is within noise of the raw-average strawman while
    # additionally producing nameable behaviour categories.
    assert maes[3] < raw_mae + 0.05
