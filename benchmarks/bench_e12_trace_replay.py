"""E12 — trace-driven replay validation.

Section 5: the group "started to collect information about node's
usage" — implying experiments against *recorded* traces, not only
synthetic owners.  This experiment closes that loop:

1. record two weeks of owner activity from a mixed live pool;
2. rebuild the identical pool from the recorded traces
   (``Grid.add_trace_node``) and rerun the same scheduling workload;
3. compare: the replayed grid must reproduce the live grid's behaviour
   (same jobs complete; eviction/makespan in the same ballpark), and
   the E4 conclusion (pattern-aware beats availability-only) must
   transfer to trace-driven runs.
"""

import random

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table, describe
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.trace import TraceRecorder
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB
from repro.sim.workstation import Workstation

from conftest import run_once, save_result

PROFILES = [OFFICE_WORKER] * 5 + [STUDENT_LAB] * 2 + [NIGHT_OWL] * 2
RECORD_WEEKS = 2
JOBS = 4
WORK_MIPS = 6e6


def record_traces(seed=55):
    """Two weeks of owner activity per node, recorded off live owners."""
    loop = EventLoop()
    recorders = {}
    for i, profile in enumerate(PROFILES):
        name = f"n{i:02}"
        workstation = Workstation(
            loop, name, spec=MachineSpec(), profile=profile,
            rng=random.Random(seed + i),
        )
        recorders[name] = TraceRecorder(workstation, sample_interval=300.0)
    loop.run_until(RECORD_WEEKS * SECONDS_PER_WEEK)
    return {name: r.events for name, r in recorders.items()}


def run_workload(grid):
    grid.run_for(9 * SECONDS_PER_HOUR)   # 09:00 after the lead-in
    job_ids = [
        grid.submit(ApplicationSpec(
            name=f"job{j}", work_mips=WORK_MIPS,
            metadata={"checkpoint_interval_s": 900.0},
        ))
        for j in range(JOBS)
    ]
    deadline = grid.loop.now + 2 * SECONDS_PER_DAY
    while grid.loop.now < deadline:
        grid.run_for(SECONDS_PER_HOUR)
        if all(grid.job(j).done for j in job_ids):
            break
    jobs = [grid.job(j) for j in job_ids]
    spans = [j.makespan for j in jobs if j.makespan is not None]
    return {
        "completed": len(spans),
        "p50_h": describe(spans)["p50"] / 3600 if spans else float("nan"),
        "evictions": sum(t.evictions for j in jobs for t in j.tasks),
    }


def live_grid(policy, seed=55):
    grid = Grid(seed=seed, policy=policy, lupa_enabled=True,
                lupa_min_history_days=7,
                update_interval=300.0, tick_interval=300.0)
    grid.add_cluster("c0")
    for i, profile in enumerate(PROFILES):
        grid.add_node("c0", f"n{i:02}", profile=profile,
                      sharing=VACATE_POLICY)
    grid.run_for(RECORD_WEEKS * SECONDS_PER_WEEK)
    return grid


def replay_grid(policy, traces):
    grid = Grid(seed=1, policy=policy, lupa_enabled=True,
                lupa_min_history_days=7,
                update_interval=300.0, tick_interval=300.0)
    grid.add_cluster("c0")
    for name, events in traces.items():
        grid.add_trace_node("c0", name, events, sharing=VACATE_POLICY,
                            loop_trace=True)
    grid.run_for(RECORD_WEEKS * SECONDS_PER_WEEK)   # LUPA trains on replay
    return grid


def run_experiment():
    traces = record_traces()
    table = Table(
        ["owners", "policy", "jobs done", "p50 makespan (h)", "evictions"],
        title=(
            "E12: live synthetic owners vs recorded-trace replay\n"
            f"({len(PROFILES)} nodes, {JOBS} x {WORK_MIPS:.0e} MI jobs)"
        ),
    )
    results = {}
    for policy in ("fastest_first", "pattern_aware"):
        live = run_workload(live_grid(policy))
        replay = run_workload(replay_grid(policy, traces))
        results[("live", policy)] = live
        results[("replay", policy)] = replay
        table.add_row("live", policy, f"{live['completed']}/{JOBS}",
                      live["p50_h"], live["evictions"])
        table.add_row("replay", policy, f"{replay['completed']}/{JOBS}",
                      replay["p50_h"], replay["evictions"])
    return table, results


def test_e12_trace_replay(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("e12_trace_replay", table.render(), table=table)
    # Everything completes in both worlds.
    assert all(r["completed"] == JOBS for r in results.values())
    # Replay reproduces live behaviour to first order.
    for policy in ("fastest_first", "pattern_aware"):
        live = results[("live", policy)]
        replay = results[("replay", policy)]
        assert abs(live["p50_h"] - replay["p50_h"]) < 2.0
    # And the E4 conclusion transfers to trace-driven runs.
    assert results[("replay", "pattern_aware")]["evictions"] <= \
        results[("replay", "fastest_first")]["evictions"]
