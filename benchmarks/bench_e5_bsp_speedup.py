"""E5 — BSP application speedup on grid nodes.

The paper claims "support for a broad range of parallel applications"
on shared machines, using BSP.  Fix the total work, split it over 1-16
processes, and measure the speedup curve on dedicated nodes.  Expected
shape: near-linear at small scale, flattening as fixed superstep costs
(tick-quantised barriers + communication over the LAN) start to
dominate the shrinking per-process compute.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table
from repro.sim.clock import SECONDS_PER_DAY

from conftest import run_once, save_result

TOTAL_WORK_MIPS = 1.152e7      # 3.2 idle hours at 1000 MIPS, total
SUPERSTEPS = 16


def run_scale(nprocs, seed=2, straggler_mips=None):
    grid = Grid(seed=seed, policy="first_fit", lupa_enabled=False,
                update_interval=300.0, tick_interval=10.0)
    grid.add_cluster("c0")
    for i in range(nprocs):
        spec = None
        if straggler_mips is not None and i == 0:
            from repro.sim.machine import MachineSpec
            spec = MachineSpec(mips=straggler_mips)
        grid.add_node("c0", f"d{i:02}", spec=spec, dedicated=True)
    grid.run_for(300)
    spec = ApplicationSpec(
        name=f"bsp{nprocs}", kind="bsp", tasks=nprocs, program="kernel",
        work_mips=TOTAL_WORK_MIPS / nprocs,
        metadata={"supersteps": SUPERSTEPS, "superstep_comm_bytes": 2_000_000},
    )
    job_id = grid.submit(spec)
    assert grid.wait_for_job(job_id, max_seconds=3 * SECONDS_PER_DAY)
    return grid.job(job_id).makespan


def run_experiment():
    table = Table(
        ["processes", "makespan (h)", "speedup", "efficiency"],
        title=(
            "E5: BSP speedup, fixed total work "
            f"({TOTAL_WORK_MIPS:.2e} MI, {SUPERSTEPS} supersteps)"
        ),
    )
    baseline = None
    speedups = {}
    for nprocs in (1, 2, 4, 8, 16):
        makespan = run_scale(nprocs)
        if baseline is None:
            baseline = makespan
        speedup = baseline / makespan
        speedups[nprocs] = speedup
        table.add_row(
            nprocs, makespan / 3600.0, speedup, speedup / nprocs
        )
    # The classic BSP straggler effect: one half-speed member drags
    # every superstep barrier, halving the whole gang.
    straggler_makespan = run_scale(8, straggler_mips=500.0)
    straggler_speedup = baseline / straggler_makespan
    speedups["8+straggler"] = straggler_speedup
    table.add_row(
        "8 (one 500-MIPS member)", straggler_makespan / 3600.0,
        straggler_speedup, straggler_speedup / 8,
    )
    return table, speedups


def test_e5_bsp_speedup(benchmark):
    table, speedups = run_once(benchmark, run_experiment)
    save_result("e5_bsp_speedup", table.render(), table=table)
    # Monotone speedup, near-linear at small scale, sub-linear at 16.
    assert speedups[2] > 1.7
    assert speedups[4] > 3.0
    assert speedups[16] / 16 < 0.95   # fixed superstep costs bite at scale
    assert speedups[8] > speedups[4]
    assert speedups[16] > speedups[8]
    assert speedups[16] < 16.0
    # One half-speed member roughly halves the gang (barrier-bound).
    assert speedups["8+straggler"] < 0.6 * speedups[8]
