"""E2 — Resource Reservation and Execution Protocol.

The paper: the GRM's trader contents are only "a hint for locating the
best nodes"; a direct negotiation confirms resources really exist, and
on refusal "the GRM selects another candidate node and repeats the
process".  Sweep the information-update interval (staler hints) on a
volatile desktop pool and measure negotiation rounds per placement,
refusal rate, and time-to-placement.  Expected shape: staler hints mean
more refusals and slower placement, but the protocol always recovers —
no placement ever lands on a node that cannot host it.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table, describe
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_HOUR
from repro.sim.usage import ERRATIC

from conftest import run_once, save_result

NODES = 8
JOBS = 30


def measure(update_interval, seed=3):
    grid = Grid(
        seed=seed, policy="first_fit", lupa_enabled=False,
        update_interval=update_interval, tick_interval=60.0,
        schedule_interval=60.0,
    )
    grid.add_cluster("c0")
    for i in range(NODES):
        # Erratic owners churn constantly: the worst case for stale hints.
        grid.add_node("c0", f"n{i:02}", profile=ERRATIC,
                      sharing=VACATE_POLICY)
    grid.run_for(SECONDS_PER_HOUR)
    grm = grid.clusters["c0"].grm

    placement_delays = []
    job_ids = []
    for j in range(JOBS):
        job_ids.append(grid.submit(
            ApplicationSpec(name=f"job{j}", work_mips=2e6)
        ))
        grid.run_for(10 * 60)   # one job every 10 minutes
    grid.run_for(4 * SECONDS_PER_HOUR)

    for job_id in job_ids:
        job = grid.job(job_id)
        for task in job.tasks:
            first_run = next(
                (e.time for e in task.history if e.state == "running"), None
            )
            if first_run is not None:
                placement_delays.append(first_run - job.submitted_at)

    placements = grm.stats.placements
    rounds = grm.stats.negotiation_rounds
    refused = grm.stats.reservations_refused
    delay = describe(placement_delays)
    return {
        "rounds_per_placement": rounds / placements if placements else 0.0,
        "refusal_rate": refused / rounds if rounds else 0.0,
        "p50_delay_s": delay["p50"],
        "p95_delay_s": delay["p95"],
        "placed": len(placement_delays),
    }


def run_experiment():
    table = Table(
        ["update interval (s)", "negotiation rounds/placement",
         "refusal rate", "p50 place (s)", "p95 place (s)", "tasks placed"],
        title=(
            "E2: Reservation & Execution Protocol vs hint staleness\n"
            f"({NODES} erratic desktops, {JOBS} jobs)"
        ),
    )
    for interval in (30.0, 120.0, 600.0):
        m = measure(interval)
        table.add_row(
            int(interval), m["rounds_per_placement"], m["refusal_rate"],
            m["p50_delay_s"], m["p95_delay_s"], m["placed"],
        )
    return table


def test_e2_reservation_protocol(benchmark):
    table = run_once(benchmark, run_experiment)
    save_result("e2_reservation_protocol", table.render(), table=table)
    fresh = table.rows[0]
    stale = table.rows[-1]
    # Staler hints must cost more negotiation (or at least not less).
    assert float(stale[2]) >= float(fresh[2])
    # The protocol still places everything eventually.
    assert all(int(r[5]) >= JOBS for r in table.rows)
