"""E9 — inter-cluster hierarchy scalability.

Section 4: "Clusters are then arranged in a hierarchy, allowing a
single InteGrade grid to encompass millions of machines."  The
scalability argument is message aggregation: a flat design would push
every node's periodic status to one manager, while the hierarchy's top
level sees one aggregated summary per cluster.  Sweep total node count;
measure messages and bytes per hour at the top-level manager under both
designs, plus wide-area placement success for overflow jobs.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table
from repro.sim.clock import SECONDS_PER_HOUR

from conftest import run_once, save_result

NODES_PER_CLUSTER = 25
UPDATE_INTERVAL = 60.0
SUMMARY_INTERVAL = 300.0


def run_flat(total_nodes):
    """Every node reports to one GRM — the flat strawman."""
    grid = Grid(seed=4, policy="first_fit", lupa_enabled=False,
                update_interval=UPDATE_INTERVAL, tick_interval=300.0)
    grid.add_cluster("flat")
    for i in range(total_nodes):
        grid.add_node("flat", f"n{i:04}", dedicated=True)
    grid.run_for(300)
    manager = grid.clusters["flat"].orb
    before = manager.stats()
    grid.run_for(SECONDS_PER_HOUR)
    after = manager.stats()
    return {
        "msgs_per_hour": after["requests_received"] - before["requests_received"],
        "kb_per_hour": (after["bytes_received"] - before["bytes_received"]) / 1024,
    }


def run_hierarchical(total_nodes):
    """Clusters of NODES_PER_CLUSTER, summaries to a parent GRM."""
    clusters = max(1, total_nodes // NODES_PER_CLUSTER)
    grid = Grid(seed=4, policy="first_fit", lupa_enabled=False,
                update_interval=UPDATE_INTERVAL, tick_interval=300.0)
    for c in range(clusters):
        grid.add_cluster(f"c{c:02}")
        for i in range(NODES_PER_CLUSTER):
            grid.add_node(f"c{c:02}", f"c{c:02}n{i:03}", dedicated=True)
    parent, uplinks = grid.connect_clusters_to_parent()
    parent_orb = None
    # connect_clusters_to_parent builds its own orb; find it via domain.
    parent_orb = grid.domain.lookup("parent-orb")
    grid.run_for(300)
    before = parent_orb.stats()
    grid.run_for(SECONDS_PER_HOUR)
    after = parent_orb.stats()
    return {
        "clusters": clusters,
        "msgs_per_hour": after["requests_received"] - before["requests_received"],
        "kb_per_hour": (after["bytes_received"] - before["bytes_received"]) / 1024,
    }


def run_overflow_check():
    """Wide-area placement still works while summaries stay aggregated."""
    grid = Grid(seed=4, policy="first_fit", lupa_enabled=False,
                update_interval=UPDATE_INTERVAL, tick_interval=60.0)
    grid.add_cluster("small")
    for i in range(2):
        grid.add_node("small", f"s{i}", dedicated=True)
    grid.add_cluster("big")
    for i in range(8):
        grid.add_node("big", f"b{i}", dedicated=True)
    parent, _ = grid.connect_clusters_to_parent()
    grid.run_for(300)
    placed = 0
    for j in range(3):
        job_id = grid.submit(ApplicationSpec(
            name=f"gang{j}", kind="bsp", tasks=6, program="p",
            work_mips=2e5, metadata={"supersteps": 2},
        ), cluster="small")
        grid.run_for(2 * SECONDS_PER_HOUR)
        job = grid.job(job_id)
        if job.forwarded_to:
            remote = grid.clusters["big"].grm.job(job.forwarded_to)
            placed += remote.done
    return placed


def run_experiment():
    table = Table(
        ["total nodes", "design", "top-level msgs/h", "top-level KB/h"],
        title=(
            "E9: status traffic at the top-level manager, flat vs "
            f"hierarchical ({NODES_PER_CLUSTER}-node clusters, "
            f"{UPDATE_INTERVAL:.0f} s node updates, "
            f"{SUMMARY_INTERVAL:.0f} s cluster summaries)"
        ),
    )
    ratios = {}
    for total in (50, 100, 200):
        flat = run_flat(total)
        hier = run_hierarchical(total)
        table.add_row(total, "flat", flat["msgs_per_hour"],
                      flat["kb_per_hour"])
        table.add_row(total, f"hierarchy ({hier['clusters']} clusters)",
                      hier["msgs_per_hour"], hier["kb_per_hour"])
        ratios[total] = flat["msgs_per_hour"] / max(1, hier["msgs_per_hour"])
    overflow_placed = run_overflow_check()
    footer = (f"\nwide-area overflow: {overflow_placed}/3 gangs forwarded "
              "by the parent and completed remotely")
    return table, ratios, overflow_placed, footer


def test_e9_hierarchy(benchmark):
    table, ratios, overflow_placed, footer = run_once(benchmark, run_experiment)
    save_result("e9_hierarchy", table.render() + footer, table=table)
    # The hierarchy cuts top-level message load by an order of magnitude...
    assert all(ratio > 10 for ratio in ratios.values())
    # ...increasingly so at scale.
    assert ratios[200] >= ratios[50]
    # And overflow jobs still get placed across clusters.
    assert overflow_placed == 3
