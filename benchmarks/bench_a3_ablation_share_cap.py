"""A3 — ablation: the NCC's active-share cap.

The paper's worked NCC example lets an owner donate "30% of the CPU"
even while working.  Sweep the active cap from 0 (vacate-equivalent) to
1.0 (no protection besides owner-first scheduling) on one office
desktop, measuring weekly grid harvest and task completion latency.
Expected shape: harvest grows with the cap with diminishing returns
(nights dominate either way), while owner QoS stays untouched at every
setting — the owner-first scheduler, not the cap, is what protects the
owner; the cap controls how *much* of the leftover the grid may claim.
"""

import random

from repro.analysis.metrics import Table
from repro.core.lrm import Lrm
from repro.core.ncc import NodeControlCenter, SharingPolicy
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import OFFICE_WORKER
from repro.sim.workstation import Workstation

from conftest import run_once, save_result


class _SinkGrm:
    def __init__(self):
        self.completed = 0

    def register_node(self, status, ior):
        pass

    def send_update(self, status):
        pass

    def task_completed(self, node, task_id, result=None):
        self.completed += 1

    def task_evicted(self, node, task_id, progress, resume):
        pass

    def task_reached_limit(self, node, task_id):
        pass


def run_cap(active_cap, seed=21):
    loop = EventLoop()
    workstation = Workstation(
        loop, "desk", spec=MachineSpec(mips=1000.0, ram_mb=512.0),
        profile=OFFICE_WORKER, rng=random.Random(seed),
    )
    policy = SharingPolicy(cpu_cap_idle=1.0, cpu_cap_active=active_cap)
    ncc = NodeControlCenter(loop.clock, policy)
    lrm = Lrm(loop, workstation, ncc, tick_interval=30.0)
    grm = _SinkGrm()
    lrm.attach_grm(grm, "IOR:sink")

    machine = workstation.machine
    harvested_mips = 0.0
    owner_requested = 0.0
    owner_received = 0.0
    counter = [0]

    def keep_busy():
        if lrm.running_tasks:
            return
        counter[0] += 1
        task_id = f"t{counter[0]}"
        # Tasks always want the whole CPU; the NCC cap decides how much
        # they get while the owner is present (and full speed when away).
        reply = lrm.request_reservation({
            "task_id": task_id, "cpu_fraction": 1.0,
            "mem_mb": 64.0, "disk_mb": 0.0, "lease_seconds": 300.0,
        })
        if reply["accepted"]:
            lrm.start_task({
                "task_id": task_id, "job_id": "stream",
                "work_mips": 1e6, "initial_progress_mips": 0.0,
                "checkpoint_interval_s": 600.0, "payload": "",
            })

    def measure():
        nonlocal harvested_mips, owner_requested, owner_received
        owner_requested += machine.owner_cpu
        owner_received += machine.owner_received_cpu()
        for task_id in lrm.running_tasks:
            harvested_mips += lrm.task_rate_mips(task_id) * 30.0

    loop.every(60.0, keep_busy)
    loop.every(30.0, measure)
    loop.run_until(7 * SECONDS_PER_DAY)
    qos = owner_received / owner_requested if owner_requested else 1.0
    return {
        "harvest_cpu_hours": harvested_mips / 1000.0 / 3600.0,
        "tasks_completed": grm.completed,
        "owner_slowdown_pct": (1.0 - qos) * 100.0,
    }


def run_experiment():
    table = Table(
        ["active-share cap", "grid CPU-hours/week", "tasks completed",
         "owner slowdown %"],
        title=(
            "A3: NCC active-share cap sweep on one office desktop\n"
            "(grid saturated; idle cap fixed at 1.0)"
        ),
    )
    results = {}
    for cap in (0.0, 0.1, 0.3, 0.5, 1.0):
        outcome = run_cap(cap)
        results[cap] = outcome
        table.add_row(
            cap, outcome["harvest_cpu_hours"], outcome["tasks_completed"],
            outcome["owner_slowdown_pct"],
        )
    return table, results


def test_a3_ablation_share_cap(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("a3_ablation_share_cap", table.render(), table=table)
    # Harvest is monotone non-decreasing in the cap...
    caps = sorted(results)
    harvests = [results[c]["harvest_cpu_hours"] for c in caps]
    assert all(b >= a - 0.5 for a, b in zip(harvests, harvests[1:]))
    # ...owner QoS is untouched at every setting (owner-first scheduling).
    assert all(
        r["owner_slowdown_pct"] < 0.5 for r in results.values()
    )
    # And the marginal gain shrinks: 0->0.3 buys more than 0.5->1.0.
    gain_low = results[0.3]["harvest_cpu_hours"] - results[0.0]["harvest_cpu_hours"]
    gain_high = results[1.0]["harvest_cpu_hours"] - results[0.5]["harvest_cpu_hours"]
    assert gain_low > gain_high
