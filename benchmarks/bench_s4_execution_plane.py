"""S4 — execution-plane scaling (infrastructure benchmark).

The seed execution plane re-stores every BSP process's *entire* state at
each checkpoint and issues one ORB call per BSMP message / DRMA request
— both linear in state size and message count.  This benchmark measures
what the PR's two opt-in features buy, at 64/256/1024 processes:

* **Checkpoint plane** — each process carries a large multi-chunk state
  of which only 1–10 % mutates per superstep.  ``full`` mode is the
  seed store (whole snapshot per save); ``chunked`` is the
  content-addressed delta store (changed chunks only, cross-replica
  dedup, full rebase every ``REBASE_EVERY`` saves).  Replica pairs
  share their bulk state, so the chunk pool dedups across processes
  exactly as replicated tasks do on a real cluster repository.
* **Comm plane** — each process exchanges messages and DRMA traffic
  with ``DEGREE`` peers per superstep.  ``per-message`` mode accounts
  one ORB call per send/put/get (seed); ``combining`` coalesces all
  messages per (sender, destination) pair into one CDR batch flushed at
  the barrier and batches DRMA per pair — O(messages) → O(peers) calls.
  ``batched`` models the ORB's transport-level oneway batching instead:
  logical calls stay per-message, but sends and puts queued for one
  peer share a wire frame flushed at the barrier, so *frames* drop to
  O(peers) while gets (request/reply) stay one frame each.

Both modes run the identical deterministic workload (no RNG), so the
delivered messages and the restored checkpoint bytes are asserted
bit-identical to the seed oracle in-run.  Rows land in
``BENCH_S4.json`` with ``--bench-json``; the committed file is the CI
baseline and the headline gates (>= 3x checkpoint bytes down at 1024
processes / 10 % mutation, exactly O(peers) ORB calls when combining)
re-run in ``perf_smoke.py``.
"""

import struct
import time

from repro.bsp.drma import Registers
from repro.bsp.messages import MessageBuffers
from repro.checkpoint.store import MemoryCheckpointStore
from repro.analysis.metrics import Table

from conftest import save_json, save_result

PROCESSES = (64, 256, 1024)
SUPERSTEPS = 12
CHUNK_SIZE = 4096
STATE_CHUNKS = 32              # ~128 KiB of serialized state per process
REBASE_EVERY = 8
MUTATION_RATES = (0.01, 0.10)

DEGREE = 8                     # peers each process talks to per superstep
MSGS_PER_PEER = 4
PUTS_PER_PEER = 3
GETS_PER_PEER = 2

_SEGMENT_FILL = bytes(range(256)) * (CHUNK_SIZE // 256)


def make_state(pid: int) -> dict:
    """Deterministic large state; replica pairs share their bulk blob."""
    replica_group = pid // 2
    segments = [
        struct.pack("<II", replica_group, j) + _SEGMENT_FILL[8:]
        for j in range(STATE_CHUNKS)
    ]
    return {
        "pid": pid,
        "step": 0,
        "blob": bytearray(b"".join(segments)),
    }


def mutate(state: dict, step: int, rate: float) -> None:
    """Touch ``rate`` of the blob's segments in place (same length)."""
    state["step"] = step
    nmut = max(1, int(STATE_CHUNKS * rate))
    blob = state["blob"]
    for m in range(nmut):
        segment = (step * 7 + m * 13) % STATE_CHUNKS
        offset = segment * CHUNK_SIZE + 16
        blob[offset:offset + 8] = struct.pack("<II", step, m)


def _snapshot(state: dict) -> dict:
    return {"pid": state["pid"], "step": state["step"],
            "blob": bytes(state["blob"])}


ORACLE_PIDS = (0, 1, 7)   # spot-check restores against the seed oracle


def measure_checkpoint_plane(nprocs: int, rate: float, mode: str) -> dict:
    """Run the checkpoint workload in one store mode; returns its row."""
    if mode == "chunked":
        store = MemoryCheckpointStore(
            chunked=True, chunk_size=CHUNK_SIZE, rebase_every=REBASE_EVERY
        )
    else:
        store = MemoryCheckpointStore()
    oracle = MemoryCheckpointStore()   # seed store, latest snapshot only
    states = [make_state(pid) for pid in range(nprocs)]
    start = time.perf_counter()
    for step in range(1, SUPERSTEPS + 1):
        now = float(step)
        for pid, state in enumerate(states):
            mutate(state, step, rate)
            snap = _snapshot(state)
            store.save(f"t{pid}", snap, now)
            if pid in ORACLE_PIDS:
                oracle.save(f"t{pid}", snap, now)
    elapsed = time.perf_counter() - start
    # The store must hand back byte-identical state after the full run
    # (which crossed a rebase: SUPERSTEPS > REBASE_EVERY).
    for pid in ORACLE_PIDS:
        if pid >= nprocs:
            continue
        restored = store.load_latest(f"t{pid}")
        expected = oracle.load_latest(f"t{pid}")
        assert restored.data == expected.data
        assert restored.state() == expected.state()
    row = {
        "nprocs": nprocs,
        "mutation_rate": rate,
        "mode": mode,
        "saves": store.saves,
        "bytes_written": store.bytes_written,
        "wall_s": round(elapsed, 4),
        "saves_per_wall_s": round(store.saves / elapsed, 1),
    }
    if mode == "chunked":
        row.update({
            "dedup_hit_rate": round(store.repo.dedup_hit_rate, 4),
            "rebases": store.repo.rebases,
            "bytes_written_full": store.bytes_written_full,
            "bytes_written_delta": store.bytes_written_delta,
        })
    return row


def drive_comm(nprocs: int, combining: bool,
               batch_oneway: bool = False) -> dict:
    """Run the comm workload; returns its row plus a delivery checksum."""
    buffers = MessageBuffers(nprocs, combining=combining,
                             batch_oneway=batch_oneway)
    registers = Registers(nprocs, batched=combining,
                          batch_oneway=batch_oneway)
    for pid in range(nprocs):
        registers.register(pid, "acc", 0.0)
    checksum = 0
    start = time.perf_counter()
    for step in range(1, SUPERSTEPS + 1):
        for pid in range(nprocs):
            for k in range(DEGREE):
                peer = (pid + k + 1) % nprocs
                for m in range(MSGS_PER_PEER):
                    buffers.send(pid, peer, [float(pid), float(step * m)])
                for p in range(PUTS_PER_PEER):
                    registers.put(pid, peer, "acc", float(step + p))
                for _ in range(GETS_PER_PEER):
                    registers.get(peer, "acc", reader=pid)
        buffers.exchange()
        registers.synchronize()
        for pid in range(nprocs):
            checksum += len(buffers.inbox(pid))
            checksum += int(sum(m[0] for m in buffers.inbox(pid)))
    elapsed = time.perf_counter() - start
    if combining:
        mode = "combining"
    elif batch_oneway:
        mode = "batched"
    else:
        mode = "per-message"
    return {
        "nprocs": nprocs,
        "mode": mode,
        "messages_sent": buffers.messages_sent,
        "orb_calls": buffers.orb_calls,
        "drma_calls": registers.drma_calls,
        "bsmp_frames": buffers.frames,
        "drma_frames": registers.frames,
        "bytes_saved": buffers.bytes_saved,
        "wire_bytes": buffers.wire_bytes,
        "puts_applied": registers.puts_applied,
        "comm_wall_s": round(elapsed, 4),
        "checksum": checksum,
    }


def run_experiment():
    ckpt_table = Table(
        ["procs", "mutation", "mode", "MB written", "dedup", "saves/s (wall)"],
        title="S4a: checkpoint bytes per 12 supersteps",
    )
    ckpt_rows = []
    for nprocs in PROCESSES:
        for rate in MUTATION_RATES:
            for mode in ("full", "chunked"):
                row = measure_checkpoint_plane(nprocs, rate, mode)
                ckpt_rows.append(row)
                ckpt_table.add_row(
                    nprocs, f"{rate:.0%}", mode,
                    f"{row['bytes_written'] / 1e6:,.1f}",
                    f"{row.get('dedup_hit_rate', 0.0):.2f}",
                    f"{row['saves_per_wall_s']:,.0f}",
                )
    comm_table = Table(
        ["procs", "mode", "messages", "ORB calls", "DRMA calls",
         "BSMP frames", "KB on wire"],
        title="S4b: superstep comm calls per 12 supersteps",
    )
    comm_rows = []
    for nprocs in PROCESSES:
        for combining, batch_oneway in (
            (False, False), (True, False), (False, True),
        ):
            row = drive_comm(nprocs, combining, batch_oneway=batch_oneway)
            comm_rows.append(row)
            comm_table.add_row(
                nprocs, row["mode"], row["messages_sent"],
                f"{row['orb_calls']:,}", f"{row['drma_calls']:,}",
                f"{row['bsmp_frames']:,}",
                f"{row['wire_bytes'] / 1024.0:,.0f}",
            )
    return ckpt_table, comm_table, ckpt_rows, comm_rows


def _ckpt_row(rows, nprocs, rate, mode):
    return next(
        r for r in rows
        if r["nprocs"] == nprocs and r["mutation_rate"] == rate
        and r["mode"] == mode
    )


def _comm_row(rows, nprocs, mode):
    return next(
        r for r in rows if r["nprocs"] == nprocs and r["mode"] == mode
    )


def test_s4_execution_plane(benchmark):
    ckpt_table, comm_table, ckpt_rows, comm_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    save_result(
        "s4_execution_plane",
        ckpt_table.render() + "\n\n" + comm_table.render(),
    )
    save_json("S4", {
        "experiment": "s4_execution_plane",
        "supersteps": SUPERSTEPS,
        "chunk_size": CHUNK_SIZE,
        "state_chunks": STATE_CHUNKS,
        "rebase_every": REBASE_EVERY,
        "degree": DEGREE,
        "msgs_per_peer": MSGS_PER_PEER,
        "checkpoint_rows": ckpt_rows,
        "comm_rows": comm_rows,
    })
    # Headline: at every scale and mutation rate <= 10%, chunking cuts
    # checkpoint bytes >= 3x (the 1024-proc / 10% pairing is the
    # acceptance gate; 1% does far better).
    for nprocs in PROCESSES:
        for rate in MUTATION_RATES:
            full = _ckpt_row(ckpt_rows, nprocs, rate, "full")
            chunked = _ckpt_row(ckpt_rows, nprocs, rate, "chunked")
            assert full["saves"] == chunked["saves"]
            ratio = full["bytes_written"] / chunked["bytes_written"]
            assert ratio >= 3.0, (nprocs, rate, ratio)
            # Replica pairs must actually share chunk storage.
            assert chunked["dedup_hit_rate"] > 0.3
            # SUPERSTEPS crosses REBASE_EVERY: the chain really rebased.
            assert chunked["rebases"] >= nprocs
    for nprocs in PROCESSES:
        seed = _comm_row(comm_rows, nprocs, "per-message")
        comb = _comm_row(comm_rows, nprocs, "combining")
        bat = _comm_row(comm_rows, nprocs, "batched")
        # Identical delivery in all modes...
        assert seed["checksum"] == comb["checksum"] == bat["checksum"]
        assert seed["messages_sent"] == comb["messages_sent"] \
            == bat["messages_sent"]
        assert seed["puts_applied"] == comb["puts_applied"] \
            == bat["puts_applied"]
        # ...but combining issues exactly one BSMP call per communicating
        # pair per superstep (O(peers)), and one DRMA call per direction
        # per pair, independent of per-pair message counts.
        assert comb["orb_calls"] == SUPERSTEPS * nprocs * DEGREE
        assert seed["orb_calls"] == comb["orb_calls"] * MSGS_PER_PEER
        assert comb["drma_calls"] == SUPERSTEPS * nprocs * DEGREE * 2
        assert seed["drma_calls"] == \
            SUPERSTEPS * nprocs * DEGREE * (PUTS_PER_PEER + GETS_PER_PEER)
        assert comb["wire_bytes"] < seed["wire_bytes"]
        # Transport oneway batching keeps the seed's logical call counts
        # but collapses wire frames: one BSMP frame per pair-superstep,
        # one DRMA frame per put pair plus one per (unbatchable) get.
        assert seed["bsmp_frames"] == seed["orb_calls"]
        assert seed["drma_frames"] == seed["drma_calls"]
        assert bat["orb_calls"] == seed["orb_calls"]
        assert bat["drma_calls"] == seed["drma_calls"]
        assert bat["bsmp_frames"] == SUPERSTEPS * nprocs * DEGREE
        assert bat["drma_frames"] == \
            SUPERSTEPS * nprocs * DEGREE * (1 + GETS_PER_PEER)
        assert bat["bytes_saved"] > 0
