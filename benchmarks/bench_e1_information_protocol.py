"""E1 — Information Update Protocol cost.

The paper claims the protocol is lightweight enough to run on shared
desktops.  Sweep cluster size and update interval; measure the message
and byte load the GRM absorbs per hour (over real CDR marshalling) and
the mean staleness of the GRM's view.  Expected shape: load grows
linearly with nodes and inversely with the interval; staleness is about
half the interval.
"""

from repro import Grid
from repro.analysis.metrics import Table
from repro.sim.clock import SECONDS_PER_HOUR

from conftest import run_once, save_result


def measure(nodes, update_interval, seed=1):
    grid = Grid(
        seed=seed, policy="first_fit", lupa_enabled=False,
        update_interval=update_interval, tick_interval=300.0,
    )
    grid.add_cluster("c0")
    for i in range(nodes):
        grid.add_node("c0", f"n{i:03}", dedicated=True)
    grid.run_for(300)   # settle registrations
    manager_orb = grid.clusters["c0"].orb
    before = manager_orb.stats()
    before_updates = grid.clusters["c0"].grm.stats.updates_received
    # Probe staleness at uneven offsets so we never sample exactly at an
    # update instant; the expectation is interval/2.
    staleness_samples = []
    records = grid.clusters["c0"].grm._nodes.values()
    for _ in range(8):
        grid.run_for(SECONDS_PER_HOUR / 8 + 7.3)
        now = grid.loop.now
        staleness_samples.append(
            sum(now - r.last_seen for r in records) / max(1, len(records))
        )
    after = manager_orb.stats()
    updates = grid.clusters["c0"].grm.stats.updates_received - before_updates
    bytes_in = after["bytes_received"] - before["bytes_received"]
    staleness = sum(staleness_samples) / len(staleness_samples)
    return {
        "updates_per_hour": updates,
        "kb_per_hour": bytes_in / 1024.0,
        "bytes_per_update": bytes_in / updates if updates else 0.0,
        "mean_staleness_s": staleness,
    }


def run_experiment():
    table = Table(
        ["nodes", "interval (s)", "updates/h", "KB/h @GRM",
         "bytes/update", "staleness (s)"],
        title="E1: Information Update Protocol cost (LRM -> GRM, via CDR)",
    )
    for nodes in (10, 50, 100):
        for interval in (30.0, 60.0, 300.0):
            m = measure(nodes, interval)
            table.add_row(
                nodes, int(interval), m["updates_per_hour"],
                m["kb_per_hour"], m["bytes_per_update"],
                m["mean_staleness_s"],
            )
    return table


def test_e1_information_protocol(benchmark):
    table = run_once(benchmark, run_experiment)
    save_result("e1_information_protocol", table.render(), table=table)
    rows = {(r[0], r[1]): r for r in table.rows}
    # Load scales ~linearly with node count at fixed interval.
    assert float(rows[("100", "60")][2]) > 8 * float(rows[("10", "60")][2])
    # Longer intervals mean fewer messages.
    assert float(rows[("50", "300")][2]) < float(rows[("50", "30")][2]) / 5
