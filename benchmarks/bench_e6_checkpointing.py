"""E6 — checkpoint cadence vs failure recovery for BSP jobs.

Section 3: superstep synchronisations provide "milestones that can be
used to resume the application in case of crashes or when there is need
for migration".  A 5-process BSP job runs with one member on a machine
whose owner reliably shows up mid-run (a deterministic blackout window),
forcing evictions.  Sweep the checkpoint cadence.  Expected shape: with
no checkpoints every failure restarts the job from superstep 0 (maximum
lost work); frequent checkpoints bound lost work to under one cadence
interval at the cost of more checkpoint volume.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table
from repro.core.ncc import BlackoutWindow, SharingPolicy
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR

from conftest import run_once, save_result

PROCESSES = 5
SUPERSTEPS = 24
WORK_MIPS = 2.16e7      # 6 idle hours/process: crosses the blackout


def run_cadence(checkpoint_every, seed=8):
    grid = Grid(seed=seed, policy="first_fit", lupa_enabled=False,
                update_interval=300.0, tick_interval=30.0)
    grid.add_cluster("c0")
    for i in range(PROCESSES - 1):
        grid.add_node("c0", f"d{i}", dedicated=True)
    # The flaky member's owner takes the machine 03:00-03:30 every day.
    flaky_policy = SharingPolicy(
        blackouts=(BlackoutWindow(3.0, 3.5),),
    )
    grid.add_node("c0", "flaky", sharing=flaky_policy)
    grid.run_for(300)
    spec = ApplicationSpec(
        name="ckpt", kind="bsp", tasks=PROCESSES, program="kernel",
        work_mips=WORK_MIPS,
        checkpoint_every_supersteps=checkpoint_every,
        metadata={"supersteps": SUPERSTEPS, "superstep_comm_bytes": 100_000},
    )
    job_id = grid.submit(spec)
    done = grid.wait_for_job(job_id, max_seconds=7 * SECONDS_PER_DAY)
    job = grid.job(job_id)
    coordinator = grid.coordinator(job_id)
    wasted = sum(t.wasted_mips for t in job.tasks)
    store = grid.clusters["c0"].checkpoint_store
    return {
        "done": done,
        "makespan_h": (job.makespan or float("nan")) / 3600.0,
        "rollbacks": coordinator.rollbacks,
        "lost_work_cpu_min": wasted / 1000.0 / 60.0,
        "checkpoint_mb": store.bytes_written / 1e6,
        "checkpoints": coordinator.checkpoints_saved,
    }


def run_experiment():
    table = Table(
        ["checkpoint every k supersteps", "makespan (h)", "rollbacks",
         "lost work (CPU min)", "checkpoints saved"],
        title=(
            "E6: BSP checkpoint cadence under daily owner interruptions\n"
            f"({PROCESSES} processes, {SUPERSTEPS} supersteps, one member "
            "on a machine with a 03:00-03:30 blackout)"
        ),
    )
    results = {}
    for cadence in (1, 2, 4, 8, 0):
        outcome = run_cadence(cadence)
        results[cadence] = outcome
        label = str(cadence) if cadence else "none"
        table.add_row(
            label, outcome["makespan_h"], outcome["rollbacks"],
            outcome["lost_work_cpu_min"], outcome["checkpoints"],
        )
    return table, results


def test_e6_checkpointing(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("e6_checkpointing", table.render(), table=table)
    assert all(r["done"] for r in results.values())
    # Failures happened in every configuration.
    assert all(r["rollbacks"] >= 1 for r in results.values())
    # Checkpointing (k=1) loses far less work than none at all.
    assert results[1]["lost_work_cpu_min"] < results[0]["lost_work_cpu_min"]
    # And finishes sooner.
    assert results[1]["makespan_h"] <= results[0]["makespan_h"]
