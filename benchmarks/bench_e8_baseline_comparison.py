"""E8 — InteGrade vs Condor-style vs BOINC-style on a desktop pool.

The Related Work deltas, measured instead of asserted.  One pool shape
(14 office/lab desktops + 2 dedicated nodes, identical owner seeds), one
workload (10 sequential jobs + 2 four-process BSP jobs), three systems:

* **InteGrade** — pattern-aware scheduling, negotiation, checkpointing,
  gang placement of BSP jobs on *shared* desktops;
* **Condor-style** — matchmaking + vacate; parallel jobs restricted to
  dedicated machines (Wright 2001), no parallel checkpointing;
* **BOINC-style** — pull work units (quorum 1 here, to measure
  throughput rather than redundancy); parallel jobs rejected outright.

Expected shape: all three finish the sequential work; only InteGrade
runs the parallel jobs on shared desktops (Condor needs the dedicated
pair and restarts gangs from scratch on eviction; BOINC cannot accept
them at all).
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table, describe
from repro.baselines.boinc import BoincProject, UnsupportedApplication
from repro.baselines.condor import CondorPool
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.usage import OFFICE_WORKER, STUDENT_LAB
from repro.sim.workstation import Workstation

from conftest import run_once, save_result

SEQ_JOBS = 10
SEQ_WORK = 3.6e6
BSP_JOBS = 2
BSP_TASKS = 4
BSP_WORK = 1.8e6
HORIZON = 2 * SECONDS_PER_DAY
SEED = 77

POOL_PROFILES = [OFFICE_WORKER] * 9 + [STUDENT_LAB] * 5


def seq_spec(j):
    return ApplicationSpec(name=f"seq{j}", work_mips=SEQ_WORK,
                           metadata={"checkpoint_interval_s": 900.0})


def bsp_spec(j):
    return ApplicationSpec(
        name=f"bsp{j}", kind="bsp", tasks=BSP_TASKS, program="kernel",
        work_mips=BSP_WORK, checkpoint_every_supersteps=2,
        metadata={"supersteps": 8, "superstep_comm_bytes": 100_000},
    )


def run_integrade():
    grid = Grid(seed=SEED, policy="pattern_aware", lupa_enabled=True,
                update_interval=120.0, tick_interval=60.0)
    grid.add_cluster("c0")
    for i, profile in enumerate(POOL_PROFILES):
        grid.add_node("c0", f"ws{i:02}", profile=profile,
                      sharing=VACATE_POLICY)
    for i in range(2):
        grid.add_node("c0", f"ded{i}", dedicated=True)
    grid.run_for(9 * SECONDS_PER_HOUR)   # submit Monday 09:00
    seq_ids = [grid.submit(seq_spec(j)) for j in range(SEQ_JOBS)]
    bsp_ids = [grid.submit(bsp_spec(j)) for j in range(BSP_JOBS)]
    deadline = grid.loop.now + HORIZON
    while grid.loop.now < deadline:
        grid.run_for(SECONDS_PER_HOUR)
        if all(grid.job(j).done for j in seq_ids + bsp_ids):
            break
    seq_spans = [grid.job(j).makespan for j in seq_ids
                 if grid.job(j).makespan is not None]
    bsp_done = sum(1 for j in bsp_ids if grid.job(j).makespan is not None)
    evictions = sum(
        t.evictions for j in seq_ids + bsp_ids
        for t in grid.job(j).tasks
    )
    return {
        "seq_done": len(seq_spans),
        "seq_p50_h": describe(seq_spans)["p50"] / 3600 if seq_spans else None,
        "bsp_done": bsp_done,
        "evictions": evictions,
        "parallel_on_desktops": True,
    }


def _pool_workstations(loop):
    from repro.sim.rng import SeededStreams
    streams = SeededStreams(SEED)
    stations = [
        Workstation(loop, f"ws{i:02}", spec=MachineSpec(),
                    profile=profile, rng=streams.stream(f"owner.ws{i:02}"))
        for i, profile in enumerate(POOL_PROFILES)
    ]
    dedicated = [
        Workstation(loop, f"ded{i}", spec=MachineSpec())
        for i in range(2)
    ]
    return stations, dedicated


def run_condor():
    loop = EventLoop()
    pool = CondorPool(loop, checkpoint_interval_s=900.0)
    stations, dedicated = _pool_workstations(loop)
    for ws in stations:
        pool.add_machine(ws)
    for ws in dedicated:
        pool.add_machine(ws, dedicated=True)
    loop.run_until(9 * SECONDS_PER_HOUR)
    seq_ids = [pool.submit(seq_spec(j)) for j in range(SEQ_JOBS)]
    bsp_ids = [pool.submit(bsp_spec(j)) for j in range(BSP_JOBS)]
    loop.run_until(loop.now + HORIZON)
    seq_spans = [
        pool.job(j).completed_at - pool.job(j).submitted_at
        for j in seq_ids if pool.job(j).done
    ]
    bsp_done = sum(1 for j in bsp_ids if pool.job(j).done)
    evictions = sum(pool.job(j).evictions for j in seq_ids + bsp_ids)
    return {
        "seq_done": len(seq_spans),
        "seq_p50_h": describe(seq_spans)["p50"] / 3600 if seq_spans else None,
        "bsp_done": bsp_done,
        "evictions": evictions,
        "parallel_on_desktops": False,   # dedicated universe only
    }


def run_boinc():
    loop = EventLoop()
    project = BoincProject(loop)
    stations, dedicated = _pool_workstations(loop)
    for ws in stations + dedicated:
        project.add_client(ws, connect_interval=600.0)
    loop.run_until(9 * SECONDS_PER_HOUR)
    seq_ids = [project.submit(seq_spec(j), quorum=1) for j in range(SEQ_JOBS)]
    bsp_rejected = 0
    for j in range(BSP_JOBS):
        try:
            project.submit(bsp_spec(j))
        except UnsupportedApplication:
            bsp_rejected += 1
    loop.run_until(loop.now + HORIZON)
    seq_spans = [
        project.job(j).completed_at - project.job(j).submitted_at
        for j in seq_ids if project.job(j).done
    ]
    return {
        "seq_done": len(seq_spans),
        "seq_p50_h": describe(seq_spans)["p50"] / 3600 if seq_spans else None,
        "bsp_done": 0,
        "bsp_rejected": bsp_rejected,
        "evictions": 0,   # pauses, never evictions
        "parallel_on_desktops": False,
    }


def run_experiment():
    table = Table(
        ["system", "seq done", "seq p50 (h)", "parallel done",
         "parallel on shared desktops", "evictions"],
        title=(
            "E8: one desktop pool, three middlewares\n"
            f"({len(POOL_PROFILES)} desktops + 2 dedicated; "
            f"{SEQ_JOBS} sequential + {BSP_JOBS} x {BSP_TASKS}-process BSP "
            f"jobs; {HORIZON / 3600:.0f} h horizon)"
        ),
    )
    results = {
        "InteGrade": run_integrade(),
        "Condor-style": run_condor(),
        "BOINC-style": run_boinc(),
    }
    for name, r in results.items():
        table.add_row(
            name, f"{r['seq_done']}/{SEQ_JOBS}",
            r["seq_p50_h"] if r["seq_p50_h"] is not None else "-",
            f"{r['bsp_done']}/{BSP_JOBS}",
            r["parallel_on_desktops"], r["evictions"],
        )
    return table, results


def test_e8_baseline_comparison(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("e8_baseline_comparison", table.render(), table=table)
    # Everyone gets the sequential work done within the horizon.
    for r in results.values():
        assert r["seq_done"] == SEQ_JOBS
    # Only InteGrade completes the parallel jobs on shared desktops.
    assert results["InteGrade"]["bsp_done"] == BSP_JOBS
    assert results["InteGrade"]["parallel_on_desktops"]
    assert not results["Condor-style"]["parallel_on_desktops"]
    assert results["BOINC-style"]["bsp_done"] == 0
    assert results["BOINC-style"]["bsp_rejected"] == BSP_JOBS
