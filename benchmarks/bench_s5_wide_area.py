"""S5 — wide-area-plane scaling (infrastructure benchmark).

The paper's scalability story rests on the inter-cluster hierarchy
(Section 4: clusters "arranged in a hierarchy, allowing a single
InteGrade grid to encompass millions of machines"), but the seed
ParentGrm re-ships full summaries every interval, recomputes
O(children) aggregates per uplink, and scans + sorts every child per
wide-area submit.  This benchmark federates hundreds of clusters
(25k–100k simulated nodes) against a *real* ParentGrm over a real ORB
in three configurations:

* ``seed``          — the seed wide-area plane: full summaries every
  interval, scan-and-sort placement, O(children) aggregation.
* ``indexed``       — incremental aggregation + the free-CPU placement
  index; summary traffic unchanged, so placements must be bit-identical
  to seed (same data, purely algorithmic win — the digest gate).
* ``indexed+delta`` — the same, plus DeltaSender uplinks: changed-field
  deltas, heartbeat suppression with adaptive throttling, periodic full
  refresh (the bytes gate).

Child clusters are synthetic summary generators over one fake GRM-shaped
servant per cluster (building 256 full 100-node stacks would measure the
simulator, not the wide-area protocol — the S3 precedent).  Workload per
round: ``CHURN_PERIOD``-th of the clusters move their spare-CPU figure
(exact 0.25-grid values, so incremental running sums stay bit-equal to
the oracle), summaries flow, then a burst of ``submit_remote`` calls
arrives — mostly probes that no cluster can host (the hot case: wide-area
submission happens exactly when local clusters are full), a fraction
placeable.  Uplink bytes are accumulated only around the summary phase;
submit cost only around the submit phase, measured at the parent servant
(the caller→parent request marshalling is byte-identical in every mode
and already characterised by E11; dials to children go through real
stubs and are included).

Rows land in ``BENCH_S5.json`` with ``--bench-json``; the committed file
is the CI baseline and the gates (>= 5x submit-path cost down and >= 3x
uplink bytes down at 256 clusters, seed/indexed placement digests
identical, delta-mode candidates equal to the seed ranking oracle on the
same state) re-run in ``perf_smoke.py``.
"""

import hashlib
import time

from repro.core.hierarchy import ParentGrm
from repro.core.protocols import GRM_INTERFACE, PARENT_GRM_INTERFACE
from repro.core.update_protocol import FULL, DeltaSender
from repro.orb.core import Orb
from repro.orb.transport import InProcDomain
from repro.sim.events import EventLoop
from repro.analysis.metrics import Table

from conftest import save_json, save_result

SCALING_CLUSTERS = (64, 256)
NODES_PER_CLUSTER = 100
MODES = ("seed", "indexed", "indexed+delta")
ROUNDS = 36                     # simulated summary intervals per run
BASE_INTERVAL = 300.0
MAX_INTERVAL = 8 * BASE_INTERVAL
FULL_REFRESH_EVERY = 10
CHURN_PERIOD = 20               # 5% of the clusters change per round
SUBMITS_PER_ROUND = 64
PLACEABLE_EVERY = 128           # 1/128 of submits can actually be hosted
ORACLE_EVERY = 16               # delta-mode submits checked vs the oracle
AGG_PROBES = 5000               # aggregate_summary() calls timed at the end


class SummaryOnlyChildGrm:
    """GRM-shaped servant: accepts wide-area submits, nothing else runs."""

    def __init__(self, name):
        self.name = name
        self.submitted = 0

    def submit(self, spec):
        self.submitted += 1
        return f"{self.name}/job-{self.submitted}"

    def job_status(self, job_id):
        return {"state": "running"}

    def cancel_job(self, job_id):
        pass

    def register_node(self, status, lrm_ior):
        pass

    def unregister_node(self, node):
        pass

    def send_update(self, status):
        pass

    def send_delta(self, node, delta):
        pass

    def register_asct(self, job_id, asct_ior):
        pass

    def task_completed(self, node, task_id, result):
        pass

    def task_evicted(self, node, task_id, progress, resume):
        pass

    def task_reached_limit(self, node, task_id):
        pass


def cluster_summary(i, now=0.0):
    """Synthetic per-cluster aggregate; floats on the exact 0.25 grid."""
    return {
        "cluster": f"c{i:04}",
        "time": now,
        "nodes": NODES_PER_CLUSTER,
        "sharing_nodes": NODES_PER_CLUSTER - (i % 5),
        "free_cpu_total": 40.0 + (i % 16) * 1.25,
        "free_mem_total_mb": 256.0 * NODES_PER_CLUSTER,
        "max_node_mips": 1000.0 + (i % 7) * 250.0,
        "pending_tasks": i % 3,
    }


def make_specs():
    """(placeable, unplaceable) submit payloads, prebuilt once.

    The unplaceable probe asks for more aggregate CPU than any cluster
    advertises — the hot wide-area case: every local cluster is full and
    callers probe the federation.  Seed placement pays a full parse +
    scan + sort to find that out; the index answers from its first entry.
    """
    from repro.apps.spec import ApplicationSpec
    placeable = ApplicationSpec(name="wide", tasks=4, work_mips=1e5).to_dict()
    unplaceable = ApplicationSpec(
        name="probe", tasks=200, work_mips=1e5
    ).to_dict()
    return placeable, unplaceable


def build_plane(clusters, mode):
    """A registered ParentGrm + client stubs + per-cluster sender state."""
    domain = InProcDomain()
    server_orb = Orb("parent-orb", domain=domain)
    child_orb = Orb("children-orb", domain=domain)
    parent = ParentGrm(
        EventLoop(), server_orb, name="root",
        incremental_aggregation=(mode != "seed"),
        indexed_placement=(mode != "seed"),
    )
    parent_ior = server_orb.activate(
        parent, PARENT_GRM_INTERFACE, key="root/parent"
    ).to_string()
    uplink_stub = child_orb.stub(parent_ior, PARENT_GRM_INTERFACE)

    summaries = [cluster_summary(i) for i in range(clusters)]
    for i, summary in enumerate(summaries):
        child_ior = child_orb.activate(
            SummaryOnlyChildGrm(summary["cluster"]), GRM_INTERFACE,
            key=f"{summary['cluster']}/grm",
        ).to_string()
        uplink_stub.register_cluster(dict(summary), child_ior)

    senders = None
    next_due = None
    if mode == "indexed+delta":
        senders = []
        for summary in summaries:
            sender = DeltaSender(
                BASE_INTERVAL, full_refresh_every=FULL_REFRESH_EVERY,
                max_interval=MAX_INTERVAL,
            )
            sender.register(summary)
            senders.append(sender)
        next_due = [BASE_INTERVAL] * clusters
    return (server_orb, child_orb, parent, uplink_stub,
            summaries, senders, next_due)


def _oracle_order(parent, spec_dict, origin):
    """Seed ranking on the parent's *current* state (the placement oracle)."""
    from repro.apps.spec import ApplicationSpec
    spec = ApplicationSpec.from_dict(spec_dict)
    return [r.cluster for r in parent._rank_candidates(spec, origin)]


def drive(parent, server_orb, uplink_stub, summaries,
          senders, next_due, rounds=ROUNDS):
    """Run the interleaved summary/submit workload; returns the tallies."""
    clusters = len(summaries)
    placeable, unplaceable = make_specs()
    placements = hashlib.sha256()
    uplink_bytes = 0
    uplink_msgs = 0
    submit_wall = 0.0
    submits = 0
    oracle_mismatches = 0
    for r in range(1, rounds + 1):
        now = r * BASE_INTERVAL
        # Deterministic churn on the exact 0.25 grid: every
        # CHURN_PERIOD-th cluster moves its spare CPU this round.
        for i in range(clusters):
            if (i + r) % CHURN_PERIOD == 0:
                summaries[i]["free_cpu_total"] = \
                    40.0 + ((i + r) % 16) * 1.25
                summaries[i]["pending_tasks"] = (i + r) % 3

        # -- summary phase: only these bytes count as uplink traffic --
        bytes_before = server_orb.stats()["bytes_received"]
        if senders is None:
            for summary in summaries:
                summary["time"] = now
                uplink_stub.send_summary(dict(summary))
                uplink_msgs += 1
        else:
            for i, sender in enumerate(senders):
                if now < next_due[i]:
                    continue
                summary = summaries[i]
                summary["time"] = now
                kind, payload = sender.encode(summary)
                if kind == FULL:
                    uplink_stub.send_summary(dict(payload))
                else:
                    uplink_stub.send_summary_delta(
                        summary["cluster"], dict(payload)
                    )
                next_due[i] = now + sender.current_interval
                uplink_msgs += 1
        # The parent-to-grandparent uplink reads the aggregate once per
        # interval (O(children) in seed mode, O(1) incrementally).
        parent.aggregate_summary()
        uplink_bytes += server_orb.stats()["bytes_received"] - bytes_before

        # -- submit phase: wide-area placement cost at the servant --
        start = time.perf_counter()
        for s in range(SUBMITS_PER_ROUND):
            k = (r - 1) * SUBMITS_PER_ROUND + s
            spec = placeable if k % PLACEABLE_EVERY == 0 else unplaceable
            origin = f"c{(k * 7) % clusters:04}"
            job_id = parent.submit_remote(dict(spec), origin)
            placements.update(job_id.encode())
        submit_wall += time.perf_counter() - start
        submits += SUBMITS_PER_ROUND

        # Delta-mode placement can lag the senders (throttling trades
        # freshness for bytes), so it is checked against the seed
        # ranking on the SAME parent state instead of the seed digest.
        if senders is not None and r % 2 == 0:
            for spec, tasks in ((placeable, 4), (unplaceable, 200)):
                indexed = [
                    rec.cluster for rec in parent._indexed_candidates(
                        float(tasks), tasks, 0.0, "c0000"
                    )
                ]
                if indexed != _oracle_order(parent, spec, "c0000"):
                    oracle_mismatches += 1
    return {
        "uplink_messages": uplink_msgs,
        "uplink_bytes": uplink_bytes,
        "submits": submits,
        "submit_cost_s": submit_wall,
        "placements_digest": placements.hexdigest(),
        "oracle_mismatches": oracle_mismatches,
    }


def measure_wide_area(clusters, mode, rounds=ROUNDS):
    """One full run; returns the S5 metric row for (clusters, mode)."""
    (server_orb, child_orb, parent, uplink_stub,
     summaries, senders, next_due) = build_plane(clusters, mode)
    try:
        tallies = drive(parent, server_orb, uplink_stub,
                        summaries, senders, next_due, rounds)
        # Incremental aggregation must still agree with the seed
        # recompute after the whole churned run.
        assert parent.aggregate_summary() == parent.aggregate_oracle()
        assert parent.summaries_received == tallies["uplink_messages"]
        start = time.perf_counter()
        for _ in range(AGG_PROBES):
            parent.aggregate_summary()
        agg_elapsed = time.perf_counter() - start
        return {
            "clusters": clusters,
            "nodes_simulated": clusters * NODES_PER_CLUSTER,
            "mode": mode,
            "rounds": rounds,
            "uplink_messages": tallies["uplink_messages"],
            "uplink_bytes": tallies["uplink_bytes"],
            "bytes_per_summary": round(
                tallies["uplink_bytes"] / tallies["uplink_messages"], 1
            ),
            "submits": tallies["submits"],
            "submit_cost_s": round(tallies["submit_cost_s"], 4),
            "submits_per_wall_s": round(
                tallies["submits"] / tallies["submit_cost_s"], 1
            ),
            "aggregates_per_wall_s": round(AGG_PROBES / agg_elapsed, 1),
            "placements_digest": tallies["placements_digest"],
            "oracle_mismatches": tallies["oracle_mismatches"],
            "placements_skipped_by_index":
                parent.placements_skipped_by_index,
        }
    finally:
        parent.stop()
        server_orb.shutdown()
        child_orb.shutdown()


def run_experiment():
    table = Table(
        ["clusters", "nodes", "mode", "summaries", "KB uplink",
         "bytes/summary", "submits/s (wall)", "aggregates/s"],
        title="S5: wide-area plane cost per 36 simulated intervals",
    )
    rows = []
    for clusters in SCALING_CLUSTERS:
        for mode in MODES:
            row = measure_wide_area(clusters, mode)
            rows.append(row)
            table.add_row(
                clusters, row["nodes_simulated"], mode,
                row["uplink_messages"],
                f"{row['uplink_bytes'] / 1024.0:,.0f}",
                f"{row['bytes_per_summary']:,.0f}",
                f"{row['submits_per_wall_s']:,.0f}",
                f"{row['aggregates_per_wall_s']:,.0f}",
            )
    return table, rows


def _row(rows, clusters, mode):
    return next(
        r for r in rows if r["clusters"] == clusters and r["mode"] == mode
    )


def test_s5_wide_area(benchmark):
    table, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_result("s5_wide_area", table.render())
    save_json("S5", {
        "experiment": "s5_wide_area",
        "rounds": ROUNDS,
        "base_interval_s": BASE_INTERVAL,
        "churn_period": CHURN_PERIOD,
        "nodes_per_cluster": NODES_PER_CLUSTER,
        "rows": rows,
    })
    for clusters in SCALING_CLUSTERS:
        seed = _row(rows, clusters, "seed")
        indexed = _row(rows, clusters, "indexed")
        delta = _row(rows, clusters, "indexed+delta")
        # Same summaries, same rounds: indexed placement must make the
        # exact decisions the seed scan+sort makes, submit for submit.
        assert indexed["placements_digest"] == seed["placements_digest"]
        # The index pruned unfit children before any remote round-trip.
        assert indexed["placements_skipped_by_index"] > 0
        # Throttling must actually shed summaries (and with them most
        # of the uplink bytes — per-message framing dominates the small
        # CLUSTER_SUMMARY struct, so the win is suppression, not
        # per-message shrinkage).
        assert delta["uplink_messages"] < seed["uplink_messages"] / 2
        assert delta["uplink_bytes"] < seed["uplink_bytes"] / 2
        # Lagged state is allowed; wrong ranking on that state is not.
        assert delta["oracle_mismatches"] == 0
    seed = _row(rows, 256, "seed")
    indexed = _row(rows, 256, "indexed")
    delta = _row(rows, 256, "indexed+delta")
    # The headline claims the CI smoke re-checks against the committed
    # baseline: >= 5x submit-path cost down from indexed placement alone,
    # >= 3x uplink bytes down from delta uplinks, at 256 clusters.
    assert seed["submit_cost_s"] / indexed["submit_cost_s"] >= 5.0
    assert seed["uplink_bytes"] / delta["uplink_bytes"] >= 3.0
