"""E4 — Usage-pattern-aware scheduling vs availability-only policies.

The paper's central scheduling claim: predicting idle periods lets the
GRM "place [applications] on idle nodes with lower probability of
becoming busy before the computation is completed".  Identical machine
seeds and workload under four policies; two weeks of LUPA training
precede the measured batch.  Expected shape: pattern_aware has the
fewest evictions and least wasted CPU; random the most.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table, describe
from repro.core.ncc import VACATE_POLICY
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.usage import NIGHT_OWL, OFFICE_WORKER, STUDENT_LAB

from conftest import run_once, save_result

NODES = 12
JOBS = 5
WORK_MIPS = 7.2e6          # ~2 idle hours at 1000 MIPS
TRAINING_DAYS = 9
SEEDS = (31, 32, 33)


def run_policy(policy, seed=31):
    grid = Grid(
        seed=seed, policy=policy, lupa_enabled=True,
        lupa_min_history_days=7, update_interval=120.0, tick_interval=60.0,
    )
    grid.add_cluster("c0")
    profiles = [OFFICE_WORKER] * 6 + [STUDENT_LAB] * 3 + [NIGHT_OWL] * 3
    for i, profile in enumerate(profiles):
        grid.add_node("c0", f"n{i:02}", profile=profile,
                      sharing=VACATE_POLICY)
    grid.run_for(TRAINING_DAYS * SECONDS_PER_DAY)
    grid.run_for(9 * SECONDS_PER_HOUR)   # Monday 09:00 of week 3

    job_ids = [
        grid.submit(ApplicationSpec(
            name=f"job{j}", work_mips=WORK_MIPS,
            metadata={"checkpoint_interval_s": 900.0},
        ))
        for j in range(JOBS)
    ]
    deadline = grid.loop.now + 3 * SECONDS_PER_DAY
    while grid.loop.now < deadline:
        grid.run_for(SECONDS_PER_HOUR)
        if all(grid.job(j).done for j in job_ids):
            break

    jobs = [grid.job(j) for j in job_ids]
    makespans = [j.makespan for j in jobs if j.makespan is not None]
    return {
        "completed": len(makespans),
        "p50_makespan_h": describe(makespans)["p50"] / 3600.0
        if makespans else float("nan"),
        "evictions": sum(t.evictions for j in jobs for t in j.tasks),
        "wasted_cpu_min": sum(
            t.wasted_mips for j in jobs for t in j.tasks
        ) / 1000.0 / 60.0,
    }


def run_experiment():
    table = Table(
        ["policy", "jobs completed", "p50 makespan (h)", "evictions",
         "wasted CPU (min)"],
        title=(
            "E4: scheduling policies on a mixed desktop pool\n"
            f"({NODES} nodes, {JOBS} x {WORK_MIPS:.0e} MI jobs, "
            f"submitted weekday 09:00 after {TRAINING_DAYS} days of LUPA "
            f"training; mean of {len(SEEDS)} seeds)"
        ),
    )
    results = {}
    for policy in ("random", "first_fit", "fastest_first", "pattern_aware"):
        runs = [run_policy(policy, seed=seed) for seed in SEEDS]
        outcome = {
            "completed": min(r["completed"] for r in runs),
            "p50_makespan_h": sum(r["p50_makespan_h"] for r in runs)
            / len(runs),
            "evictions": sum(r["evictions"] for r in runs) / len(runs),
            "wasted_cpu_min": sum(r["wasted_cpu_min"] for r in runs)
            / len(runs),
        }
        results[policy] = outcome
        table.add_row(
            policy, f"{outcome['completed']}/{JOBS}",
            outcome["p50_makespan_h"], outcome["evictions"],
            outcome["wasted_cpu_min"],
        )
    return table, results


def test_e4_scheduling_policies(benchmark):
    table, results = run_once(benchmark, run_experiment)
    save_result("e4_scheduling_policies", table.render(), table=table)
    # Everyone finishes the batch eventually...
    assert all(r["completed"] == JOBS for r in results.values())
    # ...but the pattern-aware policy wastes the least and evicts least
    # among the availability-only alternatives.
    baseline = min(
        results[p]["evictions"]
        for p in ("random", "first_fit", "fastest_first")
    )
    assert results["pattern_aware"]["evictions"] <= baseline
