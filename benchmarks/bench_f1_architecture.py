"""F1 — Figure 1: InteGrade's Intra-Cluster Architecture.

The paper's only figure is a component diagram.  This benchmark
assembles a live cluster with every node kind the figure shows (Cluster
Manager, User Node, Resource Provider Node, Dedicated Node), extracts
the component placement from the running system, and checks it against
the figure: GRM/GUPA/Trader on the manager; LRM on every grid node;
LUPA on workstations but NOT on dedicated nodes (the figure's footnote);
NCC per provider; ASCT on user nodes; and the two component pairs
actually talking over the ORB.
"""

from repro import ApplicationSpec, Grid
from repro.analysis.metrics import Table
from repro.sim.usage import OFFICE_WORKER

from conftest import run_once, save_result


def build_figure1_cluster():
    grid = Grid(seed=1, lupa_enabled=True)
    grid.add_cluster("cluster0")
    for i in range(3):
        grid.add_node("cluster0", f"provider{i}", profile=OFFICE_WORKER)
    grid.add_node("cluster0", "dedicated0", dedicated=True)
    asct = grid.make_asct("cluster0", user="user0")
    grid.run_for(600)
    asct.submit(ApplicationSpec(name="probe", work_mips=1e5))
    grid.run_for(600)
    return grid, asct


def component_inventory(grid):
    cluster = grid.clusters["cluster0"]
    rows = []
    rows.append(("Cluster Manager", "GRM", True))
    rows.append(("Cluster Manager", "GUPA", True))
    rows.append(("Cluster Manager", "Trader (offers)", cluster.grm.trader.offer_count))
    rows.append(("Cluster Manager", "Naming (bindings)", len(cluster.naming.list(""))))
    for name, node in sorted(cluster.nodes.items()):
        rows.append((name, "LRM", True))
        rows.append((name, "NCC", node.ncc is not None))
        rows.append((name, "LUPA", node.lupa is not None))
    return rows


def run_experiment():
    grid, asct = build_figure1_cluster()
    cluster = grid.clusters["cluster0"]

    table = Table(["node", "component", "present/size"],
                  title="F1: components of a live InteGrade cluster")
    for node, component, value in component_inventory(grid):
        table.add_row(node, component, value)

    checks = Table(["architectural property (Figure 1)", "holds"],
                   title="\nF1: structural checks against the paper's figure")
    nodes = cluster.nodes
    checks.add_row(
        "LRM on every grid node",
        all(n.lrm is not None for n in nodes.values()),
    )
    checks.add_row(
        "LUPA on workstations only (not on dedicated nodes)",
        all(
            (n.lupa is not None) == (not n.dedicated)
            for n in nodes.values()
        ),
    )
    checks.add_row(
        "GRM stores LRM offers in the Trader",
        cluster.grm.trader.offer_count == len(nodes),
    )
    checks.add_row(
        "LRMs registered with the GRM (Information Update Protocol)",
        cluster.grm.stats.updates_received > 0,
    )
    checks.add_row(
        "User Node submits via ASCT and receives notifications",
        len(asct.events) > 0,
    )
    checks.add_row(
        "Reservation & Execution Protocol placed the probe job",
        cluster.grm.stats.placements >= 1,
    )
    checks.add_row(
        "all component traffic crossed the ORB",
        grid.protocol_stats()["requests_handled"] > 0,
    )
    return table.render() + "\n" + checks.render(), checks


def test_f1_architecture(benchmark):
    text, checks = run_once(benchmark, run_experiment)
    save_result("f1_architecture", text, table=checks)
    assert all(row[1] == "yes" for row in checks.rows), text
