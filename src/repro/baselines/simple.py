"""Ablation variants of the InteGrade GRM.

:class:`OptimisticGrm` answers the A1 ablation: what if the GRM treated
its (possibly stale) Trader contents as the truth instead of a *hint*?
It asks only the single best-ranked node per scheduling pass; a refusal
(stale offer) costs a full scheduling interval instead of moving down
the candidate list.  The paper's negotiate-then-reserve protocol is the
default GRM behaviour; E2/A1 quantify the difference.
"""

from repro.core.grm import Grm


class OptimisticGrm(Grm):
    """A GRM that trusts the hint: one candidate, no fallback."""

    def _place_task(self, job, task, exclude=(), ctx=None):
        from repro.core.scheduler import ScheduleContext

        if ctx is None:
            ctx = ScheduleContext(
                spec=job.spec,
                remaining_mips=task.remaining_mips,
                now=self._loop.now,
                gupa=self.gupa,
            )
        else:
            ctx.remaining_mips = task.remaining_mips
        offers = [
            o for o in self._offers_for(job.spec)
            if o["node"] not in exclude
        ]
        ordered = self.policy.order(offers, ctx)
        if not ordered:
            return False
        # Exactly one attempt: stale information means a lost pass.
        node = ordered[0]["node"]
        if self._reserve_on(node, job, task):
            if self._launch_on(node, job, task):
                return True
            self._cancel_reservation(node, task.task_id)
        return False
