"""Baseline systems from the paper's Related Work section.

The paper positions InteGrade against Condor (matchmaking, vacate-on-
owner-return, limited parallel support) and SETI@home/BOINC (pull-based
work units, no inter-node communication).  These baselines run on the
same simulated workstations so the comparisons in experiment E8 measure
scheduling/communication *models*, not substrate differences.
"""

from repro.baselines.condor import CondorJob, CondorPool
from repro.baselines.boinc import BoincProject, WorkUnit
from repro.baselines.simple import OptimisticGrm

__all__ = [
    "CondorJob",
    "CondorPool",
    "BoincProject",
    "WorkUnit",
    "OptimisticGrm",
]
