"""A Condor-style cycle scavenger.

Faithful to the behaviours the paper contrasts against (Section 2):

* ClassAd **matchmaking**: machines advertise properties plus a START
  constraint; jobs advertise requirements; the matchmaker pairs them.
* **Vacate on owner return**: "Condor - A Hunter of Idle Workstations" —
  a claimed machine whose owner comes back kicks the job off (with its
  checkpoint, when the job was built with the checkpoint library).
* **Limited parallel support**: parallel (gang) jobs may only be matched
  to *partially-reserved* (dedicated) machines, per Wright 2001 — on a
  pool of pure desktops they simply wait.
"""

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.constraints import Constraint, Preference
from repro.apps.spec import ApplicationSpec, SEQUENTIAL
from repro.sim.events import EventLoop
from repro.sim.workstation import Workstation

DEFAULT_NEGOTIATION_INTERVAL = 60.0
DEFAULT_TICK = 30.0

#: Classic Condor START policy: owner away and no recent keyboard.
DEFAULT_START = "owner_active == false"


@dataclass
class CondorJob:
    """One queued job (a cluster of ``tasks`` identical processes).

    ``rank`` is the ClassAd Rank expression: among eligible machines,
    higher rank is matched first (e.g. ``"mips"`` for fastest-first).
    """

    job_id: str
    spec: ApplicationSpec
    submitted_at: float
    checkpointed: bool = True          # built with the checkpoint library?
    rank: str = ""
    tasks_remaining: list = field(default_factory=list)
    completed_at: Optional[float] = None
    evictions: int = 0
    wasted_mips: float = 0.0

    @property
    def done(self) -> bool:
        return self.completed_at is not None


@dataclass
class _MachineSlot:
    workstation: Workstation
    dedicated: bool
    start: Constraint
    claimed_by: Optional[tuple] = None     # (job, task_index)
    progress_mips: float = 0.0
    checkpoint_mips: float = 0.0


@dataclass
class _TaskRef:
    index: int
    work_mips: float
    progress_mips: float = 0.0


class CondorPool:
    """The matchmaker plus its machine and job queues."""

    def __init__(
        self,
        loop: EventLoop,
        negotiation_interval: float = DEFAULT_NEGOTIATION_INTERVAL,
        tick: float = DEFAULT_TICK,
        checkpoint_interval_s: float = 1800.0,
    ):
        self._loop = loop
        self._machines: dict[str, _MachineSlot] = {}
        self._queue: list[CondorJob] = []
        self._jobs: dict[str, CondorJob] = {}
        self._ids = itertools.count()
        self.checkpoint_interval_s = checkpoint_interval_s
        self.matches = 0
        self.evictions = 0
        self.completions = 0
        loop.every(negotiation_interval, self._negotiate)
        loop.every(tick, self._tick)
        self._tick_interval = tick
        self._next_checkpoint = loop.now + checkpoint_interval_s

    # -- pool management ------------------------------------------------------

    def add_machine(
        self,
        workstation: Workstation,
        dedicated: bool = False,
        start: str = DEFAULT_START,
    ) -> None:
        """Advertise a machine to the matchmaker."""
        if workstation.name in self._machines:
            raise ValueError(f"machine {workstation.name!r} already in pool")
        slot = _MachineSlot(workstation, dedicated, Constraint(start))
        self._machines[workstation.name] = slot
        workstation.on_owner_change(
            lambda present, s=slot: self._owner_changed(s, present)
        )

    def submit(
        self,
        spec: ApplicationSpec,
        checkpointed: bool = True,
        rank: str = "",
    ) -> str:
        """Queue a job; parallel jobs need dedicated machines to match."""
        if rank:
            Preference(rank)   # fail fast on syntax errors
        job_id = f"condor{next(self._ids)}"
        job = CondorJob(
            job_id, spec, self._loop.now, checkpointed, rank,
            tasks_remaining=[
                _TaskRef(i, spec.work_mips) for i in range(spec.tasks)
            ],
        )
        self._jobs[job_id] = job
        self._queue.append(job)
        return job_id

    def job(self, job_id: str) -> CondorJob:
        return self._jobs[job_id]

    @property
    def idle_unclaimed(self) -> int:
        return sum(
            1 for s in self._machines.values()
            if s.claimed_by is None and self._start_ok(s)
        )

    # -- matchmaking --------------------------------------------------------------

    def _machine_ad(self, slot: _MachineSlot) -> dict:
        spec = slot.workstation.machine.spec
        return {
            "node": slot.workstation.name,
            "mips": spec.mips,
            "ram_mb": spec.ram_mb,
            "disk_mb": spec.disk_mb,
            "os": spec.os,
            "arch": spec.arch,
            "owner_active": slot.workstation.owner_present,
            "dedicated": slot.dedicated,
            "cpu_free": 0.0 if slot.workstation.owner_present else 1.0,
            "mem_free_mb": spec.ram_mb - slot.workstation.machine.owner_mem_mb,
            "disk_free_mb": spec.disk_mb,
            "net_mbps": spec.net_mbps,
            "net_free_mbps": slot.workstation.machine.net_free_mbps(),
        }

    def _start_ok(self, slot: _MachineSlot) -> bool:
        return slot.start.matches(self._machine_ad(slot))

    def _eligible(self, job: CondorJob, slot: _MachineSlot) -> bool:
        if slot.claimed_by is not None:
            return False
        if job.spec.kind != SEQUENTIAL and not slot.dedicated:
            return False    # parallel universe needs reserved nodes
        if not self._start_ok(slot):
            return False
        return job.spec.requirements.satisfied_by(self._machine_ad(slot))

    def _negotiate(self) -> None:
        for job in list(self._queue):
            if not job.tasks_remaining:
                continue
            free = [
                s for s in self._machines.values() if self._eligible(job, s)
            ]
            if job.rank:
                ranker = Preference(job.rank)
                free.sort(
                    key=lambda s: ranker.score(self._machine_ad(s)),
                    reverse=True,
                )
            if job.spec.kind != SEQUENTIAL:
                # Gang semantics: all remaining processes start together.
                if len(free) < len(job.tasks_remaining):
                    continue
                for task, slot in zip(list(job.tasks_remaining), free):
                    self._claim(slot, job, task)
            else:
                for slot in free:
                    if not job.tasks_remaining:
                        break
                    self._claim(slot, job, job.tasks_remaining[0])

    def _claim(self, slot: _MachineSlot, job: CondorJob, task: _TaskRef) -> None:
        job.tasks_remaining.remove(task)
        slot.claimed_by = (job, task)
        slot.progress_mips = task.progress_mips
        slot.checkpoint_mips = task.progress_mips
        self.matches += 1

    # -- execution -------------------------------------------------------------------

    def _tick(self) -> None:
        now = self._loop.now
        checkpoint_due = now >= self._next_checkpoint
        if checkpoint_due:
            self._next_checkpoint = now + self.checkpoint_interval_s
        for slot in self._machines.values():
            entry = slot.claimed_by
            if entry is None:
                continue
            job, task = entry
            # Condor runs the job at full speed while the owner is away;
            # there is no fractional-share mode on opportunistic nodes.
            if not slot.workstation.owner_present:
                slot.progress_mips += (
                    slot.workstation.machine.spec.mips * self._tick_interval
                )
            if checkpoint_due and job.checkpointed:
                slot.checkpoint_mips = slot.progress_mips
            if slot.progress_mips >= job.spec.work_mips:
                self._complete(slot, job, task)

    def _complete(self, slot: _MachineSlot, job: CondorJob, task: _TaskRef) -> None:
        slot.claimed_by = None
        self.completions += 1
        still_running = any(
            s.claimed_by is not None and s.claimed_by[0] is job
            for s in self._machines.values()
        )
        if not job.tasks_remaining and not still_running:
            job.completed_at = self._loop.now
            if job in self._queue:
                self._queue.remove(job)

    def _owner_changed(self, slot: _MachineSlot, present: bool) -> None:
        if not present or slot.claimed_by is None:
            return
        job, task = slot.claimed_by
        slot.claimed_by = None
        self.evictions += 1
        job.evictions += 1
        resume = slot.checkpoint_mips if job.checkpointed else 0.0
        job.wasted_mips += max(0.0, slot.progress_mips - resume)
        task.progress_mips = resume
        job.tasks_remaining.append(task)
        if job.spec.kind != SEQUENTIAL:
            # A lost gang member aborts the whole gang (no parallel
            # checkpointing, per the paper's account of 2003-era Condor).
            for other in self._machines.values():
                entry = other.claimed_by
                if entry is not None and entry[0] is job:
                    other.claimed_by = None
                    job.wasted_mips += other.progress_mips
                    entry[1].progress_mips = 0.0
                    job.tasks_remaining.append(entry[1])
            for member in job.tasks_remaining:
                member.progress_mips = 0.0
