"""A BOINC-style volunteer computing project.

The behaviours the paper contrasts against (Section 2):

* clients **pull** work units from a central server on their own
  schedule — the server never pushes or negotiates;
* **no inter-node communication**: applications must decompose into
  independent work units ("negligible data dependencies between its
  nodes"); parallel/BSP applications are rejected at submission;
* **redundant computation**: each work unit is issued ``quorum`` times
  and validated when enough matching results return;
* clients compute only while their owner is away and checkpoint locally,
  so a pause loses no work (but a detached client's unit is reissued
  after a deadline).
"""

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.spec import ApplicationSpec, SEQUENTIAL
from repro.sim.events import EventLoop
from repro.sim.workstation import Workstation

DEFAULT_CONNECT_INTERVAL = 600.0
DEFAULT_TICK = 30.0
DEFAULT_DEADLINE = 7 * 24 * 3600.0


class UnsupportedApplication(Exception):
    """BOINC cannot run applications whose tasks communicate."""


@dataclass
class WorkUnit:
    """One unit of independent work, replicated ``quorum`` times."""

    unit_id: str
    job_id: str
    work_mips: float
    quorum: int
    results: int = 0
    issued: int = 0
    validated: bool = False
    deadline_at: dict = field(default_factory=dict)   # client -> deadline


@dataclass
class _Client:
    workstation: Workstation
    unit: Optional[WorkUnit] = None
    progress_mips: float = 0.0
    next_connect: float = 0.0
    results_returned: int = 0


@dataclass
class BoincJob:
    job_id: str
    spec: ApplicationSpec
    submitted_at: float
    units: list = field(default_factory=list)
    completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class BoincProject:
    """The server plus its registered volunteer clients."""

    def __init__(
        self,
        loop: EventLoop,
        tick: float = DEFAULT_TICK,
        deadline: float = DEFAULT_DEADLINE,
    ):
        self._loop = loop
        self._clients: dict[str, _Client] = {}
        self._jobs: dict[str, BoincJob] = {}
        self._units: list[WorkUnit] = []
        self._ids = itertools.count()
        self.deadline = deadline
        self.units_issued = 0
        self.results_received = 0
        self.redundant_results = 0
        loop.every(tick, self._tick)
        self._tick_interval = tick

    # -- project management ------------------------------------------------------

    def add_client(
        self,
        workstation: Workstation,
        connect_interval: float = DEFAULT_CONNECT_INTERVAL,
    ) -> None:
        """Register a volunteer machine that polls for work."""
        if workstation.name in self._clients:
            raise ValueError(f"client {workstation.name!r} already attached")
        client = _Client(workstation)
        self._clients[workstation.name] = client
        self._loop.every(
            connect_interval,
            lambda c=client: self._connect(c),
            start_after=connect_interval,
        )

    def submit(self, spec: ApplicationSpec, quorum: int = 2) -> str:
        """Split an application into replicated work units."""
        if spec.kind != SEQUENTIAL:
            raise UnsupportedApplication(
                "BOINC work units cannot communicate; "
                f"{spec.kind!r} applications are not supported"
            )
        if quorum < 1:
            raise ValueError("quorum must be >= 1")
        job_id = f"boinc{next(self._ids)}"
        job = BoincJob(job_id, spec, self._loop.now)
        for i in range(spec.tasks):
            unit = WorkUnit(
                f"{job_id}.u{i}", job_id, spec.work_mips, quorum
            )
            job.units.append(unit)
            self._units.append(unit)
        self._jobs[job_id] = job
        return job_id

    def job(self, job_id: str) -> BoincJob:
        return self._jobs[job_id]

    # -- the client-server protocol --------------------------------------------------

    def _next_unit_for(self, client: _Client) -> Optional[WorkUnit]:
        for unit in self._units:
            if unit.validated:
                continue
            if client.workstation.name in unit.deadline_at:
                continue   # one copy per client (result validation needs
                           # independent hosts)
            if self._needs_issue(unit):
                return unit
        return None

    def _needs_issue(self, unit: WorkUnit) -> bool:
        """More copies needed?  Results plus live in-flight < quorum."""
        now = self._loop.now
        in_flight = sum(
            1 for deadline in unit.deadline_at.values() if deadline >= now
        )
        return unit.results + in_flight < unit.quorum

    def _connect(self, client: _Client) -> None:
        """A client's periodic scheduler RPC: report and/or fetch."""
        if client.unit is not None:
            return
        unit = self._next_unit_for(client)
        if unit is None:
            return
        unit.issued += 1
        unit.deadline_at[client.workstation.name] = self._loop.now + self.deadline
        client.unit = unit
        client.progress_mips = 0.0
        self.units_issued += 1

    def _tick(self) -> None:
        for client in self._clients.values():
            unit = client.unit
            if unit is None:
                continue
            # Owner present => computation pauses (local checkpoint keeps
            # the progress); owner away => full speed.
            if not client.workstation.owner_present:
                client.progress_mips += (
                    client.workstation.machine.spec.mips * self._tick_interval
                )
            if client.progress_mips >= unit.work_mips:
                self._report(client, unit)

    def _report(self, client: _Client, unit: WorkUnit) -> None:
        client.unit = None
        client.results_returned += 1
        self.results_received += 1
        # A delivered copy is no longer in flight, but the host stays
        # blocked from ever receiving this unit again (quorum results
        # must come from independent hosts).
        unit.deadline_at[client.workstation.name] = -1.0
        if unit.validated:
            self.redundant_results += 1
            return
        unit.results += 1
        if unit.results >= unit.quorum:
            unit.validated = True
            self._maybe_complete(self._jobs[unit.job_id])

    def _maybe_complete(self, job: BoincJob) -> None:
        if all(unit.validated for unit in job.units):
            job.completed_at = self._loop.now

    # -- monitoring ----------------------------------------------------------------------

    def progress(self, job_id: str) -> float:
        job = self._jobs[job_id]
        if not job.units:
            return 1.0
        return sum(u.validated for u in job.units) / len(job.units)
