"""K-means clustering over usage periods.

The paper (Section 3) prescribes "clustering algorithms [JW83] ... to
extract behavioral categories" from node-usage periods.  This module
implements k-means with deterministic k-means++-style seeding, plus a
silhouette score for choosing k.

Distance computations are chunked so memory stays O(chunk x dims)
instead of the O(n x k x dims) / O(n x n x dims) broadcast blow-ups the
naive forms materialize.  The k-means path (seeding, assignment) keeps
the *exact* subtract/square/sum/sqrt sequence per output element that
``np.linalg.norm(data[:, None, :] - centroids[None, :, :], axis=2)``
performs, so labels and centroids are bit-identical to the reference
code — LUPA profiles built from them feed deterministic scheduling
replays.  The silhouette score, which never feeds a deterministic
path, uses the cheaper ``x**2 + y**2 - 2xy`` form with ``np.bincount``
aggregation.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Rows per block in chunked distance computations.
_CHUNK_ROWS = 2048


@dataclass
class ClusteringResult:
    """Centroids, per-sample labels, and the within-cluster inertia."""

    centroids: np.ndarray     # shape (k, dims)
    labels: np.ndarray        # shape (n,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def predict(self, sample: np.ndarray) -> int:
        """Index of the centroid nearest to ``sample``."""
        distances = np.linalg.norm(self.centroids - sample, axis=1)
        return int(np.argmin(distances))

    def cluster_sizes(self) -> list:
        """Number of samples assigned to each cluster."""
        return [int(np.sum(self.labels == i)) for i in range(self.k)]


def _distances_to(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Euclidean distances (n, k) without the (n, k, dims) broadcast.

    Per centroid and per row block, the summand sequence of each output
    element (subtract, elementwise square, ``add.reduce`` over the
    contiguous last axis, sqrt) is exactly what the broadcast
    ``np.linalg.norm(..., axis=2)`` performs, so the result is
    bit-identical while peak temporary memory is O(chunk x dims).
    """
    n = data.shape[0]
    k = centroids.shape[0]
    out = np.empty((n, k))
    for j in range(k):
        for start in range(0, n, _CHUNK_ROWS):
            block = data[start:start + _CHUNK_ROWS] - centroids[j]
            np.multiply(block, block, out=block)
            out[start:start + _CHUNK_ROWS, j] = np.sqrt(
                np.add.reduce(block, axis=1)
            )
    return out


def _seed_centroids(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids apart."""
    n = data.shape[0]
    centroids = [data[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(_distances_to(data, np.array(centroids)), axis=1)
        total = float(np.sum(distances ** 2))
        if total <= 0:
            centroids.append(data[rng.integers(n)])
            continue
        probs = distances ** 2 / total
        centroids.append(data[rng.choice(n, p=probs)])
    return np.array(centroids)


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-6,
    init: Optional[np.ndarray] = None,
) -> ClusteringResult:
    """Cluster ``data`` (n_samples x dims) into ``k`` groups.

    Deterministic for a given seed.  Raises ValueError when there are
    fewer samples than clusters.  ``init`` warm-starts the iteration
    from given (k, dims) centroids instead of k-means++ seeding — used
    by incremental LUPA relearning, where yesterday's centroids are
    already near the fixed point.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    n = data.shape[0]
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if n < k:
        raise ValueError(f"cannot form {k} clusters from {n} samples")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")

    rng = np.random.default_rng(seed)
    if init is not None:
        centroids = np.array(init, dtype=float)
        if centroids.shape != (k, data.shape[1]):
            raise ValueError(
                f"init must have shape {(k, data.shape[1])}, "
                f"got {centroids.shape}"
            )
    else:
        centroids = _seed_centroids(data, k, rng)
    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iter + 1):
        distances = _distances_to(data, centroids)
        labels = np.argmin(distances, axis=1)
        new_centroids = centroids.copy()
        for i in range(k):
            members = data[labels == i]
            if len(members):
                new_centroids[i] = members.mean(axis=0)
        shift = float(np.linalg.norm(new_centroids - centroids))
        centroids = new_centroids
        if shift < tol:
            break
    inertia = float(
        np.sum((data - centroids[labels]) ** 2)
    )
    return ClusteringResult(centroids, labels, inertia, iteration)


def silhouette_score(data: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient in [-1, 1]; higher = better separated.

    Returns 0.0 when every sample is in one cluster (undefined case).
    Pairwise distances are computed a row block at a time in the
    ``x**2 + y**2 - 2xy`` form and aggregated per cluster with
    ``np.bincount``, so memory stays O(chunk x n) instead of the full
    O(n**2 x dims) broadcast.  Numerically equivalent (not bit-equal) to
    :func:`silhouette_score_reference`.
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    n = data.shape[0]
    k = len(unique)
    label_index = np.searchsorted(unique, labels)
    counts = np.bincount(label_index, minlength=k)
    sq = np.add.reduce(data * data, axis=1)
    scores = np.zeros(n)
    rows_arange = np.arange(n)
    for start in range(0, n, _CHUNK_ROWS):
        stop = min(start + _CHUNK_ROWS, n)
        block = data[start:stop]
        d2 = sq[start:stop, None] + sq[None, :] - 2.0 * (block @ data.T)
        np.maximum(d2, 0.0, out=d2)
        dist = np.sqrt(d2)
        b = stop - start
        # Per-cluster distance sums for every row in the block, in one
        # flat bincount: bucket (row, cluster) pairs.
        flat_buckets = (
            np.repeat(np.arange(b) * k, n) + np.tile(label_index, b)
        )
        sums = np.bincount(
            flat_buckets, weights=dist.ravel(), minlength=b * k
        ).reshape(b, k)
        own = label_index[start:stop]
        own_counts = counts[own]
        block_rows = np.arange(b)
        with np.errstate(invalid="ignore", divide="ignore"):
            a = sums[block_rows, own] / (own_counts - 1)
            mean_other = sums / counts[None, :]
        mean_other[block_rows, own] = np.inf
        bvals = mean_other.min(axis=1)
        denom = np.maximum(a, bvals)
        with np.errstate(invalid="ignore"):
            s = np.where(denom == 0, 0.0, (bvals - a) / denom)
        s = np.where(own_counts <= 1, 0.0, s)
        scores[rows_arange[start:stop]] = s
    return float(np.mean(scores))


def silhouette_score_reference(data: np.ndarray, labels: np.ndarray) -> float:
    """The seed implementation: full O(n**2 x dims) pairwise broadcast.

    Kept as the semantic oracle for :func:`silhouette_score`; the
    equivalence tests check the chunked path against it.
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    n = data.shape[0]
    distances = np.linalg.norm(data[:, None, :] - data[None, :, :], axis=2)
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_count = int(np.sum(own_mask))
        if own_count <= 1:
            scores[i] = 0.0
            continue
        a = float(np.sum(distances[i][own_mask])) / (own_count - 1)
        b = min(
            float(np.mean(distances[i][labels == other]))
            for other in unique
            if other != own
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(np.mean(scores))


def best_k(
    data: np.ndarray,
    k_range: range,
    seed: int = 0,
) -> tuple:
    """Pick k from ``k_range`` by silhouette; returns (k, result)."""
    best: Optional[tuple] = None
    for k in k_range:
        if k >= len(data) or k < 2:
            continue
        result = kmeans(data, k, seed=seed)
        score = silhouette_score(data, result.labels)
        if best is None or score > best[0]:
            best = (score, k, result)
    if best is None:
        raise ValueError("k_range produced no valid clustering")
    return best[1], best[2]
