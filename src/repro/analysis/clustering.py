"""K-means clustering over usage periods.

The paper (Section 3) prescribes "clustering algorithms [JW83] ... to
extract behavioral categories" from node-usage periods.  This module
implements k-means with deterministic k-means++-style seeding, plus a
silhouette score for choosing k.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class ClusteringResult:
    """Centroids, per-sample labels, and the within-cluster inertia."""

    centroids: np.ndarray     # shape (k, dims)
    labels: np.ndarray        # shape (n,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def predict(self, sample: np.ndarray) -> int:
        """Index of the centroid nearest to ``sample``."""
        distances = np.linalg.norm(self.centroids - sample, axis=1)
        return int(np.argmin(distances))

    def cluster_sizes(self) -> list:
        """Number of samples assigned to each cluster."""
        return [int(np.sum(self.labels == i)) for i in range(self.k)]


def _seed_centroids(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids apart."""
    n = data.shape[0]
    centroids = [data[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(
            np.linalg.norm(data[:, None, :] - np.array(centroids)[None, :, :], axis=2),
            axis=1,
        )
        total = float(np.sum(distances ** 2))
        if total <= 0:
            centroids.append(data[rng.integers(n)])
            continue
        probs = distances ** 2 / total
        centroids.append(data[rng.choice(n, p=probs)])
    return np.array(centroids)


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> ClusteringResult:
    """Cluster ``data`` (n_samples x dims) into ``k`` groups.

    Deterministic for a given seed.  Raises ValueError when there are
    fewer samples than clusters.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    n = data.shape[0]
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if n < k:
        raise ValueError(f"cannot form {k} clusters from {n} samples")

    rng = np.random.default_rng(seed)
    centroids = _seed_centroids(data, k, rng)
    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iter + 1):
        distances = np.linalg.norm(data[:, None, :] - centroids[None, :, :], axis=2)
        labels = np.argmin(distances, axis=1)
        new_centroids = centroids.copy()
        for i in range(k):
            members = data[labels == i]
            if len(members):
                new_centroids[i] = members.mean(axis=0)
        shift = float(np.linalg.norm(new_centroids - centroids))
        centroids = new_centroids
        if shift < tol:
            break
    inertia = float(
        np.sum((data - centroids[labels]) ** 2)
    )
    return ClusteringResult(centroids, labels, inertia, iteration)


def silhouette_score(data: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient in [-1, 1]; higher = better separated.

    Returns 0.0 when every sample is in one cluster (undefined case).
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    n = data.shape[0]
    distances = np.linalg.norm(data[:, None, :] - data[None, :, :], axis=2)
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_count = int(np.sum(own_mask))
        if own_count <= 1:
            scores[i] = 0.0
            continue
        a = float(np.sum(distances[i][own_mask])) / (own_count - 1)
        b = min(
            float(np.mean(distances[i][labels == other]))
            for other in unique
            if other != own
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(np.mean(scores))


def best_k(
    data: np.ndarray,
    k_range: range,
    seed: int = 0,
) -> tuple:
    """Pick k from ``k_range`` by silhouette; returns (k, result)."""
    best: Optional[tuple] = None
    for k in k_range:
        if k >= len(data) or k < 2:
            continue
        result = kmeans(data, k, seed=seed)
        score = silhouette_score(data, result.labels)
        if best is None or score > best[0]:
            best = (score, k, result)
    if best is None:
        raise ValueError("k_range produced no valid clustering")
    return best[1], best[2]
