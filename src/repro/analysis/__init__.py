"""Statistical analysis: clustering for usage patterns, and experiment metrics."""

from repro.analysis.clustering import ClusteringResult, kmeans, silhouette_score
from repro.analysis.metrics import Table, describe, percentile

__all__ = [
    "ClusteringResult",
    "kmeans",
    "silhouette_score",
    "Table",
    "describe",
    "percentile",
]
