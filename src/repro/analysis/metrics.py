"""Experiment metrics and table rendering.

Every benchmark prints its results as rows, the way the paper's tables
would have; :class:`Table` is the one formatter they all share so
EXPERIMENTS.md stays consistent.
"""

import math
from typing import Iterable, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    # a + (b - a) * f is exact for a == b, unlike a*(1-f) + b*f, which
    # can drift outside [a, b] for large magnitudes.
    return float(ordered[low] + (ordered[high] - ordered[low]) * frac)


def describe(values: Sequence[float]) -> dict:
    """Mean, min, max, p50, p95, p99, stddev, and count for a sample.

    An empty sample returns count 0 and 0.0 for every statistic (rather
    than raising, so reports over possibly-empty series stay total);
    stddev is the population standard deviation, 0.0 for a single value.
    """
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "stddev": 0.0}
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return {
        "count": len(values),
        "mean": mean,
        "min": min(values),
        "max": max(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "stddev": math.sqrt(max(0.0, variance)),
    }


class Table:
    """A fixed-column ASCII table, printed by the benchmark harnesses."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> "Table":
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._format(c) for c in cells])
        return self

    @staticmethod
    def _format(cell) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1000 or magnitude < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
