"""Job and task lifecycle.

A submitted application becomes a :class:`Job` with one :class:`Task` per
process.  Both keep an explicit state machine with validated transitions
and a timestamped history, which the ASCT exposes as "application
progress" monitoring and the experiment harnesses mine for metrics.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.apps.spec import ApplicationSpec


class JobState(enum.Enum):
    PENDING = "pending"
    SCHEDULING = "scheduling"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


class TaskState(enum.Enum):
    PENDING = "pending"
    RESERVED = "reserved"
    RUNNING = "running"
    EVICTED = "evicted"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


_TASK_TRANSITIONS = {
    TaskState.PENDING: {TaskState.RESERVED, TaskState.CANCELLED, TaskState.FAILED},
    TaskState.RESERVED: {TaskState.RUNNING, TaskState.PENDING, TaskState.CANCELLED},
    TaskState.RUNNING: {
        TaskState.COMPLETED,
        TaskState.EVICTED,
        TaskState.FAILED,
        TaskState.CANCELLED,
    },
    TaskState.EVICTED: {TaskState.PENDING, TaskState.CANCELLED, TaskState.FAILED},
    TaskState.COMPLETED: set(),
    TaskState.FAILED: set(),
    TaskState.CANCELLED: set(),
}

TERMINAL_TASK_STATES = {TaskState.COMPLETED, TaskState.FAILED, TaskState.CANCELLED}


class InvalidTransition(Exception):
    """Raised on an illegal task or job state change."""


@dataclass
class HistoryEvent:
    """One timestamped lifecycle event."""

    time: float
    state: str
    detail: str = ""


class Task:
    """One schedulable unit of a job."""

    def __init__(self, job_id: str, index: int, work_mips: float):
        self.job_id = job_id
        self.index = index
        self.task_id = f"{job_id}.{index}"
        self.work_mips = work_mips
        self.progress_mips = 0.0
        self.state = TaskState.PENDING
        self.node: Optional[str] = None
        self.result = None            # payload output, delivered on completion
        self.attempts = 0
        self.evictions = 0
        self.wasted_mips = 0.0      # progress lost to evictions/failures
        self.history: list[HistoryEvent] = []

    @property
    def remaining_mips(self) -> float:
        return max(0.0, self.work_mips - self.progress_mips)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_TASK_STATES

    def transition(self, new_state: TaskState, now: float, detail: str = "") -> None:
        """Move to ``new_state``, enforcing the lifecycle graph."""
        allowed = _TASK_TRANSITIONS[self.state]
        if new_state not in allowed:
            raise InvalidTransition(
                f"task {self.task_id}: {self.state.value} -> {new_state.value}"
            )
        if new_state is TaskState.RUNNING:
            self.attempts += 1
        if new_state is TaskState.EVICTED:
            self.evictions += 1
        self.state = new_state
        self.history.append(HistoryEvent(now, new_state.value, detail))

    def advance(self, mips_done: float) -> None:
        """Credit computational progress to the task."""
        if mips_done < 0:
            raise ValueError("progress cannot be negative")
        self.progress_mips = min(self.work_mips, self.progress_mips + mips_done)

    def rollback(self, to_progress_mips: float = 0.0) -> None:
        """Lose progress (eviction without a checkpoint, or restart)."""
        if to_progress_mips > self.progress_mips + 1e-9:
            raise ValueError("cannot roll forward")
        self.wasted_mips += self.progress_mips - to_progress_mips
        self.progress_mips = to_progress_mips

    def __repr__(self):
        return (
            f"Task({self.task_id}, {self.state.value}, "
            f"{self.progress_mips:.0f}/{self.work_mips:.0f} MI, "
            f"node={self.node})"
        )


class Job:
    """A submitted application and its tasks."""

    def __init__(self, job_id: str, spec: ApplicationSpec, submitted_at: float):
        self.job_id = job_id
        self.spec = spec
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None
        self.forwarded_to: Optional[str] = None   # wide-area handoff target
        self.state = JobState.PENDING
        self.tasks = [
            Task(job_id, i, spec.work_mips) for i in range(spec.tasks)
        ]
        self.history: list[HistoryEvent] = [
            HistoryEvent(submitted_at, JobState.PENDING.value, "submitted")
        ]

    def set_state(self, new_state: JobState, now: float, detail: str = "") -> None:
        """Record a job-level state change (jobs have a looser lifecycle)."""
        if self.state in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED):
            raise InvalidTransition(
                f"job {self.job_id} is terminal ({self.state.value})"
            )
        self.state = new_state
        if new_state in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED):
            self.completed_at = now
        self.history.append(HistoryEvent(now, new_state.value, detail))

    def refresh_state(self, now: float) -> None:
        """Derive the job state from its tasks' states."""
        states = {t.state for t in self.tasks}
        if states <= {TaskState.COMPLETED}:
            if self.state is not JobState.COMPLETED:
                self.set_state(JobState.COMPLETED, now, "all tasks completed")
        elif TaskState.FAILED in states:
            if self.state is not JobState.FAILED:
                self.set_state(JobState.FAILED, now, "a task failed")
        elif TaskState.RUNNING in states:
            if self.state is not JobState.RUNNING:
                self.set_state(JobState.RUNNING, now)

    @property
    def done(self) -> bool:
        return self.state in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)

    @property
    def makespan(self) -> Optional[float]:
        """Submission-to-completion time, or None while in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def progress_fraction(self) -> float:
        """Overall fraction of the job's work completed, in [0, 1]."""
        total = sum(t.work_mips for t in self.tasks)
        done = sum(t.progress_mips for t in self.tasks)
        return done / total if total > 0 else 1.0

    def __repr__(self):
        return (
            f"Job({self.job_id}, {self.spec.name!r}, {self.state.value}, "
            f"{self.progress_fraction():.0%})"
        )
