"""A small constraint/preference expression language.

Used in three places, mirroring the original system's use of the CORBA
Trader constraint language and Condor's ClassAds:

* the Trading service evaluates offer constraints (``"mips >= 500 &&
  ram_mb >= 16"``),
* the ASCT expresses application requirements and preferences,
* the Condor-style baseline uses it for matchmaking.

Semantics follow ClassAds where it matters: referencing a property the
offer does not define yields ``UNDEFINED``, and any comparison against
``UNDEFINED`` is false, so malformed offers are never matched rather than
raising at matchmaking time.

Grammar::

    expr   := or
    or     := and  (("||" | "or")  and)*
    and    := not  (("&&" | "and") not)*
    not    := ("!" | "not") not | cmp
    cmp    := sum  (("=="|"!="|"<="|">="|"<"|">") sum)?
    sum    := term (("+"|"-") term)*
    term   := factor (("*"|"/") factor)*
    factor := NUMBER | STRING | IDENT | "true" | "false"
            | "(" expr ")" | "-" factor
"""

import re
from typing import Any, Callable, Mapping, Optional, Union


class ConstraintError(Exception):
    """Raised for syntax errors in a constraint expression."""


class _Undefined:
    """ClassAd-style undefined value: comparisons are false, not errors."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "UNDEFINED"

    def __bool__(self):
        return False


UNDEFINED = _Undefined()

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><=|>=|==|!=|&&|\|\||[-+*/()<>!])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_KEYWORDS = {"and": "&&", "or": "||", "not": "!", "true": True, "false": False}


def _tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConstraintError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "number":
            tokens.append(("num", float(value)))
        elif kind == "string":
            tokens.append(("str", value[1:-1]))
        elif kind == "ident":
            lowered = value.lower()
            if lowered in ("true", "false"):
                tokens.append(("bool", _KEYWORDS[lowered]))
            elif lowered in ("and", "or", "not"):
                tokens.append(("op", _KEYWORDS[lowered]))
            else:
                tokens.append(("ident", value))
        else:
            tokens.append(("op", value))
    return tokens


class _Parser:
    """Recursive-descent parser producing a nested-tuple AST."""

    def __init__(self, tokens: list):
        self._tokens = tokens
        self._pos = 0

    def parse(self):
        node = self._or()
        if self._pos != len(self._tokens):
            kind, value = self._tokens[self._pos]
            raise ConstraintError(f"trailing input at token {value!r}")
        return node

    def _peek_op(self, *ops) -> Optional[str]:
        if self._pos < len(self._tokens):
            kind, value = self._tokens[self._pos]
            if kind == "op" and value in ops:
                return value
        return None

    def _or(self):
        node = self._and()
        while self._peek_op("||"):
            self._pos += 1
            node = ("or", node, self._and())
        return node

    def _and(self):
        node = self._not()
        while self._peek_op("&&"):
            self._pos += 1
            node = ("and", node, self._not())
        return node

    def _not(self):
        if self._peek_op("!"):
            self._pos += 1
            return ("not", self._not())
        return self._cmp()

    def _cmp(self):
        node = self._sum()
        op = self._peek_op("==", "!=", "<=", ">=", "<", ">")
        if op:
            self._pos += 1
            node = ("cmp", op, node, self._sum())
        return node

    def _sum(self):
        node = self._term()
        while True:
            op = self._peek_op("+", "-")
            if not op:
                return node
            self._pos += 1
            node = ("arith", op, node, self._term())

    def _term(self):
        node = self._factor()
        while True:
            op = self._peek_op("*", "/")
            if not op:
                return node
            self._pos += 1
            node = ("arith", op, node, self._factor())

    def _factor(self):
        if self._pos >= len(self._tokens):
            raise ConstraintError("unexpected end of expression")
        kind, value = self._tokens[self._pos]
        if kind == "num":
            self._pos += 1
            return ("num", value)
        if kind == "str":
            self._pos += 1
            return ("str", value)
        if kind == "bool":
            self._pos += 1
            return ("bool", value)
        if kind == "ident":
            self._pos += 1
            return ("ident", value)
        if kind == "op" and value == "(":
            self._pos += 1
            node = self._or()
            if not self._peek_op(")"):
                raise ConstraintError("missing closing parenthesis")
            self._pos += 1
            return node
        if kind == "op" and value == "-":
            self._pos += 1
            return ("neg", self._factor())
        raise ConstraintError(f"unexpected token {value!r}")


def _truthy(value: Any) -> bool:
    if value is UNDEFINED:
        return False
    return bool(value)


class _CodeGen:
    """Translate an AST into the body of a real Python function.

    The generated function has the exact semantics of :func:`_eval` (which
    remains the reference implementation, cross-checked by the equivalence
    tests) but evaluates a whole expression in one call frame — constants
    are inlined, short-circuits become ``if`` statements, and the hot
    ``ident <op> literal`` comparison collapses to two or three bytecode
    tests.  This is what makes a cached Constraint ~10x cheaper per offer
    than interpreting the AST.
    """

    def __init__(self):
        self.lines: list[str] = []
        self._n = 0

    def _tmp(self) -> str:
        self._n += 1
        return f"v{self._n}"

    def _emit(self, text: str, indent: int) -> None:
        self.lines.append("    " * indent + text)

    def gen(self, node, indent: int) -> str:
        """Emit statements computing ``node``; returns the result expression."""
        kind = node[0]
        if kind in ("num", "str", "bool"):
            # Bind to a temp so downstream ``is _U`` guards test a variable
            # (comparing a literal with ``is`` is a SyntaxWarning).
            v = self._tmp()
            self._emit(f"{v} = {node[1]!r}", indent)
            return v
        if kind == "ident":
            v = self._tmp()
            self._emit(f"{v} = props.get({node[1]!r}, _U)", indent)
            return v
        if kind == "neg":
            a = self.gen(node[1], indent)
            v = self._tmp()
            self._emit(f"if {a} is _U or isinstance({a}, str):", indent)
            self._emit(f"{v} = _U", indent + 1)
            self._emit("else:", indent)
            self._emit(f"{v} = -{a}", indent + 1)
            return v
        if kind == "not":
            a = self.gen(node[1], indent)
            v = self._tmp()
            self._emit(f"{v} = not ({a} is not _U and bool({a}))", indent)
            return v
        if kind in ("and", "or"):
            a = self.gen(node[1], indent)
            v = self._tmp()
            self._emit(f"{v} = {a} is not _U and bool({a})", indent)
            self._emit(f"if {'' if kind == 'and' else 'not '}{v}:", indent)
            b = self.gen(node[2], indent + 1)
            self._emit(f"{v} = {b} is not _U and bool({b})", indent + 1)
            return v
        if kind == "arith":
            op = node[1]
            a = self.gen(node[2], indent)
            b = self.gen(node[3], indent)
            v = self._tmp()
            self._emit(
                f"if {a} is _U or {b} is _U "
                f"or isinstance({a}, str) or isinstance({b}, str):",
                indent,
            )
            self._emit(f"{v} = _U", indent + 1)
            if op == "/":
                self._emit(f"elif {b} == 0:", indent)
                self._emit(f"{v} = _U", indent + 1)
            self._emit("else:", indent)
            self._emit(f"{v} = {a} {op} {b}", indent + 1)
            return v
        if kind == "cmp":
            return self._gen_cmp(node, indent)
        raise ConstraintError(f"unknown AST node {kind!r}")

    def _gen_cmp(self, node, indent: int) -> str:
        op, lhs, rhs = node[1], node[2], node[3]
        # Hot path: <expr> <op> <literal> with the literal's str-ness known
        # at compile time, so the mixed-type branch folds away.
        for left, right, swap in ((lhs, rhs, False), (rhs, lhs, True)):
            if right[0] not in ("num", "str", "bool"):
                continue
            a = self.gen(left, indent)
            lit = repr(right[1])
            if swap and op in ("<", ">", "<=", ">="):
                op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}[op]
            v = self._tmp()
            if right[0] == "str":
                if op == "!=":
                    self._emit(
                        f"{v} = {a} is not _U and "
                        f"(not isinstance({a}, str) or {a} != {lit})",
                        indent,
                    )
                else:
                    self._emit(
                        f"{v} = isinstance({a}, str) and {a} {op} {lit}",
                        indent,
                    )
            else:
                if op == "!=":
                    self._emit(
                        f"{v} = {a} is not _U and "
                        f"(isinstance({a}, str) or {a} != {lit})",
                        indent,
                    )
                else:
                    self._emit(
                        f"{v} = {a} is not _U and "
                        f"not isinstance({a}, str) and {a} {op} {lit}",
                        indent,
                    )
            return v
        a = self.gen(lhs, indent)
        b = self.gen(rhs, indent)
        v = self._tmp()
        self._emit(f"if {a} is _U or {b} is _U:", indent)
        self._emit(f"{v} = False", indent + 1)
        self._emit(f"elif isinstance({a}, str) != isinstance({b}, str):", indent)
        self._emit(f"{v} = {op == '!='}", indent + 1)
        self._emit("else:", indent)
        self._emit(f"{v} = {a} {op} {b}", indent + 1)
        return v


def _compile(node) -> tuple:
    """Compile an AST to ``(value_fn, match_fn)`` with :func:`_eval` semantics.

    ``match_fn(props)`` is ``_truthy(value_fn(props))`` fused into the same
    generated function, so the Trader's per-offer matching is one call.
    """
    gen = _CodeGen()
    result = gen.gen(node, 1)
    body = "\n".join(gen.lines) if gen.lines else "    pass"
    source = (
        "def _constraint_fn(props, _U=_U, isinstance=isinstance):\n"
        f"{body}\n"
        f"    return {result}\n"
        "def _constraint_match(props, _U=_U, isinstance=isinstance):\n"
        f"{body}\n"
        f"    return {result} is not _U and bool({result})\n"
        "def _constraint_score(props, _U=_U, isinstance=isinstance,"
        " float=float):\n"
        f"{body}\n"
        f"    if {result} is _U:\n"
        "        return _NEG_INF\n"
        f"    if isinstance({result}, bool):\n"
        f"        return 1.0 if {result} else 0.0\n"
        f"    if isinstance({result}, str):\n"
        "        return _NEG_INF\n"
        f"    return float({result})\n"
    )
    namespace = {"_U": UNDEFINED, "_NEG_INF": float("-inf")}
    exec(compile(source, "<constraint>", "exec"), namespace)
    return (
        namespace["_constraint_fn"],
        namespace["_constraint_match"],
        namespace["_constraint_score"],
    )


def _equality_conjuncts(node) -> tuple:
    """``(attr, literal)`` pairs required true by the top-level AND chain.

    Only ``ident == literal`` (either side) conjuncts are extracted; they
    are necessary conditions for the whole expression, which is what lets
    the Trader narrow a query to an equality bucket before running the
    full matcher.
    """
    out = []
    stack = [node]
    while stack:
        n = stack.pop()
        if n[0] == "and":
            stack.append(n[1])
            stack.append(n[2])
        elif n[0] == "cmp" and n[1] == "==":
            lhs, rhs = n[2], n[3]
            if lhs[0] == "ident" and rhs[0] in ("num", "str", "bool"):
                out.append((lhs[1], rhs[1]))
            elif rhs[0] == "ident" and lhs[0] in ("num", "str", "bool"):
                out.append((rhs[1], lhs[1]))
    return tuple(out)


def _strip_conjunct(node, attr: str, literal):
    """Replace one top-level ``attr == literal`` conjunct with TRUE.

    Returns the original node unchanged if no such conjunct exists.
    """
    if node[0] == "and":
        lhs = _strip_conjunct(node[1], attr, literal)
        if lhs is not node[1]:
            return ("and", lhs, node[2])
        rhs = _strip_conjunct(node[2], attr, literal)
        if rhs is not node[2]:
            return ("and", node[1], rhs)
        return node
    if node[0] == "cmp" and node[1] == "==":
        lhs, rhs = node[2], node[3]
        if (
            lhs[0] == "ident" and lhs[1] == attr
            and rhs[0] in ("num", "str", "bool") and rhs[1] == literal
        ) or (
            rhs[0] == "ident" and rhs[1] == attr
            and lhs[0] in ("num", "str", "bool") and lhs[1] == literal
        ):
            return ("bool", True)
    return node


def _simplify_true(node):
    """Collapse ``TRUE && x`` to ``x`` (match-truthiness preserving)."""
    if node[0] == "and":
        a = _simplify_true(node[1])
        b = _simplify_true(node[2])
        if a == ("bool", True):
            return b
        if b == ("bool", True):
            return a
        return ("and", a, b)
    return node


_REDUCED_CACHE: dict = {}


def compiled_match_without(text: str, attr: str, literal) -> Callable:
    """A match function for ``text`` minus one ``attr == literal`` conjunct.

    The Trader calls this after narrowing a query to an equality bucket:
    every bucket member satisfies the conjunct by construction, so it need
    not be re-evaluated per offer.  Only *truthiness* is preserved by the
    simplification (``TRUE && x`` collapses to ``x``), which is all a
    match function observes.
    """
    key = (text.strip(), attr, literal)
    fn = _REDUCED_CACHE.get(key)
    if fn is None:
        ast = _compiled_entry(key[0])[0]
        reduced = _simplify_true(_strip_conjunct(ast, attr, literal))
        fn = _compile(reduced)[1]
        if len(_REDUCED_CACHE) >= _COMPILED_CACHE_MAX:
            _REDUCED_CACHE.clear()
        _REDUCED_CACHE[key] = fn
    return fn


# text -> (ast, compiled fn, equality conjuncts).  Cleared wholesale if it
# ever grows past the cap (constraint strings interpolate numbers, so the
# population is bounded in practice but not in principle).
_COMPILED_CACHE: dict = {}
_COMPILED_CACHE_MAX = 4096


def _compiled_entry(stripped: str) -> tuple:
    entry = _COMPILED_CACHE.get(stripped)
    if entry is None:
        if not stripped:
            ast = ("bool", True)
        else:
            ast = _Parser(_tokenize(stripped)).parse()
        fn, match_fn, score_fn = _compile(ast)
        entry = (ast, fn, match_fn, score_fn, _equality_conjuncts(ast))
        if len(_COMPILED_CACHE) >= _COMPILED_CACHE_MAX:
            _COMPILED_CACHE.clear()
        _COMPILED_CACHE[stripped] = entry
    return entry


def _eval(node, props: Mapping[str, Any]) -> Any:
    kind = node[0]
    if kind in ("num", "str", "bool"):
        return node[1]
    if kind == "ident":
        return props.get(node[1], UNDEFINED)
    if kind == "neg":
        value = _eval(node[1], props)
        if value is UNDEFINED or isinstance(value, str):
            return UNDEFINED
        return -value
    if kind == "not":
        return not _truthy(_eval(node[1], props))
    if kind == "and":
        return _truthy(_eval(node[1], props)) and _truthy(_eval(node[2], props))
    if kind == "or":
        return _truthy(_eval(node[1], props)) or _truthy(_eval(node[2], props))
    if kind == "arith":
        op, lhs, rhs = node[1], _eval(node[2], props), _eval(node[3], props)
        if lhs is UNDEFINED or rhs is UNDEFINED:
            return UNDEFINED
        # ClassAd semantics: arithmetic on non-numbers is UNDEFINED,
        # never an error at matchmaking time.
        if isinstance(lhs, str) or isinstance(rhs, str):
            return UNDEFINED
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if rhs == 0:
            return UNDEFINED
        return lhs / rhs
    if kind == "cmp":
        op, lhs, rhs = node[1], _eval(node[2], props), _eval(node[3], props)
        if lhs is UNDEFINED or rhs is UNDEFINED:
            return False
        mixed_types = isinstance(lhs, str) != isinstance(rhs, str)
        if mixed_types:
            return op == "!="
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == ">":
            return lhs > rhs
        if op == "<=":
            return lhs <= rhs
        return lhs >= rhs
    raise ConstraintError(f"unknown AST node {kind!r}")


class Constraint:
    """A parsed boolean constraint, reusable across many property sets.

    Parsing and closure-compilation happen once per distinct expression
    string (module-level cache); constructing a Constraint for a text seen
    before is a dict lookup.  ``compiled=False`` bypasses both the cache
    and the compiler and evaluates through the reference interpreter —
    the Trader's linear-scan oracle uses this so equivalence tests compare
    genuinely independent implementations.
    """

    __slots__ = (
        "text", "_ast", "_fn", "_match_fn", "_score_fn", "equality_conjuncts"
    )

    def __init__(self, text: str, compiled: bool = True):
        self.text = text
        stripped = text.strip()
        if compiled:
            ast, fn, match_fn, score_fn, conjuncts = _compiled_entry(stripped)
        else:
            if not stripped:
                ast = ("bool", True)
            else:
                ast = _Parser(_tokenize(stripped)).parse()
            fn = None
            match_fn = None
            score_fn = None
            conjuncts = _equality_conjuncts(ast)
        self._ast = ast
        self._fn = fn
        #: Single-call ``props -> bool`` matcher (None when uncompiled).
        self._match_fn = match_fn
        #: Single-call ``props -> float`` ranking score (None when uncompiled).
        self._score_fn = score_fn
        #: ``(attr, literal)`` pairs every match must satisfy (top-level ANDs).
        self.equality_conjuncts = conjuncts

    def matches(self, props: Mapping[str, Any]) -> bool:
        """True iff the expression is truthy over ``props``."""
        fn = self._match_fn
        if fn is not None:
            return fn(props)
        return _truthy(_eval(self._ast, props))

    def value(self, props: Mapping[str, Any]) -> Any:
        """Raw expression value (may be a number or UNDEFINED)."""
        fn = self._fn
        if fn is not None:
            return fn(props)
        return _eval(self._ast, props)

    def __repr__(self):
        return f"Constraint({self.text!r})"


class Preference:
    """A numeric ranking expression: higher values are preferred.

    Mirrors the paper's "preferences, like rather executing on a faster
    CPU than on a slower one" — e.g. ``Preference("mips")``.  Offers for
    which the expression is undefined rank below all defined ones.
    """

    def __init__(self, text: str, compiled: bool = True):
        self.text = text
        self._constraint = Constraint(
            text if text.strip() else "0", compiled=compiled
        )

    def score(self, props: Mapping[str, Any]) -> float:
        """Numeric score for ranking; -inf when undefined."""
        fn = self._constraint._score_fn
        if fn is not None:
            return fn(props)
        value = self._constraint.value(props)
        if value is UNDEFINED:
            return float("-inf")
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, str):
            return float("-inf")
        return float(value)

    def __repr__(self):
        return f"Preference({self.text!r})"


def evaluate(text: str, props: Mapping[str, Any]) -> bool:
    """One-shot convenience: parse and match in a single call."""
    return Constraint(text).matches(props)
