"""A small constraint/preference expression language.

Used in three places, mirroring the original system's use of the CORBA
Trader constraint language and Condor's ClassAds:

* the Trading service evaluates offer constraints (``"mips >= 500 &&
  ram_mb >= 16"``),
* the ASCT expresses application requirements and preferences,
* the Condor-style baseline uses it for matchmaking.

Semantics follow ClassAds where it matters: referencing a property the
offer does not define yields ``UNDEFINED``, and any comparison against
``UNDEFINED`` is false, so malformed offers are never matched rather than
raising at matchmaking time.

Grammar::

    expr   := or
    or     := and  (("||" | "or")  and)*
    and    := not  (("&&" | "and") not)*
    not    := ("!" | "not") not | cmp
    cmp    := sum  (("=="|"!="|"<="|">="|"<"|">") sum)?
    sum    := term (("+"|"-") term)*
    term   := factor (("*"|"/") factor)*
    factor := NUMBER | STRING | IDENT | "true" | "false"
            | "(" expr ")" | "-" factor
"""

import re
from typing import Any, Mapping, Optional, Union


class ConstraintError(Exception):
    """Raised for syntax errors in a constraint expression."""


class _Undefined:
    """ClassAd-style undefined value: comparisons are false, not errors."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "UNDEFINED"

    def __bool__(self):
        return False


UNDEFINED = _Undefined()

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><=|>=|==|!=|&&|\|\||[-+*/()<>!])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_KEYWORDS = {"and": "&&", "or": "||", "not": "!", "true": True, "false": False}


def _tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConstraintError(
                f"unexpected character {text[pos]!r} at position {pos}"
            )
        pos = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "number":
            tokens.append(("num", float(value)))
        elif kind == "string":
            tokens.append(("str", value[1:-1]))
        elif kind == "ident":
            lowered = value.lower()
            if lowered in ("true", "false"):
                tokens.append(("bool", _KEYWORDS[lowered]))
            elif lowered in ("and", "or", "not"):
                tokens.append(("op", _KEYWORDS[lowered]))
            else:
                tokens.append(("ident", value))
        else:
            tokens.append(("op", value))
    return tokens


class _Parser:
    """Recursive-descent parser producing a nested-tuple AST."""

    def __init__(self, tokens: list):
        self._tokens = tokens
        self._pos = 0

    def parse(self):
        node = self._or()
        if self._pos != len(self._tokens):
            kind, value = self._tokens[self._pos]
            raise ConstraintError(f"trailing input at token {value!r}")
        return node

    def _peek_op(self, *ops) -> Optional[str]:
        if self._pos < len(self._tokens):
            kind, value = self._tokens[self._pos]
            if kind == "op" and value in ops:
                return value
        return None

    def _or(self):
        node = self._and()
        while self._peek_op("||"):
            self._pos += 1
            node = ("or", node, self._and())
        return node

    def _and(self):
        node = self._not()
        while self._peek_op("&&"):
            self._pos += 1
            node = ("and", node, self._not())
        return node

    def _not(self):
        if self._peek_op("!"):
            self._pos += 1
            return ("not", self._not())
        return self._cmp()

    def _cmp(self):
        node = self._sum()
        op = self._peek_op("==", "!=", "<=", ">=", "<", ">")
        if op:
            self._pos += 1
            node = ("cmp", op, node, self._sum())
        return node

    def _sum(self):
        node = self._term()
        while True:
            op = self._peek_op("+", "-")
            if not op:
                return node
            self._pos += 1
            node = ("arith", op, node, self._term())

    def _term(self):
        node = self._factor()
        while True:
            op = self._peek_op("*", "/")
            if not op:
                return node
            self._pos += 1
            node = ("arith", op, node, self._factor())

    def _factor(self):
        if self._pos >= len(self._tokens):
            raise ConstraintError("unexpected end of expression")
        kind, value = self._tokens[self._pos]
        if kind == "num":
            self._pos += 1
            return ("num", value)
        if kind == "str":
            self._pos += 1
            return ("str", value)
        if kind == "bool":
            self._pos += 1
            return ("bool", value)
        if kind == "ident":
            self._pos += 1
            return ("ident", value)
        if kind == "op" and value == "(":
            self._pos += 1
            node = self._or()
            if not self._peek_op(")"):
                raise ConstraintError("missing closing parenthesis")
            self._pos += 1
            return node
        if kind == "op" and value == "-":
            self._pos += 1
            return ("neg", self._factor())
        raise ConstraintError(f"unexpected token {value!r}")


def _truthy(value: Any) -> bool:
    if value is UNDEFINED:
        return False
    return bool(value)


def _eval(node, props: Mapping[str, Any]) -> Any:
    kind = node[0]
    if kind in ("num", "str", "bool"):
        return node[1]
    if kind == "ident":
        return props.get(node[1], UNDEFINED)
    if kind == "neg":
        value = _eval(node[1], props)
        if value is UNDEFINED or isinstance(value, str):
            return UNDEFINED
        return -value
    if kind == "not":
        return not _truthy(_eval(node[1], props))
    if kind == "and":
        return _truthy(_eval(node[1], props)) and _truthy(_eval(node[2], props))
    if kind == "or":
        return _truthy(_eval(node[1], props)) or _truthy(_eval(node[2], props))
    if kind == "arith":
        op, lhs, rhs = node[1], _eval(node[2], props), _eval(node[3], props)
        if lhs is UNDEFINED or rhs is UNDEFINED:
            return UNDEFINED
        # ClassAd semantics: arithmetic on non-numbers is UNDEFINED,
        # never an error at matchmaking time.
        if isinstance(lhs, str) or isinstance(rhs, str):
            return UNDEFINED
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if rhs == 0:
            return UNDEFINED
        return lhs / rhs
    if kind == "cmp":
        op, lhs, rhs = node[1], _eval(node[2], props), _eval(node[3], props)
        if lhs is UNDEFINED or rhs is UNDEFINED:
            return False
        mixed_types = isinstance(lhs, str) != isinstance(rhs, str)
        if mixed_types:
            return op == "!="
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == ">":
            return lhs > rhs
        if op == "<=":
            return lhs <= rhs
        return lhs >= rhs
    raise ConstraintError(f"unknown AST node {kind!r}")


class Constraint:
    """A parsed boolean constraint, reusable across many property sets."""

    def __init__(self, text: str):
        self.text = text
        stripped = text.strip()
        if not stripped:
            self._ast = ("bool", True)
        else:
            self._ast = _Parser(_tokenize(stripped)).parse()

    def matches(self, props: Mapping[str, Any]) -> bool:
        """True iff the expression is truthy over ``props``."""
        return _truthy(_eval(self._ast, props))

    def value(self, props: Mapping[str, Any]) -> Any:
        """Raw expression value (may be a number or UNDEFINED)."""
        return _eval(self._ast, props)

    def __repr__(self):
        return f"Constraint({self.text!r})"


class Preference:
    """A numeric ranking expression: higher values are preferred.

    Mirrors the paper's "preferences, like rather executing on a faster
    CPU than on a slower one" — e.g. ``Preference("mips")``.  Offers for
    which the expression is undefined rank below all defined ones.
    """

    def __init__(self, text: str):
        self.text = text
        self._constraint = Constraint(text if text.strip() else "0")

    def score(self, props: Mapping[str, Any]) -> float:
        """Numeric score for ranking; -inf when undefined."""
        value = self._constraint.value(props)
        if value is UNDEFINED:
            return float("-inf")
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, str):
            return float("-inf")
        return float(value)

    def __repr__(self):
        return f"Preference({self.text!r})"


def evaluate(text: str, props: Mapping[str, Any]) -> bool:
    """One-shot convenience: parse and match in a single call."""
    return Constraint(text).matches(props)
