"""Application registry.

BSP application specs name a *program* (``ApplicationSpec(program=...)``).
The registry maps those names to actual Python BSP functions so a grid
job can do more than model its cost: when the simulated execution
completes, the coordinator runs the registered program on the executable
BSP runtime (:func:`repro.bsp.run_bsp`) and delivers real per-process
results — functional simulation: *costs* from the simulator, *values*
from real code.
"""

from typing import Callable, Optional, Sequence


class UnknownProgram(Exception):
    """No program registered under that name."""


class ProgramRegistry:
    """A name -> (BSP function, default args) mapping."""

    def __init__(self):
        self._programs: dict[str, tuple] = {}

    def register(self, name: str, fn: Callable, *default_args) -> None:
        """Register a BSP program; re-registering a name overwrites it."""
        if not callable(fn):
            raise TypeError(f"program {name!r} must be callable")
        self._programs[name] = (fn, tuple(default_args))

    def unregister(self, name: str) -> None:
        self._programs.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def get(self, name: str) -> tuple:
        """(fn, default_args) or raise UnknownProgram."""
        try:
            return self._programs[name]
        except KeyError:
            raise UnknownProgram(name) from None

    @property
    def names(self) -> list:
        return sorted(self._programs)


#: Process-wide default registry; a Grid can also carry its own.
DEFAULT_REGISTRY = ProgramRegistry()


def register_program(name: str, fn: Callable, *default_args) -> None:
    """Register into the process-wide default registry."""
    DEFAULT_REGISTRY.register(name, fn, *default_args)
