"""Application model: descriptors, jobs, and the constraint language.

Grid users describe what they need ("each node should have at least 16 MB
of RAM and a CPU of at least 500 MIPS") and what they prefer ("rather a
faster CPU than a slower one").  This package provides the vocabulary the
ASCT, GRM, and Trader share.
"""

from repro.apps.constraints import (
    Constraint,
    ConstraintError,
    Preference,
    UNDEFINED,
    evaluate,
)
from repro.apps.spec import (
    ApplicationSpec,
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.apps.job import Job, JobState, Task, TaskState

__all__ = [
    "Constraint",
    "ConstraintError",
    "Preference",
    "UNDEFINED",
    "evaluate",
    "ApplicationSpec",
    "NodeGroupRequest",
    "ResourceRequirements",
    "VirtualTopologyRequest",
    "Job",
    "JobState",
    "Task",
    "TaskState",
]
