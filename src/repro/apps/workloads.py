"""Synthetic workload generators.

Experiment harnesses and examples share these builders instead of
hand-rolling submission loops: a bag of independent tasks, a steady
Poisson-ish stream, a diurnal stream (submissions follow working hours,
as real users do), and a mixed sequential+BSP campaign.

Generators do not submit anything themselves; they return
:class:`SubmissionPlan` objects — (time, ApplicationSpec) pairs — that a
driver replays against any grid (or baseline system), keeping workload
definitions system-neutral for head-to-head comparisons.
"""

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.apps.spec import ApplicationSpec, BSP, ResourceRequirements
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class PlannedSubmission:
    """One application, to be submitted at an absolute simulated time."""

    time: float
    spec: ApplicationSpec


@dataclass(frozen=True)
class SubmissionPlan:
    """An ordered batch of planned submissions."""

    submissions: tuple

    def __post_init__(self):
        times = [s.time for s in self.submissions]
        if times != sorted(times):
            raise ValueError("submissions must be time-ordered")

    def __len__(self) -> int:
        return len(self.submissions)

    def __iter__(self):
        return iter(self.submissions)

    @property
    def total_work_mips(self) -> float:
        return sum(
            s.spec.work_mips * s.spec.tasks for s in self.submissions
        )

    def drive(self, submit: Callable, loop) -> list:
        """Replay the plan: schedule each submission on the event loop.

        ``submit`` is called with the spec at the planned time; returned
        ids are collected into the list this method returns (filled in
        as the simulation runs).
        """
        job_ids: list = []
        for planned in self.submissions:
            loop.schedule_at(
                max(planned.time, loop.now),
                lambda spec=planned.spec: job_ids.append(submit(spec)),
            )
        return job_ids


def bag_of_tasks(
    count: int,
    work_mips: float,
    submit_at: float = 0.0,
    name: str = "bag",
    requirements: Optional[ResourceRequirements] = None,
    checkpoint_interval_s: float = 0.0,
) -> SubmissionPlan:
    """``count`` independent single-task jobs, all submitted at once."""
    if count <= 0:
        raise ValueError("count must be positive")
    reqs = requirements if requirements is not None else ResourceRequirements()
    return SubmissionPlan(tuple(
        PlannedSubmission(submit_at, ApplicationSpec(
            name=f"{name}-{i:03}", work_mips=work_mips, requirements=reqs,
            metadata={"checkpoint_interval_s": checkpoint_interval_s},
        ))
        for i in range(count)
    ))


def steady_stream(
    jobs_per_day: float,
    duration_days: float,
    work_mips: float,
    seed: int = 0,
    start: float = 0.0,
    name: str = "stream",
    checkpoint_interval_s: float = 900.0,
) -> SubmissionPlan:
    """Exponential inter-arrival times at a constant mean rate."""
    if jobs_per_day <= 0 or duration_days <= 0:
        raise ValueError("rates and durations must be positive")
    rng = random.Random(seed)
    mean_gap = SECONDS_PER_DAY / jobs_per_day
    submissions = []
    t = start
    end = start + duration_days * SECONDS_PER_DAY
    index = 0
    while True:
        t += rng.expovariate(1.0 / mean_gap)
        if t >= end:
            break
        submissions.append(PlannedSubmission(t, ApplicationSpec(
            name=f"{name}-{index:04}", work_mips=work_mips,
            metadata={"checkpoint_interval_s": checkpoint_interval_s},
        )))
        index += 1
    return SubmissionPlan(tuple(submissions))


def diurnal_stream(
    jobs_per_workday: int,
    duration_days: int,
    work_mips: float,
    seed: int = 0,
    start: float = 0.0,
    name: str = "diurnal",
    checkpoint_interval_s: float = 900.0,
) -> SubmissionPlan:
    """Users submit during working hours (9-18, Mon-Fri), like real labs."""
    if jobs_per_workday <= 0 or duration_days <= 0:
        raise ValueError("rates and durations must be positive")
    rng = random.Random(seed)
    submissions = []
    index = 0
    for day in range(duration_days):
        day_start = start + day * SECONDS_PER_DAY
        dow = int(day_start // SECONDS_PER_DAY) % 7
        if dow >= 5:
            continue
        times = sorted(
            day_start + SECONDS_PER_HOUR * rng.uniform(9.0, 18.0)
            for _ in range(jobs_per_workday)
        )
        for t in times:
            submissions.append(PlannedSubmission(t, ApplicationSpec(
                name=f"{name}-{index:04}", work_mips=work_mips,
                metadata={"checkpoint_interval_s": checkpoint_interval_s},
            )))
            index += 1
    return SubmissionPlan(tuple(submissions))


def mixed_campaign(
    sequential_jobs: int,
    bsp_jobs: int,
    bsp_tasks: int,
    work_mips: float,
    submit_at: float = 0.0,
    supersteps: int = 8,
    program: str = "kernel",
    seed: int = 0,
) -> SubmissionPlan:
    """The E8-style mix: bag-of-tasks plus communicating BSP gangs."""
    rng = random.Random(seed)
    submissions = [
        PlannedSubmission(submit_at, ApplicationSpec(
            name=f"seq-{i:03}", work_mips=work_mips,
            metadata={"checkpoint_interval_s": 900.0},
        ))
        for i in range(sequential_jobs)
    ]
    for i in range(bsp_jobs):
        submissions.append(PlannedSubmission(submit_at, ApplicationSpec(
            name=f"bsp-{i:03}", kind=BSP, tasks=bsp_tasks, program=program,
            work_mips=work_mips, checkpoint_every_supersteps=2,
            metadata={"supersteps": supersteps,
                      "superstep_comm_bytes": 100_000},
        )))
    rng.shuffle(submissions)
    return SubmissionPlan(tuple(
        sorted(submissions, key=lambda s: s.time)
    ))
