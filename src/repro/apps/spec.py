"""Application descriptors.

An :class:`ApplicationSpec` is what a user hands to the ASCT: what to run,
how many tasks, the execution prerequisites (platform), the resource
requirements (minima), the preferences (ranking), and — for parallel
applications — the virtual network topology the processes need.
"""

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.apps.constraints import Constraint, Preference

SEQUENTIAL = "sequential"
BSP = "bsp"
PARAMETRIC = "parametric"

APPLICATION_KINDS = (SEQUENTIAL, BSP, PARAMETRIC)


@dataclass(frozen=True)
class ResourceRequirements:
    """Per-task minima, in the paper's own vocabulary (MIPS, MB).

    ``cpu_fraction`` is the CPU share a task wants on its host node and
    ``mem_mb``/``disk_mb`` its working set; the ``min_*`` fields are node
    admission minima.  ``extra`` is a free-form constraint over node
    properties for anything the fixed fields do not cover.
    """

    min_mips: float = 0.0
    min_ram_mb: float = 0.0
    min_disk_mb: float = 0.0
    min_net_mbps: float = 0.0
    os: Optional[str] = None
    arch: Optional[str] = None
    cpu_fraction: float = 1.0
    mem_mb: float = 16.0
    disk_mb: float = 0.0
    extra: str = ""

    def __post_init__(self):
        if not 0.0 < self.cpu_fraction <= 1.0:
            raise ValueError(
                f"cpu_fraction must be in (0, 1], got {self.cpu_fraction}"
            )
        if self.mem_mb < 0 or self.disk_mb < 0:
            raise ValueError("memory and disk requirements must be >= 0")
        # Parse eagerly so syntax errors surface at submission time.
        if self.extra:
            Constraint(self.extra)

    def satisfied_by(self, props: Mapping[str, Any]) -> bool:
        """Check a node's property dict against all requirements."""
        if props.get("mips", 0.0) < self.min_mips:
            return False
        if props.get("ram_mb", 0.0) < self.min_ram_mb:
            return False
        if props.get("disk_mb", 0.0) < self.min_disk_mb:
            return False
        if self.min_net_mbps > 0.0 and \
                props.get("net_mbps", 0.0) < self.min_net_mbps:
            return False
        if self.os is not None and props.get("os") != self.os:
            return False
        if self.arch is not None and props.get("arch") != self.arch:
            return False
        if self.extra and not Constraint(self.extra).matches(props):
            return False
        return True

    def to_dict(self) -> dict:
        """Plain-dict form, marshallable as an ORB variant."""
        return {
            "min_mips": self.min_mips,
            "min_ram_mb": self.min_ram_mb,
            "min_disk_mb": self.min_disk_mb,
            "min_net_mbps": self.min_net_mbps,
            "os": self.os,
            "arch": self.arch,
            "cpu_fraction": self.cpu_fraction,
            "mem_mb": self.mem_mb,
            "disk_mb": self.disk_mb,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResourceRequirements":
        return cls(**dict(data))


@dataclass(frozen=True)
class NodeGroupRequest:
    """One group of a virtual topology: N nodes on a fast internal network."""

    count: int
    intra_bandwidth_mbps: float
    requirements: ResourceRequirements = field(default_factory=ResourceRequirements)

    def __post_init__(self):
        if self.count <= 0:
            raise ValueError(f"group size must be positive, got {self.count}")
        if self.intra_bandwidth_mbps <= 0:
            raise ValueError("intra-group bandwidth must be positive")


@dataclass(frozen=True)
class VirtualTopologyRequest:
    """The paper's example request, as a first-class object.

    "execute application X in two groups of 50 nodes, each group connected
    internally by a 100 Mbps network and the two groups connected by a
    10 Mbps network" becomes::

        VirtualTopologyRequest(
            groups=(NodeGroupRequest(50, 100.0, reqs),
                    NodeGroupRequest(50, 100.0, reqs)),
            inter_bandwidth_mbps=10.0,
        )
    """

    groups: tuple
    inter_bandwidth_mbps: float

    def __post_init__(self):
        if not self.groups:
            raise ValueError("a virtual topology needs at least one group")
        if self.inter_bandwidth_mbps <= 0:
            raise ValueError("inter-group bandwidth must be positive")

    @property
    def total_nodes(self) -> int:
        return sum(g.count for g in self.groups)


@dataclass(frozen=True)
class ApplicationSpec:
    """Everything the ASCT needs to submit an application.

    ``work_mips`` is the per-task computational demand in
    millions-of-instructions; a 1000 MIPS machine finishes a 3.6e6 MI task
    in one idle hour.  For BSP applications ``program`` names a registered
    BSP program and ``tasks`` is the number of parallel processes.
    """

    name: str
    kind: str = SEQUENTIAL
    tasks: int = 1
    work_mips: float = 1e5
    requirements: ResourceRequirements = field(default_factory=ResourceRequirements)
    preference: str = ""
    topology: Optional[VirtualTopologyRequest] = None
    program: Optional[str] = None
    checkpoint_every_supersteps: int = 0     # 0 = no checkpointing
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in APPLICATION_KINDS:
            raise ValueError(
                f"unknown application kind {self.kind!r}; "
                f"expected one of {APPLICATION_KINDS}"
            )
        if self.tasks <= 0:
            raise ValueError(f"tasks must be positive, got {self.tasks}")
        if self.work_mips <= 0:
            raise ValueError("work_mips must be positive")
        if self.checkpoint_every_supersteps < 0:
            raise ValueError("checkpoint interval must be >= 0")
        if self.kind == BSP and self.program is None:
            raise ValueError("BSP applications must name a registered program")
        if self.topology is not None and self.topology.total_nodes != self.tasks:
            raise ValueError(
                f"virtual topology covers {self.topology.total_nodes} nodes "
                f"but the application has {self.tasks} tasks"
            )
        if self.preference:
            Preference(self.preference)

    def preference_rank(self) -> Preference:
        """The parsed preference (constant 0 when none was given)."""
        return Preference(self.preference)

    def to_dict(self) -> dict:
        """Plain-dict form, marshallable as an ORB variant."""
        topology = None
        if self.topology is not None:
            topology = {
                "inter_bandwidth_mbps": self.topology.inter_bandwidth_mbps,
                "groups": [
                    {
                        "count": g.count,
                        "intra_bandwidth_mbps": g.intra_bandwidth_mbps,
                        "requirements": g.requirements.to_dict(),
                    }
                    for g in self.topology.groups
                ],
            }
        return {
            "name": self.name,
            "kind": self.kind,
            "tasks": self.tasks,
            "work_mips": self.work_mips,
            "requirements": self.requirements.to_dict(),
            "preference": self.preference,
            "topology": topology,
            "program": self.program,
            "checkpoint_every_supersteps": self.checkpoint_every_supersteps,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ApplicationSpec":
        data = dict(data)
        data["requirements"] = ResourceRequirements.from_dict(
            data.get("requirements", {})
        )
        topology = data.get("topology")
        if topology is not None:
            data["topology"] = VirtualTopologyRequest(
                groups=tuple(
                    NodeGroupRequest(
                        count=g["count"],
                        intra_bandwidth_mbps=g["intra_bandwidth_mbps"],
                        requirements=ResourceRequirements.from_dict(
                            g["requirements"]
                        ),
                    )
                    for g in topology["groups"]
                ),
                inter_bandwidth_mbps=topology["inter_bandwidth_mbps"],
            )
        return cls(**data)
