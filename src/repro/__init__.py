"""InteGrade reproduction: object-oriented grid middleware that harvests
the idle computing power of desktop machines.

Quick start::

    from repro import Grid, ApplicationSpec
    from repro.sim.usage import OFFICE_WORKER

    grid = Grid(seed=1)
    grid.add_cluster("lab")
    for i in range(8):
        grid.add_node("lab", f"ws{i}", profile=OFFICE_WORKER)
    job_id = grid.submit(ApplicationSpec(name="render", work_mips=1e6))
    grid.wait_for_job(job_id)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
experiment catalogue.
"""

from repro.apps.spec import (
    ApplicationSpec,
    NodeGroupRequest,
    ResourceRequirements,
    VirtualTopologyRequest,
)
from repro.apps.job import Job, JobState, Task, TaskState
from repro.core.grid import Grid
from repro.core.ncc import BlackoutWindow, SharingPolicy
from repro.sim.machine import MachineSpec

__version__ = "0.1.0"

__all__ = [
    "ApplicationSpec",
    "NodeGroupRequest",
    "ResourceRequirements",
    "VirtualTopologyRequest",
    "Job",
    "JobState",
    "Task",
    "TaskState",
    "Grid",
    "BlackoutWindow",
    "SharingPolicy",
    "MachineSpec",
    "__version__",
]
