"""Cluster monitoring: utilisation time series.

The paper's information service feeds schedulers; operators need the
same data over time.  A :class:`ClusterMonitor` samples one cluster's
state on a fixed period and keeps a bounded time series — shared-node
count, free/used CPU, owner activity, running grid tasks, pending tasks
— which examples and experiment harnesses render or aggregate.
"""

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.grm import Grm
from repro.sim.events import EventLoop

DEFAULT_PERIOD = 300.0
DEFAULT_KEEP = 10_000


@dataclass(frozen=True)
class ClusterSnapshot:
    """One sampled point of cluster state."""

    time: float
    nodes: int
    sharing_nodes: int
    owner_active_nodes: int
    cpu_capacity: float        # node count (1.0 CPU each)
    cpu_free_for_grid: float
    cpu_grid_running: float    # grid tasks currently placed, in CPUs
    grid_tasks: int
    pending_tasks: int

    @property
    def grid_utilisation(self) -> float:
        """Fraction of total CPU capacity running grid work."""
        if self.cpu_capacity <= 0:
            return 0.0
        return self.cpu_grid_running / self.cpu_capacity

    @property
    def harvest_ratio(self) -> float:
        """Grid CPUs in use / (grid in use + still free): supply uptake."""
        supply = self.cpu_grid_running + self.cpu_free_for_grid
        if supply <= 0:
            return 0.0
        return self.cpu_grid_running / supply


class ClusterMonitor:
    """Periodically samples one GRM's view of its cluster."""

    def __init__(
        self,
        loop: EventLoop,
        grm: Grm,
        period: float = DEFAULT_PERIOD,
        keep: int = DEFAULT_KEEP,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self._loop = loop
        self._grm = grm
        self.period = period
        self._snapshots: deque = deque(maxlen=keep)
        self._task = loop.every(period, self.sample)

    def sample(self) -> ClusterSnapshot:
        """Take one snapshot now (also called by the periodic task)."""
        statuses = [
            record.last_status
            for record in self._grm._nodes.values()
            if record.alive
        ]
        summary = self._grm.cluster_summary()
        snapshot = ClusterSnapshot(
            time=self._loop.now,
            nodes=len(statuses),
            sharing_nodes=sum(1 for s in statuses if s["sharing"]),
            owner_active_nodes=sum(1 for s in statuses if s["owner_active"]),
            cpu_capacity=float(len(statuses)),
            cpu_free_for_grid=sum(s["cpu_free"] for s in statuses),
            cpu_grid_running=self._grid_cpu_estimate(statuses),
            grid_tasks=sum(s["grid_tasks"] for s in statuses),
            pending_tasks=summary["pending_tasks"],
        )
        self._snapshots.append(snapshot)
        return snapshot

    @staticmethod
    def _grid_cpu_estimate(statuses: list) -> float:
        """Grid CPUs in use: capacity under the cap minus what's free.

        NodeStatus does not carry an explicit grid-share field (the
        paper's message set does not either), but ``cpu_free`` already
        subtracts both owner and grid usage from the cap, so nodes with
        running grid tasks show the difference.
        """
        total = 0.0
        for status in statuses:
            if status["grid_tasks"] > 0:
                owner = 1.0 if status["owner_active"] else 0.0
                # Conservative estimate: whatever of the unit CPU is
                # neither free nor (roughly) the owner's.
                total += max(0.0, 1.0 - status["cpu_free"] - owner * 0.5)
        return total

    def stop(self) -> None:
        self._task.stop()

    # -- observability ---------------------------------------------------------

    def to_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish the latest snapshot's fields as registry views.

        Views read :meth:`latest` lazily, so a metrics snapshot always
        reflects the monitor's most recent sample without extra sampling
        work on the monitor's own period.  Before the first sample every
        view reads 0.
        """
        prefix = prefix if prefix is not None else \
            f"monitor.{self._grm.cluster}"

        def field_view(name):
            def read():
                snapshot = self.latest()
                return getattr(snapshot, name) if snapshot is not None else 0
            return read

        for name in (
            "nodes", "sharing_nodes", "owner_active_nodes",
            "cpu_capacity", "cpu_free_for_grid", "cpu_grid_running",
            "grid_tasks", "pending_tasks",
            "grid_utilisation", "harvest_ratio",
        ):
            registry.view(f"{prefix}.{name}", field_view(name))
        registry.view(f"{prefix}.samples", lambda: len(self._snapshots))
        # Freshness of the GRM's information-plane view.  With adaptive
        # update throttling enabled this is the staleness actually paid
        # for the bytes saved; with fixed-cadence updates it hovers at
        # about half the update interval.
        registry.view(f"{prefix}.status_age_mean_s", self.status_age_mean)

    def status_age_mean(self) -> float:
        """Mean seconds since each live node's last accepted update."""
        now = self._loop.now
        ages = [
            now - record.last_seen
            for record in self._grm._nodes.values()
            if record.alive
        ]
        return sum(ages) / len(ages) if ages else 0.0

    # -- queries ---------------------------------------------------------------

    @property
    def snapshots(self) -> list:
        return list(self._snapshots)

    def latest(self) -> Optional[ClusterSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    def series(self, field: str) -> list:
        """(time, value) pairs for one snapshot attribute."""
        return [(s.time, getattr(s, field)) for s in self._snapshots]

    def mean(self, field: str) -> float:
        """Time-average of one attribute over the kept window."""
        if not self._snapshots:
            return 0.0
        values = [getattr(s, field) for s in self._snapshots]
        return sum(values) / len(values)

    def sparkline(self, field: str, width: int = 60) -> str:
        """A compact ASCII rendering of one attribute's history."""
        marks = " .:-=+*#%@"
        points = [getattr(s, field) for s in self._snapshots]
        if not points:
            return ""
        if len(points) > width:
            stride = len(points) / width
            points = [
                points[int(i * stride)] for i in range(width)
            ]
        top = max(points) or 1.0
        return "".join(
            marks[min(len(marks) - 1, int(p / top * (len(marks) - 1)))]
            for p in points
        )
