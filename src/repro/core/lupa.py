"""Local Usage Pattern Analyzer (LUPA).

Per the paper: "Node usage information for short time intervals (e.g., 5
minutes) is grouped in larger intervals called periods.  After that, the
system shall apply clustering algorithms to this data in order to extract
behavioral categories."  Here a *period* is one day, binned into
``bins_per_day`` mean-activity values; k-means over the accumulated
periods yields the behavioural categories, and each weekday is mapped to
its most frequent category, giving a weekly busy-probability profile.

Learning is incremental when ``relearn_interval > 1``: a full k-means
pass runs every ``relearn_interval`` finished days (warm-started from
the previous centroids), and the days in between only classify the new
period against the existing centroids and refresh the weekly profile.
The default (``relearn_interval=1``) re-clusters from scratch daily,
exactly as the seed implementation did, so deterministic replays are
unaffected unless a caller opts in.
"""

import time
from typing import Callable, Optional

import numpy as np

from repro.analysis.clustering import kmeans
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.events import EventLoop

DEFAULT_SAMPLE_INTERVAL = 300.0        # the paper's 5 minutes
DEFAULT_BINS_PER_DAY = 48              # half-hour bins

#: Probe returning the owner's current activity level in [0, 1].
ActivityProbe = Callable[[], float]


class Lupa:
    """Collects activity samples, learns categories, predicts idleness."""

    def __init__(
        self,
        loop: EventLoop,
        node: str,
        probe: ActivityProbe,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        bins_per_day: int = DEFAULT_BINS_PER_DAY,
        min_history_days: int = 7,
        categories: int = 3,
        seed: int = 0,
        relearn_interval: int = 1,
    ):
        if bins_per_day <= 0 or SECONDS_PER_DAY % bins_per_day:
            raise ValueError("bins_per_day must divide the day evenly")
        if categories < 1:
            raise ValueError("need at least one category")
        if relearn_interval < 1:
            raise ValueError("relearn_interval must be >= 1")
        self._loop = loop
        self.node = node
        self._probe = probe
        self.sample_interval = sample_interval
        self.bins_per_day = bins_per_day
        self.min_history_days = min_history_days
        self.categories = categories
        self._seed = seed
        self.relearn_interval = relearn_interval

        self._bin_seconds = SECONDS_PER_DAY / bins_per_day
        self._day_sums = np.zeros(bins_per_day)
        self._day_counts = np.zeros(bins_per_day, dtype=int)
        self._current_day = 0
        self._periods: list[np.ndarray] = []       # one vector per finished day
        self._period_dows: list[int] = []
        self._weekly: Optional[np.ndarray] = None  # shape (7, bins_per_day)
        self.samples_taken = 0
        self._last_result = None                   # last full ClusteringResult
        self._labels: list[int] = []               # per-period category labels
        self._days_since_full = 0
        self.full_relearns = 0
        self.incremental_updates = 0
        self.learn_wall_s = 0.0
        self._task = loop.every(sample_interval, self._sample)

    def to_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish the analyzer's counters as registry views (pull-only)."""
        prefix = prefix if prefix is not None else f"lupa.{self.node}"
        registry.bind(prefix, self, (
            "samples_taken", "history_days", "full_relearns",
            "incremental_updates", "learn_wall_s",
        ))

    # -- data collection -----------------------------------------------------

    def _sample(self) -> None:
        now = self._loop.now
        day = int(now // SECONDS_PER_DAY)
        if day != self._current_day:
            self._finish_day()
            self._current_day = day
        bin_index = int((now % SECONDS_PER_DAY) // self._bin_seconds)
        activity = min(1.0, max(0.0, float(self._probe())))
        self._day_sums[bin_index] += activity
        self._day_counts[bin_index] += 1
        self.samples_taken += 1

    def _finish_day(self) -> None:
        if self._day_counts.sum() == 0:
            return
        with np.errstate(invalid="ignore"):
            period = np.where(
                self._day_counts > 0, self._day_sums / self._day_counts, 0.0
            )
        self._periods.append(period)
        self._period_dows.append(self._current_day % 7)
        self._day_sums = np.zeros(self.bins_per_day)
        self._day_counts = np.zeros(self.bins_per_day, dtype=int)
        if len(self._periods) >= self.min_history_days:
            self._learn()

    # -- learning ----------------------------------------------------------------

    def _learn(self) -> None:
        started = time.perf_counter()
        data = np.array(self._periods)
        k = min(self.categories, len(self._periods))
        previous = self._last_result
        reusable = previous is not None and previous.k == k
        if (
            self.relearn_interval > 1
            and reusable
            and self._days_since_full < self.relearn_interval
            and len(self._labels) == len(self._periods) - 1
        ):
            # Incremental day: classify the new period against the
            # existing centroids; no clustering pass.
            self._labels.append(previous.predict(self._periods[-1]))
            self._days_since_full += 1
            self.incremental_updates += 1
            centroids = previous.centroids
            labels = np.asarray(self._labels)
        else:
            init = None
            if self.relearn_interval > 1 and reusable:
                # Warm start: yesterday's centroids are already near the
                # fixed point, so the pass converges in a few iterations.
                init = previous.centroids
            result = kmeans(data, k, seed=self._seed, init=init)
            self._last_result = result
            self._labels = [int(label) for label in result.labels]
            self._days_since_full = 0
            self.full_relearns += 1
            centroids = result.centroids
            labels = result.labels
        # Map each weekday to the category its days most often fall into.
        weekly = np.zeros((7, self.bins_per_day))
        global_mean = data.mean(axis=0)
        for dow in range(7):
            dow_labels = [
                labels[i]
                for i, d in enumerate(self._period_dows)
                if d == dow
            ]
            if not dow_labels:
                weekly[dow] = global_mean
                continue
            counts = np.bincount(dow_labels, minlength=k)
            weekly[dow] = centroids[int(np.argmax(counts))]
        self._weekly = np.clip(weekly, 0.0, 1.0)
        self.learn_wall_s += time.perf_counter() - started

    @property
    def learned(self) -> bool:
        """Has at least one clustering pass produced a weekly profile?"""
        return self._weekly is not None

    @property
    def history_days(self) -> int:
        return len(self._periods)

    # -- prediction ----------------------------------------------------------------

    def predict_busy(self, when: float) -> float:
        """Probability the owner is active at absolute time ``when``.

        0.5 (maximum uncertainty) until enough history has accumulated.
        """
        if self._weekly is None:
            return 0.5
        dow = int(when // SECONDS_PER_DAY) % 7
        bin_index = int((when % SECONDS_PER_DAY) // self._bin_seconds)
        return float(self._weekly[dow, bin_index])

    # -- holiday detection -----------------------------------------------------------

    def holiday_likelihood(self) -> float:
        """How holiday-like today looks so far, in [0, 1].

        The paper names holidays among the categories LUPA should
        recognise; holidays are rare enough that clustering alone cannot
        learn them, so this is *online*: compare today's observed
        activity against the learned expectation for this weekday.  A
        normally busy weekday with near-zero observed activity scores
        close to 1.
        """
        if self._weekly is None:
            return 0.0
        filled = self._day_counts > 0
        if not filled.any():
            return 0.0
        dow = self._current_day % 7
        expected = float(self._weekly[dow][filled].mean())
        with np.errstate(invalid="ignore"):
            observed_bins = self._day_sums[filled] / self._day_counts[filled]
        observed = float(observed_bins.mean())
        if expected < 0.10:
            return 0.0   # an idle-anyway day carries no signal
        return max(0.0, min(1.0, (expected - observed) / expected))

    def predict_busy_adaptive(
        self, when: float, holiday_threshold: float = 0.8
    ) -> float:
        """Like :meth:`predict_busy`, but discounts a detected holiday.

        When today looks like a holiday and ``when`` falls later today,
        the weekday profile is scaled down by the evidence observed so
        far.  Predictions for other days are unaffected.
        """
        base = self.predict_busy(when)
        if int(when // SECONDS_PER_DAY) != self._current_day:
            return base
        likelihood = self.holiday_likelihood()
        if likelihood < holiday_threshold:
            return base
        return base * (1.0 - likelihood)

    def idle_probability(self, start: float, duration: float) -> float:
        """Probability the node stays idle through [start, start+duration].

        Treats bins as independent: the product of per-bin idle
        probabilities, partial bins weighted by coverage.
        """
        if duration <= 0:
            return 1.0 - self.predict_busy(start)
        probability = 1.0
        t = start
        end = start + duration
        while t < end:
            bin_end = (t // self._bin_seconds + 1) * self._bin_seconds
            chunk = min(bin_end, end) - t
            weight = chunk / self._bin_seconds
            busy = self.predict_busy(t)
            probability *= (1.0 - busy) ** weight
            t = min(bin_end, end)
        return probability

    # -- pattern exchange -------------------------------------------------------------

    def pattern(self) -> Optional[dict]:
        """The weekly profile in a form marshallable as an ORB variant."""
        if self._weekly is None:
            return None
        return {
            "node": self.node,
            "bins_per_day": self.bins_per_day,
            "weekly": [[float(v) for v in row] for row in self._weekly],
            "history_days": self.history_days,
        }

    def stop(self) -> None:
        """Detach from the event loop."""
        self._task.stop()
