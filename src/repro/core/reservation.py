"""Per-node resource reservation ledger.

Implements the LRM side of the Resource Reservation and Execution
Protocol: a reservation claims machine resources for a bounded lease so
the GRM can negotiate with several nodes without races; confirming turns
it into a running allocation, and unconfirmed leases expire on their own.
"""

from dataclasses import dataclass
from typing import Optional

from repro.sim.events import EventHandle, EventLoop
from repro.sim.machine import InsufficientResources, Machine

DEFAULT_LEASE_SECONDS = 120.0


@dataclass
class Reservation:
    task_id: str
    cpu_fraction: float
    mem_mb: float
    disk_mb: float
    expires_at: Optional[float]          # None once confirmed
    _expiry: Optional[EventHandle] = None

    @property
    def confirmed(self) -> bool:
        return self.expires_at is None


class ReservationLedger:
    """Tracks reservations against one machine, with automatic expiry."""

    def __init__(self, loop: EventLoop, machine: Machine, node: str = ""):
        self._loop = loop
        self._machine = machine
        self.node = node
        #: Optional event journal (set by the LRM); a lease expiring
        #: unconfirmed is a protocol violation worth a forensic record —
        #: the GRM reserved capacity it never used.
        self.journal = None
        self._reservations: dict[str, Reservation] = {}
        self.expired_count = 0
        self.refused_count = 0

    # -- protocol steps -------------------------------------------------------

    def reserve(
        self,
        task_id: str,
        cpu_fraction: float,
        mem_mb: float,
        disk_mb: float = 0.0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> None:
        """Claim resources for ``lease_seconds``; raises if unavailable."""
        if task_id in self._reservations:
            raise ValueError(f"task {task_id!r} already has a reservation")
        if lease_seconds <= 0:
            raise ValueError("lease must be positive")
        try:
            self._machine.allocate(task_id, cpu_fraction, mem_mb, disk_mb)
        except InsufficientResources:
            self.refused_count += 1
            raise
        expires_at = self._loop.now + lease_seconds
        handle = self._loop.schedule(lease_seconds, lambda: self._expire(task_id))
        self._reservations[task_id] = Reservation(
            task_id, cpu_fraction, mem_mb, disk_mb, expires_at, handle
        )

    def confirm(self, task_id: str) -> Reservation:
        """Convert a lease into a running allocation (no more expiry)."""
        reservation = self._get(task_id)
        if reservation.confirmed:
            return reservation
        reservation._expiry.cancel()
        reservation._expiry = None
        reservation.expires_at = None
        return reservation

    def release(self, task_id: str) -> None:
        """Free the resources, whether leased or confirmed."""
        reservation = self._get(task_id)
        if reservation._expiry is not None:
            reservation._expiry.cancel()
        del self._reservations[task_id]
        self._machine.release(task_id)

    # -- queries ---------------------------------------------------------------

    def holds(self, task_id: str) -> bool:
        return task_id in self._reservations

    def get(self, task_id: str) -> Optional[Reservation]:
        return self._reservations.get(task_id)

    @property
    def active(self) -> list:
        return list(self._reservations.values())

    def _get(self, task_id: str) -> Reservation:
        reservation = self._reservations.get(task_id)
        if reservation is None:
            raise KeyError(f"no reservation for task {task_id!r}")
        return reservation

    def _expire(self, task_id: str) -> None:
        reservation = self._reservations.get(task_id)
        if reservation is None or reservation.confirmed:
            return
        del self._reservations[task_id]
        self._machine.release(task_id)
        self.expired_count += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "reservation_violated", node=self.node, task_id=task_id,
                reason="lease expired unconfirmed",
                cpu_fraction=reservation.cpu_fraction,
            )
