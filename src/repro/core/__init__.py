"""InteGrade's core middleware — the components of Figure 1.

* :class:`~repro.core.lrm.Lrm` / :class:`~repro.core.grm.Grm` — intra-cluster
  resource management (Information Update + Reservation & Execution
  protocols);
* :class:`~repro.core.lupa.Lupa` / :class:`~repro.core.gupa.Gupa` — usage
  pattern collection, clustering, and idle prediction;
* :class:`~repro.core.ncc.NodeControlCenter` — the resource owner's policy;
* :class:`~repro.core.asct.Asct` — application submission and monitoring;
* :class:`~repro.core.hierarchy.ParentGrm` — the inter-cluster hierarchy;
* :class:`~repro.core.grid.Grid` — the facade assembling all of it.
"""

from repro.core.asct import Asct, JobEvent
from repro.core.grid import Grid, ClusterHandle, NodeHandle, DEDICATED_POLICY
from repro.core.grm import Grm, GrmStats
from repro.core.gupa import Gupa, UNKNOWN
from repro.core.hierarchy import (
    ClusterUplink,
    HierarchyError,
    NoCapacity,
    ParentGrm,
)
from repro.core.lrm import Lrm
from repro.core.lupa import Lupa
from repro.core.ncc import (
    BlackoutWindow,
    DEFAULT_POLICY,
    NodeControlCenter,
    SharingPolicy,
    VACATE_POLICY,
    thirty_percent_policy,
)
from repro.core.reservation import ReservationLedger
from repro.core.scheduler import (
    FastestFirstPolicy,
    FirstFitPolicy,
    PatternAwarePolicy,
    POLICIES,
    RandomPolicy,
    ScheduleContext,
    SchedulingPolicy,
    plan_virtual_topology,
)

__all__ = [
    "Asct",
    "JobEvent",
    "Grid",
    "ClusterHandle",
    "NodeHandle",
    "DEDICATED_POLICY",
    "Grm",
    "GrmStats",
    "Gupa",
    "UNKNOWN",
    "ClusterUplink",
    "HierarchyError",
    "NoCapacity",
    "ParentGrm",
    "Lrm",
    "Lupa",
    "BlackoutWindow",
    "DEFAULT_POLICY",
    "NodeControlCenter",
    "SharingPolicy",
    "VACATE_POLICY",
    "thirty_percent_policy",
    "ReservationLedger",
    "FastestFirstPolicy",
    "FirstFitPolicy",
    "PatternAwarePolicy",
    "POLICIES",
    "RandomPolicy",
    "ScheduleContext",
    "SchedulingPolicy",
    "plan_virtual_topology",
]
