"""Scheduling policies and virtual-topology planning.

The GRM delegates candidate ranking to a pluggable policy.  The paper's
headline policy is the usage-pattern-aware one: prefer nodes whose LUPA
profile predicts a long idle span (Section 3: "the scheduler can place
parallel applications on idle nodes with lower probability of becoming
busy before the computation is completed").

Ranking is array-native: a policy extracts per-offer numeric columns
once (cached on the :class:`ScheduleContext`), scores every candidate
in one numpy pass — pattern-aware scoring goes through
:meth:`Gupa.idle_probabilities` — and orders with a stable argsort on
the negated scores, which reproduces ``sorted(..., reverse=True)``
exactly, ties included.  The seed implementations are retained as
``order_scalar`` reference oracles for the equivalence suite.
"""

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps.spec import ApplicationSpec, VirtualTopologyRequest
from repro.core.gupa import Gupa, UNKNOWN
from repro.sim.network import NetworkTopology


@dataclass
class ScheduleContext:
    """What a policy may consult when ranking candidate offers."""

    spec: ApplicationSpec
    remaining_mips: float
    now: float
    gupa: Optional[Gupa] = None
    _arrays_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def estimated_duration(self, offer: dict) -> float:
        """Rough runtime of the task on the offered node, in seconds."""
        mips = offer.get("mips", 0.0)
        share = min(
            self.spec.requirements.cpu_fraction, offer.get("cpu_free", 0.0)
        )
        rate = mips * share
        if rate <= 0:
            return float("inf")
        return self.remaining_mips / rate

    def arrays(self, offers: list) -> dict:
        """Per-offer numeric columns for vectorized scoring.

        Cached per offers-list identity so repeated orderings of the
        same candidate set (policy ranking, preference re-ranking, gang
        passes) extract the dict fields once.  The cached entry keeps a
        reference to the list, so ``id`` reuse cannot alias a stale hit.
        """
        key = id(offers)
        hit = self._arrays_cache.get(key)
        if hit is not None and hit[0] is offers:
            return hit[1]
        try:
            # Direct subscripts: every GRM status offer carries these
            # keys; the fallback keeps the seed's .get(..., 0.0) default
            # for hand-built sparse offers.
            mips_list = [o["mips"] for o in offers]
            cpu_list = [o["cpu_free"] for o in offers]
        except KeyError:
            mips_list = [o.get("mips", 0.0) for o in offers]
            cpu_list = [o.get("cpu_free", 0.0) for o in offers]
        node_list = [o.get("node") for o in offers]
        mips = np.array(mips_list, dtype=float)
        cpu_free = np.array(cpu_list, dtype=float)
        share = np.minimum(self.spec.requirements.cpu_fraction, cpu_free)
        arrays = {
            "mips": mips,
            "cpu_free": cpu_free,
            "speed": mips * cpu_free,
            "rate": mips * share,
            "nodes": node_list,
        }
        if len(self._arrays_cache) >= 8:
            self._arrays_cache.clear()
        self._arrays_cache[key] = (offers, arrays)
        return arrays


def _order_by_scores(offers: list, scores: np.ndarray) -> list:
    """Best-score-first with ties keeping input order.

    ``np.argsort`` (stable) on the negated scores is exactly
    ``sorted(offers, key=score, reverse=True)``: descending by score,
    original order among equal scores.
    """
    return [offers[i] for i in np.argsort(-scores, kind="stable")]


class SchedulingPolicy:
    """Orders candidate offers, best first."""

    name = "abstract"

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        raise NotImplementedError


class FirstFitPolicy(SchedulingPolicy):
    """Take candidates in the Trader's (deterministic) order."""

    name = "first_fit"

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        return list(offers)


class RandomPolicy(SchedulingPolicy):
    """Uniformly random order — the no-information baseline."""

    name = "random"

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng if rng is not None else random.Random(0)

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        shuffled = list(offers)
        self._rng.shuffle(shuffled)
        return shuffled


class FastestFirstPolicy(SchedulingPolicy):
    """Greedy on effective speed (MIPS x free CPU share)."""

    name = "fastest_first"

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        if len(offers) <= 1:
            return list(offers)
        cached = ctx._arrays_cache.get(id(offers))
        if cached is not None and cached[0] is offers:
            speed = cached[1]["speed"]
        else:
            # Needs only the speed column — score directly instead of
            # paying for the full per-offer array extraction.
            try:
                speed = np.array(
                    [o["mips"] * o["cpu_free"] for o in offers]
                )
            except KeyError:
                speed = np.array([
                    o.get("mips", 0.0) * o.get("cpu_free", 0.0)
                    for o in offers
                ])
        return _order_by_scores(offers, speed)

    def order_scalar(self, offers: list, ctx: ScheduleContext) -> list:
        """Seed implementation (oracle for the equivalence suite)."""
        return sorted(
            offers,
            key=lambda o: o.get("mips", 0.0) * o.get("cpu_free", 0.0),
            reverse=True,
        )


class PatternAwarePolicy(SchedulingPolicy):
    """The paper's contribution: rank by predicted idle span.

    Score = P(node idle for the task's estimated duration) x effective
    speed.  Nodes without an uploaded pattern get a neutral probability,
    so the policy degrades gracefully to fastest-first while LUPA is
    still learning.
    """

    name = "pattern_aware"

    def __init__(self, unknown_probability: float = 0.5):
        self.unknown_probability = unknown_probability

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        if len(offers) <= 1:
            return list(offers)
        arrays = ctx.arrays(offers)
        speed = arrays["speed"]
        if ctx.gupa is None:
            return _order_by_scores(offers, speed * self.unknown_probability)
        rate = arrays["rate"]
        feasible = rate > 0.0   # rate <= 0 means infinite duration: score 0
        if feasible.all():
            durations = ctx.remaining_mips / rate
            p_idle = ctx.gupa.idle_probabilities(
                arrays["nodes"], ctx.now, durations
            )
            p_idle = np.where(
                p_idle == UNKNOWN, self.unknown_probability, p_idle
            )
            return _order_by_scores(offers, speed * p_idle)
        scores = np.zeros(len(offers))
        if feasible.any():
            indices = np.nonzero(feasible)[0]
            node_list = arrays["nodes"]
            durations = ctx.remaining_mips / rate[indices]
            p_idle = ctx.gupa.idle_probabilities(
                [node_list[i] for i in indices], ctx.now, durations
            )
            p_idle = np.where(
                p_idle == UNKNOWN, self.unknown_probability, p_idle
            )
            scores[indices] = speed[indices] * p_idle
        return _order_by_scores(offers, scores)

    # -- seed implementation (oracle for the equivalence suite) --------------

    def _score_scalar(self, offer: dict, ctx: ScheduleContext) -> float:
        speed = offer.get("mips", 0.0) * offer.get("cpu_free", 0.0)
        if ctx.gupa is None:
            return speed * self.unknown_probability
        duration = ctx.estimated_duration(offer)
        if duration == float("inf"):
            return 0.0
        idle_probability = getattr(
            ctx.gupa, "idle_probability_scalar", ctx.gupa.idle_probability
        )
        p_idle = idle_probability(offer["node"], ctx.now, duration)
        if p_idle == UNKNOWN:
            p_idle = self.unknown_probability
        return speed * p_idle

    def order_scalar(self, offers: list, ctx: ScheduleContext) -> list:
        return sorted(
            offers, key=lambda o: self._score_scalar(o, ctx), reverse=True
        )


POLICIES = {
    policy.name: policy
    for policy in (
        FirstFitPolicy(),
        RandomPolicy(),
        FastestFirstPolicy(),
        PatternAwarePolicy(),
    )
}


def plan_virtual_topology(
    offers: list,
    request: VirtualTopologyRequest,
    network: NetworkTopology,
    ctx: Optional[ScheduleContext] = None,
    policy: Optional[SchedulingPolicy] = None,
) -> Optional[list]:
    """Assign offers to the requested node groups, or None if unsatisfiable.

    Greedy plan: for each group (largest first) pick a distinct LAN
    segment whose internal bandwidth meets the group's requirement and
    which still has enough eligible nodes; then check every inter-group
    segment pair against the requested inter-group bandwidth.  Returns a
    list of offer-lists, one per group, in the request's group order.
    """
    by_segment: dict[str, list] = {}
    for offer in offers:
        try:
            segment = network.segment_of(offer["node"])
        except KeyError:
            continue
        by_segment.setdefault(segment, []).append(offer)

    if policy is not None and ctx is not None:
        for segment in by_segment:
            by_segment[segment] = policy.order(by_segment[segment], ctx)

    group_order = sorted(
        range(len(request.groups)),
        key=lambda i: request.groups[i].count,
        reverse=True,
    )
    assignment: dict[int, tuple] = {}
    used_segments: set = set()
    for index in group_order:
        group = request.groups[index]
        chosen = None
        for segment, segment_offers in sorted(by_segment.items()):
            if segment in used_segments:
                continue
            internal = network.segment_internal(segment)
            if internal.bandwidth_mbps < group.intra_bandwidth_mbps:
                continue
            eligible = [
                o for o in segment_offers
                if group.requirements.satisfied_by(o)
            ]
            if len(eligible) >= group.count:
                chosen = (segment, eligible[:group.count])
                break
        if chosen is None:
            return None
        used_segments.add(chosen[0])
        assignment[index] = chosen

    # Validate inter-group connectivity.
    segments = [assignment[i][0] for i in range(len(request.groups))]
    for i in range(len(segments)):
        for j in range(i + 1, len(segments)):
            node_i = assignment[i][1][0]["node"]
            node_j = assignment[j][1][0]["node"]
            link = network.link_between(node_i, node_j)
            if link is None or link.bandwidth_mbps < request.inter_bandwidth_mbps:
                return None
    return [assignment[i][1] for i in range(len(request.groups))]
