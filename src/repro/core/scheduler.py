"""Scheduling policies and virtual-topology planning.

The GRM delegates candidate ranking to a pluggable policy.  The paper's
headline policy is the usage-pattern-aware one: prefer nodes whose LUPA
profile predicts a long idle span (Section 3: "the scheduler can place
parallel applications on idle nodes with lower probability of becoming
busy before the computation is completed").
"""

import random
from dataclasses import dataclass
from typing import Optional

from repro.apps.spec import ApplicationSpec, VirtualTopologyRequest
from repro.core.gupa import Gupa, UNKNOWN
from repro.sim.network import NetworkTopology


@dataclass
class ScheduleContext:
    """What a policy may consult when ranking candidate offers."""

    spec: ApplicationSpec
    remaining_mips: float
    now: float
    gupa: Optional[Gupa] = None

    def estimated_duration(self, offer: dict) -> float:
        """Rough runtime of the task on the offered node, in seconds."""
        mips = offer.get("mips", 0.0)
        share = min(
            self.spec.requirements.cpu_fraction, offer.get("cpu_free", 0.0)
        )
        rate = mips * share
        if rate <= 0:
            return float("inf")
        return self.remaining_mips / rate


class SchedulingPolicy:
    """Orders candidate offers, best first."""

    name = "abstract"

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        raise NotImplementedError


class FirstFitPolicy(SchedulingPolicy):
    """Take candidates in the Trader's (deterministic) order."""

    name = "first_fit"

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        return list(offers)


class RandomPolicy(SchedulingPolicy):
    """Uniformly random order — the no-information baseline."""

    name = "random"

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng if rng is not None else random.Random(0)

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        shuffled = list(offers)
        self._rng.shuffle(shuffled)
        return shuffled


class FastestFirstPolicy(SchedulingPolicy):
    """Greedy on effective speed (MIPS x free CPU share)."""

    name = "fastest_first"

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        return sorted(
            offers,
            key=lambda o: o.get("mips", 0.0) * o.get("cpu_free", 0.0),
            reverse=True,
        )


class PatternAwarePolicy(SchedulingPolicy):
    """The paper's contribution: rank by predicted idle span.

    Score = P(node idle for the task's estimated duration) x effective
    speed.  Nodes without an uploaded pattern get a neutral probability,
    so the policy degrades gracefully to fastest-first while LUPA is
    still learning.
    """

    name = "pattern_aware"

    def __init__(self, unknown_probability: float = 0.5):
        self.unknown_probability = unknown_probability

    def _score(self, offer: dict, ctx: ScheduleContext) -> float:
        speed = offer.get("mips", 0.0) * offer.get("cpu_free", 0.0)
        if ctx.gupa is None:
            return speed * self.unknown_probability
        duration = ctx.estimated_duration(offer)
        if duration == float("inf"):
            return 0.0
        p_idle = ctx.gupa.idle_probability(offer["node"], ctx.now, duration)
        if p_idle == UNKNOWN:
            p_idle = self.unknown_probability
        return speed * p_idle

    def order(self, offers: list, ctx: ScheduleContext) -> list:
        return sorted(
            offers, key=lambda o: self._score(o, ctx), reverse=True
        )


POLICIES = {
    policy.name: policy
    for policy in (
        FirstFitPolicy(),
        RandomPolicy(),
        FastestFirstPolicy(),
        PatternAwarePolicy(),
    )
}


def plan_virtual_topology(
    offers: list,
    request: VirtualTopologyRequest,
    network: NetworkTopology,
    ctx: Optional[ScheduleContext] = None,
    policy: Optional[SchedulingPolicy] = None,
) -> Optional[list]:
    """Assign offers to the requested node groups, or None if unsatisfiable.

    Greedy plan: for each group (largest first) pick a distinct LAN
    segment whose internal bandwidth meets the group's requirement and
    which still has enough eligible nodes; then check every inter-group
    segment pair against the requested inter-group bandwidth.  Returns a
    list of offer-lists, one per group, in the request's group order.
    """
    by_segment: dict[str, list] = {}
    for offer in offers:
        try:
            segment = network.segment_of(offer["node"])
        except KeyError:
            continue
        by_segment.setdefault(segment, []).append(offer)

    if policy is not None and ctx is not None:
        for segment in by_segment:
            by_segment[segment] = policy.order(by_segment[segment], ctx)

    group_order = sorted(
        range(len(request.groups)),
        key=lambda i: request.groups[i].count,
        reverse=True,
    )
    assignment: dict[int, tuple] = {}
    used_segments: set = set()
    for index in group_order:
        group = request.groups[index]
        chosen = None
        for segment, segment_offers in sorted(by_segment.items()):
            if segment in used_segments:
                continue
            internal = network.segment_internal(segment)
            if internal.bandwidth_mbps < group.intra_bandwidth_mbps:
                continue
            eligible = [
                o for o in segment_offers
                if group.requirements.satisfied_by(o)
            ]
            if len(eligible) >= group.count:
                chosen = (segment, eligible[:group.count])
                break
        if chosen is None:
            return None
        used_segments.add(chosen[0])
        assignment[index] = chosen

    # Validate inter-group connectivity.
    segments = [assignment[i][0] for i in range(len(request.groups))]
    for i in range(len(segments)):
        for j in range(i + 1, len(segments)):
            node_i = assignment[i][1][0]["node"]
            node_j = assignment[j][1][0]["node"]
            link = network.link_between(node_i, node_j)
            if link is None or link.bandwidth_mbps < request.inter_bandwidth_mbps:
                return None
    return [assignment[i][1] for i in range(len(request.groups))]
