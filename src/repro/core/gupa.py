"""Global Usage Pattern Analyzer (GUPA).

Receives each node's weekly usage profile from its LUPA and answers the
GRM's question: "how likely is this node to stay idle long enough for
this task?"  (Paper, Section 4: "This information is made available to
the GRM, which can make better scheduling decisions due to the
possibility of predicting a node's idle periods.")

Profiles are normalized at upload into (7, bins_per_day) float64 grids
with the per-bin ``1 - busy`` idle factor precomputed, so a scheduling
pass can score every candidate node in one vectorized call
(:meth:`Gupa.idle_probabilities`).  The vectorized path multiplies the
*exact same factor sequence* the scalar loop multiplies — whole bins as
plain grid factors (``pow(x, 1.0) == x`` bit-exactly), fractional edge
bins raised to their coverage weight scalar-side — left to right, so
results are bit-identical to the seed implementation, which is retained
as :meth:`idle_probability_scalar` / :meth:`busy_probability_scalar`
and used as the equivalence-test oracle.
"""

import math
from typing import Optional

import numpy as np

from repro.sim.clock import SECONDS_PER_DAY

UNKNOWN = -1.0

#: Factor-matrix columns per block in the batch product (memory guard
#: for very long spans; the running product is prepended to each block
#: so left-to-right association is preserved exactly).
_CHUNK_COLUMNS = 2048


class _PatternGrid:
    """One node's profile, normalized for vectorized scoring."""

    __slots__ = ("bins_per_day", "bin_seconds", "busy", "idle")

    def __init__(self, bins_per_day: int, weekly) -> None:
        self.bins_per_day = bins_per_day
        self.bin_seconds = SECONDS_PER_DAY / bins_per_day
        self.busy = np.asarray(weekly, dtype=float)
        self.idle = 1.0 - self.busy


class Gupa:
    """Cluster-wide store of per-node usage patterns."""

    def __init__(self):
        self._patterns: dict[str, dict] = {}
        self._grids: dict[str, _PatternGrid] = {}
        # Per-bins_per_day stacked grids for batch scoring, rebuilt
        # lazily after upload/forget churn.  ``_width_counts`` tracks how
        # many grids use each bin width, so the (overwhelmingly common)
        # single-width case can skip per-node grouping entirely.
        self._stacks: dict[int, tuple] = {}
        self._stacks_dirty = True
        self._width_counts: dict[int, int] = {}
        self.uploads = 0

    def _count_width(self, bins_per_day: int, delta: int) -> None:
        count = self._width_counts.get(bins_per_day, 0) + delta
        if count:
            self._width_counts[bins_per_day] = count
        else:
            self._width_counts.pop(bins_per_day, None)

    def upload_pattern(self, node: str, pattern: Optional[dict]) -> None:
        """Store (or refresh) a node's weekly profile."""
        if pattern is None:
            return
        if "weekly" not in pattern or "bins_per_day" not in pattern:
            raise ValueError(f"malformed pattern for node {node!r}")
        weekly = pattern["weekly"]
        if len(weekly) != 7:
            raise ValueError("weekly profile must have 7 rows")
        bins_per_day = pattern["bins_per_day"]
        if isinstance(bins_per_day, bool) or not isinstance(
            bins_per_day, (int, np.integer)
        ):
            raise ValueError(
                f"bins_per_day must be an integer, got {bins_per_day!r}"
            )
        bins_per_day = int(bins_per_day)
        if bins_per_day <= 0 or SECONDS_PER_DAY % bins_per_day:
            raise ValueError(
                f"bins_per_day must divide the {SECONDS_PER_DAY}-second "
                f"day evenly, got {bins_per_day}"
            )
        if any(len(row) != bins_per_day for row in weekly):
            raise ValueError(
                f"every weekly row must have bins_per_day={bins_per_day} "
                "entries"
            )
        previous = self._grids.get(node)
        if previous is not None:
            self._count_width(previous.bins_per_day, -1)
        self._patterns[node] = dict(pattern)
        self._grids[node] = _PatternGrid(bins_per_day, weekly)
        self._count_width(bins_per_day, +1)
        self._stacks_dirty = True
        self.uploads += 1

    def has_pattern(self, node: str) -> bool:
        return node in self._patterns

    def forget(self, node: str) -> None:
        """Drop a node's pattern (node left the cluster)."""
        self._patterns.pop(node, None)
        dropped = self._grids.pop(node, None)
        if dropped is not None:
            self._count_width(dropped.bins_per_day, -1)
            self._stacks_dirty = True

    @property
    def known_nodes(self) -> list:
        return sorted(self._patterns)

    # -- scalar queries ----------------------------------------------------------

    def busy_probability(self, node: str, when: float) -> float:
        """P(owner active at ``when``), or UNKNOWN without a pattern."""
        grid = self._grids.get(node)
        if grid is None:
            return UNKNOWN
        dow = int(when // SECONDS_PER_DAY) % 7
        bin_index = int((when % SECONDS_PER_DAY) // grid.bin_seconds)
        return float(grid.busy[dow, bin_index])

    def idle_probability(self, node: str, start: float, duration: float) -> float:
        """P(node stays idle through the span), or UNKNOWN.

        Same independent-bins model as the LUPA side, computed from the
        uploaded profile so the GRM never needs to call back to nodes.
        """
        grid = self._grids.get(node)
        if grid is None:
            return UNKNOWN
        bin_seconds = grid.bin_seconds
        busy = grid.busy
        if duration <= 0:
            dow = int(start // SECONDS_PER_DAY) % 7
            bin_index = int((start % SECONDS_PER_DAY) // bin_seconds)
            return 1.0 - float(busy[dow, bin_index])
        probability = 1.0
        t = start
        end = start + duration
        while t < end:
            bin_end = (t // bin_seconds + 1) * bin_seconds
            chunk = min(bin_end, end) - t
            weight = chunk / bin_seconds
            dow = int(t // SECONDS_PER_DAY) % 7
            bin_index = int((t % SECONDS_PER_DAY) // bin_seconds)
            probability *= (1.0 - float(busy[dow, bin_index])) ** weight
            t = min(bin_end, end)
        return probability

    # -- reference oracles (the seed implementation, unoptimized) ----------------

    def busy_probability_scalar(self, node: str, when: float) -> float:
        """Seed implementation of :meth:`busy_probability` (oracle)."""
        pattern = self._patterns.get(node)
        if pattern is None:
            return UNKNOWN
        bins_per_day = pattern["bins_per_day"]
        bin_seconds = SECONDS_PER_DAY / bins_per_day
        dow = int(when // SECONDS_PER_DAY) % 7
        bin_index = int((when % SECONDS_PER_DAY) // bin_seconds)
        return float(pattern["weekly"][dow][bin_index])

    def idle_probability_scalar(
        self, node: str, start: float, duration: float
    ) -> float:
        """Seed implementation of :meth:`idle_probability` (oracle)."""
        pattern = self._patterns.get(node)
        if pattern is None:
            return UNKNOWN
        bins_per_day = pattern["bins_per_day"]
        bin_seconds = SECONDS_PER_DAY / bins_per_day
        if duration <= 0:
            return 1.0 - self.busy_probability_scalar(node, start)
        probability = 1.0
        t = start
        end = start + duration
        while t < end:
            bin_end = (t // bin_seconds + 1) * bin_seconds
            chunk = min(bin_end, end) - t
            weight = chunk / bin_seconds
            probability *= (
                1.0 - self.busy_probability_scalar(node, t)
            ) ** weight
            t = min(bin_end, end)
        return probability

    # -- batch scoring -----------------------------------------------------------

    def idle_probabilities(self, nodes, start: float, duration) -> np.ndarray:
        """Vectorized :meth:`idle_probability` over many nodes at once.

        ``duration`` is a scalar or a per-node array.  Returns a float64
        array aligned with ``nodes``; entries for nodes without an
        uploaded pattern are ``UNKNOWN``.  Bit-identical to calling the
        scalar method per node.
        """
        nodes = list(nodes)
        n = len(nodes)
        out = np.full(n, UNKNOWN)
        if n == 0:
            return out
        durations = np.asarray(duration, dtype=float)
        if durations.ndim == 0:
            durations = np.full(n, float(durations))
        elif durations.shape != (n,):
            raise ValueError(
                f"duration must be a scalar or shape ({n},), "
                f"got {durations.shape}"
            )
        if not self._grids:
            return out
        if len(self._width_counts) == 1:
            # Single bin width across every grid (the normal case: all
            # LUPAs run the same configuration) — one index pass, no
            # per-node grouping.
            bins_per_day = next(iter(self._width_counts))
            index = self._stack(bins_per_day)[0]
            index_get = index.get
            rows = np.fromiter(
                (index_get(node, -1) for node in nodes),
                dtype=np.int64, count=n,
            )
            if rows.min() >= 0:
                idxs = np.arange(n)
                known_rows = rows
            else:
                idxs = np.nonzero(rows >= 0)[0]
                if not idxs.size:
                    return out
                known_rows = rows[idxs]
            self._score_group(
                known_rows, idxs, bins_per_day, start, durations, out
            )
            return out
        groups: dict[int, list] = {}
        for i, node in enumerate(nodes):
            grid = self._grids.get(node)
            if grid is not None:
                groups.setdefault(grid.bins_per_day, []).append(i)
        for bins_per_day, group in groups.items():
            index = self._stack(bins_per_day)[0]
            idxs = np.asarray(group)
            rows = np.array([index[nodes[i]] for i in group])
            self._score_group(rows, idxs, bins_per_day, start, durations, out)
        return out

    def _stack(self, bins_per_day: int) -> tuple:
        """(node -> row, busy stack, flat idle grid) for one bin width.

        The idle factors are kept raveled (row-major, one 7*bins_per_day
        slab per node) so batch scoring can gather factors with a single
        flat ``np.take``.
        """
        if self._stacks_dirty:
            self._stacks = {}
            self._stacks_dirty = False
        cached = self._stacks.get(bins_per_day)
        if cached is None:
            members = [
                (node, grid) for node, grid in self._grids.items()
                if grid.bins_per_day == bins_per_day
            ]
            index = {node: row for row, (node, _) in enumerate(members)}
            busy = np.stack([grid.busy for _, grid in members])
            idle_flat = np.stack(
                [grid.idle for _, grid in members]
            ).reshape(len(members), -1).ravel()
            cached = (index, busy, idle_flat)
            self._stacks[bins_per_day] = cached
        return cached

    def _score_group(
        self, rows, idxs, bins_per_day, start, durations, out
    ) -> None:
        """Score one same-bin-width group (stack rows ``rows``) into ``out``."""
        _, busy_stack, idle_flat = self._stack(bins_per_day)
        bin_seconds = SECONDS_PER_DAY / bins_per_day
        group_durations = durations[idxs]

        nonpositive = group_durations <= 0.0
        if nonpositive.any():
            dow = int(start // SECONDS_PER_DAY) % 7
            bin_index = int((start % SECONDS_PER_DAY) // bin_seconds)
            out[idxs[nonpositive]] = (
                1.0 - busy_stack[rows[nonpositive], dow, bin_index]
            )
        positive = ~nonpositive
        if not positive.any():
            return
        out_idx = idxs[positive]
        rows_p = rows[positive]
        ends = start + group_durations[positive]

        # Shared chunk grid: chunk 0 starts at ``start``; chunk j >= 1
        # starts at boundary B_j = (start // bin_seconds + j) * bin_seconds,
        # exactly the values the scalar loop steps through.  A node's
        # span has 1 + #{B_j < end} chunks (strict, matching ``t < end``).
        q = start // bin_seconds
        first_boundary = (q + 1.0) * bin_seconds
        max_end = float(ends.max())
        overshoot = (max_end - first_boundary) / bin_seconds
        j_hi = max(int(overshoot), 0) + 2
        boundaries = (q + np.arange(1, j_hi + 1)) * bin_seconds
        n_chunks = 1 + np.searchsorted(boundaries, ends, side="left")
        m = int(n_chunks.max())

        chunk_starts = np.empty(m)
        chunk_starts[0] = start
        chunk_starts[1:] = boundaries[: m - 1]
        dows = (chunk_starts // SECONDS_PER_DAY).astype(np.int64) % 7
        bins = ((chunk_starts % SECONDS_PER_DAY) // bin_seconds).astype(
            np.int64
        )
        # Column offsets into each node's raveled (7 x bins_per_day) slab.
        flat_cols = dows * bins_per_day + bins
        row_base = rows_p * (7 * bins_per_day)

        # Fractional edge weights (first and last chunk); interior
        # chunks have weight exactly 1.0 because bin_seconds is an
        # integer-valued float, so the scalar path's ``x ** 1.0`` is the
        # identity and the grid factor is used as-is.
        first_weight = (np.minimum(first_boundary, ends) - start) / bin_seconds
        last_chunk = n_chunks - 1
        last_start = chunk_starts[last_chunk]
        last_weight = (ends - last_start) / bin_seconds

        g = len(rows_p)
        product = np.ones(g)
        columns = np.arange(m)
        for j0 in range(0, m, _CHUNK_COLUMNS):
            j1 = min(j0 + _CHUNK_COLUMNS, m)
            factors = np.take(
                idle_flat, row_base[:, None] + flat_cols[None, j0:j1]
            )
            # Chunks past a node's span multiply by exactly 1.0.
            factors[columns[None, j0:j1] >= n_chunks[:, None]] = 1.0
            # Fractional edge factors use ``math.pow`` (libm pow, the
            # same routine Python's ``float ** float`` calls in the
            # scalar loop) — np.power would be 1 ulp off on SIMD builds.
            if j0 == 0:
                fractional = np.nonzero(first_weight != 1.0)[0]
                if fractional.size:
                    factors[fractional, 0] = [
                        math.pow(base, weight) for base, weight in zip(
                            factors[fractional, 0].tolist(),
                            first_weight[fractional].tolist(),
                        )
                    ]
            needs_pow = (
                (last_chunk >= max(j0, 1))
                & (last_chunk < j1)
                & (last_weight != 1.0)
            )
            edge_rows = np.nonzero(needs_pow)[0]
            if edge_rows.size:
                edge_cols = last_chunk[edge_rows] - j0
                factors[edge_rows, edge_cols] = [
                    math.pow(base, weight) for base, weight in zip(
                        factors[edge_rows, edge_cols].tolist(),
                        last_weight[edge_rows].tolist(),
                    )
                ]
            # Prepending the carry keeps strict left-to-right
            # association: ((carry * f_j0) * f_j0+1) * ...  On the first
            # block the carry is all-ones, and 1.0 * x == x bit-exactly,
            # so the plain reduce is identical and skips the concat.
            if j0 == 0:
                product = np.multiply.reduce(factors, axis=1)
            else:
                product = np.multiply.reduce(
                    np.concatenate([product[:, None], factors], axis=1),
                    axis=1,
                )
        out[out_idx] = product
