"""Global Usage Pattern Analyzer (GUPA).

Receives each node's weekly usage profile from its LUPA and answers the
GRM's question: "how likely is this node to stay idle long enough for
this task?"  (Paper, Section 4: "This information is made available to
the GRM, which can make better scheduling decisions due to the
possibility of predicting a node's idle periods.")
"""

from typing import Optional

from repro.sim.clock import SECONDS_PER_DAY

UNKNOWN = -1.0


class Gupa:
    """Cluster-wide store of per-node usage patterns."""

    def __init__(self):
        self._patterns: dict[str, dict] = {}
        self.uploads = 0

    def upload_pattern(self, node: str, pattern: Optional[dict]) -> None:
        """Store (or refresh) a node's weekly profile."""
        if pattern is None:
            return
        if "weekly" not in pattern or "bins_per_day" not in pattern:
            raise ValueError(f"malformed pattern for node {node!r}")
        if len(pattern["weekly"]) != 7:
            raise ValueError("weekly profile must have 7 rows")
        self._patterns[node] = dict(pattern)
        self.uploads += 1

    def has_pattern(self, node: str) -> bool:
        return node in self._patterns

    def forget(self, node: str) -> None:
        """Drop a node's pattern (node left the cluster)."""
        self._patterns.pop(node, None)

    @property
    def known_nodes(self) -> list:
        return sorted(self._patterns)

    def busy_probability(self, node: str, when: float) -> float:
        """P(owner active at ``when``), or UNKNOWN without a pattern."""
        pattern = self._patterns.get(node)
        if pattern is None:
            return UNKNOWN
        bins_per_day = pattern["bins_per_day"]
        bin_seconds = SECONDS_PER_DAY / bins_per_day
        dow = int(when // SECONDS_PER_DAY) % 7
        bin_index = int((when % SECONDS_PER_DAY) // bin_seconds)
        return float(pattern["weekly"][dow][bin_index])

    def idle_probability(self, node: str, start: float, duration: float) -> float:
        """P(node stays idle through the span), or UNKNOWN.

        Same independent-bins model as the LUPA side, computed from the
        uploaded profile so the GRM never needs to call back to nodes.
        """
        pattern = self._patterns.get(node)
        if pattern is None:
            return UNKNOWN
        bins_per_day = pattern["bins_per_day"]
        bin_seconds = SECONDS_PER_DAY / bins_per_day
        if duration <= 0:
            return 1.0 - self.busy_probability(node, start)
        probability = 1.0
        t = start
        end = start + duration
        while t < end:
            bin_end = (t // bin_seconds + 1) * bin_seconds
            chunk = min(bin_end, end) - t
            weight = chunk / bin_seconds
            probability *= (1.0 - self.busy_probability(node, t)) ** weight
            t = min(bin_end, end)
        return probability
