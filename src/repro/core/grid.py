"""Grid facade: assembles Figure 1 on the simulator.

One :class:`Grid` owns the event loop, the in-process ORB domain, and
any number of clusters.  Each cluster gets a Cluster Manager node (GRM +
GUPA + Trader + Naming on its own ORB); each workstation gets an LRM,
an NCC, and — unless dedicated — a LUPA, on its own ORB.  All
component-to-component traffic goes through ORB stubs, so protocol
message counts and byte volumes are measured, not estimated.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.spec import ApplicationSpec, BSP
from repro.checkpoint.store import MemoryCheckpointStore
from repro.core.asct import Asct
from repro.core.grm import Grm
from repro.core.gupa import Gupa
from repro.core.lrm import Lrm
from repro.core.lupa import Lupa
from repro.core.ncc import DEFAULT_POLICY, NodeControlCenter, SharingPolicy
from repro.core.protocols import (
    ASCT_INTERFACE,
    GRM_INTERFACE,
    GUPA_INTERFACE,
    LRM_INTERFACE,
)
from repro.core.scheduler import POLICIES, SchedulingPolicy
from repro.orb.core import Orb
from repro.orb.naming import NamingService, NAMING_INTERFACE
from repro.orb.transport import InProcDomain
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.events import EventLoop
from repro.sim.machine import MachineSpec
from repro.sim.network import NetworkTopology
from repro.sim.rng import SeededStreams
from repro.sim.usage import ALWAYS_IDLE, UsageProfile
from repro.sim.workstation import Workstation

#: Dedicated grid nodes share everything and never vacate.
DEDICATED_POLICY = SharingPolicy(
    cpu_cap_idle=1.0, cpu_cap_active=1.0, vacate_on_owner_return=False
)

DEFAULT_LUPA_UPLOAD_INTERVAL = SECONDS_PER_DAY


@dataclass
class NodeHandle:
    """Everything attached to one grid node."""

    name: str
    cluster: str
    workstation: Workstation
    lrm: Lrm
    ncc: NodeControlCenter
    orb: Orb
    lrm_ior: str
    lupa: Optional[Lupa] = None
    dedicated: bool = False


@dataclass
class ClusterHandle:
    """Everything attached to one cluster's manager node."""

    name: str
    orb: Orb
    grm: Grm
    gupa: Gupa
    naming: NamingService
    network: NetworkTopology
    grm_ior: str
    gupa_ior: str
    nodes: dict = field(default_factory=dict)
    checkpoint_store: MemoryCheckpointStore = field(
        default_factory=MemoryCheckpointStore
    )


class Grid:
    """A complete InteGrade grid on simulated time."""

    def __init__(
        self,
        seed: int = 0,
        policy: str = "pattern_aware",
        update_interval: float = 60.0,
        tick_interval: float = 30.0,
        schedule_interval: float = 30.0,
        lupa_enabled: bool = True,
        lupa_min_history_days: int = 7,
        lupa_upload_interval: float = DEFAULT_LUPA_UPLOAD_INTERVAL,
        lupa_relearn_interval: int = 1,
        holidays: Optional[set] = None,
        programs=None,
        auth_secret: Optional[bytes] = None,
        delta_updates: bool = False,
        full_refresh_every: int = 10,
        update_epsilon: float = 0.0,
        max_update_interval: Optional[float] = None,
        batched_ingest: bool = False,
        fast_local: bool = False,
        batch_oneway: bool = False,
        zero_copy_cdr: bool = False,
        chunked_checkpoints: bool = False,
        checkpoint_chunk_size: Optional[int] = None,
        checkpoint_rebase_every: Optional[int] = None,
        skip_unchanged_checkpoints: bool = False,
        incremental_summaries: bool = False,
        indexed_placement: bool = False,
        delta_uplinks: bool = False,
        summary_interval: Optional[float] = None,
        summary_refresh_every: int = 10,
        summary_epsilon: float = 0.0,
        max_summary_interval: Optional[float] = None,
    ):
        self.loop = EventLoop()
        self.streams = SeededStreams(seed)
        self.domain = InProcDomain()
        self.clusters: dict[str, ClusterHandle] = {}
        self.ascts: list[Asct] = []
        self.policy_name = policy
        self.update_interval = update_interval
        self.tick_interval = tick_interval
        self.schedule_interval = schedule_interval
        self.lupa_enabled = lupa_enabled
        self.lupa_min_history_days = lupa_min_history_days
        self.lupa_upload_interval = lupa_upload_interval
        self.lupa_relearn_interval = lupa_relearn_interval
        self.holidays = holidays if holidays is not None else set()
        #: Information-plane scaling knobs (all off by default: the seed
        #: wire format, event schedule, and trader behaviour are kept
        #: bit-identical unless explicitly opted in).
        self.delta_updates = delta_updates
        self.full_refresh_every = full_refresh_every
        self.update_epsilon = update_epsilon
        self.max_update_interval = max_update_interval
        self.batched_ingest = batched_ingest
        self.fast_local = fast_local
        #: Communication-plane scaling knobs (off by default): coalesce
        #: oneway requests into per-peer batch frames flushed at every
        #: sim-event boundary, and decode/encode CDR without copies.
        #: Delivery still happens at the same simulated instant as the
        #: event that queued it, so component state is unchanged — only
        #: the frame count drops from O(calls) to O(peer-flushes).
        self.batch_oneway = batch_oneway
        self.zero_copy_cdr = zero_copy_cdr
        #: ORBs with a non-empty oneway queue, flushed after each event.
        self._dirty_batch_orbs: set = set()
        if batch_oneway:
            self.loop.set_post_event_hook(self._flush_batched_orbs)
        #: Execution-plane scaling knobs (also off by default): chunked
        #: content-addressed checkpoint storage per cluster repository
        #: and digest-skip of unchanged per-node checkpoint saves.
        from repro.checkpoint.chunking import DEFAULT_REBASE_EVERY
        from repro.checkpoint.serializer import DEFAULT_CHUNK_SIZE
        self.chunked_checkpoints = chunked_checkpoints
        self.checkpoint_chunk_size = (
            checkpoint_chunk_size if checkpoint_chunk_size is not None
            else DEFAULT_CHUNK_SIZE
        )
        self.checkpoint_rebase_every = (
            checkpoint_rebase_every if checkpoint_rebase_every is not None
            else DEFAULT_REBASE_EVERY
        )
        self.skip_unchanged_checkpoints = skip_unchanged_checkpoints
        #: Wide-area-plane scaling knobs (off by default: parents keep
        #: the seed O(children) aggregation, scan-and-sort placement,
        #: and fixed-interval full-summary uplinks).
        from repro.core.hierarchy import DEFAULT_SUMMARY_INTERVAL
        self.incremental_summaries = incremental_summaries
        self.indexed_placement = indexed_placement
        self.delta_uplinks = delta_uplinks
        self.summary_interval = (
            summary_interval if summary_interval is not None
            else DEFAULT_SUMMARY_INTERVAL
        )
        self.summary_refresh_every = summary_refresh_every
        self.summary_epsilon = summary_epsilon
        self.max_summary_interval = max_summary_interval
        from repro.apps.registry import DEFAULT_REGISTRY
        self.programs = programs if programs is not None else DEFAULT_REGISTRY
        # Optional cluster-membership authentication: with a secret set,
        # every grid component signs its requests and every component
        # refuses unsigned ones — a rogue ORB in the same process cannot
        # submit, register, or evict (Section 3's authentication point).
        self._credentials = None
        self._keyring = None
        if auth_secret is not None:
            from repro.security.auth import Credentials, KeyRing
            self._keyring = KeyRing()
            self._keyring.add("integrade", auth_secret)
            self._credentials = Credentials("integrade", auth_secret)
        self._coordinators: dict[str, object] = {}
        self._job_cluster: dict[str, str] = {}
        #: Observability: None until enable_metrics()/enable_tracing()/
        #: enable_journal().
        self.metrics = None
        self.tracer = None
        self.journal = None
        self._orbs: list[Orb] = []
        #: ParentGrms built by connect_clusters_to_parent/build_hierarchy
        #: (for metrics/journal wiring), keyed by parent name.
        self._parents: dict[str, object] = {}

    def _make_orb(self, name: str) -> Orb:
        """All grid ORBs share the membership credential (if any)."""
        orb = Orb(
            name,
            domain=self.domain,
            credentials=self._credentials,
            keyring=self._keyring,
            require_auth=self._keyring is not None,
            fast_local=self.fast_local,
            batch_oneway=self.batch_oneway,
            zero_copy_cdr=self.zero_copy_cdr,
        )
        self._orbs.append(orb)
        if self.batch_oneway:
            orb.set_batch_notifier(self._dirty_batch_orbs.add)
        if self.tracer is not None:
            orb.set_tracer(self.tracer)
        if self.metrics is not None:
            orb.to_metrics(self.metrics)
        return orb

    def _flush_batched_orbs(self) -> None:
        """Event-boundary flush: drain every ORB that queued oneways.

        Flushing can enqueue more (a dispatched servant may itself make
        oneway calls), re-dirtying ORBs — the loop runs until quiescent,
        all within the same simulated instant.
        """
        dirty = self._dirty_batch_orbs
        while dirty:
            dirty.pop().flush()

    def _slowest_healthy_interval(self) -> float:
        """What the GRM should treat as one healthy update interval.

        With adaptive throttling a quiet node legitimately stretches its
        cadence up to ``max_update_interval``; sizing the staleness
        window off the base interval would declare every throttled node
        dead.  Liveness detection therefore keys off the slowest cadence
        a healthy node may adopt — the price of throttling is slower
        crash detection, never false deaths.
        """
        if self.delta_updates and self.max_update_interval is not None:
            return max(self.update_interval, self.max_update_interval)
        return self.update_interval

    # -- assembly -------------------------------------------------------------------

    def _make_policy(self) -> SchedulingPolicy:
        try:
            policy_type = type(POLICIES[self.policy_name])
        except KeyError:
            raise ValueError(
                f"unknown policy {self.policy_name!r}; "
                f"choose from {sorted(POLICIES)}"
            ) from None
        if self.policy_name == "random":
            return policy_type(rng=self.streams.stream("policy.random"))
        return policy_type()

    def add_cluster(
        self,
        name: str,
        network: Optional[NetworkTopology] = None,
        policy: Optional[SchedulingPolicy] = None,
    ) -> ClusterHandle:
        """Create a cluster with its manager node components."""
        if name in self.clusters:
            raise ValueError(f"cluster {name!r} already exists")
        if network is None:
            network = NetworkTopology()
            network.add_segment(f"{name}-lan", bandwidth_mbps=100.0)
        orb = self._make_orb(f"{name}-manager")
        gupa = Gupa()
        store = MemoryCheckpointStore(
            chunked=self.chunked_checkpoints,
            chunk_size=self.checkpoint_chunk_size,
            rebase_every=self.checkpoint_rebase_every,
            skip_unchanged=self.skip_unchanged_checkpoints,
        )
        grm = Grm(
            self.loop,
            orb,
            cluster=name,
            policy=policy if policy is not None else self._make_policy(),
            gupa=gupa,
            network=network,
            checkpoint_store=store,
            schedule_interval=self.schedule_interval,
            update_interval_hint=self._slowest_healthy_interval(),
            batched_ingest=self.batched_ingest,
        )
        naming = NamingService()
        grm_ior = orb.activate(grm, GRM_INTERFACE, key=f"{name}/grm").to_string()
        gupa_ior = orb.activate(gupa, GUPA_INTERFACE, key=f"{name}/gupa").to_string()
        orb.activate(naming, NAMING_INTERFACE, key=f"{name}/naming")
        naming.bind(f"{name}/grm", grm_ior)
        naming.bind(f"{name}/gupa", gupa_ior)
        handle = ClusterHandle(
            name, orb, grm, gupa, naming, network, grm_ior, gupa_ior,
            checkpoint_store=store,
        )
        self.clusters[name] = handle
        if self.metrics is not None:
            grm.bind_metrics(self.metrics)
            store.to_metrics(self.metrics, prefix=f"checkpoint.{name}")
        if self.tracer is not None:
            grm.set_tracer(self.tracer)
        return handle

    def add_node(
        self,
        cluster: str,
        name: str,
        spec: Optional[MachineSpec] = None,
        profile: UsageProfile = ALWAYS_IDLE,
        sharing: SharingPolicy = DEFAULT_POLICY,
        dedicated: bool = False,
        segment: Optional[str] = None,
        scheduling: str = "owner_first",
    ) -> NodeHandle:
        """Add a resource-provider (or dedicated) node to a cluster."""
        handle = self._cluster(cluster)
        if name in handle.nodes:
            raise ValueError(f"node {name!r} already exists in {cluster!r}")
        if dedicated:
            profile = ALWAYS_IDLE
            sharing = DEDICATED_POLICY
        workstation = Workstation(
            self.loop,
            name,
            spec=spec,
            profile=profile,
            rng=self.streams.stream(f"owner.{name}"),
            holidays=self.holidays,
            scheduling=scheduling,
        )
        ncc = NodeControlCenter(self.loop.clock, sharing)
        orb = self._make_orb(f"{name}-orb")
        lrm = Lrm(
            self.loop,
            workstation,
            ncc,
            checkpoint_store=handle.checkpoint_store,
            update_interval=self.update_interval,
            tick_interval=self.tick_interval,
            delta_updates=self.delta_updates,
            full_refresh_every=self.full_refresh_every,
            update_epsilon=self.update_epsilon,
            max_update_interval=self.max_update_interval,
            skip_unchanged_checkpoints=self.skip_unchanged_checkpoints,
        )
        lrm_ref = orb.activate(lrm, LRM_INTERFACE, key=f"{name}/lrm")
        grm_stub = orb.stub(handle.grm_ior, GRM_INTERFACE)
        lrm.attach_grm(grm_stub, lrm_ref.to_string())

        lupa = None
        if self.lupa_enabled and not dedicated:
            machine = workstation.machine
            lupa = Lupa(
                self.loop,
                name,
                probe=lambda m=machine: 1.0 if (
                    m.keyboard_active or m.owner_cpu >= 0.1
                ) else 0.0,
                min_history_days=self.lupa_min_history_days,
                seed=self.streams.master_seed,
                relearn_interval=self.lupa_relearn_interval,
            )
            gupa_stub = orb.stub(handle.gupa_ior, GUPA_INTERFACE)
            self.loop.every(
                self.lupa_upload_interval,
                lambda l=lupa, g=gupa_stub, n=name: g.upload_pattern(
                    n, l.pattern()
                ) if l.pattern() is not None else None,
            )

        segment_name = segment if segment is not None else f"{cluster}-lan"
        if segment_name not in handle.network.segments:
            handle.network.add_segment(segment_name)
        handle.network.place(name, segment_name)

        node = NodeHandle(
            name, cluster, workstation, lrm, ncc, orb,
            lrm_ref.to_string(), lupa, dedicated,
        )
        handle.nodes[name] = node
        self._bind_node_metrics(node)
        self._bind_node_journal(node)
        return node

    def add_trace_node(
        self,
        cluster: str,
        name: str,
        events: list,
        spec: Optional[MachineSpec] = None,
        sharing: SharingPolicy = DEFAULT_POLICY,
        segment: Optional[str] = None,
        loop_trace: bool = True,
    ) -> NodeHandle:
        """Add a node whose owner replays a recorded activity trace.

        Identical wiring to :meth:`add_node` (LRM, NCC, LUPA, ORB), but
        the owner model is a :class:`~repro.sim.trace.TraceWorkstation`
        — so experiments can run against captured traces instead of the
        synthetic Markov owners.
        """
        from repro.sim.trace import TraceWorkstation

        handle = self._cluster(cluster)
        if name in handle.nodes:
            raise ValueError(f"node {name!r} already exists in {cluster!r}")
        workstation = TraceWorkstation(
            self.loop, name, events, spec=spec, loop_trace=loop_trace
        )
        ncc = NodeControlCenter(self.loop.clock, sharing)
        orb = self._make_orb(f"{name}-orb")
        lrm = Lrm(
            self.loop,
            workstation,
            ncc,
            checkpoint_store=handle.checkpoint_store,
            update_interval=self.update_interval,
            tick_interval=self.tick_interval,
            delta_updates=self.delta_updates,
            full_refresh_every=self.full_refresh_every,
            update_epsilon=self.update_epsilon,
            max_update_interval=self.max_update_interval,
            skip_unchanged_checkpoints=self.skip_unchanged_checkpoints,
        )
        lrm_ref = orb.activate(lrm, LRM_INTERFACE, key=f"{name}/lrm")
        grm_stub = orb.stub(handle.grm_ior, GRM_INTERFACE)
        lrm.attach_grm(grm_stub, lrm_ref.to_string())

        lupa = None
        if self.lupa_enabled:
            machine = workstation.machine
            lupa = Lupa(
                self.loop,
                name,
                probe=lambda m=machine: 1.0 if (
                    m.keyboard_active or m.owner_cpu >= 0.1
                ) else 0.0,
                min_history_days=self.lupa_min_history_days,
                seed=self.streams.master_seed,
                relearn_interval=self.lupa_relearn_interval,
            )
            gupa_stub = orb.stub(handle.gupa_ior, GUPA_INTERFACE)
            self.loop.every(
                self.lupa_upload_interval,
                lambda l=lupa, g=gupa_stub, n=name: g.upload_pattern(
                    n, l.pattern()
                ) if l.pattern() is not None else None,
            )

        segment_name = segment if segment is not None else f"{cluster}-lan"
        if segment_name not in handle.network.segments:
            handle.network.add_segment(segment_name)
        handle.network.place(name, segment_name)
        node = NodeHandle(
            name, cluster, workstation, lrm, ncc, orb,
            lrm_ref.to_string(), lupa, False,
        )
        handle.nodes[name] = node
        self._bind_node_metrics(node)
        self._bind_node_journal(node)
        return node

    def remove_node(self, cluster: str, name: str) -> None:
        """A node leaves the grid: evict its work, withdraw its offer.

        The paper's environment is dynamic — machines come and go.  Any
        running tasks are evicted (and requeued by the GRM); the
        workstation's owner model and all LRM timers stop.
        """
        handle = self._cluster(cluster)
        node = handle.nodes.pop(name, None)
        if node is None:
            raise KeyError(f"no node {name!r} in cluster {cluster!r}")
        journal = self.journal
        down = None
        if journal is not None and journal.active:
            down = journal.record("node_down", node=name, reason="removed")
        # Evictions triggered by the detach are caused by this departure.
        handle.grm._evict_cause = down.seq if down is not None else None
        try:
            node.lrm.detach()
        finally:
            handle.grm._evict_cause = None
        if node.lupa is not None:
            node.lupa.stop()
        node.workstation.stop()
        handle.grm.unregister_node(name)
        handle.gupa.forget(name)
        node.orb.shutdown()

    def _parent_stale_after(self) -> Optional[float]:
        """Summary-staleness window for parents, or None (seed: no sweep).

        Only armed in delta-uplink mode, where heartbeat suppression makes
        "no summary for a while" meaningful: a healthy throttled child
        still heartbeats at ``max_summary_interval`` at the slowest, so
        the window keys off that cadence (same reasoning as the GRM's
        node staleness in :meth:`_slowest_healthy_interval`).
        """
        if not self.delta_uplinks:
            return None
        from repro.core.hierarchy import DEFAULT_SUMMARY_STALE_FACTOR
        slowest = self.summary_interval
        if self.max_summary_interval is not None:
            slowest = max(slowest, self.max_summary_interval)
        return slowest * DEFAULT_SUMMARY_STALE_FACTOR

    def _make_parent(self, parent_name: str):
        """Create a ParentGrm on its own ORB, wired to the grid's flags.

        The servant is activated under both the ParentGrm interface (for
        children) and the GRM facade interface (so a higher-level parent
        can treat it as a cluster).  Returns ``(parent, parent_ior,
        facade_ior)``.
        """
        from repro.core.hierarchy import ParentGrm
        from repro.core.protocols import PARENT_GRM_INTERFACE

        if parent_name in self._parents:
            raise ValueError(f"parent {parent_name!r} already exists")
        if parent_name in self.clusters:
            raise ValueError(
                f"{parent_name!r} is already a cluster name"
            )
        orb = self._make_orb(f"{parent_name}-orb")
        parent = ParentGrm(
            self.loop, orb, name=parent_name,
            incremental_aggregation=self.incremental_summaries,
            indexed_placement=self.indexed_placement,
            stale_after=self._parent_stale_after(),
        )
        parent_ior = orb.activate(
            parent, PARENT_GRM_INTERFACE, key=f"{parent_name}/grm"
        ).to_string()
        facade_ior = orb.activate(
            parent, GRM_INTERFACE, key=f"{parent_name}/grm-facade"
        ).to_string()
        self._parents[parent_name] = parent
        if self.metrics is not None:
            parent.bind_metrics(self.metrics)
        if self.journal is not None:
            parent.set_journal(self.journal)
        return parent, parent_ior, facade_ior

    def _make_uplink(self, handle: ClusterHandle, parent_ior: str):
        """Connect one cluster's GRM to a parent, honouring the flags."""
        from repro.core.hierarchy import ClusterUplink
        from repro.core.protocols import PARENT_GRM_INTERFACE

        stub = handle.orb.stub(parent_ior, PARENT_GRM_INTERFACE)
        return ClusterUplink(
            self.loop, handle.grm, stub, handle.grm_ior,
            interval=self.summary_interval,
            delta=self.delta_uplinks,
            full_refresh_every=self.summary_refresh_every,
            epsilon=self.summary_epsilon,
            max_interval=self.max_summary_interval,
        )

    def connect_clusters_to_parent(self, parent_name: str = "parent"):
        """Build a two-level hierarchy over all current clusters."""
        parent, parent_ior, _facade = self._make_parent(parent_name)
        uplinks = [
            self._make_uplink(handle, parent_ior)
            for handle in self.clusters.values()
        ]
        return parent, uplinks

    def build_hierarchy(self, tree: dict):
        """Build an arbitrary-depth hierarchy from a nested description.

        ``tree`` is a single-key dict mapping a parent name to its
        children; each child is either an existing cluster's name or a
        nested single-key dict describing a sub-parent::

            parents, uplinks = grid.build_hierarchy(
                {"root": ["hq", {"campus": ["lab-a", "lab-b"]}]}
            )

        Every parent honours the grid's wide-area flags.  Sub-parents
        join their parent through the GRM facade (they look like one big
        cluster from above), streaming delta summaries when
        ``delta_uplinks`` is on.  Returns ``(parents, uplinks)`` where
        ``parents`` maps each parent name to its :class:`ParentGrm`.
        """
        from repro.core.protocols import PARENT_GRM_INTERFACE

        if len(tree) != 1:
            raise ValueError(
                f"tree must have exactly one root, got {sorted(tree)}"
            )
        parents: dict = {}
        uplinks: list = []

        def build(name: str, children: list):
            parent, parent_ior, facade_ior = self._make_parent(name)
            parents[name] = parent
            for child in children:
                if isinstance(child, dict):
                    if len(child) != 1:
                        raise ValueError(
                            f"sub-parent nodes take exactly one name, "
                            f"got {sorted(child)}"
                        )
                    (sub_name, sub_children), = child.items()
                    sub, sub_facade_ior = build(sub_name, sub_children)
                    stub = sub._orb.stub(parent_ior, PARENT_GRM_INTERFACE)
                    sub.attach_parent(
                        stub, sub_facade_ior,
                        interval=self.summary_interval,
                        delta=self.delta_uplinks,
                        full_refresh_every=self.summary_refresh_every,
                        epsilon=self.summary_epsilon,
                        max_interval=self.max_summary_interval,
                    )
                else:
                    uplinks.append(
                        self._make_uplink(self._cluster(child), parent_ior)
                    )
            return parent, facade_ior

        (root_name, root_children), = tree.items()
        build(root_name, root_children)
        return parents, uplinks

    # -- submission -----------------------------------------------------------------

    def make_asct(self, cluster: str, user: str = "user") -> Asct:
        """Create a user node's submission tool against a cluster's GRM."""
        handle = self._cluster(cluster)
        orb = self._make_orb(f"{user}-asct{len(self.ascts)}")
        grm_stub = orb.stub(handle.grm_ior, GRM_INTERFACE)
        asct = Asct(grm_stub)
        ref = orb.activate(asct, ASCT_INTERFACE)
        asct.ior = ref.to_string()
        self.ascts.append(asct)
        return asct

    def submit(self, spec: ApplicationSpec, cluster: Optional[str] = None) -> str:
        """Submit an application; BSP jobs get a superstep coordinator."""
        if cluster is None:
            cluster = next(iter(self.clusters))
        handle = self._cluster(cluster)
        job_id = handle.grm.submit(spec.to_dict())
        self._job_cluster[job_id] = cluster
        if spec.kind == BSP:
            from repro.bsp.gridexec import BspGridCoordinator

            coordinator = BspGridCoordinator(
                self.loop, handle.grm, handle.grm.job(job_id),
                checkpoint_store=handle.checkpoint_store,
                registry=self.programs,
            )
            handle.grm.register_coordinator(job_id, coordinator)
            self._coordinators[job_id] = coordinator
            if self.journal is not None:
                coordinator.set_journal(self.journal)
            if self.metrics is not None:
                self.metrics.view(
                    f"bsp.{job_id}.stragglers",
                    lambda c=coordinator: len(c.recovery.stragglers()),
                )
        return job_id

    def coordinator(self, job_id: str):
        return self._coordinators.get(job_id)

    def job(self, job_id: str):
        """The Job object for a submitted id (however it was submitted)."""
        cluster = self._job_cluster.get(job_id)
        if cluster is not None:
            return self.clusters[cluster].grm.job(job_id)
        for handle in self.clusters.values():   # ASCT-submitted jobs
            try:
                return handle.grm.job(job_id)
            except KeyError:
                continue
        raise KeyError(f"unknown job {job_id!r}")

    # -- running ----------------------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        self.loop.run_for(seconds)

    def run_until(self, when: float) -> None:
        self.loop.run_until(when)

    def wait_for_job(
        self, job_id: str, max_seconds: float = 30 * SECONDS_PER_DAY,
        step: float = 300.0,
    ) -> bool:
        """Advance simulated time until the job finishes (or give up)."""
        job = self.job(job_id)
        deadline = self.loop.now + max_seconds
        while not job.done and self.loop.now < deadline:
            self.loop.run_for(step)
        return job.done

    # -- observability -----------------------------------------------------------------

    def enable_metrics(self):
        """Turn on the grid-wide metrics registry (idempotent).

        Always-on-cheap: every pre-existing counter becomes a pull-view,
        read only when a snapshot is taken; the only new recording work
        is the GRM ranking and Trader query latency histograms.  Returns
        the :class:`~repro.obs.MetricsRegistry`; components added later
        are wired automatically.
        """
        if self.metrics is not None:
            return self.metrics
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry(clock=self.loop.clock)
        self.metrics = registry
        self.loop.to_metrics(registry)
        registry.view("orb.totals", self.protocol_stats)
        # Oneway-batching counters (all zero unless batch_oneway is on).
        for view_name, attr in (
            ("orb.batch.frames", "batch_frames"),
            ("orb.batch.calls", "batch_calls"),
            ("orb.batch.bytes_saved", "batch_bytes_saved"),
        ):
            registry.view(
                view_name,
                lambda a=attr: sum(getattr(o, a) for o in self._orbs),
            )
        for orb in self._orbs:
            orb.to_metrics(registry)
        for handle in self.clusters.values():
            handle.grm.bind_metrics(registry)
            handle.checkpoint_store.to_metrics(
                registry, prefix=f"checkpoint.{handle.name}"
            )
            for node in handle.nodes.values():
                self._bind_node_metrics(node)
        for parent in self._parents.values():
            parent.bind_metrics(registry)
        for field_name in ("completed_count", "evicted_count",
                           "checkpoints_taken", "checkpoints_skipped",
                           "refused_reservations",
                           "accepted_reservations", "updates_sent",
                           "updates_full", "updates_delta",
                           "updates_suppressed", "updates_bytes_saved",
                           "sandbox_violations"):
            registry.view(
                f"lrm.total.{field_name}",
                lambda f=field_name: sum(
                    getattr(n.lrm, f)
                    for h in self.clusters.values()
                    for n in h.nodes.values()
                ),
            )
        # Information-plane counters under their protocol-level names.
        for name, field_name in (
            ("lrm.updates.delta", "updates_delta"),
            ("lrm.updates.suppressed", "updates_suppressed"),
            ("lrm.updates.bytes_saved", "updates_bytes_saved"),
        ):
            registry.view(
                name,
                lambda f=field_name: sum(
                    getattr(n.lrm, f)
                    for h in self.clusters.values()
                    for n in h.nodes.values()
                ),
            )
        # Late-binding observability layers publish their own health views.
        if self.journal is not None:
            self.journal.to_metrics(registry)
        if self.tracer is not None:
            self.tracer.to_metrics(registry)
        for job_id, coordinator in self._coordinators.items():
            registry.view(
                f"bsp.{job_id}.stragglers",
                lambda c=coordinator: len(c.recovery.stragglers()),
            )
        return registry

    def _bind_node_metrics(self, node: NodeHandle) -> None:
        if self.metrics is None:
            return
        node.lrm.to_metrics(self.metrics)
        if node.lupa is not None:
            node.lupa.to_metrics(self.metrics)

    def enable_tracing(self):
        """Turn on span tracing across every ORB and GRM (idempotent).

        Returns the grid's :class:`~repro.obs.Tracer`.  While enabled,
        each traced ORB invocation carries its ``(trace_id, span_id)``
        in a request-header extension, so a submission's spans connect
        across the ASCT, GRM, Trader, and LRM hops.  Turn it back off
        with ``grid.tracer.disable()`` — the wire format reverts to the
        untraced bytes exactly.
        """
        if self.tracer is None:
            from repro.obs.trace import Tracer
            self.tracer = Tracer(clock=self.loop.clock)
            for orb in self._orbs:
                orb.set_tracer(self.tracer)
            for handle in self.clusters.values():
                handle.grm.set_tracer(self.tracer)
            if self.metrics is not None:
                self.tracer.to_metrics(self.metrics)
        self.tracer.enable()
        return self.tracer

    def enable_journal(self, max_events: int = 200_000):
        """Turn on the structured event journal (idempotent).

        Every GRM, LRM, reservation ledger, and BSP coordinator gets the
        same :class:`~repro.obs.EventJournal`; from then on node
        arrivals/deaths, task placements/evictions/completions,
        checkpoint saves/restores, reservation grants/violations, BSP
        supersteps, and dropped status updates are recorded with causal
        links, stamped in simulated time.  Like metrics and tracing, the
        journal records — it never schedules events or draws randomness,
        so an instrumented run replays the uninstrumented one exactly.
        Nodes already registered are journalled retroactively as
        ``node_up`` at the current sim time so forensics always has a
        roster.  Turn it back off with ``grid.journal.disable()``.
        """
        if self.journal is not None:
            self.journal.enable()
            return self.journal
        from repro.obs.journal import EventJournal
        journal = EventJournal(clock=self.loop.clock, max_events=max_events)
        self.journal = journal
        for handle in self.clusters.values():
            handle.grm.set_journal(journal)
            for node in handle.nodes.values():
                node.lrm.set_journal(journal)
            # Roster catch-up: nodes that registered before the journal
            # existed still appear, so chains can name them.
            for name, record in sorted(handle.grm._nodes.items()):
                if record.alive:
                    journal.record(
                        "node_up", node=name, cluster=handle.name,
                        mips=record.last_status.get("mips"),
                        retroactive=True,
                    )
        for coordinator in self._coordinators.values():
            coordinator.set_journal(journal)
        for parent in self._parents.values():
            parent.set_journal(journal)
            # Roster catch-up for clusters, mirroring the node roster.
            for cluster in parent.clusters:
                record = parent._children[cluster]
                if record.alive:
                    journal.record(
                        "cluster_up", cluster=cluster, parent=parent.name,
                        nodes=record.summary.get("nodes"),
                        retroactive=True,
                    )
        if self.metrics is not None:
            journal.to_metrics(self.metrics)
        return journal

    def _bind_node_journal(self, node: NodeHandle) -> None:
        if self.journal is not None:
            node.lrm.set_journal(self.journal)

    def health_report(self, rules=None, top: int = 5) -> dict:
        """Forensics + alert postmortem from the live journal/registry."""
        from repro.obs.health import grid_health_report
        return grid_health_report(self, rules=rules, top=top)

    def metrics_snapshot(self) -> dict:
        """The registry snapshot; enables metrics on first use."""
        return self.enable_metrics().snapshot()

    # -- metrics -----------------------------------------------------------------------

    def protocol_stats(self) -> dict:
        """Aggregated ORB traffic across every node and manager."""
        totals = {
            "requests_sent": 0, "replies_received": 0,
            "requests_received": 0, "bytes_sent": 0, "bytes_received": 0,
            "requests_handled": 0,
        }
        orbs = []
        for handle in self.clusters.values():
            orbs.append(handle.orb)
            orbs.extend(n.orb for n in handle.nodes.values())
        for orb in orbs:
            for key, value in orb.stats().items():
                totals[key] += value
        return totals

    def _cluster(self, name: str) -> ClusterHandle:
        handle = self.clusters.get(name)
        if handle is None:
            raise KeyError(f"unknown cluster {name!r}")
        return handle
