"""Inter-cluster hierarchy.

"Clusters are then arranged in a hierarchy, allowing a single InteGrade
grid to encompass millions of machines" (Section 4).  A
:class:`ParentGrm` aggregates per-cluster summaries (not per-node status
— that is the point of the hierarchy) and places jobs that their origin
cluster could not, implementing the wide-area extension of the resource
management protocols (Marques & Kon 2002).

Scaling the wide-area plane (all opt-in, seed behaviour is the default):

* **Incremental aggregation** — with ``incremental_aggregation=True``
  the parent maintains running totals (and a sorted multiset for the
  max) updated in O(1)/O(log C) per summary, so :meth:`aggregate_summary`
  stops recomputing O(children) sums on every uplink heartbeat.
  :meth:`aggregate_oracle` keeps the seed recompute as the equivalence
  oracle.
* **Indexed placement** — with ``indexed_placement=True`` candidate
  selection walks a free-CPU-ordered index maintained on summary
  arrival instead of scanning and sorting every child per submit; the
  walk stops at the first child that provably cannot host the job
  (the index is ordered by the one monotone criterion), so submit cost
  is O(answers + log C), and clusters whose aggregate cannot host the
  job are skipped before any remote round-trip.  Candidate order is
  bit-identical to the seed :meth:`_rank_candidates` sort (stable on
  registration order within free-CPU ties).
* **Delta uplinks** — :class:`ClusterUplink` and
  :meth:`ParentGrm.attach_parent` can stream changed-field deltas with
  adaptive throttling (reusing
  :class:`~repro.core.update_protocol.DeltaSender`), and a parent given
  ``stale_after`` sweeps a ``(expiry, seq)`` min-heap to demote children
  whose summaries stopped arriving — stale clusters leave the placement
  index instead of being ranked (and dialled) as live candidates.
"""

import itertools
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import Optional

from repro.apps.spec import ApplicationSpec
from repro.core.grm import Grm
from repro.core.protocols import GRM_INTERFACE
from repro.core.update_protocol import (
    DEFAULT_FULL_REFRESH_EVERY,
    DELTA,
    FULL,
    DeltaSender,
    apply_delta,
)
from repro.orb.core import Orb
from repro.orb.exceptions import OrbError
from repro.sim.events import EventLoop

DEFAULT_SUMMARY_INTERVAL = 300.0

#: A child whose summaries stop arriving for this many healthy intervals
#: is demoted from placement (mirrors the GRM's node staleness factor).
DEFAULT_SUMMARY_STALE_FACTOR = 3.5

#: Totals maintained incrementally (every CLUSTER_SUMMARY field that is
#: a plain sum over children; ``max_node_mips`` needs the multiset).
_SUM_FIELDS = (
    "nodes", "sharing_nodes", "free_cpu_total", "free_mem_total_mb",
    "pending_tasks",
)


@dataclass
class ClusterRecord:
    """The parent's view of one child cluster."""

    cluster: str
    grm_ior: str
    grm_stub: object
    summary: dict
    last_seen: float
    #: Registration order; breaks free-CPU ties exactly the way the seed
    #: stable sort does (dict insertion order).
    seq: int = 0
    #: False once the staleness sweep demoted this child; revived by the
    #: next summary that arrives.
    alive: bool = True
    #: The (-free_cpu_total, seq) key this record currently occupies in
    #: the placement index (None when unindexed or demoted).
    index_key: Optional[tuple] = field(default=None, repr=False)


class NoCapacity(Exception):
    """No child cluster can host the submitted application."""


class HierarchyError(Exception):
    """A wide-area operation failed because a child cluster is unreachable.

    Wraps the underlying :class:`~repro.orb.exceptions.OrbError` with the
    cluster the hierarchy was talking to, so callers (and postmortems)
    can name the dead cluster instead of staring at a bare ORB fault.
    """

    def __init__(self, cluster: str, operation: str, job_id: str, cause):
        self.cluster = cluster
        self.operation = operation
        self.job_id = job_id
        self.cause = cause
        super().__init__(
            f"{operation}({job_id!r}) failed: cluster {cluster!r} "
            f"unreachable: {cause}"
        )


class ParentGrm:
    """The servant implementing ``integrade/ParentGrm``.

    Also implements a GRM-compatible ``submit``/``job_status`` facade, so
    a ParentGrm can itself register as a "cluster" with a higher-level
    ParentGrm — the paper's arbitrarily deep hierarchy ("the hierarchy
    can be arranged in any convenient manner").
    """

    def __init__(
        self,
        loop: EventLoop,
        orb: Orb,
        name: str = "parent",
        incremental_aggregation: bool = False,
        indexed_placement: bool = False,
        stale_after: Optional[float] = None,
    ):
        self._loop = loop
        self._orb = orb
        self.name = name
        self._children: dict[str, ClusterRecord] = {}
        self._parent = None
        self._delegated_jobs: dict[str, ClusterRecord] = {}
        self.summaries_received = 0
        self.summaries_full = 0
        self.summaries_delta = 0
        self.summaries_suppressed = 0
        self.summaries_dropped = 0
        self.remote_submissions = 0
        self.remote_rejections = 0
        self.upward_forwards = 0
        self.clusters_declared_stale = 0
        #: Placement accounting (indexed mode): children admitted to the
        #: candidate list, children pruned before any remote round-trip,
        #: and submissions escalated to our own parent.
        self.placements_admitted = 0
        self.placements_skipped_by_index = 0
        self.placements_escalated = 0
        #: Parent-as-child uplink accounting (delta-mode attach_parent).
        self.uplink_full = 0
        self.uplink_delta = 0
        self.uplink_suppressed = 0
        #: Optional observability hooks; None keeps the seed hot paths.
        self.journal = None
        self._submit_hist = None
        #: Wide-area scaling switches (defaults preserve seed behaviour).
        self._incremental = incremental_aggregation
        self._indexed = indexed_placement
        self._stale_after = stale_after
        #: Incremental aggregation state: running totals plus a sorted
        #: multiset of each live child's max_node_mips.
        self._totals = {key: 0 for key in _SUM_FIELDS}
        self._mips: list = []
        #: Placement index: (-free_cpu_total, seq, record) ascending, so
        #: a front-to-back walk visits most-spare-CPU first with seed tie
        #: order, and stops at the first child below the CPU threshold.
        self._index: list = []
        self._cluster_seq = itertools.count()
        #: Staleness sweep state, same shape as the GRM's node sweep:
        #: (expiry, seq, record) entries re-armed lazily on fresh children.
        self._expiry_heap: list = []
        self._expiry_seq = itertools.count()
        self._sweep_task = None
        if stale_after is not None:
            if stale_after <= 0:
                raise ValueError(
                    f"stale_after must be positive, got {stale_after}"
                )
            self._sweep_task = loop.every(stale_after, self._check_staleness)
        self._uplink_sender = None
        self._uplink_task = None

    # -- wiring -----------------------------------------------------------------

    def set_journal(self, journal) -> None:
        """Attach the grid's event journal (cluster lifecycle events)."""
        self.journal = journal

    def bind_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish this parent's wide-area counters on a metrics registry.

        Registers the ``parent.<name>.*`` views (summary kinds, placement
        admission accounting, cluster roster) and starts the
        ``submit_latency_s`` histogram over the wide-area submit path.
        """
        prefix = prefix if prefix is not None else f"parent.{self.name}"
        registry.view(f"{prefix}.summaries.received",
                      lambda: self.summaries_received)
        registry.view(f"{prefix}.summaries.full", lambda: self.summaries_full)
        registry.view(f"{prefix}.summaries.delta",
                      lambda: self.summaries_delta)
        registry.view(f"{prefix}.summaries.suppressed",
                      lambda: self.summaries_suppressed)
        registry.view(f"{prefix}.summaries.dropped",
                      lambda: self.summaries_dropped)
        registry.view(f"{prefix}.placement.admitted",
                      lambda: self.placements_admitted)
        registry.view(f"{prefix}.placement.skipped_by_index",
                      lambda: self.placements_skipped_by_index)
        registry.view(f"{prefix}.placement.escalated",
                      lambda: self.placements_escalated)
        registry.view(f"{prefix}.remote_submissions",
                      lambda: self.remote_submissions)
        registry.view(f"{prefix}.remote_rejections",
                      lambda: self.remote_rejections)
        registry.view(f"{prefix}.upward_forwards",
                      lambda: self.upward_forwards)
        registry.view(f"{prefix}.clusters_declared_stale",
                      lambda: self.clusters_declared_stale)
        registry.view(f"{prefix}.registered_clusters",
                      lambda: len(self._children))
        registry.view(
            f"{prefix}.live_clusters",
            lambda: sum(1 for r in self._children.values() if r.alive),
        )
        from repro.obs.metrics import LATENCY_BOUNDS_S
        self._submit_hist = registry.histogram(
            f"{prefix}.submit_latency_s", LATENCY_BOUNDS_S
        )

    def stop(self) -> None:
        """Stop the staleness sweep and any delta uplink timer."""
        if self._sweep_task is not None:
            self._sweep_task.stop()
        if self._uplink_task is not None:
            self._uplink_task.cancel()
            self._uplink_task = None

    # -- servant operations -----------------------------------------------------

    def register_cluster(self, summary: dict, grm_ior: str) -> None:
        cluster = summary["cluster"]
        stub = self._orb.stub(grm_ior, GRM_INTERFACE)
        existing = self._children.get(cluster)
        if existing is not None:
            # Re-registration keeps the child's dict position (and thus
            # its tie-break rank); retire the stale aggregate state.
            seq = existing.seq
            self._retire(existing)
        else:
            seq = next(self._cluster_seq)
        record = ClusterRecord(
            cluster, grm_ior, stub, summary, self._loop.now, seq=seq
        )
        self._children[cluster] = record
        self._admit(record)
        if self._stale_after is not None:
            heappush(
                self._expiry_heap,
                (record.last_seen + self._stale_after,
                 next(self._expiry_seq), record),
            )
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "cluster_up", cluster=cluster, parent=self.name,
                nodes=summary.get("nodes"),
            )

    def unregister_cluster(self, cluster: str) -> None:
        """A child leaves the hierarchy: drop it from placement entirely."""
        record = self._children.pop(cluster, None)
        if record is None:
            return
        self._retire(record)
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "cluster_down", cluster=cluster, parent=self.name,
                reason="unregistered",
            )

    def send_summary(self, summary: dict) -> None:
        record = self._children.get(summary["cluster"])
        if record is None:
            # A summary from a cluster that never registered (or was
            # dropped): count it and leave a forensic trail — the child
            # must re-register, exactly like a node-level update_dropped.
            self.summaries_dropped += 1
            journal = self.journal
            if journal is not None and journal.active:
                journal.record(
                    "update_dropped", cluster=summary["cluster"],
                    parent=self.name, reason="unregistered",
                )
            return
        self._apply_summary(record, summary)
        self.summaries_received += 1
        self.summaries_full += 1

    def send_summary_delta(self, cluster: str, delta: dict) -> None:
        """Delta-compressed summary: only changed fields (plus time)."""
        record = self._children.get(cluster)
        if record is None:
            self.summaries_dropped += 1
            journal = self.journal
            if journal is not None and journal.active:
                journal.record(
                    "update_dropped", cluster=cluster,
                    parent=self.name, reason="unregistered",
                )
            return
        merged = apply_delta(record.summary, delta)
        heartbeat = all(key == "time" for key in delta)
        self._apply_summary(record, merged)
        self.summaries_received += 1
        if heartbeat:
            self.summaries_suppressed += 1
        else:
            self.summaries_delta += 1

    def submit_remote(self, spec: dict, origin_cluster: str) -> str:
        """Place a job some other child cluster can run, or return ''.

        When no child qualifies and this node has a parent, the request
        escalates one level up; ``metadata["visited"]`` carries the
        hierarchy path to rule out cycles.
        """
        hist = self._submit_hist
        if hist is None:
            return self._submit_remote_impl(spec, origin_cluster)
        started = perf_counter()
        try:
            return self._submit_remote_impl(spec, origin_cluster)
        finally:
            hist.observe(perf_counter() - started)

    def _submit_remote_impl(self, spec: dict, origin_cluster: str) -> str:
        visited = list(dict(spec.get("metadata", {})).get("visited", []))
        if self.name in visited:
            self.remote_rejections += 1
            return ""
        for record in self._candidates(spec, origin_cluster):
            forwarded = self._tag(spec, origin_cluster, visited)
            try:
                job_id = record.grm_stub.submit(forwarded)
            except OrbError:
                continue
            self.remote_submissions += 1
            return job_id
        if self._parent is not None:
            escalated = self._tag(spec, origin_cluster, visited)
            try:
                job_id = self._parent.submit_remote(escalated, self.name)
            except OrbError:
                job_id = ""
            if job_id:
                self.upward_forwards += 1
                self.placements_escalated += 1
                return job_id
        self.remote_rejections += 1
        return ""

    def _tag(self, spec: dict, origin_cluster: str, visited: list) -> dict:
        forwarded = dict(spec)
        metadata = dict(forwarded.get("metadata", {}))
        metadata["no_forward"] = True
        metadata["origin_cluster"] = origin_cluster
        metadata["visited"] = visited + [self.name]
        forwarded["metadata"] = metadata
        return forwarded

    # -- GRM-compatible facade (lets a ParentGrm be someone's child) ---------

    def submit(self, spec) -> str:
        """Place the job in the best child cluster, or raise NoCapacity."""
        if isinstance(spec, dict):
            spec_dict = spec
        else:
            spec_dict = spec.to_dict()
        hist = self._submit_hist
        if hist is None:
            return self._submit_impl(spec_dict)
        started = perf_counter()
        try:
            return self._submit_impl(spec_dict)
        finally:
            hist.observe(perf_counter() - started)

    def _submit_impl(self, spec_dict: dict) -> str:
        for record in self._candidates(spec_dict, origin=""):
            try:
                job_id = record.grm_stub.submit(spec_dict)
            except OrbError:
                continue
            self._delegated_jobs[job_id] = record
            return job_id
        raise NoCapacity(
            f"{self.name}: no child cluster can host "
            f"{spec_dict.get('name')!r}"
        )

    def job_status(self, job_id: str) -> dict:
        record = self._delegated_jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        try:
            return record.grm_stub.job_status(job_id)
        except OrbError as exc:
            raise HierarchyError(
                record.cluster, "job_status", job_id, exc
            ) from exc

    def cancel_job(self, job_id: str) -> None:
        record = self._delegated_jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        try:
            record.grm_stub.cancel_job(job_id)
        except OrbError as exc:
            raise HierarchyError(
                record.cluster, "cancel_job", job_id, exc
            ) from exc

    # GRM interface operations that have no meaning at an aggregation
    # node: per-node traffic never reaches a parent.
    def register_node(self, status, lrm_ior) -> None:
        raise TypeError("nodes register with leaf GRMs, not parents")

    def unregister_node(self, node) -> None:
        raise TypeError("nodes register with leaf GRMs, not parents")

    def send_update(self, status) -> None:
        pass

    def send_delta(self, node, delta) -> None:
        pass

    def register_asct(self, job_id, asct_ior) -> None:
        pass

    def task_completed(self, node, task_id, result) -> None:
        pass

    def task_evicted(self, node, task_id, progress, resume) -> None:
        pass

    def task_reached_limit(self, node, task_id) -> None:
        pass

    # -- aggregation --------------------------------------------------------------

    def aggregate_oracle(self) -> dict:
        """The seed O(children) recompute, kept as the equivalence oracle."""
        children = [r for r in self._children.values() if r.alive]
        return {
            "cluster": self.name,
            "time": self._loop.now,
            "nodes": sum(r.summary["nodes"] for r in children),
            "sharing_nodes": sum(
                r.summary["sharing_nodes"] for r in children
            ),
            "free_cpu_total": sum(
                r.summary["free_cpu_total"] for r in children
            ),
            "free_mem_total_mb": sum(
                r.summary["free_mem_total_mb"] for r in children
            ),
            "max_node_mips": max(
                (r.summary["max_node_mips"] for r in children), default=0.0
            ),
            "pending_tasks": sum(
                r.summary["pending_tasks"] for r in children
            ),
        }

    def aggregate_summary(self) -> dict:
        """This subtree, summarised as if it were one big cluster."""
        if not self._incremental:
            return self.aggregate_oracle()
        totals = self._totals
        return {
            "cluster": self.name,
            "time": self._loop.now,
            "nodes": totals["nodes"],
            "sharing_nodes": totals["sharing_nodes"],
            "free_cpu_total": totals["free_cpu_total"],
            "free_mem_total_mb": totals["free_mem_total_mb"],
            "max_node_mips": self._mips[-1] if self._mips else 0.0,
            "pending_tasks": totals["pending_tasks"],
        }

    def attach_parent(
        self,
        parent_stub,
        own_grm_facade_ior: str,
        loop: Optional[EventLoop] = None,
        interval: float = DEFAULT_SUMMARY_INTERVAL,
        delta: bool = False,
        full_refresh_every: int = DEFAULT_FULL_REFRESH_EVERY,
        epsilon: float = 0.0,
        max_interval: Optional[float] = None,
    ) -> None:
        """Join a higher-level ParentGrm as one of its 'clusters'.

        With ``delta=True`` the upward stream reuses the information
        plane's :class:`DeltaSender`: changed-fields deltas, heartbeat
        suppression while idle (the interval stretches up to
        ``max_interval``), and an unconditional full refresh every
        ``full_refresh_every`` sends as the drop-resync bound.

        Summary uplinks are oneway, so on a Grid built with
        ``batch_oneway=True`` the ORB coalesces the uplinks every
        cluster fires in the same interval into one frame per parent
        at the event-boundary flush — the federation wire carries
        O(parents) frames per interval, not O(clusters).
        """
        self._parent = parent_stub
        summary = self.aggregate_summary()
        parent_stub.register_cluster(summary, own_grm_facade_ior)
        driver = loop if loop is not None else self._loop
        if not delta:
            driver.every(
                interval,
                lambda: parent_stub.send_summary(self.aggregate_summary()),
            )
            return
        sender = DeltaSender(
            interval,
            full_refresh_every=full_refresh_every,
            epsilon=epsilon,
            max_interval=max_interval,
        )
        sender.register(summary)
        self._uplink_sender = sender

        def fire():
            kind, payload = sender.encode(self.aggregate_summary())
            if kind == FULL:
                parent_stub.send_summary(payload)
                self.uplink_full += 1
            else:
                parent_stub.send_summary_delta(self.name, payload)
                if kind == DELTA:
                    self.uplink_delta += 1
                else:
                    self.uplink_suppressed += 1
            self._uplink_task = driver.schedule(sender.current_interval, fire)

        self._uplink_task = driver.schedule(sender.current_interval, fire)

    # -- summary bookkeeping -----------------------------------------------------

    def _apply_summary(self, record: ClusterRecord, summary: dict) -> None:
        """Store a child's new summary and maintain the derived structures."""
        old = record.summary
        record.summary = summary
        record.last_seen = self._loop.now
        if not record.alive:
            # The child came back: re-admit it to totals and placement.
            record.alive = True
            self._admit(record)
            if self._stale_after is not None:
                heappush(
                    self._expiry_heap,
                    (record.last_seen + self._stale_after,
                     next(self._expiry_seq), record),
                )
            journal = self.journal
            if journal is not None and journal.active:
                journal.record(
                    "cluster_up", cluster=record.cluster, parent=self.name,
                    reason="summaries resumed",
                )
            return
        if self._incremental:
            totals = self._totals
            for key in _SUM_FIELDS:
                delta = summary[key] - old[key]
                if delta:
                    totals[key] += delta
            old_mips = old["max_node_mips"]
            new_mips = summary["max_node_mips"]
            if new_mips != old_mips:
                del self._mips[bisect_left(self._mips, old_mips)]
                insort(self._mips, new_mips)
        if self._indexed:
            key = (-summary["free_cpu_total"], record.seq)
            if key != record.index_key:
                self._index_remove(record)
                record.index_key = key
                insort(self._index, key + (record,))

    def _admit(self, record: ClusterRecord) -> None:
        """Fold a (re)registered child into totals and the index."""
        summary = record.summary
        if self._incremental:
            totals = self._totals
            for key in _SUM_FIELDS:
                totals[key] += summary[key]
            insort(self._mips, summary["max_node_mips"])
        if self._indexed:
            record.index_key = (-summary["free_cpu_total"], record.seq)
            insort(self._index, record.index_key + (record,))

    def _retire(self, record: ClusterRecord) -> None:
        """Remove a child's contribution from totals and the index."""
        if not record.alive:
            return
        summary = record.summary
        if self._incremental:
            totals = self._totals
            for key in _SUM_FIELDS:
                totals[key] -= summary[key]
            del self._mips[bisect_left(self._mips, summary["max_node_mips"])]
        self._index_remove(record)

    def _index_remove(self, record: ClusterRecord) -> None:
        key = record.index_key
        if key is None:
            return
        pos = bisect_left(self._index, key)
        # The 3-tuple at pos compares equal on (free_cpu, seq) — seq is
        # unique per child, so this is exactly the record's entry.
        del self._index[pos]
        record.index_key = None

    def _check_staleness(self) -> None:
        """Demote children whose summaries stopped arriving.

        Same sweep shape as the GRM's node liveness heap: pop only
        entries whose armed expiry passed, re-arm children that kept
        reporting at their real expiry.  A demoted child stays
        registered (its stub may still answer for delegated jobs) but
        leaves the totals and the placement index, so placement never
        ranks — or dials — a dead cluster.
        """
        now = self._loop.now
        heap = self._expiry_heap
        stale_after = self._stale_after
        children = self._children
        while heap and heap[0][0] < now:
            _expiry, _seq, record = heappop(heap)
            if children.get(record.cluster) is not record or not record.alive:
                continue   # unregistered, replaced, or already demoted
            expiry = record.last_seen + stale_after
            if expiry < now:
                self._retire(record)
                record.alive = False
                self.clusters_declared_stale += 1
                journal = self.journal
                if journal is not None and journal.active:
                    journal.record(
                        "cluster_down", cluster=record.cluster,
                        parent=self.name, reason="summaries stale",
                        last_seen=record.last_seen,
                    )
            else:
                heappush(heap, (expiry, next(self._expiry_seq), record))

    # -- selection -----------------------------------------------------------------

    def _candidates(self, spec_dict: dict, origin: str) -> list:
        """Eligible children, best-first, via the index or the seed scan."""
        if self._indexed:
            reqs = spec_dict.get("requirements") or {}
            tasks = spec_dict.get("tasks", 1)
            needed_cpu = tasks * reqs.get("cpu_fraction", 1.0)
            return self._indexed_candidates(
                needed_cpu, tasks, reqs.get("min_mips", 0.0), origin
            )
        parsed = ApplicationSpec.from_dict(spec_dict)
        return self._rank_candidates(parsed, origin)

    def _indexed_candidates(
        self,
        needed_cpu: float,
        tasks: int,
        min_mips: float,
        origin: str,
    ) -> list:
        """Walk the free-CPU index; stop at the first provably-unfit child.

        The index is ordered by spare CPU (descending walk), the one
        eligibility criterion that is monotone in the ordering — every
        child past the first one below ``needed_cpu`` fails too, so the
        walk prunes them without even looking.  The secondary filters
        (sharing node count, fastest node) reject within the prefix.
        """
        eligible = []
        for entry in self._index:
            if -entry[0] < needed_cpu:
                break
            record = entry[2]
            summary = record.summary
            if record.cluster == origin:
                continue
            if summary["sharing_nodes"] < tasks:
                continue
            if min_mips > 0 and summary["max_node_mips"] < min_mips:
                continue
            eligible.append(record)
        self.placements_admitted += len(eligible)
        self.placements_skipped_by_index += len(self._index) - len(eligible)
        return eligible

    def _rank_candidates(self, spec: ApplicationSpec, origin: str) -> list:
        """The seed full scan + sort, kept as the placement-order oracle."""
        reqs = spec.requirements
        needed_cpu = spec.tasks * reqs.cpu_fraction
        eligible = []
        for record in self._children.values():
            if record.cluster == origin:
                continue
            if not record.alive:
                continue
            summary = record.summary
            if summary["sharing_nodes"] < spec.tasks:
                continue
            if summary["free_cpu_total"] < needed_cpu:
                continue
            if reqs.min_mips > 0 and summary["max_node_mips"] < reqs.min_mips:
                continue
            eligible.append(record)
        # Least-loaded first: most spare CPU relative to what we need.
        eligible.sort(
            key=lambda r: r.summary["free_cpu_total"], reverse=True
        )
        return eligible

    @property
    def clusters(self) -> list:
        return sorted(self._children)

    def summary_of(self, cluster: str) -> Optional[dict]:
        record = self._children.get(cluster)
        return record.summary if record is not None else None


class ClusterUplink:
    """The child side: registers with the parent and streams summaries.

    ``delta=True`` switches the stream to the information plane's update
    protocol: a full snapshot at registration, changed-fields deltas
    after, time-only heartbeats while nothing changes (at a geometrically
    stretched cadence, up to ``max_interval``), and an unconditional full
    refresh every ``full_refresh_every`` sends as the resync bound.
    """

    def __init__(
        self,
        loop: EventLoop,
        grm: Grm,
        parent_stub,
        grm_ior: str,
        interval: float = DEFAULT_SUMMARY_INTERVAL,
        delta: bool = False,
        full_refresh_every: int = DEFAULT_FULL_REFRESH_EVERY,
        epsilon: float = 0.0,
        max_interval: Optional[float] = None,
    ):
        self._loop = loop
        self._grm = grm
        self._parent = parent_stub
        summary = grm.cluster_summary()
        parent_stub.register_cluster(summary, grm_ior)
        grm.set_parent(parent_stub)
        self.summaries_sent = 0
        self.summaries_full = 0
        self.summaries_delta = 0
        self.summaries_suppressed = 0
        if delta:
            self._delta = DeltaSender(
                interval,
                full_refresh_every=full_refresh_every,
                epsilon=epsilon,
                max_interval=max_interval,
            )
            self._delta.register(summary)
            # Adaptive cadence: one-shot rescheduling at whatever interval
            # the encoder chose (stretched while idle, snapped back on
            # change) — the same drive the LRM uses for node updates.
            self._task = loop.schedule(self._delta.current_interval,
                                       self._fire)
        else:
            self._delta = None
            self._task = loop.every(interval, self._send)

    def _send(self) -> None:
        self._parent.send_summary(self._grm.cluster_summary())
        self.summaries_sent += 1

    def _fire(self) -> None:
        summary = self._grm.cluster_summary()
        kind, payload = self._delta.encode(summary)
        if kind == FULL:
            self._parent.send_summary(payload)
            self.summaries_full += 1
        else:
            self._parent.send_summary_delta(self._grm.cluster, payload)
            if kind == DELTA:
                self.summaries_delta += 1
            else:
                self.summaries_suppressed += 1
        self.summaries_sent += 1
        self._task = self._loop.schedule(self._delta.current_interval,
                                         self._fire)

    def stop(self) -> None:
        if self._delta is not None:
            self._task.cancel()
        else:
            self._task.stop()
