"""Inter-cluster hierarchy.

"Clusters are then arranged in a hierarchy, allowing a single InteGrade
grid to encompass millions of machines" (Section 4).  A
:class:`ParentGrm` aggregates per-cluster summaries (not per-node status
— that is the point of the hierarchy) and places jobs that their origin
cluster could not, implementing the wide-area extension of the resource
management protocols (Marques & Kon 2002).
"""

from dataclasses import dataclass
from typing import Optional

from repro.apps.spec import ApplicationSpec
from repro.core.grm import Grm
from repro.core.protocols import GRM_INTERFACE
from repro.orb.core import Orb
from repro.orb.exceptions import OrbError
from repro.sim.events import EventLoop

DEFAULT_SUMMARY_INTERVAL = 300.0


@dataclass
class ClusterRecord:
    """The parent's view of one child cluster."""

    cluster: str
    grm_ior: str
    grm_stub: object
    summary: dict
    last_seen: float


class NoCapacity(Exception):
    """No child cluster can host the submitted application."""


class ParentGrm:
    """The servant implementing ``integrade/ParentGrm``.

    Also implements a GRM-compatible ``submit``/``job_status`` facade, so
    a ParentGrm can itself register as a "cluster" with a higher-level
    ParentGrm — the paper's arbitrarily deep hierarchy ("the hierarchy
    can be arranged in any convenient manner").
    """

    def __init__(self, loop: EventLoop, orb: Orb, name: str = "parent"):
        self._loop = loop
        self._orb = orb
        self.name = name
        self._children: dict[str, ClusterRecord] = {}
        self._parent = None
        self.summaries_received = 0
        self.remote_submissions = 0
        self.remote_rejections = 0
        self.upward_forwards = 0

    # -- servant operations -----------------------------------------------------

    def register_cluster(self, summary: dict, grm_ior: str) -> None:
        cluster = summary["cluster"]
        stub = self._orb.stub(grm_ior, GRM_INTERFACE)
        self._children[cluster] = ClusterRecord(
            cluster, grm_ior, stub, summary, self._loop.now
        )

    def send_summary(self, summary: dict) -> None:
        record = self._children.get(summary["cluster"])
        if record is None:
            return
        record.summary = summary
        record.last_seen = self._loop.now
        self.summaries_received += 1

    def submit_remote(self, spec: dict, origin_cluster: str) -> str:
        """Place a job some other child cluster can run, or return ''.

        When no child qualifies and this node has a parent, the request
        escalates one level up; ``metadata["visited"]`` carries the
        hierarchy path to rule out cycles.
        """
        visited = list(dict(spec.get("metadata", {})).get("visited", []))
        if self.name in visited:
            self.remote_rejections += 1
            return ""
        parsed = ApplicationSpec.from_dict(spec)
        candidates = self._rank_candidates(parsed, origin_cluster)
        for record in candidates:
            forwarded = self._tag(spec, origin_cluster, visited)
            try:
                job_id = record.grm_stub.submit(forwarded)
            except OrbError:
                continue
            self.remote_submissions += 1
            return job_id
        if self._parent is not None:
            escalated = self._tag(spec, origin_cluster, visited)
            try:
                job_id = self._parent.submit_remote(escalated, self.name)
            except OrbError:
                job_id = ""
            if job_id:
                self.upward_forwards += 1
                return job_id
        self.remote_rejections += 1
        return ""

    def _tag(self, spec: dict, origin_cluster: str, visited: list) -> dict:
        forwarded = dict(spec)
        metadata = dict(forwarded.get("metadata", {}))
        metadata["no_forward"] = True
        metadata["origin_cluster"] = origin_cluster
        metadata["visited"] = visited + [self.name]
        forwarded["metadata"] = metadata
        return forwarded

    # -- GRM-compatible facade (lets a ParentGrm be someone's child) ---------

    def submit(self, spec) -> str:
        """Place the job in the best child cluster, or raise NoCapacity."""
        if isinstance(spec, dict):
            spec_dict = spec
        else:
            spec_dict = spec.to_dict()
        parsed = ApplicationSpec.from_dict(spec_dict)
        for record in self._rank_candidates(parsed, origin=""):
            try:
                job_id = record.grm_stub.submit(spec_dict)
            except OrbError:
                continue
            self._delegated_jobs[job_id] = record
            return job_id
        raise NoCapacity(
            f"{self.name}: no child cluster can host {parsed.name!r}"
        )

    @property
    def _delegated_jobs(self) -> dict:
        if not hasattr(self, "_delegated"):
            self._delegated = {}
        return self._delegated

    def job_status(self, job_id: str) -> dict:
        record = self._delegated_jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        return record.grm_stub.job_status(job_id)

    def cancel_job(self, job_id: str) -> None:
        record = self._delegated_jobs.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        record.grm_stub.cancel_job(job_id)

    # GRM interface operations that have no meaning at an aggregation
    # node: per-node traffic never reaches a parent.
    def register_node(self, status, lrm_ior) -> None:
        raise TypeError("nodes register with leaf GRMs, not parents")

    def unregister_node(self, node) -> None:
        raise TypeError("nodes register with leaf GRMs, not parents")

    def send_update(self, status) -> None:
        pass

    def send_delta(self, node, delta) -> None:
        pass

    def register_asct(self, job_id, asct_ior) -> None:
        pass

    def task_completed(self, node, task_id, result) -> None:
        pass

    def task_evicted(self, node, task_id, progress, resume) -> None:
        pass

    def task_reached_limit(self, node, task_id) -> None:
        pass

    def aggregate_summary(self) -> dict:
        """This subtree, summarised as if it were one big cluster."""
        children = list(self._children.values())
        return {
            "cluster": self.name,
            "time": self._loop.now,
            "nodes": sum(r.summary["nodes"] for r in children),
            "sharing_nodes": sum(
                r.summary["sharing_nodes"] for r in children
            ),
            "free_cpu_total": sum(
                r.summary["free_cpu_total"] for r in children
            ),
            "free_mem_total_mb": sum(
                r.summary["free_mem_total_mb"] for r in children
            ),
            "max_node_mips": max(
                (r.summary["max_node_mips"] for r in children), default=0.0
            ),
            "pending_tasks": sum(
                r.summary["pending_tasks"] for r in children
            ),
        }

    def attach_parent(
        self,
        parent_stub,
        own_grm_facade_ior: str,
        loop: Optional[EventLoop] = None,
        interval: float = DEFAULT_SUMMARY_INTERVAL,
    ) -> None:
        """Join a higher-level ParentGrm as one of its 'clusters'."""
        self._parent = parent_stub
        parent_stub.register_cluster(
            self.aggregate_summary(), own_grm_facade_ior
        )
        driver = loop if loop is not None else self._loop
        driver.every(
            interval,
            lambda: parent_stub.send_summary(self.aggregate_summary()),
        )

    # -- selection -----------------------------------------------------------------

    def _rank_candidates(self, spec: ApplicationSpec, origin: str) -> list:
        reqs = spec.requirements
        needed_cpu = spec.tasks * reqs.cpu_fraction
        eligible = []
        for record in self._children.values():
            if record.cluster == origin:
                continue
            summary = record.summary
            if summary["sharing_nodes"] < spec.tasks:
                continue
            if summary["free_cpu_total"] < needed_cpu:
                continue
            if reqs.min_mips > 0 and summary["max_node_mips"] < reqs.min_mips:
                continue
            eligible.append(record)
        # Least-loaded first: most spare CPU relative to what we need.
        eligible.sort(
            key=lambda r: r.summary["free_cpu_total"], reverse=True
        )
        return eligible

    @property
    def clusters(self) -> list:
        return sorted(self._children)

    def summary_of(self, cluster: str) -> Optional[dict]:
        record = self._children.get(cluster)
        return record.summary if record is not None else None


class ClusterUplink:
    """The child side: registers with the parent and streams summaries."""

    def __init__(
        self,
        loop: EventLoop,
        grm: Grm,
        parent_stub,
        grm_ior: str,
        interval: float = DEFAULT_SUMMARY_INTERVAL,
    ):
        self._grm = grm
        self._parent = parent_stub
        parent_stub.register_cluster(grm.cluster_summary(), grm_ior)
        grm.set_parent(parent_stub)
        self.summaries_sent = 0
        self._task = loop.every(interval, self._send)

    def _send(self) -> None:
        self._parent.send_summary(self._grm.cluster_summary())
        self.summaries_sent += 1

    def stop(self) -> None:
        self._task.stop()
