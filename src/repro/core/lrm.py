"""Local Resource Manager (LRM).

Runs on every grid node.  Responsibilities, per Section 4 of the paper:

* collect node status (CPU, memory, disk, network usage) and send it
  periodically to the GRM — the **Information Update Protocol**;
* the node side of the **Resource Reservation and Execution Protocol**:
  admit or refuse reservations (under the owner's NCC policy), start
  tasks, advance them at the machine's effective grid rate, and evict
  them when the owner's policy demands it;
* take periodic portable checkpoints so evicted work can resume
  elsewhere.
"""

from dataclasses import dataclass
from typing import Optional

from repro.checkpoint.store import MemoryCheckpointStore
from repro.core.ncc import NodeControlCenter
from repro.core.protocols import NODE_STATUS
from repro.core.reservation import ReservationLedger
from repro.core.update_protocol import (
    DEFAULT_FULL_REFRESH_EVERY,
    DELTA,
    DeltaSender,
    FULL,
)
from repro.orb.cdr import CdrEncoder, VARIANT
from repro.security.sandbox import Sandbox, SandboxPolicy, SandboxViolation
from repro.sim.events import EventLoop
from repro.sim.workstation import Workstation

DEFAULT_UPDATE_INTERVAL = 60.0
DEFAULT_TICK_INTERVAL = 30.0


@dataclass
class RunningTask:
    """Execution record of one grid task on this node."""

    task_id: str
    job_id: str
    work_mips: float
    progress_mips: float
    work_limit_mips: float               # pacing barrier (inf when unpaced)
    checkpoint_interval_s: float         # 0 = no checkpointing
    next_checkpoint_at: float
    checkpoint_progress: float           # progress at the last checkpoint
    payload: str = ""                    # sandboxed code run at completion
    limit_notified: bool = False

    @property
    def complete(self) -> bool:
        return self.progress_mips >= self.work_mips - 1e-9

    @property
    def at_limit(self) -> bool:
        return (
            not self.complete
            and self.progress_mips >= self.work_limit_mips - 1e-9
        )


class Lrm:
    """The servant implementing ``integrade/Lrm`` for one node."""

    def __init__(
        self,
        loop: EventLoop,
        workstation: Workstation,
        ncc: NodeControlCenter,
        checkpoint_store: Optional[MemoryCheckpointStore] = None,
        update_interval: float = DEFAULT_UPDATE_INTERVAL,
        tick_interval: float = DEFAULT_TICK_INTERVAL,
        sandbox_policy: Optional[SandboxPolicy] = None,
        delta_updates: bool = False,
        full_refresh_every: int = DEFAULT_FULL_REFRESH_EVERY,
        update_epsilon: float = 0.0,
        max_update_interval: Optional[float] = None,
        skip_unchanged_checkpoints: bool = False,
    ):
        self._loop = loop
        self._workstation = workstation
        self._machine = workstation.machine
        self.ncc = ncc
        self.node = workstation.name
        self.store = checkpoint_store if checkpoint_store is not None \
            else MemoryCheckpointStore()
        self.sandbox_policy = sandbox_policy if sandbox_policy is not None \
            else SandboxPolicy()
        self.sandbox_violations = 0
        self.journal = None
        self.ledger = ReservationLedger(loop, self._machine, node=self.node)
        self._running: dict[str, RunningTask] = {}
        self._grm = None           # stub once attached
        self.ior: Optional[str] = None

        self.skip_unchanged_checkpoints = skip_unchanged_checkpoints
        self.completed_count = 0
        self.evicted_count = 0
        self.checkpoints_taken = 0
        self.checkpoints_skipped = 0
        self.refused_reservations = 0
        self.accepted_reservations = 0
        self.updates_sent = 0
        self.updates_full = 0
        self.updates_delta = 0
        self.updates_suppressed = 0
        self.updates_bytes_saved = 0

        workstation.on_owner_change(self._owner_changed)
        self._tick_task = loop.every(tick_interval, self._tick)
        self._update_interval = update_interval
        self._update_task = None
        self.delta_updates = delta_updates
        self._delta = (
            DeltaSender(
                update_interval,
                full_refresh_every=full_refresh_every,
                epsilon=update_epsilon,
                max_interval=max_update_interval,
            )
            if delta_updates else None
        )
        self._grm_key = ""
        self._full_wire_bytes = 0

    # -- wiring ----------------------------------------------------------------

    def to_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish this node's counters as registry views (pull-only)."""
        prefix = prefix if prefix is not None else f"lrm.{self.node}"
        registry.bind(prefix, self, (
            "completed_count", "evicted_count", "checkpoints_taken",
            "checkpoints_skipped",
            "refused_reservations", "accepted_reservations",
            "updates_sent", "updates_full", "updates_delta",
            "updates_suppressed", "updates_bytes_saved",
            "sandbox_violations",
        ))
        registry.view(f"{prefix}.running_tasks", lambda: len(self._running))

    def set_journal(self, journal) -> None:
        """Attach the grid's event journal (checkpoint/reservation events)."""
        self.journal = journal
        self.ledger.journal = journal

    def attach_grm(self, grm_stub, own_ior: str) -> None:
        """Register with the cluster's GRM and begin periodic updates."""
        self._grm = grm_stub
        self.ior = own_ior
        status = self.status()
        grm_stub.register_node(status, own_ior)
        if self._delta is not None:
            # The registration snapshot is the receiver's baseline; later
            # sends encode against it.  Delta mode drives its own adaptive
            # one-shot rescheduling (the interval changes per send), so it
            # cannot reuse the fixed-cadence PeriodicTask.
            self._delta.register(status)
            ref = getattr(grm_stub, "ref", None)
            self._grm_key = ref.key if ref is not None else ""
            self._full_wire_bytes = self._wire_size_full(status)
            if self._update_task is None:
                self._update_task = self._loop.schedule(
                    self._delta.current_interval, self._fire_update
                )
        elif self._update_task is None:
            self._update_task = self._loop.every(
                self._update_interval, self._send_update
            )

    def detach(self) -> None:
        """Leave the grid: stop timers and evict everything."""
        self._tick_task.stop()
        if self._update_task is not None:
            if self._delta is not None:
                self._update_task.cancel()
            else:
                self._update_task.stop()
            self._update_task = None
        for task_id in list(self._running):
            self._evict(task_id, reason="node leaving the grid")

    # -- Information Update Protocol -----------------------------------------------

    def status(self) -> dict:
        """The NodeStatus record the GRM stores in its Trader."""
        machine = self._machine
        owner_present = self._workstation.owner_present
        sharing = self.ncc.sharing_now()
        cap = self.ncc.cpu_cap(owner_present) if sharing else 0.0
        spec = machine.spec
        return {
            "node": self.node,
            "time": self._loop.now,
            "mips": spec.mips,
            "ram_mb": spec.ram_mb,
            "disk_mb": spec.disk_mb,
            "os": spec.os,
            "arch": spec.arch,
            "cpu_free": machine.cpu_available_for_grid(cap) if sharing else 0.0,
            "mem_free_mb": (
                machine.mem_available_for_grid(self.ncc.mem_cap_mb())
                if sharing else 0.0
            ),
            "disk_free_mb": max(0.0, spec.disk_mb - machine.disk_used_mb),
            "net_mbps": spec.net_mbps,
            "net_free_mbps": machine.net_free_mbps() if sharing else 0.0,
            "owner_active": owner_present,
            "sharing": sharing,
            "grid_tasks": len(self._running),
        }

    # servant operation
    def get_status(self) -> dict:
        return self.status()

    # servant operation
    def ping(self) -> bool:
        return True

    def _send_update(self) -> None:
        # send_update/send_delta are oneway: on a Grid built with
        # batch_oneway=True the ORB queues them per peer and flushes at
        # the sim-event boundary, so a cluster's worth of updates firing
        # in the same interval rides O(LRMs) frames, not O(updates).
        if self._grm is None:
            return
        if self._delta is None:
            self._grm.send_update(self.status())
            self.updates_sent += 1
            return
        status = self.status()
        kind, payload = self._delta.encode(status)
        if kind == FULL:
            self._grm.send_update(payload)
            self.updates_full += 1
        else:
            self._grm.send_delta(self.node, payload)
            saved = self._full_wire_bytes - self._wire_size_delta(payload)
            if saved > 0:
                self.updates_bytes_saved += saved
            if kind == DELTA:
                self.updates_delta += 1
            else:
                self.updates_suppressed += 1
        self.updates_sent += 1

    def _fire_update(self) -> None:
        """Adaptive-cadence send: one shot, rescheduled at the (possibly
        stretched or snapped-back) interval the encoder just chose."""
        self._send_update()
        self._update_task = self._loop.schedule(
            self._delta.current_interval, self._fire_update
        )

    def _wire_size_full(self, status: dict) -> int:
        """Exact request-payload size of an untraced full send_update."""
        enc = CdrEncoder()
        enc.write_string(self._grm_key)
        enc.write_string("send_update")
        NODE_STATUS.encode(enc, status)
        return len(enc.getvalue())

    def _wire_size_delta(self, payload: dict) -> int:
        """Exact request-payload size of an untraced send_delta."""
        enc = CdrEncoder()
        enc.write_string(self._grm_key)
        enc.write_string("send_delta")
        enc.write_string(self.node)
        VARIANT.encode(enc, payload)
        return len(enc.getvalue())

    # -- Reservation and Execution Protocol -------------------------------------------

    # servant operation
    def request_reservation(self, request: dict) -> dict:
        """Direct negotiation step: confirm the GRM's hint, or refuse."""
        owner_present = self._workstation.owner_present
        ok, reason = self.ncc.admission_check(
            owner_present, request["cpu_fraction"]
        )
        if not ok:
            self.refused_reservations += 1
            return {"accepted": False, "reason": reason}
        cap = self.ncc.cpu_cap(owner_present)
        if request["cpu_fraction"] > self._machine.cpu_available_for_grid(cap) + 1e-9:
            self.refused_reservations += 1
            return {"accepted": False, "reason": "cpu no longer available"}
        mem_avail = self._machine.mem_available_for_grid(self.ncc.mem_cap_mb())
        if request["mem_mb"] > mem_avail + 1e-9:
            self.refused_reservations += 1
            return {"accepted": False, "reason": "memory no longer available"}
        try:
            self.ledger.reserve(
                request["task_id"],
                request["cpu_fraction"],
                request["mem_mb"],
                request["disk_mb"],
                request["lease_seconds"],
            )
        except Exception as exc:
            self.refused_reservations += 1
            return {"accepted": False, "reason": str(exc)}
        self.accepted_reservations += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "reservation_granted", node=self.node,
                task_id=request["task_id"],
                cpu_fraction=request["cpu_fraction"],
                mem_mb=request["mem_mb"],
                lease_seconds=request["lease_seconds"],
            )
        return {"accepted": True, "reason": "ok"}

    # servant operation
    def cancel_reservation(self, task_id: str) -> None:
        if self.ledger.holds(task_id):
            self.ledger.release(task_id)

    # servant operation
    def start_task(self, launch: dict) -> bool:
        """Execution step: convert a reservation into a running task."""
        task_id = launch["task_id"]
        if not self.ledger.holds(task_id):
            return False
        if task_id in self._running:
            return False
        self.ledger.confirm(task_id)
        interval = launch["checkpoint_interval_s"]
        self._running[task_id] = RunningTask(
            task_id=task_id,
            job_id=launch["job_id"],
            work_mips=launch["work_mips"],
            progress_mips=launch["initial_progress_mips"],
            work_limit_mips=float("inf"),
            checkpoint_interval_s=interval,
            next_checkpoint_at=(
                self._loop.now + interval if interval > 0 else float("inf")
            ),
            checkpoint_progress=launch["initial_progress_mips"],
            payload=launch.get("payload", ""),
        )
        return True

    # servant operation
    def stop_task(self, task_id: str) -> float:
        """Stop silently (migration); returns the progress at stop."""
        record = self._running.pop(task_id, None)
        if record is None:
            return -1.0
        self.ledger.release(task_id)
        return record.progress_mips

    # servant operation
    def set_work_limit(self, task_id: str, limit_mips: float) -> None:
        record = self._require(task_id)
        record.work_limit_mips = limit_mips
        record.limit_notified = False

    # servant operation
    def get_progress(self, task_id: str) -> float:
        return self._require(task_id).progress_mips

    # servant operation
    def rollback_task(self, task_id: str, to_progress: float) -> None:
        record = self._require(task_id)
        record.progress_mips = min(record.progress_mips, to_progress)
        record.checkpoint_progress = min(
            record.checkpoint_progress, to_progress
        )
        record.limit_notified = False

    def _require(self, task_id: str) -> RunningTask:
        record = self._running.get(task_id)
        if record is None:
            raise KeyError(f"no running task {task_id!r} on {self.node}")
        return record

    # -- execution ---------------------------------------------------------------

    @property
    def running_tasks(self) -> list:
        return sorted(self._running)

    def task_rate_mips(self, task_id: str) -> float:
        """Effective rate for one task: machine contention plus NCC cap."""
        record = self._running.get(task_id)
        if record is None:
            return 0.0
        reservation = self.ledger.get(task_id)
        if reservation is None:
            return 0.0
        owner_present = self._workstation.owner_present
        if not self.ncc.sharing_now():
            return 0.0
        cap = self.ncc.cpu_cap(owner_present)
        grid_total = self._machine.grid_cpu
        if grid_total <= 0:
            return 0.0
        available = max(0.0, 1.0 - self._machine.owner_cpu)
        scale = min(1.0, available / grid_total, cap / grid_total)
        return self._machine.spec.mips * reservation.cpu_fraction * scale

    def _tick(self) -> None:
        if not self._running:
            return   # nothing to advance, checkpoint, or evict
        now = self._loop.now
        if not self.ncc.sharing_now():
            for task_id in list(self._running):
                self._evict(task_id, reason="blackout window")
            return
        interval = self._tick_task.interval
        for task_id in list(self._running):
            record = self._running.get(task_id)
            if record is None:
                continue
            rate = self.task_rate_mips(task_id)
            if rate > 0 and not record.at_limit:
                headroom = min(record.work_mips, record.work_limit_mips)
                record.progress_mips = min(
                    headroom, record.progress_mips + rate * interval
                )
            if record.checkpoint_interval_s > 0 and now >= record.next_checkpoint_at:
                self._checkpoint(record, now)
            if record.complete:
                self._complete(task_id)
            elif record.at_limit and not record.limit_notified:
                record.limit_notified = True
                if self._grm is not None:
                    self._grm.task_reached_limit(self.node, task_id)

    def _checkpoint(self, record: RunningTask, now: float) -> None:
        if self.skip_unchanged_checkpoints \
                and record.progress_mips == record.checkpoint_progress:
            # The task made no progress since the last save (suspended
            # while the owner uses the machine): the stored checkpoint
            # is already current, so skip the serialize-and-store cycle
            # but keep the cadence armed.
            record.next_checkpoint_at = now + record.checkpoint_interval_s
            self.checkpoints_skipped += 1
            return
        self.store.save(
            record.task_id,
            {"progress_mips": record.progress_mips, "job_id": record.job_id},
            now,
        )
        record.checkpoint_progress = record.progress_mips
        record.next_checkpoint_at = now + record.checkpoint_interval_s
        self.checkpoints_taken += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "checkpoint_saved", node=self.node,
                job_id=record.job_id, task_id=record.task_id,
                progress_mips=record.progress_mips,
            )

    def _complete(self, task_id: str) -> None:
        record = self._running.pop(task_id)
        self.ledger.release(task_id)
        self.store.discard(task_id)
        self.completed_count += 1
        result = self._run_payload(record)
        if self._grm is not None:
            self._grm.task_completed(self.node, task_id, result)

    def _run_payload(self, record: RunningTask):
        """Execute the task's code in the owner-protecting sandbox."""
        if not record.payload:
            return None
        sandbox = Sandbox(self.sandbox_policy)
        inputs = {
            "task_id": record.task_id,
            "job_id": record.job_id,
            "node": self.node,
            "task_index": int(record.task_id.rsplit(".", 1)[-1])
            if "." in record.task_id else 0,
        }
        try:
            return sandbox.run(record.payload, inputs=inputs)
        except SandboxViolation as exc:
            self.sandbox_violations += 1
            return {"__error__": str(exc), "__audit__": sandbox.audit_log}

    def _evict(self, task_id: str, reason: str) -> None:
        record = self._running.pop(task_id, None)
        if record is None:
            return
        self.ledger.release(task_id)
        self.evicted_count += 1
        resume = (
            record.checkpoint_progress
            if record.checkpoint_interval_s > 0 else 0.0
        )
        if self._grm is not None:
            self._grm.task_evicted(
                self.node, task_id, record.progress_mips, resume
            )

    def _owner_changed(self, present: bool) -> None:
        if not (present and self.ncc.should_vacate(owner_present=True)):
            return
        grace = self.ncc.policy.vacate_grace_s
        if grace <= 0:
            for task_id in list(self._running):
                self._evict(task_id, reason="owner returned")
            return
        # Suspend (the zero active-cap already stalls the tasks); only
        # evict if the owner is still there when the grace expires.
        self._loop.schedule(grace, self._grace_expired)

    def _grace_expired(self) -> None:
        if not self._workstation.owner_present:
            return   # short visit: the tasks just resume
        for task_id in list(self._running):
            self._evict(task_id, reason="owner stayed past grace")
