"""Information Update Protocol, scaled: deltas and adaptive throttling.

The paper's protocol has every LRM push its *complete* status record to
the GRM on a fixed interval, and explicitly frames the update frequency
as the knob trading scheduling freshness against intrusiveness on the
network.  :class:`DeltaSender` is the sender-side state machine that
makes both knobs cheap:

* **Delta encoding** — after the full snapshot sent at registration,
  only fields that actually changed travel; every ``full_refresh_every``
  sends a complete snapshot goes out anyway, so a dropped delta can
  desynchronise the GRM for at most K intervals.
* **Adaptive throttling** — while nothing changes (within ``epsilon``
  on float fields) the send interval stretches geometrically up to
  ``max_interval`` and snaps back to the base interval on the first
  change.  Unchanged intervals still emit a tiny heartbeat (just the
  timestamp) so GRM staleness detection keeps working.

The machine is deliberately free of any ORB or event-loop coupling:
:class:`~repro.core.lrm.Lrm` drives one instance per node, and the S3
benchmark drives tens of thousands without building full node stacks.
The payloads it produces travel as oneway requests, so they compose
with the ORB's transport-level oneway batching (``batch_oneway=True``):
deltas shrink each message, throttling sheds messages, and batching
collapses what remains into one frame per peer per event-boundary
flush — three independent multipliers on the same wire.

The ``"time"`` field is special: it changes every interval by
definition, so it never *triggers* an update, but every payload carries
it (the GRM uses it for freshness bookkeeping).
"""

from typing import Optional

#: Send an unconditional full snapshot every this-many sends (resync
#: bound after a lost delta).
DEFAULT_FULL_REFRESH_EVERY = 10

#: Geometric stretch factor applied to the interval while idle.
DEFAULT_THROTTLE_BACKOFF = 2.0

#: Payload kinds produced by :meth:`DeltaSender.encode`.
FULL = "full"
DELTA = "delta"
HEARTBEAT = "heartbeat"

#: Fields excluded from change detection (always sent, never a trigger).
_ALWAYS_VOLATILE = ("time",)


def apply_delta(state: dict, delta: dict) -> dict:
    """Receiver side: the new status after applying ``delta`` to ``state``.

    Returns a fresh dict; the input state is not mutated (the GRM's
    trader adopts status dicts without copying, so in-place mutation
    would corrupt the indexed offer).
    """
    merged = dict(state)
    merged.update(delta)
    return merged


class DeltaSender:
    """Per-node sender state for delta-compressed, throttled updates.

    The baseline mirrors exactly what the receiver last stored — it is
    advanced only by fields that were actually *sent*, so sub-epsilon
    drift accumulates against the baseline and is flushed once the
    cumulative change crosses ``epsilon`` (bounded staleness, not
    unbounded drift).
    """

    __slots__ = (
        "full_refresh_every", "epsilon", "base_interval", "max_interval",
        "backoff", "current_interval", "_baseline", "_sends_since_full",
    )

    def __init__(
        self,
        base_interval: float,
        full_refresh_every: int = DEFAULT_FULL_REFRESH_EVERY,
        epsilon: float = 0.0,
        max_interval: Optional[float] = None,
        backoff: float = DEFAULT_THROTTLE_BACKOFF,
    ):
        if base_interval <= 0:
            raise ValueError(f"base_interval must be positive, got {base_interval}")
        if full_refresh_every < 1:
            raise ValueError(
                f"full_refresh_every must be >= 1, got {full_refresh_every}"
            )
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if max_interval is not None and max_interval < base_interval:
            raise ValueError(
                f"max_interval {max_interval} is below base_interval "
                f"{base_interval}"
            )
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {backoff}")
        self.full_refresh_every = int(full_refresh_every)
        self.epsilon = float(epsilon)
        self.base_interval = float(base_interval)
        self.max_interval = (
            float(max_interval) if max_interval is not None else float(base_interval)
        )
        self.backoff = float(backoff)
        self.current_interval = float(base_interval)
        self._baseline: Optional[dict] = None
        self._sends_since_full = 0

    # -- sender-side protocol --------------------------------------------------

    def register(self, status: dict) -> None:
        """Seed the baseline with the full snapshot sent at registration."""
        self._baseline = dict(status)
        self._sends_since_full = 0
        self.current_interval = self.base_interval

    @property
    def baseline(self) -> Optional[dict]:
        """What the receiver currently stores (read-only copy)."""
        return dict(self._baseline) if self._baseline is not None else None

    def encode(self, status: dict):
        """One send: returns ``(kind, payload)`` and updates throttle state.

        ``kind`` is :data:`FULL` (complete snapshot), :data:`DELTA`
        (changed fields plus ``time``), or :data:`HEARTBEAT` (``time``
        only).  The throttle interval for the *next* send is left in
        :attr:`current_interval`: stretched while idle, snapped back to
        the base interval the moment anything changed.
        """
        baseline = self._baseline
        if baseline is None:
            raise RuntimeError("register() must seed the baseline before encode()")
        changed = self._changed_fields(status, baseline)
        if changed:
            self.current_interval = self.base_interval
        else:
            self.current_interval = min(
                self.current_interval * self.backoff, self.max_interval
            )
        self._sends_since_full += 1
        # A key vanishing from the status cannot be expressed as a delta
        # (deltas only set fields); fall back to a resynchronising full.
        removed = any(key not in status for key in baseline)
        if removed or self._sends_since_full >= self.full_refresh_every:
            self._baseline = dict(status)
            self._sends_since_full = 0
            return FULL, status
        for key in _ALWAYS_VOLATILE:
            if key in status:
                baseline[key] = status[key]
        if not changed:
            payload = {
                key: status[key] for key in _ALWAYS_VOLATILE if key in status
            }
            return HEARTBEAT, payload
        baseline.update(changed)
        delta = dict(changed)
        for key in _ALWAYS_VOLATILE:
            if key in status:
                delta[key] = status[key]
        return DELTA, delta

    def _changed_fields(self, status: dict, baseline: dict) -> dict:
        """Fields whose value moved past epsilon since the last send."""
        epsilon = self.epsilon
        changed = {}
        for key, value in status.items():
            if key in _ALWAYS_VOLATILE:
                continue
            old = baseline.get(key, _MISSING)
            if old is _MISSING:
                changed[key] = value
            elif epsilon > 0.0 and type(value) is float and type(old) is float:
                if abs(value - old) > epsilon:
                    changed[key] = value
            elif value != old:
                changed[key] = value
        return changed


class _Missing:
    __slots__ = ()

    def __repr__(self):
        return "<missing>"


_MISSING = _Missing()
