"""Typed protocol definitions shared by the Figure 1 components.

Three protocols from the paper live here as IDL interfaces:

* the **Information Update Protocol** (LRM → GRM, periodic, oneway),
* the **Resource Reservation and Execution Protocol** (GRM ↔ LRM
  negotiation: request_reservation / start_task / stop_task),
* the **inter-cluster protocol** (child GRM → parent GRM aggregated
  summaries and wide-area submission, after Marques & Kon 2002).
"""

from repro.orb.cdr import (
    Boolean,
    Double,
    Long,
    String,
    Struct,
    VARIANT,
    Void,
)
from repro.orb.idl import InterfaceDef, Operation, Parameter

# ---------------------------------------------------------------------------
# Message structs
# ---------------------------------------------------------------------------

NODE_STATUS = Struct(
    "NodeStatus",
    [
        ("node", String),
        ("time", Double),
        ("mips", Double),
        ("ram_mb", Double),
        ("disk_mb", Double),
        ("os", String),
        ("arch", String),
        ("cpu_free", Double),        # CPU share available to the grid now
        ("mem_free_mb", Double),
        ("disk_free_mb", Double),
        ("net_mbps", Double),        # interface capacity
        ("net_free_mbps", Double),   # headroom after owner traffic
        ("owner_active", Boolean),
        ("sharing", Boolean),        # NCC currently allows grid use
        ("grid_tasks", Long),
    ],
)

RESERVATION_REQUEST = Struct(
    "ReservationRequest",
    [
        ("task_id", String),
        ("cpu_fraction", Double),
        ("mem_mb", Double),
        ("disk_mb", Double),
        ("lease_seconds", Double),
    ],
)

RESERVATION_REPLY = Struct(
    "ReservationReply",
    [
        ("accepted", Boolean),
        ("reason", String),
    ],
)

TASK_LAUNCH = Struct(
    "TaskLaunch",
    [
        ("task_id", String),
        ("job_id", String),
        ("work_mips", Double),
        ("initial_progress_mips", Double),
        ("checkpoint_interval_s", Double),   # 0 = no checkpointing
        # Optional task code, executed in the provider's sandbox when the
        # simulated work completes; "" means a pure compute model task.
        ("payload", String),
    ],
)

CLUSTER_SUMMARY = Struct(
    "ClusterSummary",
    [
        ("cluster", String),
        ("time", Double),
        ("nodes", Long),
        ("sharing_nodes", Long),
        ("free_cpu_total", Double),
        ("free_mem_total_mb", Double),
        ("max_node_mips", Double),
        ("pending_tasks", Long),
    ],
)

# ---------------------------------------------------------------------------
# Interfaces
# ---------------------------------------------------------------------------

LRM_INTERFACE = InterfaceDef(
    "integrade/Lrm",
    [
        Operation("ping", (), Boolean),
        Operation("get_status", (), NODE_STATUS),
        Operation(
            "request_reservation",
            (Parameter("request", RESERVATION_REQUEST),),
            RESERVATION_REPLY,
        ),
        Operation(
            "cancel_reservation", (Parameter("task_id", String),), Void
        ),
        Operation(
            "start_task", (Parameter("launch", TASK_LAUNCH),), Boolean
        ),
        Operation("stop_task", (Parameter("task_id", String),), Double),
        # Pacing operations used by the BSP coordinator: a paced task may
        # not advance past its work limit (the next superstep barrier).
        Operation(
            "set_work_limit",
            (Parameter("task_id", String), Parameter("limit_mips", Double)),
            Void,
        ),
        Operation("get_progress", (Parameter("task_id", String),), Double),
        Operation(
            "rollback_task",
            (Parameter("task_id", String), Parameter("to_progress", Double)),
            Void,
        ),
    ],
)

GRM_INTERFACE = InterfaceDef(
    "integrade/Grm",
    [
        Operation(
            "register_node",
            (
                Parameter("status", NODE_STATUS),
                Parameter("lrm_ior", String),
            ),
            Void,
        ),
        Operation("unregister_node", (Parameter("node", String),), Void),
        Operation(
            "send_update", (Parameter("status", NODE_STATUS),), Void,
            oneway=True,
        ),
        # Delta-compressed form of the Information Update Protocol: only
        # the fields that changed since the node's last accepted update
        # (plus "time") travel.  The delta's keys vary per message, so it
        # rides as a VARIANT rather than a fixed NODE_STATUS struct.
        Operation(
            "send_delta",
            (Parameter("node", String), Parameter("delta", VARIANT)),
            Void,
            oneway=True,
        ),
        Operation("submit", (Parameter("spec", VARIANT),), String),
        Operation(
            "register_asct",
            (Parameter("job_id", String), Parameter("asct_ior", String)),
            Void,
        ),
        Operation("job_status", (Parameter("job_id", String),), VARIANT),
        Operation("cancel_job", (Parameter("job_id", String),), Void),
        Operation(
            "task_completed",
            (
                Parameter("node", String),
                Parameter("task_id", String),
                Parameter("result", VARIANT),   # payload output, or None
            ),
            Void,
            oneway=True,
        ),
        Operation(
            "task_evicted",
            (
                Parameter("node", String),
                Parameter("task_id", String),
                # Progress when evicted (for lost-work accounting) and the
                # checkpointed progress execution can resume from.
                Parameter("progress_at_eviction_mips", Double),
                Parameter("resume_progress_mips", Double),
            ),
            Void,
            oneway=True,
        ),
        # Fired by a paced task when it reaches its work limit (a BSP
        # superstep barrier); the GRM forwards it to the job coordinator.
        Operation(
            "task_reached_limit",
            (Parameter("node", String), Parameter("task_id", String)),
            Void,
            oneway=True,
        ),
    ],
)

GUPA_INTERFACE = InterfaceDef(
    "integrade/Gupa",
    [
        Operation(
            "upload_pattern",
            (Parameter("node", String), Parameter("pattern", VARIANT)),
            Void,
            oneway=True,
        ),
        Operation("has_pattern", (Parameter("node", String),), Boolean),
        Operation(
            "idle_probability",
            (
                Parameter("node", String),
                Parameter("start", Double),
                Parameter("duration", Double),
            ),
            Double,
        ),
    ],
)

ASCT_INTERFACE = InterfaceDef(
    "integrade/Asct",
    [
        Operation(
            "job_event",
            (
                Parameter("job_id", String),
                Parameter("event", String),
                Parameter("detail", String),
            ),
            Void,
            oneway=True,
        ),
    ],
)

PARENT_GRM_INTERFACE = InterfaceDef(
    "integrade/ParentGrm",
    [
        Operation(
            "register_cluster",
            (
                Parameter("summary", CLUSTER_SUMMARY),
                Parameter("grm_ior", String),
            ),
            Void,
        ),
        Operation(
            "send_summary",
            (Parameter("summary", CLUSTER_SUMMARY),),
            Void,
            oneway=True,
        ),
        # Delta-compressed summary stream: only the fields that changed
        # since the cluster's last accepted summary (plus "time") travel.
        # Same shape as the node-level send_delta — the keys vary per
        # message, so the payload rides as a VARIANT.
        Operation(
            "send_summary_delta",
            (Parameter("cluster", String), Parameter("delta", VARIANT)),
            Void,
            oneway=True,
        ),
        Operation(
            "unregister_cluster", (Parameter("cluster", String),), Void
        ),
        Operation(
            "submit_remote",
            (
                Parameter("spec", VARIANT),
                Parameter("origin_cluster", String),
            ),
            String,   # job id at the accepting cluster, or "" when rejected
        ),
    ],
)
