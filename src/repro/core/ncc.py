"""Node Control Center — the resource owner's policy knob.

"Parameters such as periods in which they do not want their resources to
be shared, the portion of resources that can be used by grid applications
(e.g., 30% of the CPU and 50% of its physical memory), or definitions as
to when to consider their machine idle can be set using this tool."
(paper, Section 4.)  Defaults are deliberately conservative-but-useful,
since "the vast majority of resource providers will not be knowledgeable
users".
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.machine import ResourceSample


@dataclass(frozen=True)
class BlackoutWindow:
    """A weekly window in which the owner forbids grid use entirely.

    ``days`` is a tuple of day indices (0 = Monday); empty means every
    day.  Hours are fractional, [start, end); windows may not wrap
    midnight — use two windows for that.
    """

    start_hour: float
    end_hour: float
    days: Tuple[int, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.start_hour < 24.0:
            raise ValueError(f"start_hour out of range: {self.start_hour}")
        if not 0.0 < self.end_hour <= 24.0:
            raise ValueError(f"end_hour out of range: {self.end_hour}")
        if self.end_hour <= self.start_hour:
            raise ValueError("end_hour must be after start_hour")
        for day in self.days:
            if not 0 <= day <= 6:
                raise ValueError(f"invalid day index {day}")

    def covers(self, day: int, hour: float) -> bool:
        if self.days and day not in self.days:
            return False
        return self.start_hour <= hour < self.end_hour


@dataclass(frozen=True)
class SharingPolicy:
    """What the owner agreed to share, and when.

    ``cpu_cap_active`` = 0 together with ``vacate_on_owner_return`` = True
    reproduces Condor-style behaviour (grid leaves when the owner
    arrives); a nonzero active cap with vacate off gives the paper's
    "use a portion of a partially idle node" behaviour.
    """

    enabled: bool = True
    cpu_cap_idle: float = 1.0
    cpu_cap_active: float = 0.2
    mem_cap_mb: Optional[float] = None
    vacate_on_owner_return: bool = False
    #: With vacate on, wait this long after the owner arrives before
    #: actually evicting (tasks are suspended meanwhile): a short owner
    #: visit then costs nothing.  0 = evict immediately.
    vacate_grace_s: float = 0.0
    blackouts: Tuple[BlackoutWindow, ...] = ()
    idle_requires_no_keyboard: bool = True
    idle_owner_cpu_below: float = 0.10

    def __post_init__(self):
        for name in ("cpu_cap_idle", "cpu_cap_active"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        if self.mem_cap_mb is not None and self.mem_cap_mb < 0:
            raise ValueError("mem_cap_mb must be >= 0")
        if self.vacate_grace_s < 0:
            raise ValueError("vacate_grace_s must be >= 0")
        if not 0.0 <= self.idle_owner_cpu_below <= 1.0:
            raise ValueError("idle_owner_cpu_below out of range")


#: What a non-knowledgeable provider gets without touching anything:
#: share the whole machine when idle, a fifth of it while working, never
#: kick tasks off abruptly.
DEFAULT_POLICY = SharingPolicy()

#: Condor-style policy: the grid vacates the instant the owner returns.
VACATE_POLICY = SharingPolicy(
    cpu_cap_active=0.0, vacate_on_owner_return=True
)

#: The paper's worked example: "30% of the CPU and 50% of its physical
#: memory" (memory cap is applied by the LRM against the machine's RAM).
def thirty_percent_policy(ram_mb: float) -> SharingPolicy:
    return SharingPolicy(
        cpu_cap_idle=0.30, cpu_cap_active=0.30, mem_cap_mb=0.5 * ram_mb
    )


class NodeControlCenter:
    """Evaluates the owner's :class:`SharingPolicy` for the LRM."""

    def __init__(self, clock: SimClock, policy: SharingPolicy = DEFAULT_POLICY):
        self._clock = clock
        self.policy = policy

    def in_blackout(self, when: Optional[float] = None) -> bool:
        """True while any blackout window covers ``when`` (default now)."""
        day = self._clock.day_of_week(when)
        hour = self._clock.hour_of_day(when)
        return any(w.covers(day, hour) for w in self.policy.blackouts)

    def sharing_now(self, when: Optional[float] = None) -> bool:
        """May the grid use this node at all right now?"""
        return self.policy.enabled and not self.in_blackout(when)

    def cpu_cap(self, owner_present: bool) -> float:
        """The grid's CPU share ceiling in the current owner state."""
        if owner_present:
            return self.policy.cpu_cap_active
        return self.policy.cpu_cap_idle

    def mem_cap_mb(self) -> Optional[float]:
        """The grid's memory ceiling (None = machine limit only)."""
        return self.policy.mem_cap_mb

    def should_vacate(self, owner_present: bool) -> bool:
        """Must running grid tasks be evicted in this owner state?"""
        return owner_present and self.policy.vacate_on_owner_return

    def considered_idle(self, sample: ResourceSample) -> bool:
        """Apply the owner's idleness definition to a usage sample."""
        if self.policy.idle_requires_no_keyboard and sample.keyboard_active:
            return False
        return sample.cpu_owner < self.policy.idle_owner_cpu_below

    def admission_check(
        self,
        owner_present: bool,
        cpu_fraction: float,
        when: Optional[float] = None,
    ) -> Tuple[bool, str]:
        """Policy-level admission (capacity is the machine's concern)."""
        if not self.policy.enabled:
            return False, "sharing disabled by owner"
        if self.in_blackout(when):
            return False, "owner blackout window"
        cap = self.cpu_cap(owner_present)
        if cap <= 0.0:
            return False, "owner present and active cap is zero"
        if cpu_fraction > cap + 1e-9:
            return False, f"request {cpu_fraction:.2f} exceeds cap {cap:.2f}"
        return True, "ok"
