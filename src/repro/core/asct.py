"""Application Submission and Control Tool (ASCT).

"The ASCT allows InteGrade users to submit applications for execution in
the grid ... The user can also use the tool to monitor application
progress" (Section 4).  The ASCT is both a client of the GRM and a
servant (it receives ``job_event`` callbacks).
"""

from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.spec import ApplicationSpec


@dataclass(frozen=True)
class JobEvent:
    """One notification received from the GRM."""

    job_id: str
    event: str
    detail: str


class Asct:
    """A user's submission and monitoring endpoint."""

    def __init__(self, grm_stub, own_ior: Optional[str] = None):
        self._grm = grm_stub
        self.ior = own_ior
        self.events: list[JobEvent] = []
        self.submitted: list[str] = []
        self._listeners: list[Callable] = []

    # -- submission -----------------------------------------------------------

    def submit(self, spec: ApplicationSpec) -> str:
        """Submit an application; returns the grid-wide job id."""
        job_id = self._grm.submit(spec.to_dict())
        self.submitted.append(job_id)
        if self.ior is not None:
            self._grm.register_asct(job_id, self.ior)
        return job_id

    def status(self, job_id: str) -> dict:
        """Current job status, as reported by the GRM."""
        return self._grm.job_status(job_id)

    def cancel(self, job_id: str) -> None:
        """Cancel a job."""
        self._grm.cancel_job(job_id)

    def progress(self, job_id: str) -> float:
        """Overall completion fraction in [0, 1]."""
        return float(self.status(job_id)["progress"])

    def is_done(self, job_id: str) -> bool:
        """True once the job reached a terminal state."""
        return self.status(job_id)["state"] in (
            "completed", "failed", "cancelled",
        )

    # -- monitoring (servant operation + local listeners) ------------------------

    def job_event(self, job_id: str, event: str, detail: str) -> None:
        record = JobEvent(job_id, event, detail)
        self.events.append(record)
        for listener in self._listeners:
            listener(record)

    def on_event(self, listener: Callable) -> None:
        """Subscribe a local callback to incoming job events."""
        self._listeners.append(listener)

    def events_for(self, job_id: str) -> list:
        return [e for e in self.events if e.job_id == job_id]
