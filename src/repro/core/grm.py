"""Global Resource Manager (GRM).

One per cluster.  Stores the LRMs' periodic status reports in a Trading
service (as the prototype did with the JacORB Trader), selects candidate
nodes for submitted applications, and drives the Resource Reservation
and Execution Protocol: "the GRM uses its local information about the
cluster state as a hint ... after that, the GRM engages in a direct
negotiation with the selected nodes" (Section 4).
"""

import itertools
from collections import deque
from dataclasses import dataclass, field, fields
from heapq import heappop, heappush
from time import perf_counter
from typing import Callable, Optional

from repro.apps.job import Job, JobState, Task, TaskState
from repro.apps.spec import ApplicationSpec, BSP
from repro.checkpoint.store import MemoryCheckpointStore
from repro.core.gupa import Gupa
from repro.core.protocols import ASCT_INTERFACE, LRM_INTERFACE
from repro.core.scheduler import (
    FirstFitPolicy,
    ScheduleContext,
    SchedulingPolicy,
    plan_virtual_topology,
)
from repro.core.update_protocol import apply_delta
from repro.orb.core import Orb
from repro.orb.exceptions import OrbError
from repro.orb.trading import TradingService
from repro.sim.events import EventLoop
from repro.sim.network import NetworkTopology

DEFAULT_SCHEDULE_INTERVAL = 30.0
DEFAULT_RESERVATION_LEASE = 120.0
DEFAULT_MAX_NEGOTIATIONS = 8
DEFAULT_STALE_FACTOR = 3.5


@dataclass
class NodeRecord:
    """Everything the GRM tracks about one registered node."""

    node: str
    lrm_ior: str
    lrm_stub: object
    offer_id: str
    last_status: dict
    last_seen: float
    alive: bool = True


@dataclass
class GrmStats:
    """Counters the experiments report.

    The attributes are the storage — hot paths bump them as plain ints,
    exactly as before the metrics registry existed.  :meth:`to_metrics`
    publishes every field as a registry view, so the registry snapshot
    and the attribute API read the same numbers from one place.
    """

    updates_received: int = 0
    deltas_received: int = 0
    ingest_flushes: int = 0
    negotiation_rounds: int = 0
    reservations_refused: int = 0
    placements: int = 0
    gang_placements: int = 0
    gang_failures: int = 0
    evictions_handled: int = 0
    completions: int = 0
    jobs_submitted: int = 0
    jobs_forwarded: int = 0
    nodes_declared_dead: int = 0

    def to_metrics(self, registry, prefix: str = "grm") -> None:
        """Publish every counter field as a pull-view on ``registry``."""
        registry.bind(prefix, self, [f.name for f in fields(self)])


class Grm:
    """The servant implementing ``integrade/Grm`` for one cluster."""

    def __init__(
        self,
        loop: EventLoop,
        orb: Orb,
        cluster: str = "cluster0",
        policy: Optional[SchedulingPolicy] = None,
        gupa: Optional[Gupa] = None,
        network: Optional[NetworkTopology] = None,
        checkpoint_store: Optional[MemoryCheckpointStore] = None,
        schedule_interval: float = DEFAULT_SCHEDULE_INTERVAL,
        reservation_lease: float = DEFAULT_RESERVATION_LEASE,
        max_negotiations: int = DEFAULT_MAX_NEGOTIATIONS,
        update_interval_hint: float = 60.0,
        batched_ingest: bool = False,
    ):
        self._loop = loop
        self._orb = orb
        self.cluster = cluster
        self.policy = policy if policy is not None else FirstFitPolicy()
        self.gupa = gupa
        self.network = network
        self.store = checkpoint_store
        self.trader = TradingService()
        self.stats = GrmStats()
        #: Optional observability hooks; None keeps the seed hot paths.
        self.tracer = None
        self.journal = None
        self._rank_hist = None
        self._ingest_hist = None
        self._job_trace_ctx: dict[str, tuple] = {}
        #: Seq of the in-flight node_down event while its evictions run,
        #: so they journal with a causal link back to the death.
        self._evict_cause = None

        self._nodes: dict[str, NodeRecord] = {}
        #: Node-derived summary sums are cached per epoch; any change to
        #: the roster or a stored status bumps the epoch and invalidates.
        self._summary_epoch = 0
        self._summary_cache: Optional[tuple] = None
        #: Batched ingestion: updates mark their node dirty here and the
        #: Trader is brought up to date in one pass before the next query.
        self._batched_ingest = batched_ingest
        self._dirty: dict[str, NodeRecord] = {}
        #: Staleness sweep state: (expiry, seq, record) entries, one live
        #: entry per record, re-armed lazily as sweeps find fresh nodes.
        #: The seq breaks expiry ties (records are not comparable).
        self._expiry_heap: list[tuple] = []
        self._expiry_seq = itertools.count()
        self._jobs: dict[str, Job] = {}
        self._tasks: dict[str, tuple] = {}     # task_id -> (job, task)
        self._pending: deque = deque()
        self._coordinators: dict[str, object] = {}   # job_id -> BSP coordinator
        self._asct_stubs: dict[str, object] = {}     # job_id -> callback stub
        self._job_listeners: list[Callable] = []
        self._parent = None
        self._job_ids = itertools.count()
        self._reservation_lease = reservation_lease
        self._max_negotiations = max_negotiations
        self._stale_after = update_interval_hint * DEFAULT_STALE_FACTOR
        self._schedule_task = loop.every(schedule_interval, self._schedule_pass)
        self._liveness_task = loop.every(
            self._stale_after, self._check_liveness
        )

    # -- wiring -------------------------------------------------------------------

    def bind_metrics(self, registry, prefix: Optional[str] = None) -> None:
        """Publish this GRM's stats and trader on a metrics registry.

        Registers :class:`GrmStats` fields as views, binds the trader's
        query accounting, and starts the per-pass ranking latency
        histogram (two ``perf_counter`` calls per policy ranking).
        """
        prefix = prefix if prefix is not None else f"grm.{self.cluster}"
        self.stats.to_metrics(registry, prefix)
        registry.view(f"{prefix}.registered_nodes", lambda: len(self._nodes))
        registry.view(f"{prefix}.pending_jobs", lambda: len(self._pending))
        self.trader.bind_metrics(registry, prefix=f"trader.{self.cluster}")
        from repro.obs.metrics import LATENCY_BOUNDS_S
        self._rank_hist = registry.histogram(
            f"{prefix}.rank_latency_s", LATENCY_BOUNDS_S
        )
        self._ingest_hist = registry.histogram(
            f"{prefix}.ingest_latency_s", LATENCY_BOUNDS_S
        )
        registry.view(f"{prefix}.dirty_nodes", lambda: len(self._dirty))

    def set_tracer(self, tracer) -> None:
        """Attach the grid's span tracer (schedule/trader/placement spans)."""
        self.tracer = tracer

    def set_journal(self, journal) -> None:
        """Attach the grid's event journal (node/task lifecycle events)."""
        self.journal = journal

    def set_parent(self, parent_stub) -> None:
        """Attach the parent GRM for wide-area forwarding."""
        self._parent = parent_stub

    def register_coordinator(self, job_id: str, coordinator) -> None:
        """Attach a gang/BSP coordinator for a job's pacing callbacks."""
        self._coordinators[job_id] = coordinator

    def register_asct_stub(self, job_id: str, asct_stub) -> None:
        """Attach an already-built ASCT stub (local wiring and tests)."""
        self._asct_stubs[job_id] = asct_stub

    # servant operation
    def register_asct(self, job_id: str, asct_ior: str) -> None:
        """Attach the submitting ASCT for progress notifications."""
        self._asct_stubs[job_id] = self._orb.stub(asct_ior, ASCT_INTERFACE)

    def on_job_event(self, listener: Callable) -> None:
        """Subscribe a local listener to (job_id, event, detail) triples."""
        self._job_listeners.append(listener)

    def lrm_stub(self, node: str):
        """The LRM stub for a registered node (for coordinators)."""
        record = self._nodes.get(node)
        return record.lrm_stub if record is not None else None

    def stop(self) -> None:
        self._schedule_task.stop()
        self._liveness_task.stop()

    # -- Information Update Protocol (servant operations) ---------------------------

    def register_node(self, status: dict, lrm_ior: str) -> None:
        node = status["node"]
        if node in self._nodes:
            self.unregister_node(node)
        stub = self._orb.stub(lrm_ior, LRM_INTERFACE)
        offer_id = self.trader.export("node", lrm_ior, status)
        record = NodeRecord(
            node, lrm_ior, stub, offer_id, status, self._loop.now
        )
        self._nodes[node] = record
        self._summary_epoch += 1
        heappush(
            self._expiry_heap,
            (record.last_seen + self._stale_after,
             next(self._expiry_seq), record),
        )
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "node_up", node=node,
                cluster=self.cluster,
                mips=status.get("mips"),
            )

    def unregister_node(self, node: str) -> None:
        record = self._nodes.pop(node, None)
        if record is None:
            return
        self._summary_epoch += 1
        self._dirty.pop(node, None)
        try:
            self.trader.withdraw(record.offer_id)
        except Exception:
            pass

    def send_update(self, status: dict) -> None:
        hist = self._ingest_hist
        if hist is None:
            return self._ingest_full(status)
        started = perf_counter()
        try:
            self._ingest_full(status)
        finally:
            hist.observe(perf_counter() - started)

    def send_delta(self, node: str, delta: dict) -> None:
        hist = self._ingest_hist
        if hist is None:
            return self._ingest_delta(node, delta)
        started = perf_counter()
        try:
            self._ingest_delta(node, delta)
        finally:
            hist.observe(perf_counter() - started)

    def _ingest_full(self, status: dict) -> None:
        record = self._nodes.get(status["node"])
        if record is None:
            # Update from an unregistered node: drop, it must re-register.
            journal = self.journal
            if journal is not None and journal.active:
                journal.record(
                    "update_dropped", node=status["node"],
                    cluster=self.cluster, reason="unregistered",
                )
            return
        record.last_status = status
        record.last_seen = self._loop.now
        record.alive = True
        self._summary_epoch += 1
        if self._batched_ingest:
            self._dirty[record.node] = record
        else:
            # The decoded update dict is never touched again: let the trader
            # adopt it instead of copying (it also backs last_status, read-only).
            self.trader.modify(record.offer_id, status, copy=False)
        self.stats.updates_received += 1

    def _ingest_delta(self, node: str, delta: dict) -> None:
        record = self._nodes.get(node)
        if record is None:
            # Delta for an unregistered node: drop, it must re-register.
            journal = self.journal
            if journal is not None and journal.active:
                journal.record(
                    "update_dropped", node=node,
                    cluster=self.cluster, reason="unregistered",
                )
            return
        record.last_status = apply_delta(record.last_status, delta)
        record.last_seen = self._loop.now
        record.alive = True
        self._summary_epoch += 1
        if self._batched_ingest:
            self._dirty[node] = record
        else:
            # Only the changed fields touch the Trader's indexes.
            self.trader.patch(record.offer_id, delta)
        self.stats.updates_received += 1
        self.stats.deltas_received += 1

    def flush_updates(self) -> None:
        """Bring the Trader up to date with every dirty node (batched mode).

        Coalesces however many updates arrived since the last query into
        one ``modify`` per node; the flushed state is each record's
        current ``last_status``, which already folds in any deltas.
        """
        dirty = self._dirty
        if not dirty:
            return
        self.trader.modify_many(
            ((record.offer_id, record.last_status)
             for record in dirty.values()),
            copy=False,
        )
        dirty.clear()
        self.stats.ingest_flushes += 1

    def _check_liveness(self) -> None:
        """Scheduled staleness sweep over the expiry heap.

        Pops only entries whose armed expiry has passed; nodes that kept
        updating are re-armed at their real expiry.  The liveness verdict
        (``now - last_seen > stale_after``) and the order deaths are
        declared in (registration order, via ``_nodes``) are bit-identical
        to the previous full-scan implementation.
        """
        now = self._loop.now
        heap = self._expiry_heap
        stale_after = self._stale_after
        nodes = self._nodes
        dead: set = set()
        while heap and heap[0][0] < now:
            _expiry, _seq, record = heappop(heap)
            node = record.node
            if nodes.get(node) is not record or not record.alive:
                continue   # withdrawn, replaced, or already declared dead
            expiry = record.last_seen + stale_after
            if expiry < now:
                dead.add(node)
            else:
                heappush(heap, (expiry, next(self._expiry_seq), record))
        if dead:
            for record in [r for r in list(nodes.values()) if r.node in dead]:
                self._declare_dead(record)

    def _declare_dead(self, record: NodeRecord) -> None:
        record.alive = False
        self._summary_epoch += 1
        self._dirty.pop(record.node, None)
        self.stats.nodes_declared_dead += 1
        try:
            self.trader.withdraw(record.offer_id)
        except Exception:
            pass
        journal = self.journal
        down = None
        if journal is not None and journal.active:
            down = journal.record(
                "node_down", node=record.node, cluster=self.cluster,
                reason="status stale",
                last_seen=record.last_seen,
            )
        # Tasks on a dead node resume from the cluster checkpoint store;
        # their eviction (and any checkpoint read) journals with the
        # death as its cause.
        self._evict_cause = down.seq if down is not None else None
        try:
            for task_id, (job, task) in list(self._tasks.items()):
                if task.node == record.node \
                        and task.state is TaskState.RUNNING:
                    resume = 0.0
                    if self.store is not None:
                        checkpoint = self.store.load_latest(task_id)
                        if checkpoint is not None:
                            resume = checkpoint.state().get(
                                "progress_mips", 0.0
                            )
                            if down is not None:
                                journal.record(
                                    "checkpoint_restored",
                                    node=record.node,
                                    job_id=job.job_id, task_id=task_id,
                                    cause=down.seq,
                                    progress_mips=resume,
                                )
                    # The node is gone, so progress-at-crash is
                    # unknowable; account only what the checkpoint
                    # preserved.
                    self.task_evicted(record.node, task_id, resume, resume)
        finally:
            self._evict_cause = None
        del self._nodes[record.node]

    # -- submission (servant operations) ----------------------------------------------

    def submit(self, spec) -> str:
        if isinstance(spec, dict):
            spec = ApplicationSpec.from_dict(spec)
        job_id = f"{self.cluster}-job{next(self._job_ids)}"
        job = Job(job_id, spec, self._loop.now)
        self._jobs[job_id] = job
        for task in job.tasks:
            self._tasks[task.task_id] = (job, task)
        self._pending.append(job_id)
        self.stats.jobs_submitted += 1
        tracer = self.tracer
        if tracer is not None and tracer.active:
            # The first placement attempt runs from a deferred event, not
            # inside this call; remember the submission's span so the
            # schedule pass can parent back to it (one connected trace).
            context = tracer.context()
            if context is not None:
                self._job_trace_ctx[job_id] = context
        self._emit(job_id, "submitted", spec.name)
        # Deferred so the caller can still attach a coordinator or ASCT
        # before the first placement attempt runs.
        self._loop.schedule(0.0, self._schedule_pass)
        return job_id

    def job_status(self, job_id: str) -> dict:
        job = self._require_job(job_id)
        return {
            "job_id": job.job_id,
            "name": job.spec.name,
            "state": job.state.value,
            "progress": job.progress_fraction(),
            "submitted_at": job.submitted_at,
            "completed_at": job.completed_at,
            "tasks": [
                {
                    "task_id": t.task_id,
                    "state": t.state.value,
                    "node": t.node,
                    "progress_mips": t.progress_mips,
                    "attempts": t.attempts,
                    "evictions": t.evictions,
                    "result": t.result,
                }
                for t in job.tasks
            ],
        }

    def cancel_job(self, job_id: str) -> None:
        job = self._require_job(job_id)
        if job.done:
            return
        for task in job.tasks:
            if task.state is TaskState.RUNNING and task.node:
                stub = self.lrm_stub(task.node)
                if stub is not None:
                    try:
                        stub.stop_task(task.task_id)
                    except OrbError:
                        pass
            if not task.done:
                task.transition(TaskState.CANCELLED, self._loop.now, "cancel_job")
        job.set_state(JobState.CANCELLED, self._loop.now)
        self._job_trace_ctx.pop(job_id, None)
        self._emit(job_id, "cancelled", "")

    def job(self, job_id: str) -> Job:
        """Direct access for local harnesses and tests."""
        return self._require_job(job_id)

    @property
    def jobs(self) -> list:
        return list(self._jobs.values())

    def _require_job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    # -- task lifecycle callbacks (servant operations) ------------------------------------

    def task_completed(self, node: str, task_id: str, result=None) -> None:
        entry = self._tasks.get(task_id)
        if entry is None:
            return
        job, task = entry
        if task.state is not TaskState.RUNNING:
            return
        task.result = result
        if isinstance(result, dict) and "__error__" in result:
            # The task's payload violated the provider's sandbox: the
            # compute finished but the application failed.
            task.transition(
                TaskState.FAILED, self._loop.now,
                f"sandbox violation on {node}: {result['__error__']}"
            )
            job.refresh_state(self._loop.now)
            self._emit(job.job_id, "task_failed", task_id)
            return
        task.advance(task.work_mips)
        task.transition(TaskState.COMPLETED, self._loop.now, f"on {node}")
        self.stats.completions += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "task_completed", node=node,
                job_id=job.job_id, task_id=task_id,
                attempts=task.attempts,
            )
        coordinator = self._coordinators.get(job.job_id)
        if coordinator is not None:
            coordinator.member_completed(task_id)
        job.refresh_state(self._loop.now)
        if job.state is JobState.COMPLETED:
            self._job_trace_ctx.pop(job.job_id, None)
            self._emit(job.job_id, "completed", "")

    def task_evicted(
        self,
        node: str,
        task_id: str,
        progress_at_eviction_mips: float,
        resume_progress_mips: float,
    ) -> None:
        entry = self._tasks.get(task_id)
        if entry is None:
            return
        job, task = entry
        if task.state is not TaskState.RUNNING:
            return
        self.stats.evictions_handled += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "task_evicted", node=node,
                job_id=job.job_id, task_id=task_id,
                cause=self._evict_cause,
                progress_mips=progress_at_eviction_mips,
                resume_progress_mips=resume_progress_mips,
            )
        task.transition(TaskState.EVICTED, self._loop.now, f"from {node}")
        # Credit the work actually done, then lose what was not
        # checkpointed: wasted work shows up in task.wasted_mips.
        if progress_at_eviction_mips > task.progress_mips:
            task.advance(progress_at_eviction_mips - task.progress_mips)
        task.rollback(
            to_progress_mips=min(resume_progress_mips, task.progress_mips)
        )
        task.node = None
        coordinator = self._coordinators.get(job.job_id)
        if coordinator is not None:
            coordinator.member_evicted(task_id, node)
        task.transition(TaskState.PENDING, self._loop.now, "requeued")
        if job.job_id not in self._pending:
            self._pending.append(job.job_id)
        self._emit(job.job_id, "task_evicted", task_id)

    def task_reached_limit(self, node: str, task_id: str) -> None:
        entry = self._tasks.get(task_id)
        if entry is None:
            return
        job, _task = entry
        coordinator = self._coordinators.get(job.job_id)
        if coordinator is not None:
            coordinator.member_reached_limit(task_id, node)

    # -- scheduling ---------------------------------------------------------------------

    def _schedule_pass(self) -> None:
        if not self._pending:
            return
        still_pending: deque = deque()
        while self._pending:
            job_id = self._pending.popleft()
            job = self._jobs.get(job_id)
            if job is None or job.done:
                continue
            placed = self._schedule_job(job)
            if not placed and any(
                t.state is TaskState.PENDING for t in job.tasks
            ):
                if not self._forward_if_possible(job):
                    still_pending.append(job_id)
        self._pending = still_pending

    def _schedule_job(self, job: Job) -> bool:
        tracer = self.tracer
        if tracer is not None and tracer.active:
            with tracer.span("grm.schedule_job",
                             parent=self._job_trace_ctx.get(job.job_id),
                             component=self.cluster, job_id=job.job_id):
                return self._schedule_job_impl(job)
        return self._schedule_job_impl(job)

    def _schedule_job_impl(self, job: Job) -> bool:
        if job.spec.kind == BSP or job.spec.topology is not None:
            return self._schedule_gang(job)
        return self._schedule_independent(job)

    def _offers_for(self, spec: ApplicationSpec) -> list:
        if self._dirty:
            self.flush_updates()
        reqs = spec.requirements
        parts = [
            "sharing == true",
            f"cpu_free >= {reqs.cpu_fraction}",
            f"mem_free_mb >= {reqs.mem_mb}",
        ]
        if reqs.min_mips > 0:
            parts.append(f"mips >= {reqs.min_mips}")
        if reqs.min_ram_mb > 0:
            parts.append(f"ram_mb >= {reqs.min_ram_mb}")
        if reqs.disk_mb > 0:
            parts.append(f"disk_free_mb >= {reqs.disk_mb}")
        constraint = " && ".join(parts)
        tracer = self.tracer
        if tracer is not None and tracer.active:
            with tracer.span("trader.query", component=self.cluster,
                             constraint=constraint):
                offers = self.trader.query(
                    "node", constraint=constraint, copy_properties=False
                )
        else:
            offers = self.trader.query(
                "node", constraint=constraint, copy_properties=False
            )
        return [
            o["properties"] for o in offers
            if reqs.satisfied_by(o["properties"])
            and self._nodes.get(o["properties"]["node"]) is not None
            and self._nodes[o["properties"]["node"]].alive
        ]

    def _schedule_independent(self, job: Job) -> bool:
        all_placed = True
        # One context for the whole job: the per-offer array cache
        # survives across tasks, only remaining_mips changes per task.
        ctx = ScheduleContext(
            spec=job.spec,
            remaining_mips=0.0,
            now=self._loop.now,
            gupa=self.gupa,
        )
        for task in job.tasks:
            if task.state is not TaskState.PENDING:
                continue
            # Do not bounce an evicted task straight back onto the node
            # whose owner just reclaimed it (unless it is the only one).
            exclude = ()
            last_node = self._last_node_of(task)
            if task.evictions > 0 and last_node is not None:
                exclude = (last_node,)
            if not self._place_task(job, task, exclude=exclude, ctx=ctx):
                if exclude and self._place_task(job, task, ctx=ctx):
                    continue   # fall back: the old node is all there is
                all_placed = False
        job.refresh_state(self._loop.now)
        return all_placed

    @staticmethod
    def _last_node_of(task: Task):
        for event in reversed(task.history):
            if event.state == "evicted" and event.detail.startswith("from "):
                return event.detail[len("from "):]
        return None

    def _apply_user_preference(self, offers: list, spec: ApplicationSpec) -> list:
        """The user's preference expression outranks the cluster policy.

        Paper, Section 4: users state "preferences, like rather executing
        on a faster CPU than on a slower one".  A stable sort on the
        preference score keeps the policy's order among equally-preferred
        offers.
        """
        if not spec.preference:
            return offers
        rank = spec.preference_rank()
        return sorted(offers, key=rank.score, reverse=True)

    def _rank(self, offers: list, ctx: ScheduleContext,
              spec: ApplicationSpec) -> list:
        """Policy ranking + user preference, timed when metrics are bound."""
        hist = self._rank_hist
        if hist is None:
            return self._apply_user_preference(
                self.policy.order(offers, ctx), spec
            )
        started = perf_counter()
        try:
            return self._apply_user_preference(
                self.policy.order(offers, ctx), spec
            )
        finally:
            hist.observe(perf_counter() - started)

    def _place_task(
        self,
        job: Job,
        task: Task,
        exclude: tuple = (),
        ctx: Optional[ScheduleContext] = None,
    ) -> bool:
        if ctx is None:
            ctx = ScheduleContext(
                spec=job.spec,
                remaining_mips=task.remaining_mips,
                now=self._loop.now,
                gupa=self.gupa,
            )
        else:
            ctx.remaining_mips = task.remaining_mips
        offers = [
            o for o in self._offers_for(job.spec)
            if o["node"] not in exclude
        ]
        ordered = self._rank(offers, ctx, job.spec)
        for offer in ordered[: self._max_negotiations]:
            node = offer["node"]
            if self._reserve_on(node, job, task):
                if self._launch_on(node, job, task):
                    return True
                self._cancel_reservation(node, task.task_id)
        return False

    def _reserve_on(self, node: str, job: Job, task: Task) -> bool:
        record = self._nodes.get(node)
        if record is None or not record.alive:
            return False
        self.stats.negotiation_rounds += 1
        reqs = job.spec.requirements
        try:
            reply = record.lrm_stub.request_reservation({
                "task_id": task.task_id,
                "cpu_fraction": reqs.cpu_fraction,
                "mem_mb": reqs.mem_mb,
                "disk_mb": reqs.disk_mb,
                "lease_seconds": self._reservation_lease,
            })
        except OrbError:
            return False
        if not reply["accepted"]:
            self.stats.reservations_refused += 1
            return False
        return True

    def _launch_on(self, node: str, job: Job, task: Task) -> bool:
        record = self._nodes.get(node)
        if record is None:
            return False
        checkpoint_interval = job.spec.metadata.get("checkpoint_interval_s", 0.0)
        try:
            started = record.lrm_stub.start_task({
                "task_id": task.task_id,
                "job_id": job.job_id,
                "work_mips": task.work_mips,
                "initial_progress_mips": task.progress_mips,
                "checkpoint_interval_s": float(checkpoint_interval),
                "payload": str(job.spec.metadata.get("payload", "")),
            })
        except OrbError:
            return False
        if not started:
            return False
        task.node = node
        task.transition(TaskState.RESERVED, self._loop.now, node)
        task.transition(TaskState.RUNNING, self._loop.now, node)
        self.stats.placements += 1
        journal = self.journal
        if journal is not None and journal.active:
            journal.record(
                "task_scheduled", node=node,
                job_id=job.job_id, task_id=task.task_id,
                initial_progress_mips=task.progress_mips,
                attempt=task.attempts,
            )
            if task.progress_mips > 0.0:
                # A mid-flight start means earlier work survived in a
                # checkpoint: this placement is a restore, not a restart.
                journal.record(
                    "task_restored", node=node,
                    job_id=job.job_id, task_id=task.task_id,
                    progress_mips=task.progress_mips,
                )
        job.refresh_state(self._loop.now)
        return True

    def _cancel_reservation(self, node: str, task_id: str) -> None:
        record = self._nodes.get(node)
        if record is None:
            return
        try:
            record.lrm_stub.cancel_reservation(task_id)
        except OrbError:
            pass

    def _schedule_gang(self, job: Job) -> bool:
        """Reserve every pending task on a distinct node, or none at all."""
        pending = [t for t in job.tasks if t.state is TaskState.PENDING]
        if not pending:
            return True
        busy_nodes = {
            t.node for t in job.tasks if t.node is not None and not t.done
        }
        offers = [
            o for o in self._offers_for(job.spec)
            if o["node"] not in busy_nodes
        ]
        ctx = ScheduleContext(
            spec=job.spec,
            remaining_mips=max(t.remaining_mips for t in pending),
            now=self._loop.now,
            gupa=self.gupa,
        )
        if job.spec.topology is not None and self.network is not None:
            plan = plan_virtual_topology(
                offers, job.spec.topology, self.network, ctx, self.policy
            )
            if plan is None:
                self.stats.gang_failures += 1
                return False
            ordered = [offer for group in plan for offer in group]
        else:
            ordered = self._rank(offers, ctx, job.spec)
        if len(ordered) < len(pending):
            self.stats.gang_failures += 1
            return False

        reserved: list[tuple] = []
        offer_iter = iter(ordered)
        for task in pending:
            placed_node = None
            for offer in offer_iter:
                if self._reserve_on(offer["node"], job, task):
                    placed_node = offer["node"]
                    break
            if placed_node is None:
                for node, earlier in reserved:
                    self._cancel_reservation(node, earlier.task_id)
                self.stats.gang_failures += 1
                return False
            reserved.append((placed_node, task))

        for node, task in reserved:
            if not self._launch_on(node, job, task):
                # A start failing after reservation is pathological; give
                # the remaining members back and requeue.
                for other_node, other in reserved:
                    if other.state is TaskState.PENDING:
                        self._cancel_reservation(other_node, other.task_id)
                self.stats.gang_failures += 1
                return False
        self.stats.gang_placements += 1
        coordinator = self._coordinators.get(job.job_id)
        if coordinator is not None:
            coordinator.members_started(
                {task.task_id: node for node, task in reserved}
            )
        return True

    def migrate_task(self, task_id: str, exclude_current: bool = True) -> bool:
        """Live-migrate a running task to another node.

        The paper's checkpointing requirement exists "to permit migration
        of computation across grid nodes"; this is the control-plane
        operation: stop the task on its current node (capturing its exact
        progress), then place it elsewhere resuming from that progress.
        Returns True when the task ends up running on a new node; on
        failure to re-place, the task is left PENDING for the normal
        scheduling passes (no work is lost).
        """
        entry = self._tasks.get(task_id)
        if entry is None:
            raise KeyError(f"unknown task {task_id!r}")
        job, task = entry
        if task.state is not TaskState.RUNNING or task.node is None:
            return False
        old_node = task.node
        stub = self.lrm_stub(old_node)
        if stub is None:
            return False
        try:
            progress = stub.stop_task(task_id)
        except OrbError:
            return False
        if progress >= 0:
            if progress > task.progress_mips:
                task.advance(progress - task.progress_mips)
        task.transition(TaskState.EVICTED, self._loop.now,
                        f"migrating off {old_node}")
        task.rollback(to_progress_mips=min(task.progress_mips,
                                           max(0.0, progress)))
        task.node = None
        task.transition(TaskState.PENDING, self._loop.now, "migration")
        exclude = (old_node,) if exclude_current else ()
        placed = self._place_task(job, task, exclude=exclude)
        if not placed and job.job_id not in self._pending:
            self._pending.append(job.job_id)
        self._emit(job.job_id, "migrated" if placed else "migration_pending",
                   task_id)
        return placed

    def _forward_if_possible(self, job: Job) -> bool:
        """Wide-area step: hand an unplaceable job to the parent GRM."""
        if self._parent is None:
            return False
        if job.spec.metadata.get("no_forward"):
            return False   # already forwarded once; it stays here
        if any(t.state is not TaskState.PENDING for t in job.tasks):
            return False   # partially placed jobs stay local
        try:
            remote_id = self._parent.submit_remote(
                job.spec.to_dict(), self.cluster
            )
        except OrbError:
            return False
        if not remote_id:
            return False
        for task in job.tasks:
            task.transition(TaskState.CANCELLED, self._loop.now, "forwarded")
        job.set_state(JobState.CANCELLED, self._loop.now,
                      f"forwarded as {remote_id}")
        job.forwarded_to = remote_id
        self.stats.jobs_forwarded += 1
        self._emit(job.job_id, "forwarded", remote_id)
        return True

    # -- notifications ---------------------------------------------------------------------

    def _emit(self, job_id: str, event: str, detail: str) -> None:
        for listener in self._job_listeners:
            listener(job_id, event, detail)
        stub = self._asct_stubs.get(job_id)
        if stub is not None:
            try:
                stub.job_event(job_id, event, detail)
            except OrbError:
                pass

    # -- summaries (for the hierarchy) ---------------------------------------------------------

    def cluster_summary(self) -> dict:
        cache = self._summary_cache
        if cache is not None and cache[0] == self._summary_epoch:
            node_sums = cache[1]
        else:
            statuses = [
                r.last_status for r in self._nodes.values() if r.alive
            ]
            node_sums = {
                "nodes": len(statuses),
                "sharing_nodes": sum(1 for s in statuses if s["sharing"]),
                "free_cpu_total": sum(s["cpu_free"] for s in statuses),
                "free_mem_total_mb": sum(
                    s["mem_free_mb"] for s in statuses
                ),
                "max_node_mips": max(
                    (s["mips"] for s in statuses), default=0.0
                ),
            }
            self._summary_cache = (self._summary_epoch, node_sums)
        # Time and the pending-task count are always computed fresh: the
        # queue changes on schedule passes, not node updates.  A job id
        # can linger in _pending after the job is gone — skip it.
        pending_tasks = sum(
            1
            for job_id in self._pending
            if (job := self._jobs.get(job_id)) is not None
            for t in job.tasks
            if t.state is TaskState.PENDING
        )
        summary = {"cluster": self.cluster, "time": self._loop.now}
        summary.update(node_sums)
        summary["pending_tasks"] = pending_tasks
        return summary
