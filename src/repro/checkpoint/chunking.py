"""Incremental, content-addressed checkpoint chains.

The seed checkpoint plane re-stores a task's *entire* serialized state
on every save — cost linear in state size regardless of how little
changed between supersteps.  This module adds the delta layer:

* serialized state is split into fixed-size chunks, each keyed by its
  content digest (:func:`~repro.checkpoint.serializer.chunk_digest`);
* chunks live in a shared, content-addressed :class:`ChunkPool` —
  identical chunks from *any* task or replica are stored once
  (cross-task dedup);
* each save produces a **manifest**: a ``full`` record lists every
  chunk, a ``delta`` record references its base record and lists only
  the chunk slots that changed;
* every ``rebase_every`` saves an unconditional **full rebase** starts a
  fresh chain, bounding how many deltas a restore must walk (the same
  drop-resync bound the information plane's ``full_refresh_every``
  provides) — and because the pool is content-addressed, a rebase
  materializes almost no new bytes;
* restore re-derives the chunk list by walking the chain full → deltas,
  validating every base link and every chunk's digest, and reassembles
  the original serialized bytes **bit-identically** — the result passes
  the exact same envelope validation as a full snapshot.

Stores (:mod:`repro.checkpoint.store`) opt into this engine with
``chunked=True``; nothing here runs unless they do.
"""

from typing import Optional

from repro.checkpoint.serializer import (
    DEFAULT_CHUNK_SIZE,
    chunk_digest,
    split_chunks,
)

#: Unconditional full rebase after this many records in a chain
#: (1 full + rebase_every-1 deltas); bounds restore-chain length.
DEFAULT_REBASE_EVERY = 8

FULL = "full"
DELTA = "delta"


class ChunkedChainError(Exception):
    """The delta chain cannot be restored (missing base, chunk, or slot)."""


class ChunkPool:
    """In-memory content-addressed chunk storage shared across tasks."""

    def __init__(self):
        self._chunks: dict[bytes, bytes] = {}

    def has(self, digest: bytes) -> bool:
        return digest in self._chunks

    def put(self, digest: bytes, chunk: bytes) -> None:
        self._chunks[digest] = chunk

    def get(self, digest: bytes) -> bytes:
        chunk = self._chunks.get(digest)
        if chunk is None:
            raise ChunkedChainError(
                f"chunk {digest.hex()} is not in the pool"
            )
        return chunk

    def delete(self, digest: bytes) -> None:
        self._chunks.pop(digest, None)

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def bytes_stored(self) -> int:
        return sum(len(c) for c in self._chunks.values())


class ChunkedRepository:
    """Delta chains + refcounted chunk pool behind a checkpoint store.

    One repository serves every task of a store, so replicas saving
    identical state share chunk storage.  A record is a plain dict
    (``sequence``, ``time``, ``kind``, ``base``, ``nchunks``,
    ``length``, ``changed``) so file-backed stores can persist chains
    with the ordinary checkpoint serializer.
    """

    def __init__(
        self,
        pool: Optional[ChunkPool] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        rebase_every: int = DEFAULT_REBASE_EVERY,
    ):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if rebase_every < 1:
            raise ValueError("rebase_every must be >= 1")
        self.pool = pool if pool is not None else ChunkPool()
        self.chunk_size = chunk_size
        self.rebase_every = rebase_every
        self._chains: dict[str, list[dict]] = {}
        #: Per task, the resolved digest list of each chain record —
        #: kept for O(1) delta encoding and exact refcount release.
        self._resolved: dict[str, list] = {}
        self._refs: dict[bytes, int] = {}
        self.full_saves = 0
        self.delta_saves = 0
        self.rebases = 0
        self.chunks_written = 0
        self.chunks_deduped = 0
        self.chunk_bytes_written = 0

    # -- saving ---------------------------------------------------------------

    def save(self, task_id: str, data: bytes, sequence: int,
             now: float) -> dict:
        """Store one checkpoint; returns its manifest record.

        Only chunks whose digest is new to the pool are materialized.
        The record is a full rebase when the task has no chain yet or
        the chain has reached ``rebase_every`` records.
        """
        chunks = split_chunks(data, self.chunk_size)
        digests = [chunk_digest(c) for c in chunks]
        chain = self._chains.get(task_id)
        rebase = chain is not None and len(chain) >= self.rebase_every
        if chain is None or rebase:
            kind, base = FULL, -1
            changed = list(enumerate(digests))
        else:
            prev = self._resolved[task_id][-1]
            kind, base = DELTA, chain[-1]["sequence"]
            changed = [
                (i, d) for i, d in enumerate(digests)
                if i >= len(prev) or prev[i] != d
            ]
        for i, digest in changed:
            if self.pool.has(digest):
                self.chunks_deduped += 1
            else:
                self.pool.put(digest, chunks[i])
                self.chunks_written += 1
                self.chunk_bytes_written += len(chunks[i])
        record = {
            "sequence": sequence,
            "time": now,
            "kind": kind,
            "base": base,
            "nchunks": len(chunks),
            "length": len(data),
            "changed": [[i, d] for i, d in changed],
        }
        for digest in digests:
            self._refs[digest] = self._refs.get(digest, 0) + 1
        if kind == FULL:
            self.full_saves += 1
            if rebase:
                self.rebases += 1
                self._drop_records(task_id, len(chain))
            self._chains[task_id] = [record]
            self._resolved[task_id] = [digests]
        else:
            self.delta_saves += 1
            chain.append(record)
            self._resolved[task_id].append(digests)
        return record

    def _drop_records(self, task_id: str, count: int) -> None:
        """Release the first ``count`` records of a task's chain."""
        resolved = self._resolved[task_id]
        for digests in resolved[:count]:
            for digest in digests:
                remaining = self._refs.get(digest, 0) - 1
                if remaining <= 0:
                    self._refs.pop(digest, None)
                    self.pool.delete(digest)
                else:
                    self._refs[digest] = remaining
        del self._chains[task_id][:count]
        del resolved[:count]

    def adopt_chain(self, task_id: str, records: list) -> None:
        """Install a persisted chain (file store reload), re-deriving the
        per-record resolved digest lists and pool refcounts."""
        if not records:
            return
        resolved: list = []
        digests: list = []
        for record in records:
            digests = self._apply_record(task_id, record, digests)
            resolved.append(list(digests))
        self._chains[task_id] = list(records)
        self._resolved[task_id] = resolved
        for record_digests in resolved:
            for digest in record_digests:
                self._refs[digest] = self._refs.get(digest, 0) + 1

    # -- restoring ------------------------------------------------------------

    def latest(self, task_id: str) -> Optional[dict]:
        chain = self._chains.get(task_id)
        return chain[-1] if chain else None

    def resolve_digests(self, task_id: str) -> list:
        """Walk the chain full → deltas; the latest record's chunk list.

        Raises :class:`ChunkedChainError` if the chain does not start
        with a full record, a delta references a base that is not its
        predecessor (missing base), or any chunk slot is left unfilled.
        """
        chain = self._chains.get(task_id)
        if not chain:
            raise ChunkedChainError(f"no checkpoint chain for {task_id!r}")
        digests: list = []
        prev_sequence = None
        for record in chain:
            if prev_sequence is not None and record["kind"] == DELTA \
                    and record["base"] != prev_sequence:
                raise ChunkedChainError(
                    f"{task_id}: delta {record['sequence']} references "
                    f"base {record['base']} but the chain holds "
                    f"{prev_sequence} (missing base)"
                )
            digests = self._apply_record(task_id, record, digests)
            prev_sequence = record["sequence"]
        return digests

    def _apply_record(self, task_id: str, record: dict,
                      digests: list) -> list:
        if record["kind"] == FULL:
            digests = [None] * record["nchunks"]
        elif record["kind"] == DELTA:
            if not digests:
                raise ChunkedChainError(
                    f"{task_id}: chain starts with a delta — its full "
                    f"base record is missing"
                )
            nchunks = record["nchunks"]
            if nchunks <= len(digests):
                digests = digests[:nchunks]
            else:
                digests = digests + [None] * (nchunks - len(digests))
        else:
            raise ChunkedChainError(
                f"{task_id}: unknown record kind {record['kind']!r}"
            )
        for index, digest in record["changed"]:
            if not 0 <= index < record["nchunks"]:
                raise ChunkedChainError(
                    f"{task_id}: chunk index {index} outside the "
                    f"record's {record['nchunks']} chunks"
                )
            digests[index] = digest
        if any(d is None for d in digests):
            raise ChunkedChainError(
                f"{task_id}: record {record['sequence']} leaves chunk "
                f"slots unresolved"
            )
        return digests

    def resolve_bytes(self, task_id: str) -> bytes:
        """Reassemble the latest checkpoint's serialized bytes.

        Every chunk is re-verified against its content digest, so a
        corrupted pool entry is caught here even before the envelope's
        CRC check runs.
        """
        digests = self.resolve_digests(task_id)
        parts = []
        for digest in digests:
            chunk = self.pool.get(digest)
            if chunk_digest(chunk) != digest:
                raise ChunkedChainError(
                    f"{task_id}: chunk {digest.hex()} content does not "
                    f"match its digest"
                )
            parts.append(chunk)
        data = b"".join(parts)
        expected = self._chains[task_id][-1]["length"]
        if len(data) != expected:
            raise ChunkedChainError(
                f"{task_id}: reassembled {len(data)} bytes but the "
                f"manifest declares {expected}"
            )
        return data

    # -- lifecycle ------------------------------------------------------------

    def discard(self, task_id: str) -> None:
        chain = self._chains.get(task_id)
        if chain is None:
            return
        self._drop_records(task_id, len(chain))
        self._chains.pop(task_id, None)
        self._resolved.pop(task_id, None)

    def chain(self, task_id: str) -> list:
        """The task's current chain records (oldest first)."""
        return list(self._chains.get(task_id, ()))

    @property
    def task_ids(self) -> list:
        return sorted(self._chains)

    @property
    def dedup_hit_rate(self) -> float:
        total = self.chunks_written + self.chunks_deduped
        return self.chunks_deduped / total if total else 0.0
