"""Rollback recovery for parallel applications.

For a BSP application, a checkpoint is only restorable if *every*
process saved it — the globally consistent cut is a superstep boundary
all members reached.  The recovery manager tracks per-process checkpoint
sequence numbers and answers "which superstep can this job roll back
to?", which the BSP grid executor uses after an eviction or crash.
"""

from typing import Optional


class RecoveryManager:
    """Tracks per-member checkpoints of one parallel job."""

    def __init__(self, job_id: str, members: list):
        if not members:
            raise ValueError("a parallel job needs at least one member")
        self.job_id = job_id
        self.members = list(members)
        self._checkpoints: dict[str, list] = {m: [] for m in self.members}
        self.rollbacks = 0

    def record_checkpoint(self, member: str, superstep: int) -> None:
        """Note that ``member`` saved state at the end of ``superstep``."""
        if member not in self._checkpoints:
            raise KeyError(f"{member!r} is not a member of job {self.job_id}")
        if superstep < 0:
            raise ValueError("superstep must be >= 0")
        history = self._checkpoints[member]
        if history and superstep <= history[-1]:
            raise ValueError(
                f"{member}: checkpoint supersteps must increase "
                f"({superstep} <= {history[-1]})"
            )
        history.append(superstep)

    def consistent_superstep(self) -> Optional[int]:
        """Latest superstep every member has checkpointed, or None."""
        candidates = []
        for member in self.members:
            history = self._checkpoints[member]
            if not history:
                return None
            candidates.append(set(history))
        common = set.intersection(*candidates)
        return max(common) if common else None

    def rollback_point(self) -> int:
        """Superstep to restart from: the consistent cut, or 0 (scratch)."""
        self.rollbacks += 1
        consistent = self.consistent_superstep()
        return 0 if consistent is None else consistent

    def stragglers(self) -> list:
        """Members holding the consistent cut back.

        A straggler is any member whose newest checkpoint is older than
        the most advanced member's newest checkpoint — including members
        that have not checkpointed at all.  Sorted by member name.
        """
        newest = {
            m: (h[-1] if h else -1)
            for m, h in self._checkpoints.items()
        }
        frontier = max(newest.values())
        return sorted(m for m, s in newest.items() if s < frontier)

    def prune_before(self, superstep: int) -> None:
        """Drop checkpoint records older than ``superstep`` (GC)."""
        for member in self.members:
            self._checkpoints[member] = [
                s for s in self._checkpoints[member] if s >= superstep
            ]
