"""Checkpoint repositories.

A store survives its writer: the LRM saves checkpoints into a
cluster-level repository so that a task can be resumed on a *different*
node after eviction or crash (migration, in the paper's terms).  The
memory store backs simulations; the file store demonstrates the same
interface against a real filesystem.

Both stores support two opt-in scaling features (seed behaviour is the
default and byte-identical):

* ``skip_unchanged`` — a save whose state digest matches the task's
  latest record is skipped entirely (no serialization re-store, no
  file write); the previous record is returned unchanged.
* ``chunked`` — incremental, content-addressed storage
  (:mod:`repro.checkpoint.chunking`): serialized state is split into
  fixed-size chunks kept once per content digest across *all* tasks,
  each save writes only the chunks that changed since the task's
  previous record, and an unconditional full rebase every
  ``rebase_every`` saves bounds the restore chain.  ``load_latest``
  reassembles the original serialized bytes bit-identically.
"""

import os
import re
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.checkpoint.chunking import (
    DEFAULT_REBASE_EVERY,
    ChunkedChainError,
    ChunkedRepository,
    ChunkPool,
)
from repro.checkpoint.serializer import (
    DEFAULT_CHUNK_SIZE,
    chunk_digest,
    deserialize,
    serialize,
)


@dataclass(frozen=True)
class CheckpointRecord:
    """One saved checkpoint."""

    task_id: str
    sequence: int
    time: float
    data: bytes

    def state(self) -> dict:
        """Decode (and validate) the stored state."""
        return deserialize(self.data)


class _StoreMetricsMixin:
    """Shared counter plumbing: digest-skip, chunk stats, restore timing."""

    def _init_accounting(self, chunked, chunk_size, rebase_every,
                         skip_unchanged, pool=None):
        self.chunked = chunked
        self.skip_unchanged = skip_unchanged
        self.repo = (
            ChunkedRepository(pool, chunk_size, rebase_every)
            if chunked else None
        )
        self._last_digest: dict[str, bytes] = {}
        self._sequences: dict[str, int] = {}
        self.bytes_written = 0
        self.saves = 0
        self.skipped_saves = 0
        self._restore_hist = None

    def _should_skip(self, task_id: str, data: bytes) -> bool:
        """True when digest-skip applies; updates the digest cache."""
        digest = chunk_digest(data)
        if self.skip_unchanged and self._last_digest.get(task_id) == digest:
            self.skipped_saves += 1
            return True
        self._last_digest[task_id] = digest
        return False

    def _observe_restore(self, elapsed_s: float) -> None:
        if self._restore_hist is not None:
            self._restore_hist.observe(elapsed_s)

    def to_metrics(self, registry, prefix: str = "checkpoint") -> None:
        """Publish checkpoint-plane counters as registry views, plus a
        restore-latency histogram recorded on every ``load_latest``."""
        registry.bind(prefix, self, (
            "saves", "skipped_saves", "bytes_written",
        ))
        if self.repo is not None:
            registry.bind(prefix, self.repo, (
                "full_saves", "delta_saves", "rebases",
                "chunks_written", "chunks_deduped", "chunk_bytes_written",
            ))
            registry.view(f"{prefix}.dedup_hit_rate",
                          lambda r=self.repo: r.dedup_hit_rate)
            registry.view(f"{prefix}.pool_bytes",
                          lambda r=self.repo: r.pool.bytes_stored)
            registry.view(f"{prefix}.bytes_written_full",
                          lambda s=self: s.bytes_written_full)
            registry.view(f"{prefix}.bytes_written_delta",
                          lambda s=self: s.bytes_written_delta)
        from repro.obs.metrics import LATENCY_BOUNDS_S
        self._restore_hist = registry.histogram(
            f"{prefix}.restore_latency_s", LATENCY_BOUNDS_S
        )


class MemoryCheckpointStore(_StoreMetricsMixin):
    """In-memory repository keeping the latest checkpoint per task.

    In ``chunked`` mode the retained history is the current delta chain
    (at most ``rebase_every`` records); ``keep_history`` applies only to
    the seed full-snapshot mode.
    """

    def __init__(
        self,
        keep_history: int = 1,
        chunked: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        rebase_every: int = DEFAULT_REBASE_EVERY,
        skip_unchanged: bool = False,
    ):
        if keep_history < 1:
            raise ValueError("must keep at least one checkpoint")
        self.keep_history = keep_history
        self._records: dict[str, list[CheckpointRecord]] = {}
        self._init_accounting(chunked, chunk_size, rebase_every,
                              skip_unchanged)
        #: Chunked-mode accounting: bytes materialized by full records
        #: (initial snapshots and rebases) vs delta records.
        self.bytes_written_full = 0
        self.bytes_written_delta = 0

    def save(self, task_id: str, state: dict, now: float) -> CheckpointRecord:
        """Serialize and store a checkpoint; returns the record."""
        data = serialize(state)
        if self._should_skip(task_id, data):
            return self.load_latest(task_id)
        sequence = self._sequences.get(task_id, 0) + 1
        self._sequences[task_id] = sequence
        if self.repo is not None:
            return self._save_chunked(task_id, data, sequence, now)
        record = CheckpointRecord(task_id, sequence, now, data)
        history = self._records.setdefault(task_id, [])
        history.append(record)
        del history[:-self.keep_history]
        self.bytes_written += len(record.data)
        self.saves += 1
        return record

    def _save_chunked(self, task_id: str, data: bytes, sequence: int,
                      now: float) -> CheckpointRecord:
        before = self.repo.chunk_bytes_written
        manifest = self.repo.save(task_id, data, sequence, now)
        new_bytes = (self.repo.chunk_bytes_written - before) \
            + _manifest_size(manifest)
        if manifest["kind"] == "full":
            self.bytes_written_full += new_bytes
        else:
            self.bytes_written_delta += new_bytes
        self.bytes_written += new_bytes
        self.saves += 1
        return CheckpointRecord(task_id, sequence, now, data)

    def load_latest(self, task_id: str) -> Optional[CheckpointRecord]:
        """Most recent checkpoint for the task, or None."""
        if self.repo is not None:
            manifest = self.repo.latest(task_id)
            if manifest is None:
                return None
            started = perf_counter()
            data = self.repo.resolve_bytes(task_id)
            self._observe_restore(perf_counter() - started)
            return CheckpointRecord(
                task_id, manifest["sequence"], manifest["time"], data
            )
        history = self._records.get(task_id)
        return history[-1] if history else None

    def discard(self, task_id: str) -> None:
        """Forget all checkpoints for a finished task."""
        if self.repo is not None:
            self.repo.discard(task_id)
        self._records.pop(task_id, None)
        self._sequences.pop(task_id, None)
        self._last_digest.pop(task_id, None)

    @property
    def task_ids(self) -> list:
        if self.repo is not None:
            return self.repo.task_ids
        return sorted(self._records)


def _manifest_size(manifest: dict) -> int:
    """Exact serialized size of a chain record (the delta's overhead)."""
    return len(serialize(manifest))


_SAFE_TASK_RE = re.compile(r"[^A-Za-z0-9_.-]")


class _FileChunkPool(ChunkPool):
    """Content-addressed chunk files; writes are write-temp + rename."""

    def __init__(self, directory: str):
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, digest: bytes) -> str:
        return os.path.join(self.directory, f"{digest.hex()}.chunk")

    def has(self, digest: bytes) -> bool:
        return os.path.exists(self._path(digest))

    def put(self, digest: bytes, chunk: bytes) -> None:
        path = self._path(digest)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(chunk)
        os.replace(tmp, path)

    def get(self, digest: bytes) -> bytes:
        path = self._path(digest)
        if not os.path.exists(path):
            raise ChunkedChainError(
                f"chunk {digest.hex()} is not in the pool"
            )
        with open(path, "rb") as f:
            return f.read()

    def delete(self, digest: bytes) -> None:
        path = self._path(digest)
        if os.path.exists(path):
            os.remove(path)

    def digests_on_disk(self) -> set:
        out = set()
        for fname in os.listdir(self.directory):
            if fname.endswith(".chunk"):
                out.add(bytes.fromhex(fname[:-len(".chunk")]))
        return out

    @property
    def bytes_stored(self) -> int:
        return sum(
            os.path.getsize(os.path.join(self.directory, f))
            for f in os.listdir(self.directory) if f.endswith(".chunk")
        )


class FileCheckpointStore(_StoreMetricsMixin):
    """Filesystem-backed repository: one file per task's latest checkpoint.

    All writes go to a temporary file first and are moved into place
    with an atomic rename, so a crash mid-save never leaves a torn
    checkpoint behind — the previous record stays intact.  Saves whose
    state digest matches the task's latest record skip the write
    entirely (``skip_unchanged``, on by default here since file I/O is
    the dominant cost).

    ``chunked`` mode persists delta chains: chunks land in
    ``<directory>/chunks/`` named by content digest (shared across
    tasks), each task's chain manifest in ``<safe>.chain``.  Chunks are
    written before the chain referencing them, so a crash can only
    leave orphaned chunks — reaped on the next store construction —
    never a chain pointing at missing data.
    """

    def __init__(
        self,
        directory: str,
        chunked: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        rebase_every: int = DEFAULT_REBASE_EVERY,
        skip_unchanged: bool = True,
    ):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        pool = _FileChunkPool(os.path.join(directory, "chunks")) \
            if chunked else None
        self._init_accounting(chunked, chunk_size, rebase_every,
                              skip_unchanged, pool=pool)
        self.bytes_written_full = 0
        self.bytes_written_delta = 0
        self._latest: dict[str, CheckpointRecord] = {}
        if chunked:
            self._reload_chains()

    # -- paths ----------------------------------------------------------------

    def _safe(self, task_id: str) -> str:
        return _SAFE_TASK_RE.sub("_", task_id)

    def _path(self, task_id: str) -> str:
        return os.path.join(self.directory, f"{self._safe(task_id)}.ckpt")

    def _chain_path(self, task_id: str) -> str:
        return os.path.join(self.directory, f"{self._safe(task_id)}.chain")

    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(data)
        os.replace(tmp, path)    # atomic: a crash never leaves a torn file

    # -- chunked-chain persistence --------------------------------------------

    def _reload_chains(self) -> None:
        """Adopt persisted chains, then reap orphaned chunk files."""
        for fname in sorted(os.listdir(self.directory)):
            if not fname.endswith(".chain"):
                continue
            with open(os.path.join(self.directory, fname), "rb") as f:
                envelope = deserialize(f.read())
            task_id = envelope["task_id"]
            records = [
                {**rec, "changed": [[i, d] for i, d in rec["changed"]]}
                for rec in envelope["records"]
            ]
            self.repo.adopt_chain(task_id, records)
            if records:
                self._sequences[task_id] = records[-1]["sequence"]
        referenced = set(self.repo._refs)
        for digest in self.repo.pool.digests_on_disk() - referenced:
            self.repo.pool.delete(digest)

    def _persist_chain(self, task_id: str) -> int:
        envelope = serialize({
            "task_id": task_id,
            "records": self.repo.chain(task_id),
        })
        self._atomic_write(self._chain_path(task_id), envelope)
        return len(envelope)

    # -- the store interface --------------------------------------------------

    def save(self, task_id: str, state: dict, now: float) -> CheckpointRecord:
        data = serialize(state)
        if self._should_skip(task_id, data):
            previous = self.load_latest(task_id)
            if previous is not None:
                return previous
            # Nothing actually stored yet (fresh digest cache): fall
            # through and write the first record after all.
            self.skipped_saves -= 1
        sequence = self._sequences.get(task_id, 0) + 1
        self._sequences[task_id] = sequence
        if self.repo is not None:
            before = self.repo.chunk_bytes_written
            manifest = self.repo.save(task_id, data, sequence, now)
            new_bytes = (self.repo.chunk_bytes_written - before) \
                + self._persist_chain(task_id)
            if manifest["kind"] == "full":
                self.bytes_written_full += new_bytes
            else:
                self.bytes_written_delta += new_bytes
            self.bytes_written += new_bytes
            self.saves += 1
            return CheckpointRecord(task_id, sequence, now, data)
        envelope = serialize(
            {"task_id": task_id, "sequence": sequence, "time": now,
             "data": data}
        )
        self._atomic_write(self._path(task_id), envelope)
        self.bytes_written += len(envelope)
        self.saves += 1
        record = CheckpointRecord(task_id, sequence, now, data)
        self._latest[task_id] = record
        return record

    def load_latest(self, task_id: str) -> Optional[CheckpointRecord]:
        if self.repo is not None:
            manifest = self.repo.latest(task_id)
            if manifest is None:
                return None
            started = perf_counter()
            data = self.repo.resolve_bytes(task_id)
            self._observe_restore(perf_counter() - started)
            return CheckpointRecord(
                task_id, manifest["sequence"], manifest["time"], data
            )
        path = self._path(task_id)
        if not os.path.exists(path):
            return None
        started = perf_counter()
        with open(path, "rb") as f:
            envelope = deserialize(f.read())
        self._observe_restore(perf_counter() - started)
        return CheckpointRecord(
            envelope["task_id"],
            envelope["sequence"],
            envelope["time"],
            envelope["data"],
        )

    def discard(self, task_id: str) -> None:
        self._sequences.pop(task_id, None)
        self._last_digest.pop(task_id, None)
        self._latest.pop(task_id, None)
        if self.repo is not None:
            self.repo.discard(task_id)
            chain_path = self._chain_path(task_id)
            if os.path.exists(chain_path):
                os.remove(chain_path)
            return
        path = self._path(task_id)
        if os.path.exists(path):
            os.remove(path)

    @property
    def task_ids(self) -> list:
        if self.repo is not None:
            return self.repo.task_ids
        names = []
        for fname in os.listdir(self.directory):
            if fname.endswith(".ckpt"):
                names.append(fname[:-len(".ckpt")])
        return sorted(names)
